"""Table V: "real implementation" (host) timing of the software-only variants.

The paper ran the decNumber library and Method-1-with-dummy-functions natively
on an Intel i7; here the equivalent pure-Python implementations are timed on
the benchmark host.  Only the speedup ratio is comparable.
"""

from __future__ import annotations

import pytest

from repro.core import reporting
from repro.core.host_eval import HostEvaluator
from repro.core.method1 import DummyHardware, Method1HostModel
from repro.core.software_baseline import SoftwareBaseline
from repro.testgen.config import SolutionKind
from benchmarks.conftest import bench_samples


@pytest.fixture(scope="module")
def evaluator():
    return HostEvaluator(num_samples=max(bench_samples(), 500), seed=2018)


def test_table_v_full(benchmark, evaluator):
    report = benchmark.pedantic(evaluator.evaluate, rounds=1, iterations=1)
    print()
    print(reporting.render_table_v(report))
    benchmark.extra_info["speedup_dummy"] = round(
        report.speedup(SolutionKind.METHOD1_DUMMY), 2
    )


def test_table_v_software_row(benchmark, evaluator):
    """Per-multiplication host cost of the library baseline."""
    baseline = SoftwareBaseline()
    x_word, y_word = evaluator.operand_words[0]
    benchmark(baseline.multiply_words, x_word, y_word)


def test_table_v_dummy_row(benchmark, evaluator):
    """Per-multiplication host cost of Method-1 with dummy functions."""
    model = Method1HostModel(hardware=DummyHardware())
    x_word, y_word = evaluator.operand_words[0]
    benchmark(model.multiply_words, x_word, y_word)
