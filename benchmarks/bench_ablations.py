"""Ablation benches for the design choices DESIGN.md calls out.

* RoCC interface latency sweep — the paper's Section V discussion of the
  "latency overhead during data exchange with CPU because of the position of
  the interface into the pipeline".
* Cache replacement policy / size — the paper's discussion of Rocket's random
  replacement making cycle counts nondeterministic.
* Sample-count stability — why the paper averages over 8,000 samples.
* Divider latency — the dominant term in the software baseline's cycle count.
"""

from __future__ import annotations

import statistics

import pytest

from repro.core.evaluation import EvaluationFramework
from repro.rocket.config import CacheConfig, RocketConfig
from repro.testgen.config import SolutionKind
from benchmarks.conftest import bench_samples

_SAMPLES = max(20, bench_samples(60) // 3)


def _avg_cycles(kind, rocket_config=None, num_samples=_SAMPLES, seed=2018):
    framework = EvaluationFramework(
        num_samples=num_samples,
        seed=seed,
        rocket_config=rocket_config or RocketConfig(),
        verify_functionally=False,
    )
    return framework.run_cycle_accurate(kind).cycle_report


@pytest.mark.parametrize("latency", [1, 2, 4, 8, 16])
def test_ablation_rocc_interface_latency(benchmark, latency):
    config = RocketConfig(
        rocc_cmd_latency_cycles=latency, rocc_resp_latency_cycles=latency
    )
    report = benchmark.pedantic(
        _avg_cycles, args=(SolutionKind.METHOD1, config), rounds=1, iterations=1
    )
    print(
        f"\ninterface latency {latency:2d}: total {report.avg_total_cycles:.0f} "
        f"(hw part {report.avg_hw_cycles:.0f})"
    )
    benchmark.extra_info["latency"] = latency
    benchmark.extra_info["avg_total_cycles"] = round(report.avg_total_cycles)
    benchmark.extra_info["avg_hw_cycles"] = round(report.avg_hw_cycles)


@pytest.mark.parametrize("replacement", ["random", "lru"])
def test_ablation_cache_replacement(benchmark, replacement):
    cache = CacheConfig(replacement=replacement)
    config = RocketConfig(icache=cache, dcache=cache)
    report = benchmark.pedantic(
        _avg_cycles, args=(SolutionKind.METHOD1, config), rounds=1, iterations=1
    )
    print(
        f"\n{replacement} replacement: total {report.avg_total_cycles:.0f}, "
        f"stdev {report.stdev_cycles:.1f}"
    )
    benchmark.extra_info["replacement"] = replacement
    benchmark.extra_info["cycles_stdev"] = round(report.stdev_cycles, 1)


@pytest.mark.parametrize("sets", [16, 64, 256])
def test_ablation_cache_size(benchmark, sets):
    cache = CacheConfig(sets=sets)
    config = RocketConfig(icache=cache, dcache=cache)
    report = benchmark.pedantic(
        _avg_cycles, args=(SolutionKind.SOFTWARE, config), rounds=1, iterations=1
    )
    print(f"\n{sets * 4 * 64 // 1024} KiB caches: total {report.avg_total_cycles:.0f}")
    benchmark.extra_info["cache_kib"] = sets * 4 * 64 // 1024
    benchmark.extra_info["avg_total_cycles"] = round(report.avg_total_cycles)


@pytest.mark.parametrize("num_samples", [10, 40, 160])
def test_ablation_sample_count_stability(benchmark, num_samples):
    """Averages stabilise as the sample count grows (the paper uses 8,000)."""

    def run():
        averages = []
        for seed in (1, 2, 3):
            report = _avg_cycles(
                SolutionKind.METHOD1, num_samples=num_samples, seed=seed
            )
            averages.append(report.avg_total_cycles)
        return averages

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    spread = statistics.pstdev(averages) / statistics.mean(averages)
    print(f"\n{num_samples} samples: averages {averages}, relative spread {spread:.3f}")
    benchmark.extra_info["relative_spread"] = round(spread, 4)


@pytest.mark.parametrize("div_latency", [10, 40, 62])
def test_ablation_divider_latency(benchmark, div_latency):
    """The software baseline is dominated by the iterative divider latency."""
    config = RocketConfig(div_latency_cycles=div_latency)
    report = benchmark.pedantic(
        _avg_cycles, args=(SolutionKind.SOFTWARE, config), rounds=1, iterations=1
    )
    print(f"\ndiv latency {div_latency}: software total {report.avg_total_cycles:.0f}")
    benchmark.extra_info["div_latency"] = div_latency
    benchmark.extra_info["avg_total_cycles"] = round(report.avg_total_cycles)
