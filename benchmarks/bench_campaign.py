"""Campaign-engine scaling benchmark: serial vs sharded multiprocess runs.

Runs the Table IV evaluation twice with the *same shard plan* — once with
``workers=1`` (in-process serial reference) and once fanned out over worker
processes — and appends wall-clock numbers plus the measured speedup to
``BENCH_campaign.json`` at the repository root.  Because the shard plan, not
the scheduling, defines the measurement, the two runs produce identical
merged reports; the benchmark asserts that before recording.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--samples N]
        [--workers N] [--shards-per-cell N] [--out PATH]

The paper-scale acceptance run is ``--samples 8000`` on a >= 4-core host;
``cpu_count`` is recorded with every entry because the achievable speedup is
bounded by the cores actually available.

This is a standalone script (not collected by pytest); CI runs the campaign
CLI with a tiny sample count as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.campaign import run_table_iv_campaign  # noqa: E402

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_campaign.json")


def _reports_identical(a, b) -> bool:
    return all(
        left.per_sample_cycles == right.per_sample_cycles
        and left.hw_cycles_total == right.hw_cycles_total
        and left.icache_hit_rate == right.icache_hit_rate
        and left.dcache_hit_rate == right.dcache_hit_rate
        for left, right in zip(a.reports, b.reports)
    )


def run_benchmark(samples: int, workers: int, shards_per_cell: int,
                  workload: str = None) -> dict:
    kwargs = dict(num_samples=samples, shards_per_cell=shards_per_cell,
                  workload=workload)
    serial = run_table_iv_campaign(workers=1, **kwargs)
    parallel = run_table_iv_campaign(workers=workers, **kwargs)
    if not _reports_identical(serial, parallel):
        raise AssertionError(
            "merged campaign reports diverged between the serial and "
            "parallel runs of the same shard plan — determinism regression"
        )
    speedup = (
        serial.wall_seconds / parallel.wall_seconds if parallel.wall_seconds else 0.0
    )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "samples": samples,
        "workload": workload,
        "workers": workers,
        "shards_per_cell": shards_per_cell,
        "total_shards": parallel.total_shards,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "parallel_wall_seconds": round(parallel.wall_seconds, 3),
        "speedup": round(speedup, 2),
        "sim_wall_seconds": round(parallel.total_sim_wall_seconds, 3),
        "bit_identical_to_serial": _reports_identical(serial, parallel),
        "table_iv_rows": parallel.table_iv().rows(),
    }


def persist(record: dict, path: str) -> dict:
    """Append ``record`` to the benchmark history file and return the doc."""
    document = {"benchmark": "campaign_scaling", "history": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing.get("history"), list):
                document = existing
        except (json.JSONDecodeError, OSError):
            pass  # corrupt or unreadable history: start fresh
    document["history"].append(record)
    document["latest"] = record
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_BENCH_SAMPLES", 800)),
        help="samples per cell (default 800; paper scale 8000)",
    )
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel run (default: min(4, cores))",
    )
    parser.add_argument(
        "--shards-per-cell", type=int, default=None,
        help="shards per cell (default: same as --workers)",
    )
    parser.add_argument(
        "--workload", default=None,
        help="registered workload name to draw operands from "
             "(default: the legacy Table IV class mix)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help="benchmark history JSON path"
    )
    args = parser.parse_args(argv)
    shards = args.shards_per_cell if args.shards_per_cell else max(1, args.workers)

    record = run_benchmark(args.samples, args.workers, shards,
                           workload=args.workload)
    persist(record, args.out)

    print(f"campaign scaling, {record['samples']} samples/cell, "
          f"{record['total_shards']} shards, {record['cpu_count']} cores")
    print(f"  serial   (1 worker):  {record['serial_wall_seconds']:>8.2f} s")
    print(f"  parallel ({args.workers} workers): "
          f"{record['parallel_wall_seconds']:>8.2f} s")
    print(f"  speedup: {record['speedup']:.2f}x  "
          f"(merged reports identical: {record['bit_identical_to_serial']})")
    print(f"history -> {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
