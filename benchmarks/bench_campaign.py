"""Campaign-engine scaling benchmark: serial vs sharded multiprocess runs.

Runs the Table IV evaluation twice with the *same shard plan* — once with
``workers=1`` (in-process serial reference) and once fanned out over worker
processes — and appends wall-clock numbers plus the measured speedup to
``BENCH_campaign.json`` at the repository root.  Because the shard plan, not
the scheduling, defines the measurement, the two runs produce identical
merged reports; the benchmark asserts that before recording.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--samples N]
        [--workers N] [--shards-per-cell N] [--op mul,add,fma] [--out PATH]

``--op`` switches the measured evaluation to the operation axis
(docs/operations.md): the same serial-vs-sharded comparison over
``run_operation_campaign``, with per-operation throughput
(samples per simulator-wall second) recorded beside the scaling numbers.

``--pipeline-sweep`` switches it to the microarchitecture design-space
study (docs/pipeline.md): the same serial-vs-sharded comparison over
``run_pipeline_sweep_campaign`` (a small depth × width grid by default),
with the per-group Pareto frontier points recorded beside the scaling
numbers.

``--service`` benchmarks the campaign service instead (docs/service.md):
start a live HTTP server against a throwaway content-addressed result
cache, submit the same Table IV campaign twice, and record the cold
(computed) vs warm (100% cache hit) request latency, the hit rate, and
whether the two summaries were bit-identical.

The paper-scale acceptance run is ``--samples 8000`` on a >= 4-core host;
``cpu_count`` is recorded with every entry because the achievable speedup is
bounded by the cores actually available.

This is a standalone script (not collected by pytest); CI runs the campaign
CLI with a tiny sample count as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.campaign import (  # noqa: E402
    run_operation_campaign,
    run_pipeline_sweep_campaign,
    run_table_iv_campaign,
)

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_campaign.json")


def _reports_identical(a, b) -> bool:
    return all(
        left.per_sample_cycles == right.per_sample_cycles
        and left.hw_cycles_total == right.hw_cycles_total
        and left.icache_hit_rate == right.icache_hit_rate
        and left.dcache_hit_rate == right.dcache_hit_rate
        for left, right in zip(a.reports, b.reports)
    )


def _per_operation_stats(result) -> dict:
    """Per-operation sample throughput over the simulator wall clock."""
    stats = {}
    for report in result.reports:
        entry = stats.setdefault(report.operation, {
            "samples": 0, "sim_wall_seconds": 0.0,
        })
        entry["samples"] += report.num_samples
        entry["sim_wall_seconds"] += report.sim_wall_seconds
    for entry in stats.values():
        wall = entry["sim_wall_seconds"]
        entry["sim_wall_seconds"] = round(wall, 3)
        entry["samples_per_second"] = (
            round(entry["samples"] / wall, 1) if wall else None
        )
    return stats


def _frontier_points(result) -> dict:
    """Per-(operation, format) Pareto points of a pipeline-sweep campaign."""
    from repro.core.pareto import frontier_of, points_from_campaign

    groups = {}
    for (op, fmt), points in points_from_campaign(result).items():
        frontier = frontier_of(points)
        groups[f"{op}/{fmt}"] = [
            {
                "name": point.name,
                "avg_cycles": round(point.avg_cycles, 3),
                "gate_equivalents": round(point.gate_equivalents, 1),
                "flip_flops": point.flip_flops,
                "pareto": point in frontier,
            }
            for point in sorted(
                points,
                key=lambda p: (p.avg_cycles, p.gate_equivalents, p.name),
            )
        ]
    return groups


def run_benchmark(samples: int, workers: int, shards_per_cell: int,
                  workload: str = None, operations=None,
                  pipeline_sweep: bool = False,
                  depths=(1, 2, 4), widths=(1, 2)) -> dict:
    if pipeline_sweep:
        def run(workers):
            return run_pipeline_sweep_campaign(
                depths=depths, widths=widths,
                operations=operations or ("multiply",),
                num_samples=samples, shards_per_cell=shards_per_cell,
                workers=workers,
            )
    elif operations:
        def run(workers):
            return run_operation_campaign(
                operations, num_samples=samples,
                shards_per_cell=shards_per_cell,
                workloads=(workload,) if workload else None,
                workers=workers,
            )
    else:
        def run(workers):
            return run_table_iv_campaign(
                num_samples=samples, shards_per_cell=shards_per_cell,
                workload=workload, workers=workers,
            )
    serial = run(workers=1)
    parallel = run(workers=workers)
    if not _reports_identical(serial, parallel):
        raise AssertionError(
            "merged campaign reports diverged between the serial and "
            "parallel runs of the same shard plan — determinism regression"
        )
    speedup = (
        serial.wall_seconds / parallel.wall_seconds if parallel.wall_seconds else 0.0
    )
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "samples": samples,
        "workload": workload,
        "workers": workers,
        "shards_per_cell": shards_per_cell,
        "total_shards": parallel.total_shards,
        "cpu_count": os.cpu_count(),
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "parallel_wall_seconds": round(parallel.wall_seconds, 3),
        "speedup": round(speedup, 2),
        "sim_wall_seconds": round(parallel.total_sim_wall_seconds, 3),
        "bit_identical_to_serial": _reports_identical(serial, parallel),
    }
    if pipeline_sweep:
        record["pipeline_sweep"] = {
            "depths": list(depths), "widths": list(widths),
        }
        record["pipeline_frontier"] = _frontier_points(parallel)
    elif operations:
        record["operations"] = [str(op) for op in operations]
        record["per_operation"] = _per_operation_stats(parallel)
        record["table_iv_rows"] = {
            f"{op}/{fmt}/{wl or 'default'}": table.rows()
            for (op, fmt, wl), table in
            parallel.table_iv_by_operation().items()
        }
    else:
        record["table_iv_rows"] = parallel.table_iv().rows()
    return record


def run_service_benchmark(samples: int, workers: int,
                          shards_per_cell: int) -> dict:
    """Cold-vs-warm latency of the same campaign over the live service."""
    import tempfile

    from repro.service import ResultCache, comparable_summary, serve_in_background
    from repro.service.client import submit_and_wait

    spec = {"samples": samples, "label": "bench"}
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        cache = ResultCache(tmp)
        with serve_in_background(
            cache, workers=workers, shards_per_cell=shards_per_cell
        ) as server:
            started = time.perf_counter()
            cold = submit_and_wait(server.base_url, spec)
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            warm = submit_and_wait(server.base_url, spec)
            warm_seconds = time.perf_counter() - started
        hit_rate = cache.hit_rate
    identical = comparable_summary(cold["summary"]) == comparable_summary(
        warm["summary"]
    )
    if warm["cache"]["hits"] != warm["cache"]["cells"]:
        raise AssertionError(
            f"warm request was not a 100% cache hit: {warm['cache']}"
        )
    if not identical:
        raise AssertionError(
            "warm summary diverged from the cold run — cache-identity "
            "regression (see docs/service.md)"
        )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "mode": "service",
        "samples": samples,
        "workers": workers,
        "shards_per_cell": shards_per_cell,
        "cells": cold["cache"]["cells"],
        "cpu_count": os.cpu_count(),
        "cold_wall_seconds": round(cold_seconds, 3),
        "warm_wall_seconds": round(warm_seconds, 3),
        "warm_speedup": round(
            cold_seconds / warm_seconds if warm_seconds else 0.0, 2
        ),
        "cache_hit_rate": round(hit_rate, 4),
        "summaries_identical": identical,
        "table_iv_rows": [
            [cell["solution"], cell["samples"], cell["avg_total_cycles"]]
            for cell in warm["summary"]["cells"]
        ],
    }


def persist(record: dict, path: str) -> dict:
    """Append ``record`` to the benchmark history file and return the doc."""
    document = {"benchmark": "campaign_scaling", "history": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing.get("history"), list):
                document = existing
        except (json.JSONDecodeError, OSError):
            pass  # corrupt or unreadable history: start fresh
    document["history"].append(record)
    document["latest"] = record
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_BENCH_SAMPLES", 800)),
        help="samples per cell (default 800; paper scale 8000)",
    )
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1),
        help="worker processes for the parallel run (default: min(4, cores))",
    )
    parser.add_argument(
        "--shards-per-cell", type=int, default=None,
        help="shards per cell (default: same as --workers)",
    )
    parser.add_argument(
        "--workload", default=None,
        help="registered workload name to draw operands from "
             "(default: the legacy Table IV class mix)",
    )
    parser.add_argument(
        "--op", default=None, metavar="NAME[,NAME...]", dest="operations",
        help="comma-separated operations to evaluate instead of the "
             "multiply-only Table IV (multiply/add/subtract/fma, aliases "
             "mul/sub/mac; docs/operations.md)",
    )
    parser.add_argument(
        "--pipeline-sweep", action="store_true",
        help="benchmark the staged-pipeline design-space campaign "
             "(docs/pipeline.md) and record its Pareto frontier points",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="benchmark the campaign service (docs/service.md): cold vs "
             "warm request latency and cache hit rate over a live server",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help="benchmark history JSON path"
    )
    args = parser.parse_args(argv)
    if args.pipeline_sweep and args.workload:
        parser.error("--pipeline-sweep and --workload are mutually exclusive")
    if args.service and (args.pipeline_sweep or args.workload or args.operations):
        parser.error("--service benchmarks the Table IV campaign only")
    shards = args.shards_per_cell if args.shards_per_cell else max(1, args.workers)

    if args.service:
        record = run_service_benchmark(args.samples, args.workers, shards)
        persist(record, args.out)
        print(f"campaign service, {record['samples']} samples/cell, "
              f"{record['cells']} cells, {record['workers']} workers")
        print(f"  cold request (computed):  {record['cold_wall_seconds']:>8.3f} s")
        print(f"  warm request (cached):    {record['warm_wall_seconds']:>8.3f} s")
        print(f"  warm speedup: {record['warm_speedup']:.1f}x  "
              f"(hit rate {record['cache_hit_rate']:.0%}, summaries "
              f"identical: {record['summaries_identical']})")
        print(f"history -> {os.path.abspath(args.out)}")
        return 0

    operations = None
    if args.operations:
        from repro.decnumber.operations import resolve_operation_name
        operations = tuple(
            resolve_operation_name(part)
            for part in args.operations.split(",") if part.strip()
        )
    record = run_benchmark(args.samples, args.workers, shards,
                           workload=args.workload, operations=operations,
                           pipeline_sweep=args.pipeline_sweep)
    persist(record, args.out)

    print(f"campaign scaling, {record['samples']} samples/cell, "
          f"{record['total_shards']} shards, {record['cpu_count']} cores")
    print(f"  serial   (1 worker):  {record['serial_wall_seconds']:>8.2f} s")
    print(f"  parallel ({args.workers} workers): "
          f"{record['parallel_wall_seconds']:>8.2f} s")
    print(f"  speedup: {record['speedup']:.2f}x  "
          f"(merged reports identical: {record['bit_identical_to_serial']})")
    for group, points in record.get("pipeline_frontier", {}).items():
        on_frontier = sum(1 for point in points if point["pareto"])
        print(f"  {group}: {len(points)} design points, "
              f"{on_frontier} on the Pareto frontier")
    for op, stats in record.get("per_operation", {}).items():
        print(f"  {op}: {stats['samples']} samples in "
          f"{stats['sim_wall_seconds']} s sim wall "
          f"({stats['samples_per_second']} samples/s)")
    print(f"history -> {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
