"""Simulator-throughput benchmark for the threaded-code execution engine.

Measures retired instructions per host second on the paper's software-multiply
kernel (the Table IV "Software" row) across all three simulator front ends:

* functional (``SpikeSimulator``, batched threaded-code dispatch),
* cycle-accurate (``RocketEmulator``, per-step timing model),
* gem5-style atomic (``AtomicSimpleCPU``, batched 1-CPI model),

and appends the run to ``BENCH_sim.json`` at the repository root so future
PRs can track the throughput trajectory.  The recorded speedups are relative
to the seed string-dispatch interpreter's reference throughput (measured on
the reference machine before the threaded-code engine landed).

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py [--samples N]
        [--repeats N] [--out PATH]

This is a standalone script (not collected by pytest); CI runs it with a tiny
sample count as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.gem5.se_mode import SyscallEmulationRunner  # noqa: E402
from repro.rocket.core import RocketEmulator  # noqa: E402
from repro.sim.spike import SpikeSimulator  # noqa: E402
from repro.testgen.config import SolutionKind, TestProgramConfig  # noqa: E402
from repro.testgen.generator import build_test_program  # noqa: E402

#: Seed interpreter throughput on the reference machine (instr/s), measured
#: on the software-multiply kernel before the threaded-code engine replaced
#: the per-instruction string dispatch.
SEED_BASELINE = {"functional": 365_000, "rocket": 152_000}

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sim.json")


def _best_of(repeats, make_and_run):
    """Return (instructions, best_instr_per_s) over ``repeats`` fresh runs."""
    best = 0.0
    instructions = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = make_and_run()
        elapsed = time.perf_counter() - start
        instructions = result.instructions_retired
        best = max(best, instructions / elapsed)
    return instructions, best


def run_benchmark(samples: int, repeats: int) -> dict:
    config = TestProgramConfig(
        solution=SolutionKind.SOFTWARE, num_samples=samples, seed=2018
    )
    program = build_test_program(config)
    image = program.image

    instructions, functional = _best_of(
        repeats, lambda: SpikeSimulator(image).run()
    )
    _, rocket = _best_of(repeats, lambda: RocketEmulator(image).run())
    _, gem5 = _best_of(
        repeats, lambda: SyscallEmulationRunner().run_binary(image)
    )

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "kernel": "software_mul",
        "samples": samples,
        "repeats": repeats,
        "instructions": instructions,
        "instr_per_s": {
            "functional": round(functional),
            "rocket": round(rocket),
            "gem5_atomic": round(gem5),
        },
        "seed_baseline_instr_per_s": dict(SEED_BASELINE),
        "speedup_vs_seed": {
            "functional": round(functional / SEED_BASELINE["functional"], 2),
            "rocket": round(rocket / SEED_BASELINE["rocket"], 2),
        },
    }


def persist(record: dict, path: str) -> dict:
    """Append ``record`` to the benchmark history file and return the doc."""
    document = {"benchmark": "sim_throughput", "history": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing.get("history"), list):
                document = existing
        except (json.JSONDecodeError, OSError):
            pass  # corrupt or unreadable history: start fresh
    document["history"].append(record)
    document["latest"] = record
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_BENCH_SAMPLES", 40)),
        help="operand samples in the kernel run (default 40; paper scale 8000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions; best run is recorded (default 3)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help="benchmark history JSON path"
    )
    args = parser.parse_args(argv)

    record = run_benchmark(args.samples, args.repeats)
    persist(record, args.out)

    rates = record["instr_per_s"]
    speedups = record["speedup_vs_seed"]
    print(f"software-multiply kernel, {args.samples} samples "
          f"({record['instructions']} instructions/run)")
    print(f"  functional (spike):   {rates['functional']:>12,} instr/s  "
          f"({speedups['functional']:.2f}x vs seed interpreter)")
    print(f"  cycle-accurate:       {rates['rocket']:>12,} instr/s  "
          f"({speedups['rocket']:.2f}x vs seed interpreter)")
    print(f"  gem5 atomic:          {rates['gem5_atomic']:>12,} instr/s")
    print(f"history -> {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
