"""Simulator-throughput benchmark for the threaded-code execution engine.

Measures retired instructions per host second on the paper's software-multiply
kernel (the Table IV "Software" row) across all three simulator front ends:

* functional (``SpikeSimulator``; the headline ``functional`` number is the
  batch-mode steady state — one warm executor rerun over the vectors after
  tier-2 promotion settles, exactly what a campaign worker sees — with the
  cold-start single run recorded alongside as ``functional_cold``),
* cycle-accurate (``RocketEmulator``; the headline ``rocket`` number is the
  warm steady state — ``reset()`` restores cold caches and zeroed cycle
  state while the compiled timing spans stay warm, exactly what
  ``BatchRunner.acquire_timed`` gives a campaign worker — with the
  cold-start single run recorded alongside as ``rocket_cold``; every warm
  run's result digest *and* total cycle count are asserted equal to the
  cold run's, and the cold run's cycles to a ``timing_tier=False``
  interpreted run's),
* gem5-style atomic (``AtomicSimpleCPU``, batched 1-CPI model),

and appends the run to ``BENCH_sim.json`` at the repository root so future
PRs can track the throughput trajectory.  The recorded speedups are relative
to the seed string-dispatch interpreter's reference throughput (measured on
the reference machine before the threaded-code engine landed).

Each record also carries the tier-2 engine's own counters for the steady
run (``tiers``: per-tier retired instructions and rate contributions,
promoted block count, compile seconds, deopts — from the opt-in
:class:`~repro.sim.executor.ExecProfile`) and a SHA-256 digest of the
result buffer, asserted identical between the cold and every warm run
before anything is recorded: the speedup must never change a single bit.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py [--samples N]
        [--repeats N] [--out PATH]

This is a standalone script (not collected by pytest); CI runs it with a tiny
sample count as a smoke test.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.gem5.atomic_cpu import AtomicSimpleCPU  # noqa: E402
from repro.gem5.se_mode import Gem5Config  # noqa: E402
from repro.rocket.core import RocketEmulator  # noqa: E402
from repro.sim.spike import SpikeSimulator  # noqa: E402
from repro.testgen.config import SolutionKind, TestProgramConfig  # noqa: E402
from repro.testgen.generator import build_test_program  # noqa: E402

#: Seed interpreter throughput on the reference machine (instr/s), measured
#: on the software-multiply kernel before the threaded-code engine replaced
#: the per-instruction string dispatch.
SEED_BASELINE = {"functional": 365_000, "rocket": 152_000}

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sim.json")


def _best_of(repeats, make_and_run):
    """Return (instructions, best_instr_per_s) over ``repeats`` fresh runs."""
    best = 0.0
    instructions = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = make_and_run()
        elapsed = time.perf_counter() - start
        instructions = result.instructions_retired
        best = max(best, instructions / elapsed)
    return instructions, best


def _result_digest(program, result) -> str:
    """SHA-256 over the result buffer — the bit-identity witness."""
    words = program.read_results(result)
    blob = b"".join(word.to_bytes(16, "little") for word in words)
    return hashlib.sha256(blob).hexdigest()


def _measure_batch_steady(program, repeats: int, cold_digest: str) -> tuple:
    """Warm batch-mode steady state: ``(best_instr_per_s, tiers_dict)``.

    One simulator is rerun over the same image until tier-2 promotion
    settles (what a campaign worker's :class:`~repro.sim.batch.BatchRunner`
    reaches after a few shards), then timed.  Every warm run's result
    digest is asserted equal to the cold run's before anything is recorded.
    """
    simulator = SpikeSimulator(program.image)
    executor = simulator.executor
    result = simulator.run()
    assert _result_digest(program, result) == cold_digest, \
        "warm-up run diverged from cold run"
    previous, stable, rounds = -1, 0, 0
    while stable < 3 and rounds < 50:
        simulator.reset()
        simulator.run()
        rounds += 1
        stable = stable + 1 if executor.tier2_blocks == previous else 0
        previous = executor.tier2_blocks

    best = 0.0
    for _ in range(max(repeats, 3)):
        simulator.reset()
        start = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - start
        best = max(best, result.instructions_retired / elapsed)
    assert _result_digest(program, result) == cold_digest, \
        "steady-state run diverged from cold run"

    # One extra (untimed) profiled run for the per-tier split; profiling
    # hooks cost enough that the headline run stays unprofiled.
    profile = executor.enable_profiling()
    simulator.reset()
    start = time.perf_counter()
    result = simulator.run()
    profiled_elapsed = time.perf_counter() - start
    assert _result_digest(program, result) == cold_digest, \
        "profiled run diverged from cold run"
    tier1 = profile.tier1_instructions
    tier2 = profile.tier2_instructions
    tiers = {
        "tier1_instructions": tier1,
        "tier2_instructions": tier2,
        "tier1_instr_per_s": round(tier1 / profiled_elapsed),
        "tier2_instr_per_s": round(tier2 / profiled_elapsed),
        "tier2_blocks": executor.tier2_blocks,
        "tier2_compile_seconds": round(executor.tier2_compile_seconds, 4),
        "tier2_deopts": executor.tier2_deopts,
        "promotion_rounds_to_steady": rounds,
    }
    return best, tiers, profile


def _measure_rocket(image, program, repeats: int, cold_digest: str) -> tuple:
    """Cycle-accurate cold + warm rates: ``(cold, warm, rocket_tiers)``.

    The cold number is a fresh-emulator single run (decode and timing-span
    compilation on the clock), repeated ``repeats`` times best-of.  The warm
    number reruns one emulator through :meth:`RocketEmulator.reset` — cold
    caches, reseeded replacement PRNGs, zeroed cycle state, warm timing
    compiler — which is what ``BatchRunner.acquire_timed`` hands a campaign
    worker on a hit.  Three identities are asserted before anything is
    recorded: every run's result digest equals the functional cold digest,
    every warm run's cycle count equals the timing-tier cold run's, and the
    timing-tier cold cycle count equals a ``timing_tier=False`` interpreted
    run's — the compiled timing tier must be bit-invisible.
    """
    interpreted = RocketEmulator(image, timing_tier=False)
    interpreted_result = interpreted.run()
    assert _result_digest(program, interpreted_result) == cold_digest, \
        "interpreted rocket run diverged from functional result"

    cold = 0.0
    emulator = None
    cycles = None
    for _ in range(repeats):
        emulator = RocketEmulator(image)
        start = time.perf_counter()
        result = emulator.run()
        elapsed = time.perf_counter() - start
        cold = max(cold, result.instructions_retired / elapsed)
        assert _result_digest(program, result) == cold_digest, \
            "timing-tier rocket run diverged from functional result"
        assert result.cycles == interpreted_result.cycles, \
            "timing tier changed the cycle count vs the interpreted model"
        cycles = result.cycles

    warm = 0.0
    for _ in range(max(repeats, 3)):
        emulator.reset()
        start = time.perf_counter()
        result = emulator.run()
        elapsed = time.perf_counter() - start
        warm = max(warm, result.instructions_retired / elapsed)
        assert _result_digest(program, result) == cold_digest, \
            "warm rocket run diverged from cold run"
        assert result.cycles == cycles, \
            "warm rocket run changed the cycle count vs the cold run"

    compiled = emulator.timing_compiled_instructions
    interpreted_instrs = emulator.timing_interpreted_instructions
    tiers = {
        "cycles": cycles,
        "compiled_instructions": compiled,
        "interpreted_instructions": interpreted_instrs,
        "timing_spans": emulator.timing_spans,
        "timing_compile_seconds": round(emulator.timing_compile_seconds, 4),
        "timing_deopts": emulator.timing_deopts,
    }
    return cold, warm, tiers


def run_benchmark(samples: int, repeats: int) -> tuple:
    """``(profile, record)``: the steady-state ExecProfile and the JSON record."""
    config = TestProgramConfig(
        solution=SolutionKind.SOFTWARE, num_samples=samples, seed=2018
    )
    program = build_test_program(config)
    image = program.image

    cold_result = [None]

    def _cold_run():
        cold_result[0] = SpikeSimulator(image).run()
        return cold_result[0]

    instructions, functional_cold = _best_of(repeats, _cold_run)
    digest = _result_digest(program, cold_result[0])
    functional, tiers, profile = _measure_batch_steady(program, repeats, digest)
    rocket_cold, rocket, rocket_tiers = _measure_rocket(
        image, program, repeats, digest
    )

    # The gem5 model is measured through the same SE-mode entry point the
    # evaluation uses, but on a directly-held CPU so the tier split of its
    # batched executor can be recorded alongside the rate.
    gem5 = 0.0
    gem5_cpu = None
    for _ in range(repeats):
        gem5_cpu = AtomicSimpleCPU(
            image, frequency_hz=Gem5Config().frequency_hz
        )
        start = time.perf_counter()
        gem5_result = gem5_cpu.run()
        elapsed = time.perf_counter() - start
        gem5 = max(gem5, gem5_result.instructions_retired / elapsed)
        assert _result_digest(program, gem5_result) == digest, \
            "gem5 atomic run diverged from functional result"
    gem5_tiers = {
        "mode": "batched",  # extra memory cycles 0 -> threaded-code loop
        "tier2_blocks": gem5_cpu.executor.tier2_blocks,
        "tier2_compile_seconds": round(
            gem5_cpu.executor.tier2_compile_seconds, 4
        ),
        "tier2_deopts": gem5_cpu.executor.tier2_deopts,
    }

    return profile, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "kernel": "software_mul",
        "samples": samples,
        "repeats": repeats,
        "instructions": instructions,
        "instr_per_s": {
            "functional": round(functional),
            "functional_cold": round(functional_cold),
            "rocket": round(rocket),
            "rocket_cold": round(rocket_cold),
            "gem5_atomic": round(gem5),
        },
        "tiers": tiers,
        "rocket_tiers": rocket_tiers,
        "gem5_tiers": gem5_tiers,
        "results_sha256": digest,
        "batch_bit_identical": True,  # asserted above, run by run
        "seed_baseline_instr_per_s": dict(SEED_BASELINE),
        "speedup_vs_seed": {
            "functional": round(functional / SEED_BASELINE["functional"], 2),
            "functional_cold": round(
                functional_cold / SEED_BASELINE["functional"], 2
            ),
            "rocket": round(rocket / SEED_BASELINE["rocket"], 2),
            "rocket_cold": round(rocket_cold / SEED_BASELINE["rocket"], 2),
        },
    }


def persist(record: dict, path: str) -> dict:
    """Append ``record`` to the benchmark history file and return the doc."""
    document = {"benchmark": "sim_throughput", "history": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                existing = json.load(handle)
            if isinstance(existing.get("history"), list):
                document = existing
        except (json.JSONDecodeError, OSError):
            pass  # corrupt or unreadable history: start fresh
    document["history"].append(record)
    document["latest"] = record
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def check_regression(record: dict, baseline_path: str, tolerance: float) -> list:
    """Compare a fresh record against the recorded throughput history.

    Returns a list of human-readable failures for every front end whose
    throughput dropped more than ``tolerance`` (a fraction, e.g. 0.1 for
    10%) below the *slowest* recorded run of that front end.  Using the
    history minimum rather than the latest entry makes the floor the
    demonstrated worst case across recorded machines/loads — ordinary
    run-to-run and runner-to-runner noise stays inside the recorded
    envelope, while a real engine regression (these are typically
    multiples, not percents) still trips the gate.  A missing or
    malformed baseline is not a failure (first run / fresh checkout).

    Only history entries measured at the *same sample count* are compared
    when any exist (falling back to the whole history otherwise): per-run
    rates scale with run length — cold-start decode/compile and process
    setup amortize over more instructions at higher sample counts — so a
    40-sample CI check against an 8000-sample record would compare
    different quantities.  All recorded front ends are gated, including
    ``rocket`` and ``gem5_atomic``.
    """
    try:
        with open(baseline_path) as handle:
            history = json.load(handle)["history"]
        comparable = [
            entry for entry in history
            if entry.get("samples") == record.get("samples")
        ] or history
        baseline = {}
        for entry in comparable:
            for front_end, rate in entry.get("instr_per_s", {}).items():
                if rate and (front_end not in baseline or rate < baseline[front_end]):
                    baseline[front_end] = rate
    except (OSError, json.JSONDecodeError, KeyError, TypeError, AttributeError):
        return []
    failures = []
    for front_end, reference in baseline.items():
        measured = record["instr_per_s"].get(front_end)
        if measured is None or not reference:
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{front_end}: {measured:,.0f} instr/s is more than "
                f"{tolerance:.0%} below the slowest recorded {reference:,.0f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_BENCH_SAMPLES", 40)),
        help="operand samples in the kernel run (default 40; paper scale 8000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions; best run is recorded (default 3)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, help="benchmark history JSON path"
    )
    parser.add_argument(
        "--check-regression", metavar="BASELINE", default=None,
        help="compare against a recorded BENCH_sim.json and exit non-zero "
             "on a throughput regression beyond --tolerance (the fresh run "
             "is NOT appended to the baseline file in this mode)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.1,
        help="allowed fractional throughput drop for --check-regression "
             "(default 0.1 = 10%%)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the steady-state execution profile (per-tier totals and "
             "the hot side-exit table the trace-tree extender targets)",
    )
    args = parser.parse_args(argv)

    profile, record = run_benchmark(args.samples, args.repeats)
    if args.check_regression is not None:
        failures = check_regression(record, args.check_regression, args.tolerance)
        rates = record["instr_per_s"]
        print(f"regression check vs {args.check_regression} "
              f"(tolerance {args.tolerance:.0%}):")
        print(f"  functional {rates['functional']:,} / "
              f"rocket warm {rates['rocket']:,} "
              f"(cold {rates['rocket_cold']:,}) / "
              f"gem5 {rates['gem5_atomic']:,} instr/s")
        for failure in failures:
            print(f"  REGRESSION {failure}")
        if failures:
            return 1
        print("  ok")
        return 0
    persist(record, args.out)

    rates = record["instr_per_s"]
    speedups = record["speedup_vs_seed"]
    tiers = record["tiers"]
    rocket_tiers = record["rocket_tiers"]
    print(f"software-multiply kernel, {args.samples} samples "
          f"({record['instructions']} instructions/run)")
    print(f"  functional batch/warm:{rates['functional']:>12,} instr/s  "
          f"({speedups['functional']:.2f}x vs seed interpreter)")
    print(f"  functional cold:      {rates['functional_cold']:>12,} instr/s  "
          f"({speedups['functional_cold']:.2f}x vs seed interpreter)")
    print(f"  cycle-accurate warm:  {rates['rocket']:>12,} instr/s  "
          f"({speedups['rocket']:.2f}x vs seed interpreter)")
    print(f"  cycle-accurate cold:  {rates['rocket_cold']:>12,} instr/s  "
          f"({speedups['rocket_cold']:.2f}x vs seed interpreter)")
    print(f"  gem5 atomic:          {rates['gem5_atomic']:>12,} instr/s")
    print(f"  tier split (profiled run): "
          f"tier-2 {tiers['tier2_instructions']:,} instrs "
          f"across {tiers['tier2_blocks']} blocks "
          f"(compiled in {tiers['tier2_compile_seconds']}s, "
          f"{tiers['tier2_deopts']} deopts) / "
          f"tier-1 {tiers['tier1_instructions']:,} instrs")
    print(f"  rocket timing tier: "
          f"{rocket_tiers['compiled_instructions']:,} compiled / "
          f"{rocket_tiers['interpreted_instructions']:,} interpreted instrs "
          f"across {rocket_tiers['timing_spans']} spans "
          f"(compiled in {rocket_tiers['timing_compile_seconds']}s, "
          f"{rocket_tiers['timing_deopts']} deopts; "
          f"{rocket_tiers['cycles']:,} cycles, "
          f"cold == warm == interpreted, asserted)")
    print(f"  results sha256: {record['results_sha256'][:16]}… "
          f"(cold == warm, asserted)")
    if args.profile:
        print(profile.summary())
    print(f"history -> {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
