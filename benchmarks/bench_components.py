"""Micro-benchmarks of the framework's substrates (throughput sanity checks)."""

from __future__ import annotations

import random

from repro.asm.builder import AsmBuilder
from repro.asm.program import TOHOST_ADDRESS
from repro.decnumber import DECIMAL64_CONTEXT, DecNumber, decimal64, dpd, multiply
from repro.decnumber.bcd import int_to_bcd
from repro.hw.bcd_adder import BcdCarryLookaheadAdder
from repro.isa.decoder import decode_instruction
from repro.isa.encoder import encode_instruction
from repro.rocket.core import RocketEmulator
from repro.sim.spike import SpikeSimulator


def test_bcd_adder_throughput(benchmark):
    adder = BcdCarryLookaheadAdder(width_digits=32)
    a = int_to_bcd(98765432109876543210987654321098 % 10**32)
    b = int_to_bcd(12345678901234567890123456789012 % 10**32)
    benchmark(adder.add, a, b)


def test_dpd_codec_throughput(benchmark):
    values = list(range(1000))

    def roundtrip():
        return [dpd.decode_declet(dpd.encode_declet(value)) for value in values]

    benchmark(roundtrip)


def test_decimal64_codec_throughput(benchmark):
    rng = random.Random(5)
    numbers = [
        DecNumber(rng.randint(0, 1), rng.randint(0, 10**16 - 1), rng.randint(-398, 369))
        for _ in range(200)
    ]
    benchmark(lambda: [decimal64.decode(decimal64.encode(n)) for n in numbers])


def test_decnumber_multiply_throughput(benchmark):
    rng = random.Random(6)
    pairs = [
        (
            DecNumber(0, rng.randint(1, 10**16 - 1), rng.randint(-100, 100)),
            DecNumber(1, rng.randint(1, 10**16 - 1), rng.randint(-100, 100)),
        )
        for _ in range(200)
    ]
    benchmark(lambda: [multiply(x, y, DECIMAL64_CONTEXT()) for x, y in pairs])


def test_instruction_codec_throughput(benchmark):
    word = encode_instruction("add", 1, 2, 3)
    benchmark(lambda: decode_instruction(word))


def _loop_image(iterations=2000):
    builder = AsmBuilder()
    builder.label("_start")
    builder.li("t0", 0)
    builder.li("t1", iterations)
    builder.label("loop")
    builder.emit("addi", "t0", "t0", 1)
    builder.emit("xor", "t2", "t0", "t1")
    builder.emit("sltu", "t3", "t0", "t1")
    builder.branch("bne", "t0", "t1", "loop")
    builder.li("t5", TOHOST_ADDRESS)
    builder.li("t6", 1)
    builder.emit("sd", "t6", "t5", 0)
    builder.label("spin")
    builder.j("spin")
    return builder.link()


def test_functional_simulator_throughput(benchmark):
    image = _loop_image()
    result = benchmark.pedantic(
        lambda: SpikeSimulator(image).run(), rounds=3, iterations=1
    )
    benchmark.extra_info["instructions"] = result.instructions_retired


def test_rocket_emulator_throughput(benchmark):
    image = _loop_image()
    result = benchmark.pedantic(
        lambda: RocketEmulator(image).run(), rounds=3, iterations=1
    )
    benchmark.extra_info["instructions"] = result.instructions_retired
    benchmark.extra_info["cycles"] = result.cycles
