"""Regenerate Tables I-III (framework configuration, instruction set, encodings).

These tables are descriptive rather than measured; the benchmark times the
macro/encoding generator (the part of the framework a user actually runs) and
prints our equivalents of the paper's tables.
"""

from __future__ import annotations

from repro.asm import macros
from repro.core import reporting


def test_table_i_environment(benchmark):
    """Table I equivalent: the components this reproduction substitutes."""
    rows = {
        "Compiler": "repro.asm (programmatic + textual RV64 assembler)",
        "ISA simulator": "repro.sim.spike (functional RV64 simulator)",
        "Cycle-accurate emulator": "repro.rocket (Rocket-like timing model)",
        "ISA": "RV64IM + Zicsr + custom-0..3 (RoCC)",
        "Processor core": "repro.rocket.RocketEmulator",
        "Decimal software library": "repro.decnumber (decNumber stand-in)",
        "Testing": "repro.verification (constrained-random vector database)",
    }
    benchmark(lambda: "\n".join(f"{k:<28s} {v}" for k, v in rows.items()))
    print()
    print("Table I: Development environment (this reproduction)")
    for key, value in rows.items():
        print(f"  {key:<28s} {value}")


def test_table_ii_instruction_set(benchmark):
    text = benchmark(reporting.render_table_ii)
    print()
    print(text)


def test_table_iii_encodings(benchmark):
    text = benchmark(reporting.render_table_iii)
    print()
    print(text)
    # The example encoding from Section IV-B of the paper (DEC_ADD with core
    # registers 10/11 as sources and 12 as destination) is generated too.
    macro = macros.make_macro("DEC_ADD")
    print(f"\nGenerated wrapper for the paper's example:\n{macro.c_wrapper()}")
