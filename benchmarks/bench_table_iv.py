"""Table IV: average cycles of Method-1, software baseline and dummy variant.

This is the paper's headline experiment: the same operand mix is run through
all three solutions on the cycle-accurate Rocket-like emulator with the RoCC
decimal accelerator attached, and the per-multiplication averages are split
into software-part and hardware-part cycles.
"""

from __future__ import annotations

import pytest

from repro.core import reporting
from repro.testgen.config import SolutionKind


@pytest.fixture(scope="module")
def table_iv_report(framework):
    return framework.evaluate_table_iv()


def test_table_iv_full(benchmark, framework):
    """Time one full Table IV evaluation and print the reproduced table."""
    report = benchmark.pedantic(framework.evaluate_table_iv, rounds=1, iterations=1)
    print()
    print(reporting.render_table_iv(report))
    speedups = report.speedups()
    benchmark.extra_info["speedup_method1"] = round(speedups[SolutionKind.METHOD1], 2)
    benchmark.extra_info["speedup_dummy"] = round(
        speedups[SolutionKind.METHOD1_DUMMY], 2
    )
    benchmark.extra_info["samples"] = report.num_samples


@pytest.mark.parametrize("kind", [
    SolutionKind.METHOD1,
    SolutionKind.SOFTWARE,
    SolutionKind.METHOD1_DUMMY,
])
def test_table_iv_single_solution(benchmark, framework, kind):
    """Per-solution measurement (one row of Table IV at a time)."""
    run = benchmark.pedantic(
        framework.run_cycle_accurate, args=(kind,), rounds=1, iterations=1
    )
    report = run.cycle_report
    benchmark.extra_info["avg_total_cycles"] = round(report.avg_total_cycles)
    benchmark.extra_info["avg_hw_cycles"] = round(report.avg_hw_cycles)
    benchmark.extra_info["cycles_stdev"] = round(report.stdev_cycles, 1)
    print(
        f"\n{report.solution_name}: sw={report.avg_sw_cycles:.0f} "
        f"hw={report.avg_hw_cycles:.0f} total={report.avg_total_cycles:.0f} "
        f"(stdev {report.stdev_cycles:.1f}, {report.num_samples} samples)"
    )


def test_table_iv_hardware_overhead(benchmark, framework):
    """The other axis of the co-design trade-off: accelerator area."""
    report = benchmark(framework.hardware_overhead)
    print()
    print(report.render())
