"""Table VI: the dummy-function binaries on the Gem5 AtomicSimpleCPU model."""

from __future__ import annotations

from repro.core import reporting
from repro.testgen.config import SolutionKind


def test_table_vi_full(benchmark, framework):
    report = benchmark.pedantic(framework.evaluate_table_vi, rounds=1, iterations=1)
    print()
    print(reporting.render_table_vi(report))
    benchmark.extra_info["speedup_dummy"] = round(
        report.speedup(SolutionKind.METHOD1_DUMMY), 2
    )
    benchmark.extra_info["instructions_software"] = report.instructions[
        SolutionKind.SOFTWARE
    ]
    benchmark.extra_info["instructions_dummy"] = report.instructions[
        SolutionKind.METHOD1_DUMMY
    ]


def test_dummy_speedup_consistency(benchmark, framework):
    """The paper's cross-check: the dummy-function speedup estimate should be
    roughly the same in the cycle-accurate framework (Table IV) and on the
    coarse Gem5 atomic model (Table VI)."""

    def both():
        table_iv = framework.evaluate_table_iv(
            kinds=(SolutionKind.SOFTWARE, SolutionKind.METHOD1_DUMMY)
        )
        table_vi = framework.evaluate_table_vi()
        return (
            table_iv.speedups()[SolutionKind.METHOD1_DUMMY],
            table_vi.speedup(SolutionKind.METHOD1_DUMMY),
        )

    rocket_speedup, gem5_speedup = benchmark.pedantic(both, rounds=1, iterations=1)
    print(
        f"\ndummy-function speedup estimate: Rocket {rocket_speedup:.2f}x, "
        f"Gem5 atomic {gem5_speedup:.2f}x (paper: 2.27x vs 2.30x)"
    )
    benchmark.extra_info["rocket_speedup"] = round(rocket_speedup, 2)
    benchmark.extra_info["gem5_speedup"] = round(gem5_speedup, 2)
