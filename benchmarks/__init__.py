"""Benchmark harness regenerating every table of the paper plus ablations."""
