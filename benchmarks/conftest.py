"""Shared configuration for the benchmark harness.

Sample counts default to values that keep a full benchmark run under a couple
of minutes; set ``REPRO_BENCH_SAMPLES`` (e.g. to 8000, the paper's count) for a
full-scale run.
"""

from __future__ import annotations

import os

import pytest

from repro.core.evaluation import EvaluationFramework


def bench_samples(default: int = 150) -> int:
    """Number of operand samples per evaluation (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_SAMPLES", default))


@pytest.fixture(scope="session")
def framework() -> EvaluationFramework:
    """One shared framework instance so every table uses the same vectors."""
    return EvaluationFramework(num_samples=bench_samples(), seed=2018)
