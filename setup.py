"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` keeps working on offline machines that lack the
``wheel`` package required by PEP 660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
