"""Decimal arithmetic under a context: add, subtract, multiply, fma, compare.

The algorithms follow the General Decimal Arithmetic specification (the one
decNumber and Python's :mod:`decimal` implement): compute the exact result on
integers, then round/finalise to the context's precision and exponent range,
raising condition flags on the way.  The multiplication path in particular is
the algorithmic template for the pure-software RISC-V kernel
(:mod:`repro.kernels.software_mul`).
"""

from __future__ import annotations

from repro.decnumber.context import (
    Context,
    ROUND_CEILING,
    ROUND_DOWN,
    ROUND_FLOOR,
    ROUND_HALF_DOWN,
    ROUND_HALF_EVEN,
    ROUND_HALF_UP,
    ROUND_UP,
)
from repro.decnumber.number import (
    DecNumber,
    KIND_FINITE,
    KIND_INFINITY,
    KIND_QNAN,
    KIND_SNAN,
    num_digits,
)


# ---------------------------------------------------------------------------
# Rounding primitives
# ---------------------------------------------------------------------------

def round_coefficient(
    coefficient: int, drop: int, sign: int, rounding: str
) -> tuple:
    """Drop ``drop`` digits from ``coefficient`` applying ``rounding``.

    Returns ``(rounded_coefficient, inexact)``.
    """
    if drop <= 0:
        return coefficient, False
    divisor = 10 ** drop
    quotient, remainder = divmod(coefficient, divisor)
    if remainder == 0:
        return quotient, False
    if rounding == ROUND_DOWN:
        pass
    elif rounding == ROUND_UP:
        quotient += 1
    elif rounding == ROUND_CEILING:
        if sign == 0:
            quotient += 1
    elif rounding == ROUND_FLOOR:
        if sign == 1:
            quotient += 1
    else:
        half = divisor // 2
        if remainder > half:
            quotient += 1
        elif remainder == half:
            if rounding == ROUND_HALF_UP:
                quotient += 1
            elif rounding == ROUND_HALF_DOWN:
                pass
            else:  # ROUND_HALF_EVEN
                quotient += quotient & 1
        # remainder < half: truncate
    return quotient, True


def _overflow_result(sign: int, ctx: Context) -> DecNumber:
    """Result of an overflow per the rounding direction."""
    ctx.flags.overflow = True
    ctx.flags.inexact = True
    ctx.flags.rounded = True
    round_to_inf = (
        ctx.rounding in (ROUND_HALF_EVEN, ROUND_HALF_UP, ROUND_HALF_DOWN, ROUND_UP)
        or (ctx.rounding == ROUND_CEILING and sign == 0)
        or (ctx.rounding == ROUND_FLOOR and sign == 1)
    )
    if round_to_inf:
        return DecNumber.infinity(sign)
    return DecNumber(sign, 10 ** ctx.prec - 1, ctx.etop)


def finalize(sign: int, coefficient: int, exponent: int, ctx: Context) -> DecNumber:
    """Round an exact (sign, coefficient, exponent) result into the context.

    Handles precision rounding, overflow, subnormals/underflow and the
    fold-down clamp, raising the corresponding flags on ``ctx.flags``.

    Rounding is done in a *single* step: the number of digits to drop is the
    maximum required by the precision constraint and by the smallest usable
    exponent (``etiny``), which avoids double rounding on subnormal results.
    The same one-shot-drop algorithm is what the RISC-V kernels implement.
    """
    ndigits = num_digits(coefficient)
    was_subnormal = coefficient != 0 and exponent + ndigits - 1 < ctx.emin

    drop = max(0, ndigits - ctx.prec, ctx.etiny - exponent)
    if drop > 0 and coefficient != 0:
        coefficient, inexact = round_coefficient(
            coefficient, drop, sign, ctx.rounding
        )
        exponent += drop
        ctx.flags.rounded = True
        if inexact:
            ctx.flags.inexact = True
            if was_subnormal:
                ctx.flags.underflow = True
        ndigits = num_digits(coefficient)
        if ndigits > ctx.prec:  # rounding carried out (e.g. 999.. -> 1000..)
            coefficient //= 10
            exponent += 1
            ndigits -= 1

    adjusted = exponent + ndigits - 1

    if coefficient != 0 and adjusted > ctx.emax:
        return _overflow_result(sign, ctx)

    if coefficient != 0 and adjusted < ctx.emin:
        ctx.flags.subnormal = True
        return DecNumber(sign, coefficient, exponent)

    if coefficient == 0:
        # Zeros carry an exponent but it is clamped into the usable range.
        if exponent > ctx.etop:
            exponent = ctx.etop
            ctx.flags.clamped = True
        elif exponent < ctx.etiny:
            exponent = ctx.etiny
            ctx.flags.clamped = True
        return DecNumber(sign, 0, exponent)

    # Fold-down clamp: the value is representable but its preferred exponent
    # exceeds the largest usable exponent, so pad the coefficient with zeros.
    if ctx.clamp and exponent > ctx.etop:
        pad = exponent - ctx.etop
        coefficient *= 10 ** pad
        exponent = ctx.etop
        ctx.flags.clamped = True

    return DecNumber(sign, coefficient, exponent)


# ---------------------------------------------------------------------------
# Special-value handling
# ---------------------------------------------------------------------------

def _propagate_nan(x: DecNumber, y: DecNumber, ctx: Context) -> DecNumber:
    """IEEE NaN propagation: signaling NaNs raise invalid and become quiet."""
    for operand in (x, y):
        if operand.kind == KIND_SNAN:
            ctx.flags.invalid = True
            return DecNumber.qnan(operand.coefficient, operand.sign)
    for operand in (x, y):
        if operand.kind == KIND_QNAN:
            return DecNumber.qnan(operand.coefficient, operand.sign)
    raise AssertionError("no NaN operand")  # pragma: no cover


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------

def multiply(x: DecNumber, y: DecNumber, ctx: Context) -> DecNumber:
    """IEEE 754-2008 decimal multiplication under ``ctx``."""
    if x.is_nan or y.is_nan:
        return _propagate_nan(x, y, ctx)
    sign = x.sign ^ y.sign
    if x.is_infinite or y.is_infinite:
        if x.is_zero or y.is_zero:
            ctx.flags.invalid = True
            return DecNumber.qnan()
        return DecNumber.infinity(sign)
    coefficient = x.coefficient * y.coefficient
    exponent = x.exponent + y.exponent
    return finalize(sign, coefficient, exponent, ctx)


def add(x: DecNumber, y: DecNumber, ctx: Context) -> DecNumber:
    """IEEE 754-2008 decimal addition under ``ctx``.

    Alignment is *bounded* (the decNumber/``_pydecimal`` technique): a naive
    shift to the common minimum exponent can build integers thousands of
    digits long (decimal128 exponents span ~12k decimal places, and
    :func:`fma` feeds exact double-length products through here), yet only
    about ``prec + 2`` digits plus a sticky residue can ever influence the
    rounded result.  When the smaller operand lies entirely below every digit
    that can matter it is replaced by a one-digit sticky proxy just under the
    bound; the rounded result and the raised flags are identical to the exact
    computation.
    """
    if x.is_nan or y.is_nan:
        return _propagate_nan(x, y, ctx)
    if x.is_infinite or y.is_infinite:
        if x.is_infinite and y.is_infinite and x.sign != y.sign:
            ctx.flags.invalid = True
            return DecNumber.qnan()
        sign = x.sign if x.is_infinite else y.sign
        return DecNumber.infinity(sign)

    exponent = min(x.exponent, y.exponent)
    if x.is_zero or y.is_zero:
        if x.is_zero and y.is_zero:
            # Sign of an exact zero sum depends on the rounding direction.
            sign = 1 if ctx.rounding == ROUND_FLOOR and (x.sign or y.sign) else 0
            if x.sign == 1 and y.sign == 1:
                sign = 1
            return finalize(sign, 0, exponent, ctx)
        # One exact zero: the sum is the other operand, padded toward the
        # preferred (minimum) exponent but no further than rounding can see.
        other = y if x.is_zero else x
        exponent = max(exponent, other.exponent - ctx.prec - 1)
        coefficient = other.coefficient * 10 ** (other.exponent - exponent)
        return finalize(other.sign, coefficient, exponent, ctx)

    # Bounded alignment of two nonzero finite operands: shift the larger-
    # exponent operand down onto the smaller's exponent, first pulling the
    # smaller one up to a sticky proxy if it sits entirely below the digits
    # the rounding step can observe.
    if x.exponent >= y.exponent:
        tmp_c, tmp_e, other_c, other_e = x.coefficient, x.exponent, y.coefficient, y.exponent
        tmp_is_x = True
    else:
        tmp_c, tmp_e, other_c, other_e = y.coefficient, y.exponent, x.coefficient, x.exponent
        tmp_is_x = False
    bound = tmp_e + min(-1, num_digits(tmp_c) - ctx.prec - 2)
    if num_digits(other_c) + other_e - 1 < bound:
        other_c, other_e = 1, bound
    tmp_c *= 10 ** (tmp_e - other_e)
    exponent = other_e
    xc, yc = (tmp_c, other_c) if tmp_is_x else (other_c, tmp_c)
    xs = -xc if x.sign else xc
    ys = -yc if y.sign else yc
    total = xs + ys
    if total == 0:
        # Sign of an exact zero sum depends on the rounding direction.
        sign = 1 if ctx.rounding == ROUND_FLOOR and (x.sign or y.sign) else 0
        if x.sign == 1 and y.sign == 1:
            sign = 1
        return finalize(sign, 0, exponent, ctx)
    sign = 1 if total < 0 else 0
    return finalize(sign, abs(total), exponent, ctx)


def subtract(x: DecNumber, y: DecNumber, ctx: Context) -> DecNumber:
    """IEEE 754-2008 decimal subtraction under ``ctx``."""
    if y.is_nan:
        return _propagate_nan(x, y, ctx)
    return add(x, y.copy_negate(), ctx)


def fma(x: DecNumber, y: DecNumber, z: DecNumber, ctx: Context) -> DecNumber:
    """IEEE 754-2008 fused multiply-add: ``x*y + z`` with a single rounding.

    The product is formed exactly (no intermediate rounding) and fed through
    :func:`add`, whose :func:`finalize` applies the one rounding step.  The
    special-value ordering follows the specification (and stdlib
    ``Context.fma``): signaling NaNs in the multiplication raise invalid
    first, ``Inf * 0`` raises invalid *before* ``z`` is examined (even when
    ``z`` is a signaling NaN), and a quiet-NaN product defers to the addition
    step's NaN propagation, so an sNaN ``z`` still signals.
    """
    if x.is_special or y.is_special:
        if x.kind == KIND_SNAN:
            ctx.flags.invalid = True
            return DecNumber.qnan(x.coefficient, x.sign)
        if y.kind == KIND_SNAN:
            ctx.flags.invalid = True
            return DecNumber.qnan(y.coefficient, y.sign)
        if x.kind == KIND_QNAN:
            product = DecNumber.qnan(x.coefficient, x.sign)
        elif y.kind == KIND_QNAN:
            product = DecNumber.qnan(y.coefficient, y.sign)
        elif x.is_zero or y.is_zero:
            # Exactly one of x/y is an infinity here, so this is Inf * 0.
            ctx.flags.invalid = True
            return DecNumber.qnan()
        else:
            product = DecNumber.infinity(x.sign ^ y.sign)
    else:
        product = DecNumber(
            x.sign ^ y.sign,
            x.coefficient * y.coefficient,
            x.exponent + y.exponent,
        )
    return add(product, z, ctx)


def compare(x: DecNumber, y: DecNumber, ctx: Context):
    """Compare two decimals.

    Returns -1, 0 or 1 for ordered operands; returns ``None`` and raises the
    invalid flag when either operand is a NaN (unordered).
    """
    if x.is_nan or y.is_nan:
        if x.kind == KIND_SNAN or y.kind == KIND_SNAN:
            ctx.flags.invalid = True
        return None
    if x.is_infinite or y.is_infinite:
        if x.is_infinite and y.is_infinite:
            if x.sign == y.sign:
                return 0
            return -1 if x.sign else 1
        if x.is_infinite:
            # ±Inf vs finite: the infinity dominates.
            return -1 if x.sign else 1
        # finite vs ±Inf.
        return 1 if y.sign else -1
    xd = x.to_decimal()
    yd = y.to_decimal()
    if xd == yd:
        return 0
    return -1 if xd < yd else 1


def minus(x: DecNumber, ctx: Context) -> DecNumber:
    """Unary minus (rounds like ``0 - x`` per the specification)."""
    if x.is_nan:
        return _propagate_nan(x, x, ctx)
    if x.is_infinite:
        return DecNumber.infinity(1 - x.sign)
    return finalize(1 - x.sign if not x.is_zero else 0, x.coefficient, x.exponent, ctx)


def absolute(x: DecNumber, ctx: Context) -> DecNumber:
    """Absolute value under the context."""
    if x.is_nan:
        return _propagate_nan(x, x, ctx)
    if x.is_infinite:
        return DecNumber.infinity(0)
    return finalize(0, x.coefficient, x.exponent, ctx)
