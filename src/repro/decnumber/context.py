"""Arithmetic contexts: precision, exponent range, rounding mode and flags.

Mirrors the decNumber / General Decimal Arithmetic ``decContext`` structure
closely enough that results can be cross-checked against Python's
:mod:`decimal` module (which implements the same specification).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

# Rounding modes --------------------------------------------------------------
ROUND_HALF_EVEN = "half_even"
ROUND_HALF_UP = "half_up"
ROUND_HALF_DOWN = "half_down"
ROUND_DOWN = "down"
ROUND_UP = "up"
ROUND_CEILING = "ceiling"
ROUND_FLOOR = "floor"

ALL_ROUNDING_MODES = (
    ROUND_HALF_EVEN,
    ROUND_HALF_UP,
    ROUND_HALF_DOWN,
    ROUND_DOWN,
    ROUND_UP,
    ROUND_CEILING,
    ROUND_FLOOR,
)

#: Mapping to the equivalent :mod:`decimal` module rounding constants,
#: used by the verification reference.
PYTHON_ROUNDING = {
    ROUND_HALF_EVEN: "ROUND_HALF_EVEN",
    ROUND_HALF_UP: "ROUND_HALF_UP",
    ROUND_HALF_DOWN: "ROUND_HALF_DOWN",
    ROUND_DOWN: "ROUND_DOWN",
    ROUND_UP: "ROUND_UP",
    ROUND_CEILING: "ROUND_CEILING",
    ROUND_FLOOR: "ROUND_FLOOR",
}


class Flags:
    """IEEE 754 / decNumber condition flags raised during an operation."""

    NAMES = (
        "inexact",
        "rounded",
        "overflow",
        "underflow",
        "subnormal",
        "clamped",
        "invalid",
        "division_by_zero",
    )

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        """Reset every flag to False."""
        for name in self.NAMES:
            setattr(self, name, False)

    def raised(self) -> frozenset:
        """Return the set of flag names currently raised."""
        return frozenset(name for name in self.NAMES if getattr(self, name))

    def copy(self) -> "Flags":
        other = Flags()
        for name in self.NAMES:
            setattr(other, name, getattr(self, name))
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Flags({', '.join(sorted(self.raised())) or 'none'})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Flags):
            return NotImplemented
        return self.raised() == other.raised()

    def __hash__(self) -> int:
        return hash(self.raised())


@dataclass
class Context:
    """Arithmetic context (precision, exponent range, rounding, flags)."""

    prec: int = 16
    emax: int = 384
    emin: int = -383
    rounding: str = ROUND_HALF_EVEN
    clamp: bool = True
    flags: Flags = field(default_factory=Flags)

    def __post_init__(self) -> None:
        if self.prec < 1:
            raise ConfigurationError("precision must be at least 1")
        if self.emin > 0 or self.emax < 0 or self.emin > self.emax:
            raise ConfigurationError(
                f"invalid exponent range: emin={self.emin} emax={self.emax}"
            )
        if self.rounding not in ALL_ROUNDING_MODES:
            raise ConfigurationError(f"unknown rounding mode: {self.rounding!r}")

    @property
    def etiny(self) -> int:
        """Smallest usable exponent (exponent of the smallest subnormal)."""
        return self.emin - self.prec + 1

    @property
    def etop(self) -> int:
        """Largest usable exponent for a full-precision coefficient."""
        return self.emax - self.prec + 1

    def copy(self, **overrides) -> "Context":
        """Return a copy of the context with fresh flags (and any overrides)."""
        params = {
            "prec": self.prec,
            "emax": self.emax,
            "emin": self.emin,
            "rounding": self.rounding,
            "clamp": self.clamp,
        }
        params.update(overrides)
        return Context(**params)

    def to_python_context(self):
        """Build an equivalent :class:`decimal.Context` for cross-checking."""
        import decimal

        return decimal.Context(
            prec=self.prec,
            Emax=self.emax,
            Emin=self.emin,
            rounding=getattr(decimal, PYTHON_ROUNDING[self.rounding]),
            clamp=1 if self.clamp else 0,
            traps=[],
        )


def DECIMAL64_CONTEXT() -> Context:
    """A fresh IEEE 754-2008 decimal64 context (16 digits, emax 384)."""
    return Context(prec=16, emax=384, emin=-383)


def DECIMAL128_CONTEXT() -> Context:
    """A fresh IEEE 754-2008 decimal128 context (34 digits, emax 6144)."""
    return Context(prec=34, emax=6144, emin=-6143)
