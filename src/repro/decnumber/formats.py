"""IEEE 754-2008 decimal interchange formats (DPD encoding).

A single :class:`InterchangeFormat` class parameterises the two formats used
in the paper (decimal64, "double precision", and decimal128, "quad
precision").  Layout (most significant bit first):

========================  =========  ==========
field                     decimal64  decimal128
========================  =========  ==========
sign                      1 bit      1 bit
combination (G)           5 bits     5 bits
exponent continuation     8 bits     12 bits
coefficient continuation  50 bits    110 bits
========================  =========  ==========

The combination field packs the two most significant bits of the biased
exponent together with the most significant coefficient digit, and also
flags infinities (``11110``) and NaNs (``11111``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decnumber import dpd
from repro.decnumber.arith import finalize
from repro.decnumber.bcd import int_to_bcd
from repro.decnumber.context import Context
from repro.decnumber.number import (
    DecNumber,
    KIND_FINITE,
    KIND_INFINITY,
    KIND_QNAN,
    KIND_SNAN,
)
from repro.errors import DecimalError


@dataclass(frozen=True)
class InterchangeFormat:
    """Parameters and pack/unpack logic of a DPD interchange format."""

    name: str
    total_bits: int
    precision: int
    emax: int
    bias: int
    exponent_continuation_bits: int

    # Derived sizes ------------------------------------------------------------
    @property
    def emin(self) -> int:
        return 1 - self.emax

    @property
    def declets(self) -> int:
        """DPD declets in the coefficient continuation (3 digits each)."""
        return (self.precision - 1) // 3

    @property
    def word_bits(self) -> int:
        """Width of one architectural word holding encoded values."""
        return 64

    @property
    def words_per_value(self) -> int:
        """64-bit words one encoded value occupies (1 for decimal64)."""
        return max(1, self.total_bits // self.word_bits)

    @property
    def payload_digits(self) -> int:
        """Maximum NaN-payload digit count (the trailing significand)."""
        return self.precision - 1

    @property
    def max_payload(self) -> int:
        return 10 ** self.payload_digits - 1

    @property
    def product_digits(self) -> int:
        """Digits of a full coefficient product (two max coefficients)."""
        return 2 * self.precision

    @property
    def etiny(self) -> int:
        return self.emin - self.precision + 1

    @property
    def etop(self) -> int:
        return self.emax - self.precision + 1

    @property
    def coefficient_continuation_digits(self) -> int:
        return self.precision - 1

    @property
    def coefficient_continuation_bits(self) -> int:
        return (self.precision - 1) // 3 * 10

    @property
    def max_biased_exponent(self) -> int:
        return 3 * (1 << self.exponent_continuation_bits) - 1

    @property
    def max_coefficient(self) -> int:
        return 10 ** self.precision - 1

    def context(self) -> Context:
        """A fresh arithmetic context matching this format."""
        return Context(prec=self.precision, emax=self.emax, emin=self.emin)

    # Packing -------------------------------------------------------------------
    def encode(self, number: DecNumber, ctx: Context = None) -> int:
        """Pack a :class:`DecNumber` into this format's bit pattern.

        Finite values are first finalised (rounded/clamped) under ``ctx`` (a
        fresh format context when omitted), so any representable DecNumber can
        be encoded; flags raised by that finalisation are visible on ``ctx``.
        """
        sign_bit = number.sign << (self.total_bits - 1)
        g_shift = self.total_bits - 6
        ec_shift = self.coefficient_continuation_bits
        cc_digits = self.coefficient_continuation_digits

        if number.kind == KIND_INFINITY:
            return sign_bit | (0b11110 << g_shift)
        if number.kind in (KIND_QNAN, KIND_SNAN):
            payload = number.coefficient
            if payload > 10 ** cc_digits - 1:
                raise DecimalError(
                    f"NaN payload {payload} too wide for {self.name}"
                )
            word = sign_bit | (0b11111 << g_shift)
            if number.kind == KIND_SNAN:
                word |= 1 << (g_shift - 1)  # MSB of the exponent continuation
            return word | dpd.encode_coefficient(payload, cc_digits)

        if ctx is None:
            ctx = self.context()
        finite = finalize(number.sign, number.coefficient, number.exponent, ctx)
        if not finite.is_finite:
            # Overflowed to infinity during finalisation.
            return self.encode(finite)
        coefficient = finite.coefficient
        exponent = finite.exponent
        biased = exponent + self.bias
        if not 0 <= biased <= self.max_biased_exponent:
            raise DecimalError(
                f"exponent {exponent} out of range for {self.name}"
            )
        msd = coefficient // 10 ** cc_digits
        rest = coefficient % 10 ** cc_digits
        e_hi = biased >> self.exponent_continuation_bits
        e_lo = biased & ((1 << self.exponent_continuation_bits) - 1)
        if msd <= 7:
            combination = (e_hi << 3) | msd
        else:
            combination = 0b11000 | (e_hi << 1) | (msd - 8)
        return (
            (finite.sign << (self.total_bits - 1))
            | (combination << g_shift)
            | (e_lo << ec_shift)
            | dpd.encode_coefficient(rest, cc_digits)
        )

    # Unpacking -----------------------------------------------------------------
    def decode(self, word: int) -> DecNumber:
        """Unpack a bit pattern into a :class:`DecNumber`."""
        if not 0 <= word < (1 << self.total_bits):
            raise DecimalError(f"bit pattern out of range for {self.name}")
        sign = (word >> (self.total_bits - 1)) & 1
        g_shift = self.total_bits - 6
        combination = (word >> g_shift) & 0x1F
        ec_shift = self.coefficient_continuation_bits
        cc_mask = (1 << self.coefficient_continuation_bits) - 1
        cc_digits = self.coefficient_continuation_digits

        if combination == 0b11110:
            return DecNumber.infinity(sign)
        if combination == 0b11111:
            signaling = (word >> (g_shift - 1)) & 1
            payload = dpd.decode_coefficient(word & cc_mask, cc_digits)
            if signaling:
                return DecNumber.snan(payload, sign)
            return DecNumber.qnan(payload, sign)

        if combination >> 3 != 0b11:
            e_hi = combination >> 3
            msd = combination & 0x7
        else:
            e_hi = (combination >> 1) & 0x3
            msd = 8 + (combination & 0x1)
        e_lo = (word >> ec_shift) & ((1 << self.exponent_continuation_bits) - 1)
        biased = (e_hi << self.exponent_continuation_bits) | e_lo
        coefficient = msd * 10 ** cc_digits + dpd.decode_coefficient(
            word & cc_mask, cc_digits
        )
        return DecNumber(sign, coefficient, biased - self.bias, KIND_FINITE)

    # Field helpers used by the kernels / accelerator ----------------------------
    def components(self, word: int) -> tuple:
        """Return ``(sign, biased_exponent, coefficient)`` of a finite value.

        Raises :class:`DecimalError` for specials (callers check those first).
        """
        number = self.decode(word)
        if not number.is_finite:
            raise DecimalError("components() is only defined for finite values")
        return number.sign, number.exponent + self.bias, number.coefficient

    def coefficient_bcd(self, word: int) -> int:
        """Packed-BCD coefficient (``precision`` nibbles) of a finite value."""
        _sign, _biased, coefficient = self.components(word)
        return int_to_bcd(coefficient, self.precision)

    def is_special(self, word: int) -> bool:
        """True when the bit pattern encodes an infinity or NaN."""
        combination = (word >> (self.total_bits - 6)) & 0x1F
        return combination in (0b11110, 0b11111)


DECIMAL64 = InterchangeFormat(
    name="decimal64",
    total_bits=64,
    precision=16,
    emax=384,
    bias=398,
    exponent_continuation_bits=8,
)

DECIMAL128 = InterchangeFormat(
    name="decimal128",
    total_bits=128,
    precision=34,
    emax=6144,
    bias=6176,
    exponent_continuation_bits=12,
)

#: ``FormatSpec`` is the name the rest of the stack uses for the axis; the
#: class predates the registry under its interchange-format name.
FormatSpec = InterchangeFormat

#: Registry of the basic decimal interchange formats, keyed by canonical name.
FORMATS = {
    DECIMAL64.name: DECIMAL64,
    DECIMAL128.name: DECIMAL128,
}

#: Accepted aliases (the paper's "double"/"quad" precision terminology).
FORMAT_ALIASES = {
    "double": DECIMAL64.name,
    "quad": DECIMAL128.name,
}

#: Canonical format name -> the paper's precision word (testgen configs).
PRECISION_BY_FORMAT = {
    DECIMAL64.name: "double",
    DECIMAL128.name: "quad",
}


def format_names() -> tuple:
    """Canonical names of the registered formats, in definition order."""
    return tuple(FORMATS)


def resolve_format_name(name) -> str:
    """Canonical format name for ``name`` (accepts aliases and specs)."""
    if isinstance(name, InterchangeFormat):
        return name.name
    name = str(name)
    if name in FORMATS:
        return name
    if name in FORMAT_ALIASES:
        return FORMAT_ALIASES[name]
    raise DecimalError(
        f"unknown decimal format {name!r} "
        f"(choose from {', '.join(FORMATS)})"
    )


def get_format(name) -> InterchangeFormat:
    """Look up a format spec by canonical name, alias, or spec instance."""
    return FORMATS[resolve_format_name(name)]
