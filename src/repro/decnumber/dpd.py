"""Densely Packed Decimal (DPD) declet codec.

DPD (Cowlishaw 2002, adopted by IEEE 754-2008) packs three decimal digits
into 10 bits.  Small digits (0-7) keep their three low BCD bits in place;
large digits (8-9) keep only their lowest bit and the freed positions are
reused, with indicator bits selecting the case.  The decode table below is the
standard one; encoding is its canonical inverse.

Bit naming follows the paper/standard: the declet bits are
``p q r s t u v w x y`` from most to least significant, and the three digits
are ``d2 d1 d0`` (most significant digit first).
"""

from __future__ import annotations

from repro.errors import DecimalError


def _decode_declet_bits(declet: int) -> tuple:
    """Decode one 10-bit declet into three digits using the standard rules."""
    p = (declet >> 9) & 1
    q = (declet >> 8) & 1
    r = (declet >> 7) & 1
    s = (declet >> 6) & 1
    t = (declet >> 5) & 1
    u = (declet >> 4) & 1
    v = (declet >> 3) & 1
    w = (declet >> 2) & 1
    x = (declet >> 1) & 1
    y = declet & 1

    if v == 0:
        return (4 * p + 2 * q + r, 4 * s + 2 * t + u, 4 * w + 2 * x + y)
    wx = (w << 1) | x
    if wx == 0b00:
        return (4 * p + 2 * q + r, 4 * s + 2 * t + u, 8 + y)
    if wx == 0b01:
        return (4 * p + 2 * q + r, 8 + u, 4 * s + 2 * t + y)
    if wx == 0b10:
        return (8 + r, 4 * s + 2 * t + u, 4 * p + 2 * q + y)
    # wx == 0b11: two or three large digits, (s, t) selects the layout.
    st = (s << 1) | t
    if st == 0b00:
        return (8 + r, 8 + u, 4 * p + 2 * q + y)
    if st == 0b01:
        return (8 + r, 4 * p + 2 * q + u, 8 + y)
    if st == 0b10:
        return (4 * p + 2 * q + r, 8 + u, 8 + y)
    return (8 + r, 8 + u, 8 + y)


def _encode_declet_digits(d2: int, d1: int, d0: int) -> int:
    """Encode three digits into the canonical 10-bit declet."""
    a3, a2, a1, a0 = (d2 >> 3) & 1, (d2 >> 2) & 1, (d2 >> 1) & 1, d2 & 1
    b3, b2, b1, b0 = (d1 >> 3) & 1, (d1 >> 2) & 1, (d1 >> 1) & 1, d1 & 1
    c3, c2, c1, c0 = (d0 >> 3) & 1, (d0 >> 2) & 1, (d0 >> 1) & 1, d0 & 1

    def pack(p, q, r, s, t, u, v, w, x, y):
        return (
            p << 9 | q << 8 | r << 7 | s << 6 | t << 5
            | u << 4 | v << 3 | w << 2 | x << 1 | y
        )

    large2, large1, large0 = a3, b3, c3
    if not large2 and not large1 and not large0:
        return pack(a2, a1, a0, b2, b1, b0, 0, c2, c1, c0)
    if not large2 and not large1 and large0:
        return pack(a2, a1, a0, b2, b1, b0, 1, 0, 0, c0)
    if not large2 and large1 and not large0:
        return pack(a2, a1, a0, c2, c1, b0, 1, 0, 1, c0)
    if large2 and not large1 and not large0:
        return pack(c2, c1, a0, b2, b1, b0, 1, 1, 0, c0)
    if large2 and large1 and not large0:
        return pack(c2, c1, a0, 0, 0, b0, 1, 1, 1, c0)
    if large2 and not large1 and large0:
        return pack(b2, b1, a0, 0, 1, b0, 1, 1, 1, c0)
    if not large2 and large1 and large0:
        return pack(a2, a1, a0, 1, 0, b0, 1, 1, 1, c0)
    # all large
    return pack(0, 0, a0, 1, 1, b0, 1, 1, 1, c0)


#: declet value (0..1023) -> (d2, d1, d0)
DECLET_TO_DIGITS = tuple(_decode_declet_bits(i) for i in range(1024))

#: 3-digit value (0..999) -> canonical declet
DIGITS_TO_DECLET = tuple(
    _encode_declet_digits(value // 100, (value // 10) % 10, value % 10)
    for value in range(1000)
)


def decode_declet(declet: int) -> int:
    """Decode a 10-bit declet into its 3-digit value (0-999).

    All 1024 bit patterns decode (the 24 non-canonical patterns alias
    canonical values, as in the standard).
    """
    if not 0 <= declet <= 0x3FF:
        raise DecimalError(f"declet out of range: {declet}")
    d2, d1, d0 = DECLET_TO_DIGITS[declet]
    return d2 * 100 + d1 * 10 + d0


def encode_declet(value: int) -> int:
    """Encode a 3-digit value (0-999) into its canonical declet."""
    if not 0 <= value <= 999:
        raise DecimalError(f"declet value out of range: {value}")
    return DIGITS_TO_DECLET[value]


def encode_coefficient(coefficient: int, num_digits: int) -> int:
    """Pack the low ``num_digits`` digits of ``coefficient`` into DPD declets.

    ``num_digits`` must be a multiple of 3 (the interchange formats encode the
    most significant digit separately in the combination field).  Returns an
    integer with ``num_digits // 3 * 10`` significant bits, most significant
    declet first.
    """
    if num_digits % 3:
        raise DecimalError("DPD coefficient fields hold a multiple of 3 digits")
    if coefficient < 0:
        raise DecimalError("coefficient must be non-negative")
    declet_count = num_digits // 3
    result = 0
    remaining = coefficient
    declets = []
    for _ in range(declet_count):
        declets.append(encode_declet(remaining % 1000))
        remaining //= 1000
    if remaining:
        raise DecimalError(
            f"coefficient {coefficient} does not fit in {num_digits} digits"
        )
    for declet in reversed(declets):
        result = (result << 10) | declet
    return result


def decode_coefficient(field: int, num_digits: int) -> int:
    """Unpack a DPD coefficient continuation field into an integer."""
    if num_digits % 3:
        raise DecimalError("DPD coefficient fields hold a multiple of 3 digits")
    declet_count = num_digits // 3
    value = 0
    for i in range(declet_count):
        shift = 10 * (declet_count - 1 - i)
        value = value * 1000 + decode_declet((field >> shift) & 0x3FF)
    return value


def declet_table_bcd() -> tuple:
    """Return a 1024-entry table mapping declets to 12-bit packed BCD.

    This is the lookup table the Method-1 software part uses for DPD -> BCD
    conversion (the paper notes the conversion "can be easily converted" in
    software); the kernel generator embeds it in the test program's data
    section.
    """
    table = []
    for declet in range(1024):
        d2, d1, d0 = DECLET_TO_DIGITS[declet]
        table.append((d2 << 8) | (d1 << 4) | d0)
    return tuple(table)


def bcd_to_declet_table() -> tuple:
    """Return a 4096-entry table mapping 12-bit packed BCD to declets.

    Entries whose nibbles are not valid BCD digits hold 0; the kernels only
    index it with valid BCD.
    """
    table = [0] * 4096
    for value in range(1000):
        bcd = ((value // 100) << 8) | (((value // 10) % 10) << 4) | (value % 10)
        table[bcd] = DIGITS_TO_DECLET[value]
    return tuple(table)
