"""decimal128 ("quad precision" in the paper) convenience wrappers."""

from __future__ import annotations

from repro.decnumber.formats import DECIMAL128
from repro.decnumber.number import DecNumber

#: Format parameters re-exported for readability at call sites.
PRECISION = DECIMAL128.precision
EMAX = DECIMAL128.emax
EMIN = DECIMAL128.emin
BIAS = DECIMAL128.bias
ETINY = DECIMAL128.etiny
ETOP = DECIMAL128.etop
TOTAL_BITS = DECIMAL128.total_bits
MAX_COEFFICIENT = DECIMAL128.max_coefficient

FORMAT = DECIMAL128


def encode(number: DecNumber, ctx=None) -> int:
    """Pack a :class:`DecNumber` into a 128-bit decimal128 word."""
    return DECIMAL128.encode(number, ctx)


def decode(word: int) -> DecNumber:
    """Unpack a 128-bit decimal128 word."""
    return DECIMAL128.decode(word)


def components(word: int) -> tuple:
    """``(sign, biased_exponent, coefficient)`` of a finite decimal128 word."""
    return DECIMAL128.components(word)


def coefficient_bcd(word: int) -> int:
    """Packed-BCD (34 nibbles) coefficient of a finite decimal128 word."""
    return DECIMAL128.coefficient_bcd(word)


def is_special(word: int) -> bool:
    """True when the word encodes an infinity or NaN."""
    return DECIMAL128.is_special(word)


def context():
    """A fresh decimal128 arithmetic context."""
    return DECIMAL128.context()


def multiply(x: DecNumber, y: DecNumber, ctx=None) -> DecNumber:
    """IEEE 754-2008 decimal128 multiplication (fresh context by default)."""
    from repro.decnumber.arith import multiply as _multiply

    return _multiply(x, y, ctx if ctx is not None else context())


def multiply_encoded(x_word: int, y_word: int) -> int:
    """Multiply two encoded decimal128 words; returns the encoded product."""
    ctx = context()
    return DECIMAL128.encode(multiply(decode(x_word), decode(y_word), ctx), ctx)
