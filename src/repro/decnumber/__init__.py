"""Pure-Python IEEE 754-2008 decimal floating-point library.

This subpackage plays the role of IBM's decNumber C library in the paper: it
is both the *golden reference* used for functional verification and the
algorithmic template for the pure-software baseline kernel that is lowered to
RISC-V assembly in :mod:`repro.kernels.software_mul`.

Public surface:

* :class:`~repro.decnumber.context.Context` / rounding-mode constants / flags
* :class:`~repro.decnumber.number.DecNumber` — sign / coefficient / exponent
  triple plus special values
* :mod:`~repro.decnumber.arith` — ``add``, ``subtract``, ``multiply``,
  ``fma``, ``compare`` under a context
* :mod:`~repro.decnumber.operations` — the :class:`Operation` registry
  (mul/add/sub/fma) the evaluation stack dispatches on
* :mod:`~repro.decnumber.dpd` — densely-packed-decimal declet codec
* :mod:`~repro.decnumber.decimal64` / :mod:`~repro.decnumber.decimal128` —
  interchange-format pack/unpack
"""

from repro.decnumber.context import (
    Context,
    Flags,
    ROUND_CEILING,
    ROUND_DOWN,
    ROUND_FLOOR,
    ROUND_HALF_DOWN,
    ROUND_HALF_EVEN,
    ROUND_HALF_UP,
    ROUND_UP,
    DECIMAL64_CONTEXT,
    DECIMAL128_CONTEXT,
)
from repro.decnumber.number import DecNumber
from repro.decnumber.arith import add, compare, fma, multiply, subtract
from repro.decnumber.operations import (
    OPERATIONS,
    Operation,
    get_operation,
    operation_names,
    resolve_operation_name,
)
from repro.decnumber.formats import (
    DECIMAL64,
    DECIMAL128,
    FORMATS,
    FormatSpec,
    format_names,
    get_format,
    resolve_format_name,
)
from repro.decnumber import dpd, bcd, decimal64, decimal128

__all__ = [
    "DECIMAL64",
    "DECIMAL128",
    "FORMATS",
    "FormatSpec",
    "format_names",
    "get_format",
    "resolve_format_name",
    "Context",
    "Flags",
    "ROUND_CEILING",
    "ROUND_DOWN",
    "ROUND_FLOOR",
    "ROUND_HALF_DOWN",
    "ROUND_HALF_EVEN",
    "ROUND_HALF_UP",
    "ROUND_UP",
    "DECIMAL64_CONTEXT",
    "DECIMAL128_CONTEXT",
    "DecNumber",
    "OPERATIONS",
    "Operation",
    "get_operation",
    "operation_names",
    "resolve_operation_name",
    "add",
    "subtract",
    "multiply",
    "fma",
    "compare",
    "dpd",
    "bcd",
    "decimal64",
    "decimal128",
]
