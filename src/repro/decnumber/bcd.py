"""Binary-coded decimal helpers.

The Method-1 datapath (paper Section II) works on BCD-8421 words: each decimal
digit occupies one nibble.  These helpers convert between Python integers,
digit tuples and packed-BCD integers and are shared by the decimal library,
the accelerator model and the verification checker.
"""

from __future__ import annotations

from repro.errors import DecimalError


def int_to_bcd(value: int, digits: int = None) -> int:
    """Pack a non-negative integer into BCD (one nibble per digit).

    ``digits`` pads/limits the width; omitted means "just enough nibbles".
    """
    if value < 0:
        raise DecimalError("BCD encoding requires a non-negative value")
    result = 0
    shift = 0
    remaining = value
    count = 0
    while remaining or count == 0:
        result |= (remaining % 10) << shift
        remaining //= 10
        shift += 4
        count += 1
    if digits is not None:
        if count > digits:
            raise DecimalError(f"value {value} does not fit in {digits} BCD digits")
    return result


def bcd_to_int(bcd: int) -> int:
    """Unpack a packed-BCD integer into its numeric value.

    Raises :class:`DecimalError` if any nibble is not a decimal digit.
    """
    if bcd < 0:
        raise DecimalError("packed BCD must be non-negative")
    value = 0
    scale = 1
    remaining = bcd
    while remaining:
        nibble = remaining & 0xF
        if nibble > 9:
            raise DecimalError(f"invalid BCD nibble: {nibble:#x}")
        value += nibble * scale
        scale *= 10
        remaining >>= 4
    return value


def is_valid_bcd(bcd: int) -> bool:
    """Return True when every nibble of ``bcd`` is a decimal digit."""
    if bcd < 0:
        return False
    while bcd:
        if bcd & 0xF > 9:
            return False
        bcd >>= 4
    return True


def bcd_digits(bcd: int, count: int) -> tuple:
    """Return ``count`` digits of a packed BCD value, least significant first."""
    return tuple((bcd >> (4 * i)) & 0xF for i in range(count))


def digits_to_bcd(digits) -> int:
    """Pack an iterable of digits (least significant first) into BCD."""
    result = 0
    for position, digit in enumerate(digits):
        if not 0 <= digit <= 9:
            raise DecimalError(f"invalid decimal digit: {digit}")
        result |= digit << (4 * position)
    return result


def bcd_digit_count(bcd: int) -> int:
    """Number of significant digits in a packed BCD value (>= 1)."""
    count = 0
    while bcd:
        count += 1
        bcd >>= 4
    return max(count, 1)


def bcd_shift_left(bcd: int, digits: int, width_digits: int = None) -> int:
    """Decimal left shift (multiply by 10**digits) of a packed BCD value."""
    shifted = bcd << (4 * digits)
    if width_digits is not None:
        shifted &= (1 << (4 * width_digits)) - 1
    return shifted


def bcd_shift_right(bcd: int, digits: int) -> int:
    """Decimal right shift (integer divide by 10**digits) of packed BCD."""
    return bcd >> (4 * digits)


def bcd_add(a: int, b: int) -> int:
    """Reference BCD addition (value semantics); used to check the hardware model."""
    return int_to_bcd(bcd_to_int(a) + bcd_to_int(b))
