"""decimal64 ("double precision" in the paper) convenience wrappers."""

from __future__ import annotations

from repro.decnumber.formats import DECIMAL64
from repro.decnumber.number import DecNumber

#: Format parameters re-exported for readability at call sites.
PRECISION = DECIMAL64.precision
EMAX = DECIMAL64.emax
EMIN = DECIMAL64.emin
BIAS = DECIMAL64.bias
ETINY = DECIMAL64.etiny
ETOP = DECIMAL64.etop
TOTAL_BITS = DECIMAL64.total_bits
MAX_COEFFICIENT = DECIMAL64.max_coefficient

FORMAT = DECIMAL64


def encode(number: DecNumber, ctx=None) -> int:
    """Pack a :class:`DecNumber` into a 64-bit decimal64 word."""
    return DECIMAL64.encode(number, ctx)


def decode(word: int) -> DecNumber:
    """Unpack a 64-bit decimal64 word."""
    return DECIMAL64.decode(word)


def components(word: int) -> tuple:
    """``(sign, biased_exponent, coefficient)`` of a finite decimal64 word."""
    return DECIMAL64.components(word)


def coefficient_bcd(word: int) -> int:
    """Packed-BCD (16 nibbles) coefficient of a finite decimal64 word."""
    return DECIMAL64.coefficient_bcd(word)


def is_special(word: int) -> bool:
    """True when the word encodes an infinity or NaN."""
    return DECIMAL64.is_special(word)


def context():
    """A fresh decimal64 arithmetic context."""
    return DECIMAL64.context()


def multiply(x: DecNumber, y: DecNumber, ctx=None) -> DecNumber:
    """IEEE 754-2008 decimal64 multiplication (fresh context by default)."""
    from repro.decnumber.arith import multiply as _multiply

    return _multiply(x, y, ctx if ctx is not None else context())


def add(x: DecNumber, y: DecNumber, ctx=None) -> DecNumber:
    """IEEE 754-2008 decimal64 addition (fresh context by default)."""
    from repro.decnumber.arith import add as _add

    return _add(x, y, ctx if ctx is not None else context())


def subtract(x: DecNumber, y: DecNumber, ctx=None) -> DecNumber:
    """IEEE 754-2008 decimal64 subtraction (fresh context by default)."""
    from repro.decnumber.arith import subtract as _subtract

    return _subtract(x, y, ctx if ctx is not None else context())


def fma(x: DecNumber, y: DecNumber, z: DecNumber, ctx=None) -> DecNumber:
    """IEEE 754-2008 decimal64 fused multiply-add (single rounding)."""
    from repro.decnumber.arith import fma as _fma

    return _fma(x, y, z, ctx if ctx is not None else context())


def multiply_encoded(x_word: int, y_word: int) -> int:
    """Multiply two encoded decimal64 words; returns the encoded product."""
    ctx = context()
    return DECIMAL64.encode(multiply(decode(x_word), decode(y_word), ctx), ctx)


def add_encoded(x_word: int, y_word: int) -> int:
    """Add two encoded decimal64 words; returns the encoded sum."""
    ctx = context()
    return DECIMAL64.encode(add(decode(x_word), decode(y_word), ctx), ctx)


def subtract_encoded(x_word: int, y_word: int) -> int:
    """Subtract two encoded decimal64 words; returns the encoded difference."""
    ctx = context()
    return DECIMAL64.encode(subtract(decode(x_word), decode(y_word), ctx), ctx)


def fma_encoded(x_word: int, y_word: int, z_word: int) -> int:
    """Fused multiply-add on encoded decimal64 words (one rounding)."""
    ctx = context()
    return DECIMAL64.encode(
        fma(decode(x_word), decode(y_word), decode(z_word), ctx), ctx
    )
