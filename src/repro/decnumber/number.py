"""The :class:`DecNumber` value type: sign / coefficient / exponent + specials.

A finite decimal floating-point number is the triple ``(-1)**sign *
coefficient * 10**exponent`` with a non-negative integer coefficient; special
values are signed infinities and (quiet/signaling) NaNs carrying a payload,
exactly as in IEEE 754-2008 and the decNumber library.
"""

from __future__ import annotations

import re

from repro.errors import DecimalError

KIND_FINITE = "finite"
KIND_INFINITY = "infinity"
KIND_QNAN = "qnan"
KIND_SNAN = "snan"

_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<sign>[-+])?
        (?:
            (?P<int>\d+)(?:\.(?P<frac>\d*))?
            |\.(?P<onlyfrac>\d+)
        )
        (?:[eE](?P<exp>[-+]?\d+))?
        \s*$""",
    re.VERBOSE,
)
_SPECIAL_RE = re.compile(
    r"""^\s*
        (?P<sign>[-+])?
        (?:
            (?P<inf>inf(?:inity)?)
            |(?P<snan>snan)(?P<spayload>\d*)
            |(?P<nan>nan)(?P<payload>\d*)
        )
        \s*$""",
    re.VERBOSE | re.IGNORECASE,
)


def num_digits(value: int) -> int:
    """Number of decimal digits in a non-negative integer (0 has one digit)."""
    if value == 0:
        return 1
    return len(str(value))


class DecNumber:
    """An IEEE 754-2008 decimal value (finite, infinite, or NaN)."""

    __slots__ = ("sign", "coefficient", "exponent", "kind")

    def __init__(
        self,
        sign: int = 0,
        coefficient: int = 0,
        exponent: int = 0,
        kind: str = KIND_FINITE,
    ) -> None:
        if sign not in (0, 1):
            raise DecimalError(f"sign must be 0 or 1, got {sign!r}")
        if coefficient < 0:
            raise DecimalError("coefficient must be non-negative")
        if kind not in (KIND_FINITE, KIND_INFINITY, KIND_QNAN, KIND_SNAN):
            raise DecimalError(f"unknown kind: {kind!r}")
        self.sign = sign
        self.coefficient = coefficient
        self.exponent = exponent
        self.kind = kind

    # Constructors ------------------------------------------------------------
    @classmethod
    def from_int(cls, value: int) -> "DecNumber":
        """Exact conversion from a Python integer."""
        sign = 1 if value < 0 else 0
        return cls(sign, abs(value), 0)

    @classmethod
    def infinity(cls, sign: int = 0) -> "DecNumber":
        return cls(sign, 0, 0, KIND_INFINITY)

    @classmethod
    def qnan(cls, payload: int = 0, sign: int = 0) -> "DecNumber":
        return cls(sign, payload, 0, KIND_QNAN)

    @classmethod
    def snan(cls, payload: int = 0, sign: int = 0) -> "DecNumber":
        return cls(sign, payload, 0, KIND_SNAN)

    @classmethod
    def zero(cls, sign: int = 0, exponent: int = 0) -> "DecNumber":
        return cls(sign, 0, exponent)

    @classmethod
    def from_string(cls, text: str) -> "DecNumber":
        """Parse a decimal string ("123.45", "-1E+3", "Infinity", "NaN123")."""
        match = _SPECIAL_RE.match(text)
        if match:
            sign = 1 if match.group("sign") == "-" else 0
            if match.group("inf"):
                return cls.infinity(sign)
            if match.group("snan") is not None:
                payload = int(match.group("spayload") or 0)
                return cls.snan(payload, sign)
            payload = int(match.group("payload") or 0)
            return cls.qnan(payload, sign)
        match = _NUMBER_RE.match(text)
        if not match:
            raise DecimalError(f"cannot parse decimal string: {text!r}")
        sign = 1 if match.group("sign") == "-" else 0
        int_part = match.group("int") or ""
        frac_part = match.group("frac")
        if match.group("onlyfrac") is not None:
            int_part = ""
            frac_part = match.group("onlyfrac")
        frac_part = frac_part or ""
        digits = (int_part + frac_part) or "0"
        exponent = int(match.group("exp") or 0) - len(frac_part)
        return cls(sign, int(digits), exponent)

    @classmethod
    def from_decimal(cls, value) -> "DecNumber":
        """Convert from :class:`decimal.Decimal` (used by the golden reference)."""
        sign, digits, exponent = value.as_tuple()
        if exponent == "F":
            return cls.infinity(sign)
        if exponent in ("n", "N"):
            payload = int("".join(map(str, digits)) or 0)
            return cls.snan(payload, sign) if exponent == "N" else cls.qnan(payload, sign)
        coefficient = int("".join(map(str, digits)) or 0)
        return cls(sign, coefficient, exponent)

    # Predicates ---------------------------------------------------------------
    @property
    def is_finite(self) -> bool:
        return self.kind == KIND_FINITE

    @property
    def is_infinite(self) -> bool:
        return self.kind == KIND_INFINITY

    @property
    def is_nan(self) -> bool:
        return self.kind in (KIND_QNAN, KIND_SNAN)

    @property
    def is_snan(self) -> bool:
        return self.kind == KIND_SNAN

    @property
    def is_special(self) -> bool:
        return self.kind != KIND_FINITE

    @property
    def is_zero(self) -> bool:
        return self.kind == KIND_FINITE and self.coefficient == 0

    @property
    def digits(self) -> int:
        """Number of digits in the coefficient (1 for zero)."""
        return num_digits(self.coefficient)

    @property
    def adjusted_exponent(self) -> int:
        """Exponent of the most significant digit."""
        return self.exponent + self.digits - 1

    # Conversions ---------------------------------------------------------------
    def to_decimal(self):
        """Convert to :class:`decimal.Decimal` (exact for finite values)."""
        import decimal

        if self.kind == KIND_FINITE:
            digits = tuple(int(ch) for ch in str(self.coefficient))
            return decimal.Decimal((self.sign, digits, self.exponent))
        if self.kind == KIND_INFINITY:
            return decimal.Decimal("-Infinity" if self.sign else "Infinity")
        payload_digits = tuple(int(ch) for ch in str(self.coefficient)) if self.coefficient else ()
        marker = "N" if self.kind == KIND_SNAN else "n"
        return decimal.Decimal((self.sign, payload_digits, marker))

    def to_sci_string(self) -> str:
        """Scientific string in the style of decNumber's to-sci-string."""
        if self.kind == KIND_INFINITY:
            return "-Infinity" if self.sign else "Infinity"
        if self.kind in (KIND_QNAN, KIND_SNAN):
            prefix = "-" if self.sign else ""
            name = "sNaN" if self.kind == KIND_SNAN else "NaN"
            payload = str(self.coefficient) if self.coefficient else ""
            return f"{prefix}{name}{payload}"
        return str(self.to_decimal())

    def copy_negate(self) -> "DecNumber":
        """Return the value with the sign flipped (no rounding)."""
        return DecNumber(1 - self.sign, self.coefficient, self.exponent, self.kind)

    def copy_abs(self) -> "DecNumber":
        """Return the value with a positive sign (no rounding)."""
        return DecNumber(0, self.coefficient, self.exponent, self.kind)

    # Comparison / hashing -------------------------------------------------------
    def __eq__(self, other) -> bool:
        """Structural equality (same member values, not numeric equality)."""
        if not isinstance(other, DecNumber):
            return NotImplemented
        return (
            self.sign == other.sign
            and self.coefficient == other.coefficient
            and self.exponent == other.exponent
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.sign, self.coefficient, self.exponent, self.kind))

    def numerically_equal(self, other: "DecNumber") -> bool:
        """Numeric equality: 1.0 == 1E+0, NaNs compare unequal."""
        if self.is_nan or other.is_nan:
            return False
        if self.is_infinite or other.is_infinite:
            return (
                self.is_infinite and other.is_infinite and self.sign == other.sign
            )
        return self.to_decimal() == other.to_decimal()

    def __repr__(self) -> str:
        if self.kind == KIND_FINITE:
            return (
                f"DecNumber(sign={self.sign}, coefficient={self.coefficient}, "
                f"exponent={self.exponent})"
            )
        return f"DecNumber({self.to_sci_string()!r})"

    def __str__(self) -> str:
        return self.to_sci_string()
