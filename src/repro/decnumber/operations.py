"""The Operation axis: multiply / add / subtract / fma as registry entries.

The paper evaluates decimal64 *multiplication* only, but every layer of the
repro stack (kernels, testgen, verification, campaign engine) is shaped like
a pipeline over an abstract arithmetic operation.  This module lifts that
implicit "operation = multiply" assumption into a first-class axis, exactly
as :mod:`repro.decnumber.formats` lifted "format = decimal64" into
:class:`~repro.decnumber.formats.FormatSpec`: a small frozen descriptor, a
registry keyed by canonical name, an alias table for the CLI spellings, and
resolver helpers with did-you-mean suggestions.

Canonical names match the :mod:`repro.decnumber.arith` function names
(``multiply``/``add``/``subtract``/``fma``) so :meth:`Operation.compute`
dispatches by name, and match the stdlib :class:`decimal.Context` method
names so the dual-oracle checker can do the same.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass

from repro.errors import DecimalError


@dataclass(frozen=True)
class Operation:
    """One decimal arithmetic operation the stack can evaluate end to end.

    ``name``
        Canonical registry key; also the :mod:`repro.decnumber.arith` and
        :class:`decimal.Context` method name.
    ``mnemonic``
        Short CLI spelling (``--op mul,add,fma``) and kernel-label infix
        (``dec64_add_sw``).
    ``symbol``
        Infix symbol used when rendering an operand pair (``x * y``); the
        ternary fma renders functionally via :meth:`render`.
    ``arity``
        Operand count (2 for mul/add/sub, 3 for fma).
    """

    name: str
    mnemonic: str
    symbol: str
    arity: int
    description: str

    def compute(self, operands, ctx):
        """Apply this operation to ``operands`` under ``ctx``.

        Dispatches to the same-named :mod:`repro.decnumber.arith` function;
        ``operands`` must match :attr:`arity`.
        """
        from repro.decnumber import arith

        if len(operands) != self.arity:
            raise DecimalError(
                f"operation {self.name!r} takes {self.arity} operands, "
                f"got {len(operands)}"
            )
        return getattr(arith, self.name)(*operands, ctx)

    def render(self, *operands) -> str:
        """Human-readable application, e.g. ``a * b`` or ``fma(a, b, c)``."""
        if self.arity == 3:
            return f"{self.name}({', '.join(str(op) for op in operands)})"
        return f" {self.symbol} ".join(str(op) for op in operands)

    def describe(self) -> dict:
        """JSON-ready metadata (used by docs tooling and CLI listings)."""
        return {
            "name": self.name,
            "mnemonic": self.mnemonic,
            "symbol": self.symbol,
            "arity": self.arity,
            "description": self.description,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


MULTIPLY = Operation(
    name="multiply",
    mnemonic="mul",
    symbol="*",
    arity=2,
    description="decimal multiplication (the operation the paper evaluates)",
)

ADD = Operation(
    name="add",
    mnemonic="add",
    symbol="+",
    arity=2,
    description="decimal addition (alignment, effective-op, cancellation)",
)

SUBTRACT = Operation(
    name="subtract",
    mnemonic="sub",
    symbol="-",
    arity=2,
    description="decimal subtraction (addition with the second sign flipped)",
)

FMA = Operation(
    name="fma",
    mnemonic="fma",
    symbol="fma",
    arity=3,
    description="fused multiply-add: exact product plus addend, one rounding",
)

#: Registry in definition order (the paper's operation first).
OPERATIONS = {
    op.name: op for op in (MULTIPLY, ADD, SUBTRACT, FMA)
}

#: Accepted aliases: CLI mnemonics plus a few common spellings.
OPERATION_ALIASES = {
    "mul": MULTIPLY.name,
    "sub": SUBTRACT.name,
    "mac": FMA.name,
    "multiply-add": FMA.name,
}


def operation_names() -> tuple:
    """Canonical names of the registered operations, in definition order."""
    return tuple(OPERATIONS)


def resolve_operation_name(name) -> str:
    """Canonical operation name for ``name`` (accepts aliases and instances)."""
    if isinstance(name, Operation):
        return name.name
    name = str(name).strip().lower()
    if name in OPERATIONS:
        return name
    if name in OPERATION_ALIASES:
        return OPERATION_ALIASES[name]
    close = difflib.get_close_matches(
        name, list(OPERATIONS) + list(OPERATION_ALIASES), n=1
    )
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise DecimalError(
        f"unknown decimal operation {name!r} "
        f"(choose from {', '.join(OPERATIONS)}){hint}"
    )


def get_operation(name) -> Operation:
    """Look up an operation by canonical name, alias, or instance."""
    return OPERATIONS[resolve_operation_name(name)]
