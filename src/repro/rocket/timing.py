"""Compiled timing tier: superblock cycle accounting for the Rocket model.

:meth:`repro.rocket.core.RocketEmulator.run` steps one instruction at a time
so that the pipeline model can charge fetch stalls, operand stalls and
redirect penalties per retired instruction.  Almost all of that arithmetic is
*static*: the timing class, the source registers, the cache line of the fetch
and the branch targets are all fixed by the instruction word, so a hot span
of code can be compiled — exactly like the functional tier-2 engine compiles
architectural state into Python locals — into one function that accumulates
``cycle`` in a local and touches shared state only at its exits.

A *timing span* starts at a redirect target (branch/jump destinations are the
only places the interpreted loop looks for one) and follows fall-through
execution, inlining unconditional ``jal`` hops, until it reaches something
that needs per-step synchronized state:

* CSR reads (``rdcycle``/``rdinstret`` observe live counters),
* ``ecall``/``ebreak``/``fence.i`` (traps and code-visibility barriers),
* RoCC custom instructions (:class:`~repro.rocc.pipeline.AcceleratorPipeline`
  occupancy and the accelerator's architectural effects must stay bit-exact,
  so they stay interpreted),
* anything the emitter does not model (defensive: unknown mnemonics).

Conditional branches become guarded early exits; a backward branch (or
``jal``) to the span head closes a native ``while`` loop with a fuel check at
the back edge so the instruction budget is never overshot.  The generated
function's contract is::

    _tb(cycle, fuel) -> (next_pc, cycle', retired)

with ``retired <= fuel`` guaranteed by construction (the caller only enters
with ``fuel >= min_fuel``, and back edges re-check).

Exactness is the whole point — cycle counts feed Table IV/VI, so every probe
and stall below reproduces the interpreted loop bit for bit:

* I-cache probes are batched per run of consecutive fetches from one cache
  line: the first fetch probes (and on a miss allocates, drawing from the
  cache's PRNG exactly like ``Cache.access``), the rest are guaranteed hits
  because nothing else touches the I-cache in between.  Hit/miss/access
  counters are settled at span exit from the retire count.
* D-cache probes are emitted inline per memory instruction, PRNG draws
  included.
* Operand stalls (``max(cycle, ready[rs1], ready[rs2])``) are *elided* where
  a register provably became ready: a register is only "not ready" within
  ``load_use``/``mul`` latency of its producer, so once enough instructions
  (each >= 1 cycle) have passed, the check folds away and pure-ALU runs
  collapse to a single constant ``cycle += k``.  At span entry a
  ``max(load_use, mul)``-instruction window is checked conservatively.
* Stores re-check the executor's compiled code bounds (self-modifying code
  drops every compiled artifact — a *deopt* — and the span exits so the
  interpreter regains control) and the HTIF exit flag.

Only the random-replacement cache policy is compiled (it is Rocket's policy
and the paper's measurement); LRU configurations keep the interpreted loop.
"""

from __future__ import annotations

from repro.errors import DecodingError, SimulationError
from repro.sim.executor import (
    MASK64,
    _ALU_MNEMONICS,
    _DIV_MNEMONICS,
    _LOAD_SIZES,
    _MUL_MNEMONICS,
    _SIGN64,
    _STORE_SIZES,
    _div32,
    _div64,
    _rem32,
    _rem64,
)

#: Redirect arrivals at a pc before a timing span is compiled there.  Spans
#: cost a fraction of a millisecond to build; anything arriving 16 times is
#: either a loop head or per-sample code that will arrive hundreds more.
PROMOTE_ARRIVALS = 16

#: Heat added when a compiled span *exits* to an uncompiled pc — the timing
#: tier's trace-tree link.  Half the threshold (rounded up), so a recurring
#: continuation compiles on its second arrival instead of its sixteenth.
EXIT_BOOST = (PROMOTE_ARRIVALS + 1) >> 1

#: Heat sentinel for pcs that must never be compiled (stoppers, spans too
#: short to pay for the call).  Far below zero so arrival increments can
#: never creep it back over the threshold.
INELIGIBLE = -(1 << 60)

#: Span length cap: bounds compile time and keeps the emitted function well
#: inside CPython's literal/locals sweet spot.
MAX_SPAN = 256

#: Straight-line spans shorter than this stay interpreted — the call and
#: tuple overhead would eat the win.  Loops always compile.
MIN_SPAN = 2

_BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})

#: Everything the emitter below can fold.  Any other mnemonic (CSRs, ecall,
#: ebreak, fence.i, rocc, future extensions) ends the walk *before* being
#: included and stays interpreted.
_KNOWN = (
    _ALU_MNEMONICS
    | frozenset(_LOAD_SIZES)
    | frozenset(_STORE_SIZES)
    | _BRANCHES
    | frozenset({"jal", "jalr", "fence"})
)


# ----------------------------------------------------------------------- walk
def _walk(executor, head):
    """Trace fall-through execution from ``head``.

    Returns ``(items, tail)`` where ``items`` is a list of
    ``(pc, decoded, kind)`` and ``tail`` describes how the span ends:

    ``("fall", pc)``     span falls through to ``pc`` (stopper / cap / rejoin)
    ``("jalexit", pc)``  last item is a ``jal`` whose target was already
                         traced — exit to the target instead of re-inlining
    ``("jalr",)``        last item is an indirect jump (dynamic exit)
    ``("loop",)``        last item closes a native loop back to ``head``
    """
    items = []
    visited = set()
    p = head
    while True:
        if len(items) >= MAX_SPAN or p in visited:
            return items, ("fall", p)
        try:
            d = executor.fetch_decode(p)
        except (DecodingError, SimulationError):
            return items, ("fall", p)
        m = d.mnemonic
        if m not in _KNOWN:
            return items, ("fall", p)
        if m in _BRANCHES:
            taken = (p + d.imm) & MASK64
            if taken == head and items:
                items.append((p, d, "loopbr"))
                return items, ("loop",)
            items.append((p, d, "br"))
        elif m == "jal":
            target = (p + d.imm) & MASK64
            if target == head and items:
                items.append((p, d, "loopjal"))
                return items, ("loop",)
            items.append((p, d, "jal"))
            if target == p or target in visited:
                return items, ("jalexit", target)
            visited.add(p)
            p = target
            continue
        elif m == "jalr":
            items.append((p, d, "jalr"))
            return items, ("jalr",)
        elif m in _LOAD_SIZES:
            items.append((p, d, "load"))
        elif m in _STORE_SIZES:
            items.append((p, d, "store"))
        else:
            items.append((p, d, "alu"))
        visited.add(p)
        p += 4


# ----------------------------------------------------------------- arch lines
def _alu_arch(pc, d):
    """Source lines for the architectural effect of one ALU instruction.

    Mirrors the tier-1 closures in ``Executor._build`` expression for
    expression (including the rd == x0 discard).
    """
    m = d.mnemonic
    rd, a, b, imm = d.rd, d.rs1, d.rs2, d.imm
    if m == "fence" or rd == 0:
        return []
    A = f"R[{a}]"
    B = f"R[{b}]"
    sA = f"(({A} ^ S) - S)"
    sB = f"(({B} ^ S) - S)"

    def s32(expr):
        return f"(({expr} & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000"

    D = f"R[{rd}]"
    if m == "add":
        return [f"{D} = ({A} + {B}) & M"]
    if m == "addi":
        return [f"{D} = ({A} + {imm}) & M"]
    if m == "sub":
        return [f"{D} = ({A} - {B}) & M"]
    if m == "and":
        return [f"{D} = {A} & {B}"]
    if m == "andi":
        return [f"{D} = {A} & {imm & MASK64}"]
    if m == "or":
        return [f"{D} = {A} | {B}"]
    if m == "ori":
        return [f"{D} = {A} | {imm & MASK64}"]
    if m == "xor":
        return [f"{D} = {A} ^ {B}"]
    if m == "xori":
        return [f"{D} = {A} ^ {imm & MASK64}"]
    if m == "sll":
        return [f"{D} = ({A} << ({B} & 0x3F)) & M"]
    if m == "slli":
        return [f"{D} = ({A} << {imm}) & M"]
    if m == "srl":
        return [f"{D} = {A} >> ({B} & 0x3F)"]
    if m == "srli":
        return [f"{D} = {A} >> {imm}"]
    if m == "sra":
        return [f"{D} = ({sA} >> ({B} & 0x3F)) & M"]
    if m == "srai":
        return [f"{D} = ({sA} >> {imm}) & M"]
    if m == "slt":
        return [f"{D} = 1 if {sA} < {sB} else 0"]
    if m == "slti":
        return [f"{D} = 1 if {sA} < {imm} else 0"]
    if m == "sltu":
        return [f"{D} = 1 if {A} < {B} else 0"]
    if m == "sltiu":
        return [f"{D} = 1 if {A} < {imm & MASK64} else 0"]
    if m == "addw":
        return [f"{D} = ({s32(f'{A} + {B}')}) & M"]
    if m == "addiw":
        return [f"{D} = ({s32(f'{A} + {imm}')}) & M"]
    if m == "subw":
        return [f"{D} = ({s32(f'{A} - {B}')}) & M"]
    if m == "sllw":
        return [f"{D} = ({s32(f'{A} << ({B} & 0x1F)')}) & M"]
    if m == "slliw":
        return [f"{D} = ({s32(f'{A} << {imm}')}) & M"]
    if m == "srlw":
        return [f"{D} = ({s32(f'({A} & 0xFFFFFFFF) >> ({B} & 0x1F)')}) & M"]
    if m == "srliw":
        return [f"{D} = ({s32(f'({A} & 0xFFFFFFFF) >> {imm}')}) & M"]
    if m == "sraw":
        return [f"{D} = (({s32(A)}) >> ({B} & 0x1F)) & M"]
    if m == "sraiw":
        return [f"{D} = (({s32(A)}) >> {imm}) & M"]
    if m == "mul":
        return [f"{D} = ({A} * {B}) & M"]
    if m == "mulh":
        return [f"{D} = (({sA} * {sB}) >> 64) & M"]
    if m == "mulhu":
        return [f"{D} = ({A} * {B}) >> 64"]
    if m == "mulhsu":
        return [f"{D} = (({sA} * {B}) >> 64) & M"]
    if m == "mulw":
        return [f"{D} = ({s32(f'{A} * {B}')}) & M"]
    if m == "div":
        return [f"{D} = d64({A}, {B})"]
    if m == "divu":
        return [f"t = {B}", f"{D} = M if t == 0 else {A} // t"]
    if m == "rem":
        return [f"{D} = r64({A}, {B})"]
    if m == "remu":
        return [f"t = {B}", f"{D} = {A} if t == 0 else {A} % t"]
    if m == "divw":
        return [f"{D} = d32({A}, {B})"]
    if m == "divuw":
        return [
            f"t = {B} & 0xFFFFFFFF",
            f"{D} = M if t == 0 else ({s32(f'({A} & 0xFFFFFFFF) // t')}) & M",
        ]
    if m == "remw":
        return [f"{D} = r32({A}, {B})"]
    if m == "remuw":
        return [
            f"t = {A} & 0xFFFFFFFF",
            f"u = {B} & 0xFFFFFFFF",
            f"{D} = ({s32('t')}) & M if u == 0 else ({s32('t % u')}) & M",
        ]
    if m == "lui":
        return [f"{D} = {d.imm & MASK64}"]
    if m == "auipc":
        return [f"{D} = {(pc + d.imm) & MASK64}"]
    raise AssertionError(f"unhandled ALU mnemonic {m!r}")  # pragma: no cover


def _load_arch(d):
    """Architectural lines for a load; ``ad`` holds the effective address."""
    m = d.mnemonic
    rd = d.rd
    size = _LOAD_SIZES[m]
    sign_bit = {"lw": 0x80000000, "lh": 0x8000, "lb": 0x80}.get(m)
    if rd == 0:
        # x0 loads still access memory (and the D-cache) but discard the
        # value — mirror the tier-1 closure exactly.
        return [f"rd_(ad, {size})"]
    if sign_bit is None:
        return [f"R[{rd}] = rd_(ad, {size})"]
    return [
        f"t = rd_(ad, {size})",
        f"R[{rd}] = ((t ^ {sign_bit}) - {sign_bit}) & M",
    ]


def _cond_expr(d):
    """The branch-taken condition, identical to the tier-1 ``cond``."""
    m = d.mnemonic
    A = f"R[{d.rs1}]"
    B = f"R[{d.rs2}]"
    if m == "beq":
        return f"{A} == {B}"
    if m == "bne":
        return f"{A} != {B}"
    if m == "bltu":
        return f"{A} < {B}"
    if m == "bgeu":
        return f"{A} >= {B}"
    sA = f"(({A} ^ S) - S)"
    sB = f"(({B} ^ S) - S)"
    if m == "blt":
        return f"{sA} < {sB}"
    return f"{sA} >= {sB}"  # bge


# ----------------------------------------------------------------- compile
def compile_timing_span(emulator, head):
    """Compile the timing span at ``head``; ``(fn, min_fuel, source)`` or None.

    ``None`` means the pc is permanently ineligible (it starts at a stopper
    or the span is too short to pay for the call) — the caller records that
    so the arrival counter stops being maintained for it.
    """
    executor = emulator.executor
    items, tail = _walk(executor, head)
    loop = tail[0] == "loop"
    if not items or (not loop and len(items) < MIN_SPAN):
        return None

    config = emulator.config
    icache = emulator.icache
    dcache = emulator.dcache
    load_use = config.load_use_latency_cycles
    mul_lat = config.mul_latency_cycles
    div_lat = config.div_latency_cycles
    jump_pen = config.jump_penalty_cycles
    branch_pen = config.branch_penalty_cycles
    ic_pen = icache.config.miss_penalty_cycles
    dc_pen = dcache.config.miss_penalty_cycles
    ic_offset = icache._offset_bits
    ic_imask = icache._index_mask
    ic_ibits = icache._index_bits
    ic_ways = icache.config.ways
    dc_offset = dcache._offset_bits
    dc_imask = dcache._index_mask
    dc_ibits = dcache._index_bits
    dc_ways = dcache.config.ways

    n_items = len(items)
    has_mem = any(kind in ("load", "store") for _, _, kind in items)
    body = 2 if loop else 1

    # Operand-stall elision bookkeeping.  A register is possibly not-ready
    # only within its producer's latency window; each retired instruction
    # advances `cycle` by at least one, so `window - 1` positions after the
    # producer the check is provably redundant.  At span entry every
    # register gets the conservative max window.
    window = max(load_use, mul_lat) - 1
    safe_after = {}
    loadmul = set()
    if loop:
        for _, d, kind in items:
            if kind == "load" or d.mnemonic in _MUL_MNEMONICS:
                loadmul.add(d.rd)
    # A loop iteration shorter than the entry window cannot prove entry-time
    # ready values stale by position alone — check every operand then.
    loop_always = loop and n_items < window

    def needs_check(reg, pos):
        if loop:
            return loop_always or reg in loadmul or pos <= window
        return pos <= safe_after.get(reg, window)

    def note_setter(reg, pos, latency):
        if not loop:
            until = pos + latency - 1
            if until > safe_after.get(reg, window):
                safe_after[reg] = until

    lines = []

    def emit(text, level):
        lines.append("    " * level + text)

    namespace = {
        "R": emulator.hart.regs,
        "Y": emulator._reg_ready,
        "rd_": emulator.memory.read,
        "wr_": emulator.memory.write,
        "CB": executor._code_bounds,
        "E": executor,
        "EM": emulator,
        "HT": emulator.htif,
        "IS": icache.stats,
        "DS": dcache.stats,
        "IR": icache.rng.randrange,
        "DR": dcache.rng.randrange,
        "DT": dcache._tags,
        "M": MASK64,
        "S": _SIGN64,
        "d64": _div64,
        "r64": _rem64,
        "d32": _div32,
        "r32": _rem32,
    }

    emit("def _tb(cycle, fuel):", 0)
    if loop:
        emit("n = 0", 1)
    emit("im = 0", 1)
    if has_mem:
        emit("da = 0", 1)
        emit("dm = 0", 1)
    if loop:
        emit("while 1:", 1)

    # Pending constant cycle increments from instructions that needed no
    # stall check — folded into one `cycle += k` at the next flush point.
    acc = 0

    def flush_acc():
        nonlocal acc
        if acc:
            emit(f"cycle += {acc}", body)
            acc = 0

    def k_expr(pos):
        return f"n + {pos}" if loop else f"{pos}"

    def emit_exit(pc_expr, retire_expr, level):
        emit(f"k = {retire_expr}", level)
        emit("IS.accesses += k", level)
        emit("IS.misses += im", level)
        emit("IS.hits += k - im", level)
        if has_mem:
            emit("DS.accesses += da", level)
            emit("DS.misses += dm", level)
            emit("DS.hits += da - dm", level)
        emit(f"return ({pc_expr}, cycle, k)", level)

    def emit_cost(pos, srcs, k, need_cycle):
        """Charge `max(cycle, ready...) + k` with redundant checks elided.

        Returns with `cycle` current when ``need_cycle`` (flushing the
        pending constant), otherwise may leave ``k`` pending in ``acc``.
        """
        nonlocal acc
        checked = sorted({r for r in srcs if needs_check(r, pos)})
        if checked:
            flush_acc()
            terms = ", ".join(f"Y[{r}]" for r in checked)
            emit(f"cycle = max(cycle, {terms}) + {k}", body)
        else:
            acc += k
            if need_cycle:
                flush_acc()

    def emit_dcache_probe():
        emit("da += 1", body)
        emit(f"ln = ad >> {dc_offset}", body)
        emit(f"dw = DT[ln & {dc_imask}]", body)
        emit(f"dt = ln >> {dc_ibits}", body)
        emit("if dt not in dw:", body)
        emit("dm += 1", body + 1)
        emit("try:", body + 1)
        emit("v = dw.index(None)", body + 2)
        emit("except ValueError:", body + 1)
        emit(f"v = DR({dc_ways})", body + 2)
        emit("dw[v] = dt", body + 1)
        emit(f"cycle += {dc_pen}", body + 1)

    prev_line = None
    for pos, (p, d, kind) in enumerate(items, 1):
        # Fetch: probe once per run of consecutive fetches from one cache
        # line — the rest are guaranteed hits (nothing else touches the
        # I-cache mid-run; accesses are settled from the retire count).
        line_addr = p >> ic_offset
        if line_addr != prev_line:
            flush_acc()
            index = line_addr & ic_imask
            tag = line_addr >> ic_ibits
            ways_name = f"IW{index}"
            namespace[ways_name] = icache._tags[index]
            emit(f"if {tag} not in {ways_name}:", body)
            emit("im += 1", body + 1)
            emit("try:", body + 1)
            emit(f"v = {ways_name}.index(None)", body + 2)
            emit("except ValueError:", body + 1)
            emit(f"v = IR({ic_ways})", body + 2)
            emit(f"{ways_name}[v] = {tag}", body + 1)
            emit(f"cycle += {ic_pen}", body + 1)
        prev_line = line_addr

        m = d.mnemonic
        srcs = (d.rs1, d.rs2)
        if kind == "alu":
            if m in _MUL_MNEMONICS:
                # The ready write needs the live cycle.
                emit_cost(pos, srcs, 1, True)
                for text in _alu_arch(p, d):
                    emit(text, body)
                emit(f"Y[{d.rd}] = cycle + {mul_lat - 1}", body)
                note_setter(d.rd, pos, mul_lat)
            elif m in _DIV_MNEMONICS:
                # The iterative divider blocks the pipeline: a flat cost,
                # no ready shadow — foldable into the pending constant.
                emit_cost(pos, srcs, div_lat, False)
                for text in _alu_arch(p, d):
                    emit(text, body)
            else:
                emit_cost(pos, srcs, 1, False)
                for text in _alu_arch(p, d):
                    emit(text, body)
        elif kind == "load":
            emit_cost(pos, srcs, 1, True)
            emit(f"ad = (R[{d.rs1}] + {d.imm}) & M", body)
            for text in _load_arch(d):
                emit(text, body)
            emit_dcache_probe()
            emit(f"Y[{d.rd}] = cycle + {load_use - 1}", body)
            note_setter(d.rd, pos, load_use)
        elif kind == "store":
            size = _STORE_SIZES[m]
            emit_cost(pos, srcs, 1, True)
            emit(f"ad = (R[{d.rs1}] + {d.imm}) & M", body)
            emit(f"wr_(ad, {size}, R[{d.rs2}])", body)
            emit_dcache_probe()
            # Self-modifying store: every compiled artifact (this span
            # included) is dropped — deopt back to the interpreter at the
            # next pc with the cycle count settled exactly.
            emit(f"if ad < CB[1] and ad + {size} > CB[0]:", body)
            emit(f"E._invalidate(ad, {size})", body + 1)
            emit("EM.timing_deopts += 1", body + 1)
            emit_exit(f"{p + 4}", k_expr(pos), body + 1)
            emit("if HT.exited:", body)
            emit_exit(f"{p + 4}", k_expr(pos), body + 1)
        elif kind == "br":
            taken = (p + d.imm) & MASK64
            emit_cost(pos, srcs, 1, True)
            emit(f"if {_cond_expr(d)}:", body)
            emit(f"cycle += {branch_pen}", body + 1)
            emit_exit(f"{taken}", k_expr(pos), body + 1)
        elif kind == "loopbr":
            emit_cost(pos, srcs, 1, True)
            emit(f"if {_cond_expr(d)}:", body)
            emit(f"cycle += {branch_pen}", body + 1)
            emit(f"n += {n_items}", body + 1)
            emit(f"if fuel - n < {n_items}:", body + 1)
            emit_exit(f"{head}", "n", body + 2)
            emit("else:", body)
            emit("break", body + 1)
        elif kind == "jal":
            emit_cost(pos, srcs, 1 + jump_pen, False)
            if d.rd:
                emit(f"R[{d.rd}] = {p + 4}", body)
        elif kind == "loopjal":
            emit_cost(pos, srcs, 1 + jump_pen, True)
            if d.rd:
                emit(f"R[{d.rd}] = {p + 4}", body)
            emit(f"n += {n_items}", body)
            emit(f"if fuel - n < {n_items}:", body)
            emit_exit(f"{head}", "n", body + 1)
        else:  # jalr
            emit_cost(pos, srcs, 1 + jump_pen, True)
            emit(f"t = (R[{d.rs1}] + {d.imm}) & {MASK64 & ~1}", body)
            if d.rd:
                emit(f"R[{d.rd}] = {p + 4}", body)
            emit_exit("t", k_expr(pos), body)

    if tail[0] in ("fall", "jalexit"):
        flush_acc()
        emit_exit(f"{tail[1]}", k_expr(n_items), body)
    elif loop and items[-1][2] == "loopbr":
        # Natural loop exit: the bottom branch fell through.
        fall_pc = items[-1][0] + 4
        emit_exit(f"{fall_pc}", f"n + {n_items}", 1)
    # ("jalr",) and loopjal spans emitted their own returns.

    source = "\n".join(lines) + "\n"
    code = compile(source, f"<tspan@{head:#x}>", "exec")
    exec(code, namespace)

    # Compiled spans embed decoded semantics for every covered pc — stores
    # into the span must invalidate, so the covered range joins the
    # executor's code bounds exactly like tier-1/2 promotion does.
    lo = min(p for p, _, _ in items)
    hi = max(p for p, _, _ in items) + 4
    bounds = executor._code_bounds
    if lo < bounds[0]:
        bounds[0] = lo
    if hi > bounds[1]:
        bounds[1] = hi

    return namespace["_tb"], n_items, source
