"""Timing-model configuration for the Rocket-like core."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one L1 cache."""

    sets: int = 64
    ways: int = 4
    line_bytes: int = 64
    miss_penalty_cycles: int = 24
    replacement: str = "random"  # "random" (Rocket's policy) or "lru"

    def __post_init__(self) -> None:
        for name in ("sets", "ways", "line_bytes"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ConfigurationError(f"cache {name} must be a power of two, got {value}")
        if self.replacement not in ("random", "lru"):
            raise ConfigurationError(f"unknown replacement policy: {self.replacement!r}")

    @property
    def size_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes


@dataclass(frozen=True)
class RocketConfig:
    """Parameters of the in-order pipeline, caches and RoCC interface."""

    frequency_hz: int = 1_000_000_000
    # Control flow.
    branch_penalty_cycles: int = 3
    jump_penalty_cycles: int = 2
    # Arithmetic latencies.  Rocket's multiplier is pipelined (latency visible
    # only to dependent instructions); its divider is an unpipelined iterative
    # unit whose latency depends on the dividend magnitude (up to ~64 cycles
    # for full 64-bit operands, much less after early-out).  The model charges
    # a representative flat latency; the ablation bench sweeps it.
    mul_latency_cycles: int = 4
    div_latency_cycles: int = 40
    # Loads.
    load_use_latency_cycles: int = 2
    # Caches.
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    # RoCC interface (the paper's "latency overhead during data exchange
    # with CPU because of the position of the interface into the pipeline").
    rocc_cmd_latency_cycles: int = 2
    rocc_resp_latency_cycles: int = 3
    # Randomness for the cache replacement policy.
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        for name in (
            "branch_penalty_cycles",
            "jump_penalty_cycles",
            "mul_latency_cycles",
            "div_latency_cycles",
            "load_use_latency_cycles",
            "rocc_cmd_latency_cycles",
            "rocc_resp_latency_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def with_overrides(self, **overrides) -> "RocketConfig":
        """Copy of the configuration with some fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)


#: Configuration used by the Table IV reproduction.
DEFAULT_ROCKET_CONFIG = RocketConfig()
