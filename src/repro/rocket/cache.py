"""Set-associative L1 cache model with random (or LRU) replacement.

The paper points out that Rocket's cache *random replacement policy* makes
cycle counts nondeterministic from the program's point of view, which is why
the evaluation averages over many samples.  The model reproduces that
behaviour with a seeded PRNG: one run is reproducible, but cycle counts vary
across samples as lines are evicted unpredictably.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rocket.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A blocking, write-allocate, set-associative cache."""

    def __init__(self, config: CacheConfig, rng: random.Random = None) -> None:
        self.config = config
        self.rng = rng if rng is not None else random.Random(0)
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.sets - 1
        self._index_bits = self._index_mask.bit_length()
        # sets -> list of tags (ways); None means invalid.
        self._tags = [[None] * config.ways for _ in range(config.sets)]
        # LRU bookkeeping (only maintained when replacement == "lru"; the
        # random policy never reads it, so skipping the updates changes no
        # observable behaviour and keeps the hit path tight).
        self._lru_mode = config.replacement == "lru"
        self._lru = [[0] * config.ways for _ in range(config.sets)]
        self._tick = 0
        self.stats = CacheStats()

    def access(self, address: int, is_write: bool = False) -> int:
        """Access one address; return the extra stall cycles (0 on a hit)."""
        stats = self.stats
        stats.accesses += 1
        line = address >> self._offset_bits
        index = line & self._index_mask
        tag = line >> self._index_bits
        ways = self._tags[index]
        if tag in ways:
            stats.hits += 1
            if self._lru_mode:
                self._tick += 1
                self._lru[index][ways.index(tag)] = self._tick
            return 0
        # Miss: allocate into an invalid way if any, otherwise evict.
        stats.misses += 1
        try:
            victim = ways.index(None)
        except ValueError:
            if self.config.replacement == "random":
                victim = self.rng.randrange(self.config.ways)
            else:
                victim = min(
                    range(self.config.ways), key=lambda way: self._lru[index][way]
                )
        ways[victim] = tag
        if self._lru_mode:
            self._tick += 1
            self._lru[index][victim] = self._tick
        return self.config.miss_penalty_cycles

    def flush(self) -> None:
        """Invalidate every line (keeps statistics).

        Lines are cleared *in place*: the compiled timing tier
        (:mod:`repro.rocket.timing`) binds the per-set way lists directly
        into generated code, so the list objects must keep their identity
        across a flush.
        """
        ways = self.config.ways
        for tags in self._tags:
            tags[:] = [None] * ways

    def reset(self) -> None:
        """Restore construction state in place: cold lines, zeroed stats.

        Used by :meth:`repro.rocket.core.RocketEmulator.reset` so a warm
        rerun starts from exactly the cold-cache state the paper measures.
        The PRNG is deliberately *not* reseeded here — its seeding order is
        owned by the emulator (one parent stream seeds both caches).
        """
        self.flush()
        ways = self.config.ways
        for lru in self._lru:
            lru[:] = [0] * ways
        self._tick = 0
        stats = self.stats
        stats.accesses = 0
        stats.hits = 0
        stats.misses = 0
