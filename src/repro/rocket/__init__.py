"""Rocket-chip-like cycle-accurate emulation layer.

This is the performance-measurement half of the framework (the "Emulate and
Evaluate" box of Fig. 2): an in-order, single-issue RV64 core model in the
style of Rocket, with

* L1 instruction and data caches using a *random replacement policy* (the
  source of run-to-run cycle variation the paper discusses in Section V),
* static-not-taken branch handling with a taken-branch penalty,
* a pipelined multiplier and a blocking iterative divider,
* a RoCC port with configurable command/response latencies through which an
  attached accelerator (e.g. :class:`repro.rocc.DecimalAccelerator`) executes
  custom instructions,
* the ``RDCYCLE`` CSR wired to the model's cycle counter, and
* separate attribution of cycles to the software part and the hardware
  (accelerator) part, which is exactly the split Table IV reports.
"""

from repro.rocket.config import CacheConfig, RocketConfig
from repro.rocket.cache import Cache, CacheStats
from repro.rocket.core import RocketEmulator, RocketResult

__all__ = [
    "CacheConfig",
    "RocketConfig",
    "Cache",
    "CacheStats",
    "RocketEmulator",
    "RocketResult",
]
