"""The Rocket-like cycle-accurate core emulator.

The emulator reuses the functional :class:`~repro.sim.executor.Executor` for
architectural state changes and layers a timing model over each retired
instruction:

* instruction fetch goes through the L1 I-cache,
* loads/stores go through the L1 D-cache (both with random replacement),
* taken branches and jumps pay a redirect penalty (static not-taken fetch),
* the multiplier is pipelined (latency visible only to dependent
  instructions), the divider blocks the pipeline,
* a load's value is available ``load_use_latency`` cycles later, so an
  immediately dependent instruction stalls,
* RoCC custom instructions pay the command latency, the accelerator's busy
  cycles and — when ``xd`` is set — the response latency while the core waits.

Cycles are attributed to the *software part* or the *hardware part* exactly as
Table IV of the paper splits them: every cycle spent issuing to, executing in,
or waiting on the accelerator is a hardware-part cycle; everything else is a
software-part cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import SimulationError
from repro.isa import csr as csrdefs
from repro.rocket.cache import Cache
from repro.rocket.config import RocketConfig
from repro.rocket.timing import (
    EXIT_BOOST,
    INELIGIBLE,
    PROMOTE_ARRIVALS,
    compile_timing_span,
)
from repro.sim.executor import (
    Executor,
    TC_DIV,
    TC_JUMP,
    TC_MEM,
    TC_MUL,
    TC_ROCC,
)
from repro.sim.hart import DEFAULT_STACK_TOP, Hart
from repro.sim.htif import Htif
from repro.sim.memory import SparseMemory
from repro.sim.spike import DEFAULT_MAX_INSTRUCTIONS, SimulationResult


@dataclass
class RocketResult(SimulationResult):
    """Functional result plus the timing measurements of the run."""

    cycles: int = 0
    sw_cycles: int = 0
    hw_cycles: int = 0
    icache_stats: object = None
    dcache_stats: object = None
    rocc_commands: int = 0
    accelerator: object = None

    @property
    def cycles_per_instruction(self) -> float:
        if not self.instructions_retired:
            return 0.0
        return self.cycles / self.instructions_retired

    def seconds(self, frequency_hz: int) -> float:
        """Wall-clock time of the run at a given core frequency."""
        return self.cycles / frequency_hz


class RocketEmulator:
    """Cycle-accurate-style emulation of one program on Rocket + accelerator."""

    def __init__(
        self,
        image,
        accelerator=None,
        config: RocketConfig = None,
        stack_top: int = DEFAULT_STACK_TOP,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        timing_tier: bool = True,
    ) -> None:
        self.image = image
        self.config = config if config is not None else RocketConfig()
        self.accelerator = accelerator
        self.max_instructions = max_instructions
        self.stack_top = stack_top

        self.memory = SparseMemory()
        self.memory.load_image(image)
        self.htif = Htif()
        self.htif.attach(self.memory)
        self.hart = Hart(pc=image.entry, stack_pointer=stack_top)

        rng = random.Random(self.config.seed)
        self.icache = Cache(self.config.icache, rng=random.Random(rng.random()))
        self.dcache = Cache(self.config.dcache, rng=random.Random(rng.random()))

        rocc_adapter = accelerator.rocc_adapter() if accelerator is not None else None
        self.executor = Executor(
            self.hart,
            self.memory,
            csr_provider=self._read_counter,
            rocc=rocc_adapter,
        )

        self.cycle = 0
        self.sw_cycles = 0
        self.hw_cycles = 0
        self.instructions_retired = 0
        self.rocc_commands = 0
        # Cycle numbers at which each integer register's value becomes
        # available to dependent instructions (load / mul shadow latencies).
        self._reg_ready = [0] * 32

        # Compiled timing tier (repro.rocket.timing): hot redirect targets
        # are compiled into superblock functions that accumulate the cycle
        # arithmetic in locals.  Only the random replacement policy — the
        # paper's configuration — is compiled; LRU caches (and explicit
        # ``timing_tier=False``, which the lockstep tests use as the
        # reference) keep the per-instruction loop for every instruction.
        self.timing_tier = bool(
            timing_tier
            and self.config.icache.replacement == "random"
            and self.config.dcache.replacement == "random"
        )
        #: Redirect-arrival heat per target pc (INELIGIBLE marks pcs that
        #: must never compile); compiled span sources kept for diagnostics.
        self._timing_heat = {}
        self._timing_sources = {}
        self.timing_spans = 0
        self.timing_compiled_instructions = 0
        self.timing_interpreted_instructions = 0
        self.timing_compile_seconds = 0.0
        self.timing_deopts = 0

    # ------------------------------------------------------------------- CSRs
    def _read_counter(self, address: int) -> int:
        if address in (csrdefs.CYCLE, csrdefs.MCYCLE, csrdefs.TIME):
            return self.cycle
        if address in (csrdefs.INSTRET, csrdefs.MINSTRET):
            return self.executor.retired
        return 0

    # ----------------------------------------------------------- timing tier
    def _compile_timing(self, pc: int) -> None:
        """Compile the timing span at ``pc`` or mark it permanently cold."""
        started = perf_counter()
        built = compile_timing_span(self, pc)
        if built is None:
            self._timing_heat[pc] = INELIGIBLE
            return
        fn, min_fuel, source = built
        # The executor owns code-change visibility: fence.i and
        # self-modifying stores clear ``_tblocks`` with every other
        # compiled artifact, so a span can never outlive its code.
        self.executor._tblocks[pc] = (fn, min_fuel)
        self._timing_sources[pc] = source
        self._timing_heat.pop(pc, None)
        self.timing_spans += 1
        self.timing_compile_seconds += perf_counter() - started

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        """Rewind for another timed run, keeping the timing compiler warm.

        The paper's measurement starts from cold caches, so unlike
        :meth:`repro.sim.spike.SpikeSimulator.reset` the microarchitectural
        state is rewound too: cache lines are invalidated *in place* (the
        compiled spans bind the way lists), the cache PRNGs are reseeded to
        the construction sequence, and the statistics/cycle/ready state is
        zeroed.  What survives is everything *learned*: decoded
        instructions, tier-1 closures, compiled timing spans and their
        heat.  A warm rerun is therefore cycle-identical and
        result-identical to a fresh emulator over the same memory image.

        Memory contents are *not* touched; callers rerunning with new
        operand vectors must rewrite the operand region and zero the
        scratch/result buffers first (the :class:`~repro.sim.batch.
        BatchRunner` protocol).
        """
        hart = self.hart
        regs = hart.regs
        regs[:] = [0] * len(regs)
        regs[2] = self.stack_top
        hart.pc = self.image.entry
        self.htif.reset()
        executor = self.executor
        executor.stop = False
        executor.exit_requested = False
        executor.exit_code = 0
        executor.retired = 0
        if self.accelerator is not None:
            self.accelerator.reset()
        # Reseed the cache PRNGs exactly as construction did: one parent
        # stream (config.seed) seeds the I-cache then the D-cache, so the
        # replacement draws of a warm run replay the cold run bit for bit.
        rng = random.Random(self.config.seed)
        self.icache.rng.seed(rng.random())
        self.dcache.rng.seed(rng.random())
        self.icache.reset()
        self.dcache.reset()
        self.cycle = 0
        self.sw_cycles = 0
        self.hw_cycles = 0
        self.instructions_retired = 0
        self.rocc_commands = 0
        self._reg_ready[:] = [0] * 32

    # -------------------------------------------------------------------- run
    def run(self) -> RocketResult:
        """Run the program to completion and return timing + functional results.

        The per-instruction timing model is inlined here with every loop
        invariant hoisted into locals: at cycle-accurate speeds the attribute
        traffic of a method-per-step structure dominates the runtime.  The
        externally visible counters are kept exact where the simulated
        program can observe them (``self.cycle`` for ``rdcycle``,
        ``executor.retired`` for ``rdinstret``); the rest are accumulated
        locally and written back when the loop leaves.
        """
        executor = self.executor
        htif = self.htif
        hart = self.hart
        config = self.config
        limit = self.max_instructions
        icache = self.icache
        dcache = self.dcache
        icache_access = icache.access
        dcache_access = dcache.access
        timed_get = executor._timed.get
        compile_ = executor._compile
        ready = self._reg_ready
        load_use_latency = config.load_use_latency_cycles
        mul_latency = config.mul_latency_cycles
        div_latency = config.div_latency_cycles
        rocc_cmd_latency = config.rocc_cmd_latency_cycles
        rocc_resp_latency = config.rocc_resp_latency_cycles
        # Staged accelerators expose an occupancy model; blocking ones leave
        # it None and take the legacy serialising timing path below.
        rocc_pipeline = getattr(self.accelerator, "pipeline", None)
        rocc_issue = rocc_pipeline.issue if rocc_pipeline is not None else None
        jump_penalty = config.jump_penalty_cycles
        branch_penalty = config.branch_penalty_cycles

        # Random-replacement caches (Rocket's policy) are inlined below with
        # locally accumulated statistics; the LRU variant falls back to the
        # Cache.access method.  The inline path reproduces Cache.access
        # exactly, including the PRNG call sequence.
        ic_inline = icache.config.replacement == "random"
        ic_tags = icache._tags
        ic_offset_bits = icache._offset_bits
        ic_index_mask = icache._index_mask
        ic_index_bits = icache._index_bits
        ic_randrange = icache.rng.randrange
        ic_ways = icache.config.ways
        ic_miss_penalty = icache.config.miss_penalty_cycles
        ic_accesses = ic_hits = ic_misses = 0
        dc_inline = dcache.config.replacement == "random"
        dc_tags = dcache._tags
        dc_offset_bits = dcache._offset_bits
        dc_index_mask = dcache._index_mask
        dc_index_bits = dcache._index_bits
        dc_randrange = dcache.rng.randrange
        dc_ways = dcache.config.ways
        dc_miss_penalty = dcache.config.miss_penalty_cycles
        dc_accesses = dc_hits = dc_misses = 0

        timing = self.timing_tier
        tblocks_get = executor._tblocks.get
        timing_heat = self._timing_heat
        compile_timing = self._compile_timing

        retired_base = executor.retired
        cycle = self.cycle
        sw_cycles = 0
        hw_cycles = 0
        rocc_commands = 0
        instructions = 0
        timing_retired = 0
        try:
            while not htif.exited and not executor.exit_requested:
                if instructions >= limit:
                    raise SimulationError(
                        f"instruction limit exceeded ({limit}); pc={hart.pc:#x}"
                    )
                pc = hart.pc

                # Compiled timing tier: a span at this pc executes the whole
                # superblock (caches, stalls, penalties and architectural
                # effects) with the cycle count in a local.  The fuel gate
                # guarantees the instruction budget is never overshot, so
                # limit-hit behaviour is bit-identical to the interpreted
                # loop.  Spans contain no RoCC/CSR instructions, so every
                # span cycle is a software-part cycle.
                if timing:
                    tb = tblocks_get(pc)
                    if tb is not None:
                        fn, min_fuel = tb
                        if limit - instructions >= min_fuel:
                            pc, new_cycle, k = fn(cycle, limit - instructions)
                            sw_cycles += new_cycle - cycle
                            cycle = new_cycle
                            self.cycle = cycle
                            instructions += k
                            timing_retired += k
                            hart.pc = pc
                            # Trace-tree link: a span exit without a
                            # compiled continuation is boosted so a
                            # recurring exit earns its own span after a
                            # second arrival.
                            if tblocks_get(pc) is None:
                                heat = timing_heat.get(pc, 0)
                                if heat >= 0:
                                    heat += EXIT_BOOST
                                    if heat >= PROMOTE_ARRIVALS:
                                        compile_timing(pc)
                                    else:
                                        timing_heat[pc] = heat
                            continue

                entry = timed_get(pc)
                if entry is None:
                    compile_(pc)
                    entry = timed_get(pc)
                op, info, direct = entry
                decoded = info.decoded

                # Instruction fetch through the I-cache.
                if ic_inline:
                    ic_accesses += 1
                    line = pc >> ic_offset_bits
                    ways = ic_tags[line & ic_index_mask]
                    tag = line >> ic_index_bits
                    if tag in ways:
                        ic_hits += 1
                        fetch_stall = 0
                    else:
                        ic_misses += 1
                        try:
                            victim = ways.index(None)
                        except ValueError:
                            victim = ic_randrange(ic_ways)
                        ways[victim] = tag
                        fetch_stall = ic_miss_penalty
                else:
                    fetch_stall = icache_access(pc)

                # Source-operand stalls (load-use, multiplier shadow).
                operand_ready = ready[decoded.rs1]
                other_ready = ready[decoded.rs2]
                if other_ready > operand_ready:
                    operand_ready = other_ready
                issue_cycle = cycle + fetch_stall
                if operand_ready > issue_cycle:
                    issue_cycle = operand_ready
                cost = issue_cycle - cycle + 1  # one cycle to issue/retire

                # Architectural execution.  Direct ops need no dynamic
                # ExecInfo fields, so the fast closure (which returns the
                # next pc) is enough; the rest mutate `info` in place.
                if direct:
                    hart.pc = op()
                    timing_class = info.timing_class
                    hw_cost = 0
                    if timing_class == TC_MUL:
                        ready[decoded.rd] = cycle + cost + mul_latency - 1
                    elif timing_class == TC_DIV:
                        # The divider is iterative and blocks the pipeline.
                        cost += div_latency - 1
                    elif info.branch_taken:  # jal/jalr: always taken
                        cost += jump_penalty
                        # Redirect targets are where timing spans start:
                        # count the arrival and compile once hot.
                        if timing:
                            target = hart.pc
                            if tblocks_get(target) is None:
                                heat = timing_heat.get(target, 0)
                                if heat >= 0:
                                    heat += 1
                                    if heat >= PROMOTE_ARRIVALS:
                                        compile_timing(target)
                                    else:
                                        timing_heat[target] = heat
                else:
                    # Counter CSRs read executor.retired mid-instruction.
                    executor.retired = retired_base + instructions
                    op()
                    timing_class = info.timing_class
                    hw_cost = 0
                    if timing_class == TC_MEM:
                        address = info.mem_addr
                        if dc_inline:
                            dc_accesses += 1
                            line = address >> dc_offset_bits
                            ways = dc_tags[line & dc_index_mask]
                            tag = line >> dc_index_bits
                            if tag in ways:
                                dc_hits += 1
                            else:
                                dc_misses += 1
                                try:
                                    victim = ways.index(None)
                                except ValueError:
                                    victim = dc_randrange(dc_ways)
                                ways[victim] = tag
                                cost += dc_miss_penalty
                        else:
                            cost += dcache_access(
                                address, is_write=info.mem_is_store
                            )
                        if not info.mem_is_store:
                            ready[decoded.rd] = (
                                cycle + cost + load_use_latency - 1
                            )
                    elif timing_class == TC_ROCC:
                        if rocc_issue is not None:
                            # Staged datapath: the command reaches the issue
                            # queue after the issue stall + command latency,
                            # waits for a stage-0 slot, and the core resumes
                            # at the transaction's release point (completion
                            # + response latency when it blocks for data,
                            # the initiation interval otherwise).  At
                            # depth=1/width=1 this is cycle-identical to the
                            # legacy arithmetic in the else branch.
                            txn = rocc_issue(
                                cycle + cost + rocc_cmd_latency,
                                info.rocc_busy_cycles,
                                info.rocc_has_response,
                                info.rocc_funct7,
                            )
                            if info.rocc_has_response:
                                resume = txn.complete + rocc_resp_latency
                                ready[decoded.rd] = resume
                            else:
                                resume = txn.next_issue
                            hw_cost = resume - cycle
                        else:
                            hw_cost = cost  # issue counts against the hardware part
                            hw_cost += rocc_cmd_latency
                            hw_cost += info.rocc_busy_cycles
                            if info.rocc_has_response:
                                hw_cost += rocc_resp_latency
                                ready[decoded.rd] = cycle + hw_cost
                        cost = 0
                        rocc_commands += 1
                    elif info.branch_taken:
                        cost += branch_penalty
                        if timing:
                            target = hart.pc
                            if tblocks_get(target) is None:
                                heat = timing_heat.get(target, 0)
                                if heat >= 0:
                                    heat += 1
                                    if heat >= PROMOTE_ARRIVALS:
                                        compile_timing(target)
                                    else:
                                        timing_heat[target] = heat

                cycle += cost + hw_cost
                self.cycle = cycle  # rdcycle must observe the live count
                sw_cycles += cost
                hw_cycles += hw_cost
                instructions += 1
        finally:
            self.cycle = cycle
            self.sw_cycles += sw_cycles
            self.hw_cycles += hw_cycles
            self.rocc_commands += rocc_commands
            self.instructions_retired += instructions
            self.timing_compiled_instructions += timing_retired
            self.timing_interpreted_instructions += instructions - timing_retired
            executor.retired = retired_base + instructions
            ic_stats = icache.stats
            ic_stats.accesses += ic_accesses
            ic_stats.hits += ic_hits
            ic_stats.misses += ic_misses
            dc_stats = dcache.stats
            dc_stats.accesses += dc_accesses
            dc_stats.hits += dc_hits
            dc_stats.misses += dc_misses
        exit_code = htif.exit_code if htif.exited else executor.exit_code
        return RocketResult(
            exit_code=exit_code,
            instructions_retired=self.instructions_retired,
            console_output=htif.console_output,
            symbols=dict(self.image.symbols),
            memory=self.memory,
            hart=self.hart,
            cycles=self.cycle,
            sw_cycles=self.sw_cycles,
            hw_cycles=self.hw_cycles,
            icache_stats=self.icache.stats,
            dcache_stats=self.dcache.stats,
            rocc_commands=self.rocc_commands,
            accelerator=self.accelerator,
        )


def run_image_timed(image, accelerator=None, config=None, **kwargs) -> RocketResult:
    """Convenience one-shot cycle-accurate run of a linked image."""
    return RocketEmulator(image, accelerator=accelerator, config=config, **kwargs).run()
