"""The Rocket-like cycle-accurate core emulator.

The emulator reuses the functional :class:`~repro.sim.executor.Executor` for
architectural state changes and layers a timing model over each retired
instruction:

* instruction fetch goes through the L1 I-cache,
* loads/stores go through the L1 D-cache (both with random replacement),
* taken branches and jumps pay a redirect penalty (static not-taken fetch),
* the multiplier is pipelined (latency visible only to dependent
  instructions), the divider blocks the pipeline,
* a load's value is available ``load_use_latency`` cycles later, so an
  immediately dependent instruction stalls,
* RoCC custom instructions pay the command latency, the accelerator's busy
  cycles and — when ``xd`` is set — the response latency while the core waits.

Cycles are attributed to the *software part* or the *hardware part* exactly as
Table IV of the paper splits them: every cycle spent issuing to, executing in,
or waiting on the accelerator is a hardware-part cycle; everything else is a
software-part cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa import csr as csrdefs
from repro.rocket.cache import Cache
from repro.rocket.config import RocketConfig
from repro.sim.executor import Executor
from repro.sim.hart import DEFAULT_STACK_TOP, Hart
from repro.sim.htif import Htif
from repro.sim.memory import SparseMemory
from repro.sim.spike import DEFAULT_MAX_INSTRUCTIONS, SimulationResult

_DIV_MNEMONICS = {"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"}
_MUL_MNEMONICS = {"mul", "mulh", "mulhu", "mulhsu", "mulw"}


@dataclass
class RocketResult(SimulationResult):
    """Functional result plus the timing measurements of the run."""

    cycles: int = 0
    sw_cycles: int = 0
    hw_cycles: int = 0
    icache_stats: object = None
    dcache_stats: object = None
    rocc_commands: int = 0
    accelerator: object = None

    @property
    def cycles_per_instruction(self) -> float:
        if not self.instructions_retired:
            return 0.0
        return self.cycles / self.instructions_retired

    def seconds(self, frequency_hz: int) -> float:
        """Wall-clock time of the run at a given core frequency."""
        return self.cycles / frequency_hz


class RocketEmulator:
    """Cycle-accurate-style emulation of one program on Rocket + accelerator."""

    def __init__(
        self,
        image,
        accelerator=None,
        config: RocketConfig = None,
        stack_top: int = DEFAULT_STACK_TOP,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> None:
        self.image = image
        self.config = config if config is not None else RocketConfig()
        self.accelerator = accelerator
        self.max_instructions = max_instructions

        self.memory = SparseMemory()
        self.memory.load_image(image)
        self.htif = Htif()
        self.htif.attach(self.memory)
        self.hart = Hart(pc=image.entry, stack_pointer=stack_top)

        rng = random.Random(self.config.seed)
        self.icache = Cache(self.config.icache, rng=random.Random(rng.random()))
        self.dcache = Cache(self.config.dcache, rng=random.Random(rng.random()))

        rocc_adapter = accelerator.rocc_adapter() if accelerator is not None else None
        self.executor = Executor(
            self.hart,
            self.memory,
            csr_provider=self._read_counter,
            rocc=rocc_adapter,
        )

        self.cycle = 0
        self.sw_cycles = 0
        self.hw_cycles = 0
        self.instructions_retired = 0
        self.rocc_commands = 0
        # Cycle numbers at which each integer register's value becomes
        # available to dependent instructions (load / mul shadow latencies).
        self._reg_ready = [0] * 32

    # ------------------------------------------------------------------- CSRs
    def _read_counter(self, address: int) -> int:
        if address in (csrdefs.CYCLE, csrdefs.MCYCLE, csrdefs.TIME):
            return self.cycle
        if address in (csrdefs.INSTRET, csrdefs.MINSTRET):
            return self.instructions_retired
        return 0

    # -------------------------------------------------------------------- run
    def run(self) -> RocketResult:
        """Run the program to completion and return timing + functional results."""
        executor = self.executor
        htif = self.htif
        limit = self.max_instructions
        while not htif.exited and not executor.exit_requested:
            if self.instructions_retired >= limit:
                raise SimulationError(
                    f"instruction limit exceeded ({limit}); pc={self.hart.pc:#x}"
                )
            self._step_timed()
        exit_code = htif.exit_code if htif.exited else executor.exit_code
        return RocketResult(
            exit_code=exit_code,
            instructions_retired=self.instructions_retired,
            console_output=htif.console_output,
            symbols=dict(self.image.symbols),
            memory=self.memory,
            hart=self.hart,
            cycles=self.cycle,
            sw_cycles=self.sw_cycles,
            hw_cycles=self.hw_cycles,
            icache_stats=self.icache.stats,
            dcache_stats=self.dcache.stats,
            rocc_commands=self.rocc_commands,
            accelerator=self.accelerator,
        )

    # ------------------------------------------------------------------- step
    def _step_timed(self) -> None:
        config = self.config
        pc = self.hart.pc
        start_cycle = self.cycle

        # Instruction fetch through the I-cache.
        fetch_stall = self.icache.access(pc)
        decoded = self.executor.fetch_decode(pc)

        # Source-operand stalls (load-use, multiplier shadow).
        ready = self._reg_ready
        operand_ready = max(ready[decoded.rs1], ready[decoded.rs2])
        issue_cycle = max(self.cycle + fetch_stall, operand_ready)
        stall = issue_cycle - self.cycle
        cost = stall + 1  # one cycle to issue/retire the instruction itself

        # Architectural execution (also tells us what the instruction did).
        info = self.executor.step()
        mnemonic = decoded.mnemonic
        hw_cost = 0

        if info.mem_addr is not None:
            cost += self.dcache.access(info.mem_addr, is_write=info.mem_is_store)
            if not info.mem_is_store:
                ready[decoded.rd] = (
                    start_cycle + cost + config.load_use_latency_cycles - 1
                )
        elif mnemonic in _MUL_MNEMONICS:
            ready[decoded.rd] = start_cycle + cost + config.mul_latency_cycles - 1
        elif mnemonic in _DIV_MNEMONICS:
            # The divider is iterative and blocks the pipeline.
            cost += config.div_latency_cycles - 1
        elif info.is_rocc:
            hw_cost = cost  # issue cycles count against the hardware part
            hw_cost += config.rocc_cmd_latency_cycles
            hw_cost += info.rocc_busy_cycles
            if info.rocc_has_response:
                hw_cost += config.rocc_resp_latency_cycles
                ready[decoded.rd] = start_cycle + hw_cost
            cost = 0
            self.rocc_commands += 1
        elif info.branch_taken:
            if mnemonic in ("jal", "jalr"):
                cost += config.jump_penalty_cycles
            else:
                cost += config.branch_penalty_cycles

        self.cycle += cost + hw_cost
        self.sw_cycles += cost
        self.hw_cycles += hw_cost
        self.instructions_retired += 1


def run_image_timed(image, accelerator=None, config=None, **kwargs) -> RocketResult:
    """Convenience one-shot cycle-accurate run of a linked image."""
    return RocketEmulator(image, accelerator=accelerator, config=config, **kwargs).run()
