"""Command-line entry point for the campaign service (docs/service.md).

Foreground server::

    PYTHONPATH=src python -m repro.serve --cache-dir .repro-cache \\
        --workers 4 --port 8437

Submit a campaign and read the merged Table IV summary back::

    curl -s -X POST localhost:8437/submit -d '{"samples": 2000}'
    curl -s localhost:8437/result/job-1

``--smoke`` runs the CI acceptance loop instead of serving forever: start a
server on an ephemeral port with a fresh cache, submit the same campaign
twice over HTTP, and assert the second request is served entirely from
cache with a summary bit-identical to the cold run (modulo its own wall
clock).  Exit status is non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8437,
                        help="TCP port (default 8437; 0 = ephemeral)")
    parser.add_argument(
        "--cache-dir", default=".repro-cache",
        help="content-addressed result store directory (default .repro-cache)",
    )
    parser.add_argument("--workers", type=int, default=1,
                        help="shard worker pool size (default 1; >1 uses "
                             "a process pool)")
    parser.add_argument("--shards-per-cell", type=int, default=1,
                        help="default shard plan per cell (default 1)")
    parser.add_argument(
        "--mp-start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for the worker pool",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: submit the same campaign twice against a "
             "throwaway server+cache and assert a 100%% warm hit rate with "
             "a bit-identical summary",
    )
    parser.add_argument("--samples", type=int, default=50,
                        help="samples per cell in --smoke mode (default 50)")
    return parser


def run_smoke(args) -> int:
    """Start a live server, submit twice, assert full warm cache hit."""
    from repro.service import (
        ResultCache,
        comparable_summary,
        serve_in_background,
    )
    from repro.service.client import submit_and_wait

    spec = {"samples": args.samples, "label": "smoke"}
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        cache = ResultCache(tmp)
        with serve_in_background(
            cache, host=args.host, port=0, workers=args.workers,
            shards_per_cell=args.shards_per_cell,
            mp_start_method=args.mp_start_method,
        ) as server:
            started = time.perf_counter()
            cold = submit_and_wait(server.base_url, spec)
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            warm = submit_and_wait(server.base_url, spec)
            warm_seconds = time.perf_counter() - started
        cells = cold["cache"]["cells"]
        print(f"service smoke: {cells} cells x {args.samples} samples")
        print(f"  cold request: {cold_seconds:8.3f} s "
              f"({cold['cache']['computed']} cells computed)")
        print(f"  warm request: {warm_seconds:8.3f} s "
              f"({warm['cache']['hits']} cells from cache)")
        failures = []
        if cold["cache"]["computed"] != cells:
            failures.append("cold run did not compute every cell")
        if warm["cache"]["hits"] != cells or warm["cache"]["computed"] != 0:
            failures.append(
                f"warm run was not a 100% cache hit: {warm['cache']}"
            )
        if comparable_summary(cold["summary"]) != comparable_summary(
            warm["summary"]
        ):
            failures.append("warm summary differs from the cold run")
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        if not failures:
            speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
            print(f"  warm/cold speedup: {speedup:.1f}x — summaries "
                  "bit-identical (modulo request wall clock)")
        return 1 if failures else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        return run_smoke(args)

    from repro.service import ResultCache, serve_forever

    cache = ResultCache(args.cache_dir)
    print(f"result cache: {json.dumps(cache.stats())}", flush=True)
    try:
        asyncio.run(serve_forever(
            cache, host=args.host, port=args.port, workers=args.workers,
            shards_per_cell=args.shards_per_cell,
            mp_start_method=args.mp_start_method,
        ))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
