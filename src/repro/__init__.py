"""Reproduction of "Cycle-Accurate Evaluation of Software-Hardware Co-Design of
Decimal Computation in RISC-V Ecosystem" (SOCC 2019, arXiv:2003.05315).

The package is organised as a stack of substrates (bottom-up):

``repro.isa``
    RV64IM + Zicsr + RoCC custom-0..3 instruction definitions, encoder and
    decoder.
``repro.asm``
    Programmatic and textual assemblers producing flat RV64 memory images.
``repro.sim``
    Functional (SPIKE-like) simulation: memory, hart state, executor, HTIF.
``repro.rocket``
    Cycle-accurate-style Rocket-like in-order core timing model with L1
    caches, branch penalties, iterative mul/div and a RoCC port.
``repro.rocc``
    The RoCC accelerator framework and the decimal accelerator (Table II
    instructions, Fig. 4/5 architecture).
``repro.hw``
    Hardware component models (BCD carry-lookahead adder, converters) with a
    gate/delay cost model.
``repro.decnumber``
    Pure-Python IEEE 754-2008 decimal floating-point library (decNumber
    stand-in): DPD codec, decimal64/128, contexts, rounding, arithmetic.
``repro.kernels``
    RISC-V assembly kernels for the evaluated solutions (software baseline,
    Method-1 with RoCC, Method-1 with dummy functions).
``repro.testgen``
    The paper's test-program generator.
``repro.verification``
    Verification database (operand classes), golden reference and checker.
``repro.gem5``
    Gem5 AtomicSimpleCPU (SE mode) stand-in.
``repro.core``
    The paper's contribution: the evaluation framework tying everything
    together, plus reporting that regenerates Tables IV-VI.
"""

from repro._version import __version__

__all__ = ["__version__"]
