"""Dynamic macro generation for RoCC custom instructions.

Section IV-B of the paper describes "a set of dynamic MACROs to automatically
generate the hex value of corresponding instruction" so that the software part
can invoke accelerator functions through in-line assembly, e.g.::

    int DEC_ADD_rocc(int a, int b, int c) {
        asm __volatile__ (".word 0x08A5F617\\n");
        return a;
    }

This module reproduces that facility: given an accelerator function name and
the register assignment, it produces the encoded instruction word, the
``.word`` in-line assembly line, and the full C wrapper function text — the
same artefacts the paper's framework generates for its users.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import parse_register, register_abi_name
from repro.isa.rocc import DecimalFunct, RoccInstruction

#: The register convention used throughout the paper's example: core integer
#: registers 10 and 11 (a0/a1) are sources, 12 (a2) is the destination.
DEFAULT_RS1 = 11
DEFAULT_RS2 = 10
DEFAULT_RD = 12


@dataclass(frozen=True)
class RoccMacro:
    """A generated RoCC invocation macro."""

    name: str
    instruction: RoccInstruction

    @property
    def hex_word(self) -> str:
        return self.instruction.hex_word()

    @property
    def inline_asm(self) -> str:
        """The ``.word`` in-line assembly statement."""
        return f'asm __volatile__ (".word {self.hex_word}\\n");'

    def c_wrapper(self) -> str:
        """A C wrapper function in the style of the paper's ``DEC_ADD_rocc``."""
        fname = f"{self.name}_rocc"
        return (
            f"static inline long {fname}(long a, long b, long c) {{\n"
            f"    /* {self.name}: funct7={self.instruction.funct7:#09b}, "
            f"rd={register_abi_name(self.instruction.rd)}, "
            f"rs1={register_abi_name(self.instruction.rs1)}, "
            f"rs2={register_abi_name(self.instruction.rs2)} */\n"
            f"    {self.inline_asm}\n"
            f"    return a;\n"
            f"}}\n"
        )


def make_macro(
    function: str,
    rd=DEFAULT_RD,
    rs1=DEFAULT_RS1,
    rs2=DEFAULT_RS2,
    xd: bool = True,
    xs1: bool = True,
    xs2: bool = True,
    custom: int = 0,
) -> RoccMacro:
    """Build a :class:`RoccMacro` for a Table II accelerator function."""
    instruction = RoccInstruction(
        funct7=DecimalFunct.BY_NAME[function.upper()],
        rd=parse_register(rd),
        rs1=parse_register(rs1),
        rs2=parse_register(rs2),
        xd=xd,
        xs1=xs1,
        xs2=xs2,
        custom=custom,
    )
    return RoccMacro(name=function.upper(), instruction=instruction)


def standard_macros() -> dict:
    """The macro set the framework ships for Method-1 (Table III rows)."""
    return {
        "CLR_ALL": make_macro("CLR_ALL", rd=0, rs1=0, rs2=0, xd=False, xs1=False, xs2=False),
        "WR": make_macro("WR", rd=0, rs1=DEFAULT_RS1, rs2=0, xd=False, xs1=True, xs2=False),
        "RD": make_macro("RD", rd=DEFAULT_RD, rs1=DEFAULT_RS1, rs2=0, xd=True, xs1=False, xs2=True),
        "DEC_ADD": make_macro("DEC_ADD"),
        "DEC_ACCUM": make_macro("DEC_ACCUM"),
        "DEC_CNV": make_macro("DEC_CNV"),
        "DEC_MUL": make_macro("DEC_MUL"),
        "ACCUM": make_macro("ACCUM"),
        "LD": make_macro("LD", xd=False),
    }


def table_iii_rows() -> list:
    """Rows equivalent to the paper's Table III (our encodings).

    Returns a list of dictionaries with the instruction name, funct7, the
    register/flag fields and the resulting hex word, as produced by the
    framework's macro generator.
    """
    rows = []
    specs = [
        ("CLR_ALL", dict(rd=0, rs1=0, rs2=0, xd=False, xs1=False, xs2=False)),
        ("RD", dict(rd=0, rs1=DEFAULT_RS1, rs2=0, xd=False, xs1=False, xs2=True)),
        ("WR", dict(rd=0, rs1=DEFAULT_RS1, rs2=0, xd=True, xs1=False, xs2=False)),
        ("DEC_ADD", dict(rd=DEFAULT_RD, rs1=DEFAULT_RS1, rs2=DEFAULT_RS2,
                         xd=True, xs1=True, xs2=True)),
    ]
    for name, kwargs in specs:
        macro = make_macro(name, **kwargs)
        instr = macro.instruction
        rows.append(
            {
                "instruction": name,
                "funct7": f"{instr.funct7:07b}",
                "rs2": f"{instr.rs2:05b}",
                "rs1": f"{instr.rs1:05b}",
                "xd": int(instr.xd),
                "xs1": int(instr.xs1),
                "xs2": int(instr.xs2),
                "rd": f"{instr.rd:05b}",
                "opcode": f"{instr.encode() & 0x7F:07b}",
                "hex": macro.hex_word,
            }
        )
    return rows
