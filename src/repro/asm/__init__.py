"""Assembler layer: from kernels (programmatic or textual) to memory images.

This subpackage stands in for the GNU RISC-V cross toolchain of the paper's
framework (Fig. 2, "GCC RISC-V cross compiler" box).  Two front ends share a
common back end:

* :class:`~repro.asm.builder.AsmBuilder` — a programmatic assembler used by
  the kernel generators in :mod:`repro.kernels`;
* :func:`~repro.asm.parser.assemble_source` — a textual assembler accepting a
  practical subset of GNU ``as`` syntax.

Both produce a :class:`~repro.asm.program.Program`, which the
:class:`~repro.asm.linker.Linker` lays out into a flat
:class:`~repro.asm.program.Image` ready to be loaded by the simulators.
"""

from repro.asm.program import Image, Program, Section, DEFAULT_TEXT_BASE, DEFAULT_DATA_BASE
from repro.asm.builder import AsmBuilder
from repro.asm.linker import Linker
from repro.asm.parser import assemble_source
from repro.asm import macros

__all__ = [
    "Image",
    "Program",
    "Section",
    "AsmBuilder",
    "Linker",
    "assemble_source",
    "macros",
    "DEFAULT_TEXT_BASE",
    "DEFAULT_DATA_BASE",
]
