"""Section layout and fix-up resolution.

The linker assigns base addresses to sections, computes absolute symbol
addresses and patches label-relative instructions (branches, jumps, address
materialisation) recorded by the assembler front ends.
"""

from __future__ import annotations

import struct

from repro.errors import LinkError
from repro.isa.encoder import encode_b, encode_i, encode_jal, encode_u
from repro.asm.program import (
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    Image,
    Program,
)


class Linker:
    """Lays out a :class:`Program` into a flat :class:`Image`."""

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
        section_bases: dict = None,
    ) -> None:
        self.section_bases = {".text": text_base, ".data": data_base}
        if section_bases:
            self.section_bases.update(section_bases)

    # ------------------------------------------------------------------ layout
    def _assign_bases(self, program: Program) -> dict:
        bases = {}
        # Unknown sections are stacked after .data, 4 KiB aligned.
        next_free = None
        for name, section in program.sections.items():
            if section.base is not None:
                bases[name] = section.base
            elif name in self.section_bases:
                bases[name] = self.section_bases[name]
            else:
                if next_free is None:
                    data_base = self.section_bases[".data"]
                    data_len = len(program.sections.get(".data", b""))
                    next_free = (data_base + data_len + 0xFFF) & ~0xFFF
                bases[name] = next_free
                next_free = (next_free + len(section) + 0xFFF) & ~0xFFF
        self._check_overlaps(program, bases)
        return bases

    @staticmethod
    def _check_overlaps(program: Program, bases: dict) -> None:
        ranges = sorted(
            (bases[name], bases[name] + len(section), name)
            for name, section in program.sections.items()
            if len(section)
        )
        for (start_a, end_a, name_a), (start_b, _end_b, name_b) in zip(
            ranges, ranges[1:]
        ):
            if start_b < end_a:
                raise LinkError(
                    f"sections overlap: {name_a!r} [{start_a:#x},{end_a:#x}) and "
                    f"{name_b!r} starting at {start_b:#x}"
                )

    # ------------------------------------------------------------------ fixups
    @staticmethod
    def _apply_fixup(fixup, program: Program, bases: dict, symbols: dict) -> None:
        if fixup.label not in symbols:
            raise LinkError(f"undefined label: {fixup.label!r}")
        target = symbols[fixup.label]
        section = program.sections[fixup.section]
        address = bases[fixup.section] + fixup.offset
        if fixup.kind == "branch":
            delta = target - address
            word = encode_b(fixup.mnemonic, fixup.rs1, fixup.rs2, delta)
            section.patch_word(fixup.offset, word)
        elif fixup.kind == "jal":
            delta = target - address
            word = encode_jal(fixup.rd, delta)
            section.patch_word(fixup.offset, word)
        elif fixup.kind == "la":
            hi = (target + 0x800) >> 12
            lo = target - (hi << 12)
            section.patch_word(fixup.offset, encode_u("lui", fixup.rd, hi & 0xFFFFF))
            section.patch_word(
                fixup.offset + 4, encode_i("addi", fixup.rd, fixup.rd, lo)
            )
        else:  # pragma: no cover - defensive
            raise LinkError(f"unknown fixup kind: {fixup.kind!r}")

    # -------------------------------------------------------------------- link
    def link(self, program: Program, fixups=()) -> Image:
        """Resolve symbols and fix-ups; return a loadable :class:`Image`."""
        bases = self._assign_bases(program)
        symbols = {
            name: bases[section] + offset
            for name, (section, offset) in program.symbols.items()
        }
        for fixup in fixups:
            self._apply_fixup(fixup, program, bases, symbols)
        segments = {
            name: (bases[name], bytes(section.data))
            for name, section in program.sections.items()
            if len(section)
        }
        if program.entry_symbol in symbols:
            entry = symbols[program.entry_symbol]
        else:
            entry = bases[".text"]
        return Image(segments=segments, symbols=symbols, entry=entry)


def dump_disassembly(image: Image, section: str = ".text") -> str:
    """Best-effort textual dump of a linked text segment (for debugging)."""
    from repro.isa.decoder import decode_instruction
    from repro.errors import DecodingError

    base, data = image.segments[section]
    lines = []
    address_to_symbol = {addr: name for name, addr in image.symbols.items()}
    for offset in range(0, len(data) - 3, 4):
        address = base + offset
        if address in address_to_symbol:
            lines.append(f"{address_to_symbol[address]}:")
        (word,) = struct.unpack_from("<I", data, offset)
        try:
            decoded = decode_instruction(word)
            text = decoded.mnemonic
            detail = f"rd=x{decoded.rd} rs1=x{decoded.rs1} rs2=x{decoded.rs2} imm={decoded.imm}"
        except DecodingError:
            text, detail = ".word", ""
        lines.append(f"  {address:#010x}: {word:08x}  {text:10s} {detail}")
    return "\n".join(lines)
