"""Textual assembler for a practical subset of GNU ``as`` RV64 syntax.

The kernel generators use the programmatic :class:`~repro.asm.builder.AsmBuilder`
directly, but the framework also accepts assembly *source text* (the paper's
flow compiles "RISC-V in-line assembly and C source code"); this front end
covers the directives and pseudo-instructions those sources need.

Supported:

* sections: ``.text``, ``.data``; data directives ``.dword``, ``.word``,
  ``.byte``, ``.asciz``, ``.space``, ``.align``
* labels (``name:``), comments (``#`` and ``//``)
* all RV64IM/Zicsr instructions known to :mod:`repro.isa`
* loads/stores in ``offset(base)`` form
* pseudo-instructions: ``li``, ``la``, ``mv``, ``nop``, ``ret``, ``j``,
  ``call``, ``beqz``, ``bnez``, ``csrr``, ``rdcycle``, ``rdinstret``, ``not``,
  ``neg``, ``seqz``, ``snez``
* RoCC decimal instructions by Table II name, e.g.
  ``dec_add a2, a1, a0`` or ``clr_all``
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.isa import csr as csrdefs
from repro.isa.instructions import (
    B_TYPE,
    CSR_OPS,
    I_TYPE,
    R_TYPE,
    S_TYPE,
    SHIFT_IMM,
    U_TYPE,
)
from repro.isa.registers import parse_register
from repro.isa.rocc import DecimalFunct
from repro.asm.builder import AsmBuilder

_MEM_OPERAND_RE = re.compile(r"^(?P<offset>-?(?:0[xX][0-9a-fA-F]+|\d+)?)\((?P<base>\w+)\)$")
_LOAD_MNEMONICS = {"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"}


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"expected an integer, got {token!r}") from None


def _split_operands(rest: str) -> list:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _csr_operand(token: str) -> int:
    token = token.strip().lower()
    if token in csrdefs.NAME_TO_ADDR:
        return csrdefs.NAME_TO_ADDR[token]
    return _parse_int(token)


def _is_identifier(token: str) -> bool:
    return re.fullmatch(r"[A-Za-z_.][\w.$]*", token) is not None


class _SourceAssembler:
    """One-pass-over-text front end feeding an :class:`AsmBuilder`."""

    def __init__(self, builder: AsmBuilder) -> None:
        self.builder = builder

    # ------------------------------------------------------------------ lines
    def assemble(self, source: str) -> None:
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line)
            if not line:
                continue
            try:
                self._assemble_line(line)
            except AssemblerError as exc:
                raise AssemblerError(f"line {line_number}: {exc}") from None

    def _assemble_line(self, line: str) -> None:
        while True:
            match = re.match(r"^([A-Za-z_.][\w.$]*):\s*(.*)$", line)
            if not match:
                break
            self.builder.label(match.group(1))
            line = match.group(2).strip()
            if not line:
                return
        if line.startswith("."):
            self._directive(line)
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        self._instruction(mnemonic, operands)

    # -------------------------------------------------------------- directives
    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        builder = self.builder
        if name == ".text":
            builder.text()
        elif name == ".data":
            builder.data()
        elif name == ".align":
            builder.align(1 << _parse_int(rest))
        elif name in (".dword", ".quad"):
            builder.dword(*[_parse_int(tok) for tok in _split_operands(rest)])
        elif name == ".word":
            builder.word(*[_parse_int(tok) for tok in _split_operands(rest)])
        elif name == ".byte":
            builder.byte(*[_parse_int(tok) for tok in _split_operands(rest)])
        elif name in (".asciz", ".string"):
            text = rest.strip()
            if not (text.startswith('"') and text.endswith('"')):
                raise AssemblerError(f"{name} expects a quoted string")
            builder.asciz(text[1:-1])
        elif name in (".space", ".zero", ".skip"):
            builder.space(_parse_int(rest))
        elif name in (".globl", ".global", ".section", ".option", ".type", ".size"):
            pass  # accepted and ignored
        else:
            raise AssemblerError(f"unknown directive: {name}")

    # ------------------------------------------------------------ instructions
    def _instruction(self, mnemonic: str, operands: list) -> None:
        builder = self.builder

        # Pseudo-instructions first.
        if mnemonic == "nop":
            builder.nop()
        elif mnemonic == "mv":
            builder.mv(operands[0], operands[1])
        elif mnemonic == "not":
            builder.not_(operands[0], operands[1])
        elif mnemonic == "neg":
            builder.neg(operands[0], operands[1])
        elif mnemonic == "seqz":
            builder.seqz(operands[0], operands[1])
        elif mnemonic == "snez":
            builder.snez(operands[0], operands[1])
        elif mnemonic == "ret":
            builder.ret()
        elif mnemonic == "li":
            builder.li(operands[0], _parse_int(operands[1]))
        elif mnemonic == "la":
            builder.la(operands[0], operands[1])
        elif mnemonic == "j":
            builder.j(operands[0])
        elif mnemonic == "call":
            builder.call(operands[0])
        elif mnemonic == "jr":
            builder.jr(operands[0])
        elif mnemonic == "beqz":
            builder.beqz(operands[0], operands[1])
        elif mnemonic == "bnez":
            builder.bnez(operands[0], operands[1])
        elif mnemonic == "csrr":
            builder.csrr(operands[0], _csr_operand(operands[1]))
        elif mnemonic == "rdcycle":
            builder.rdcycle(operands[0])
        elif mnemonic == "rdinstret":
            builder.rdinstret(operands[0])
        elif mnemonic == "jal":
            if len(operands) == 1:
                builder.jal("ra", operands[0])
            else:
                builder.jal(operands[0], operands[1])
        # Regular encodings.
        elif mnemonic in R_TYPE:
            builder.emit(mnemonic, operands[0], operands[1], operands[2])
        elif mnemonic in SHIFT_IMM:
            builder.emit(mnemonic, operands[0], operands[1], _parse_int(operands[2]))
        elif mnemonic in _LOAD_MNEMONICS:
            rd = operands[0]
            offset, base = self._memory_operand(operands[1])
            builder.emit(mnemonic, rd, base, offset)
        elif mnemonic == "jalr":
            if len(operands) == 1:
                builder.emit("jalr", 1, operands[0], 0)
            elif _MEM_OPERAND_RE.match(operands[-1].replace(" ", "")):
                offset, base = self._memory_operand(operands[1])
                builder.emit("jalr", operands[0], base, offset)
            else:
                builder.emit("jalr", operands[0], operands[1], _parse_int(operands[2]))
        elif mnemonic in I_TYPE:
            builder.emit(mnemonic, operands[0], operands[1], _parse_int(operands[2]))
        elif mnemonic in S_TYPE:
            rs2 = operands[0]
            offset, base = self._memory_operand(operands[1])
            builder.emit(mnemonic, rs2, base, offset)
        elif mnemonic in B_TYPE:
            target = operands[2]
            if _is_identifier(target):
                builder.branch(mnemonic, operands[0], operands[1], target)
            else:
                raise AssemblerError("branch targets must be labels")
        elif mnemonic in U_TYPE:
            builder.emit(mnemonic, operands[0], _parse_int(operands[1]))
        elif mnemonic in CSR_OPS:
            builder.emit(
                mnemonic,
                operands[0],
                _csr_operand(operands[1]),
                _parse_int(operands[2]) if CSR_OPS[mnemonic][1] else parse_register(operands[2]),
            )
        elif mnemonic in ("ecall", "ebreak", "fence", "fence.i"):
            builder.emit(mnemonic)
        # RoCC decimal instructions by Table II name (checked after the
        # standard mnemonics so e.g. the integer load "ld" wins over the
        # accelerator LD; a "rocc." prefix selects the accelerator form
        # unambiguously).
        elif mnemonic.upper() in DecimalFunct.BY_NAME:
            self._rocc(mnemonic.upper(), operands)
        elif mnemonic.startswith("rocc.") and mnemonic[5:].upper() in DecimalFunct.BY_NAME:
            self._rocc(mnemonic[5:].upper(), operands)
        else:
            raise AssemblerError(f"unknown mnemonic: {mnemonic!r}")

    def _rocc(self, name: str, operands: list) -> None:
        """``dec_add rd, rs1, rs2`` style RoCC instruction."""
        rd = operands[0] if len(operands) > 0 else 0
        rs1 = operands[1] if len(operands) > 1 else 0
        rs2 = operands[2] if len(operands) > 2 else 0
        self.builder.rocc(
            name,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            xd=len(operands) > 0,
            xs1=len(operands) > 1,
            xs2=len(operands) > 2,
        )

    @staticmethod
    def _memory_operand(token: str) -> tuple:
        token = token.replace(" ", "")
        match = _MEM_OPERAND_RE.match(token)
        if not match:
            raise AssemblerError(f"expected offset(base) operand, got {token!r}")
        offset_text = match.group("offset") or "0"
        return _parse_int(offset_text), match.group("base")


def assemble_source(source: str, builder: AsmBuilder = None) -> AsmBuilder:
    """Assemble ``source`` text, returning the populated builder.

    Call :meth:`AsmBuilder.link` on the result to obtain a loadable image.
    """
    builder = builder if builder is not None else AsmBuilder()
    _SourceAssembler(builder).assemble(source)
    return builder
