"""Programmatic assembler.

:class:`AsmBuilder` is the back end shared by the kernel generators
(:mod:`repro.kernels`) and the textual assembler (:mod:`repro.asm.parser`).
It emits real RV64 machine code into a :class:`~repro.asm.program.Program`,
records label fix-ups, and can link itself into an
:class:`~repro.asm.program.Image` in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.isa import csr as csrdefs
from repro.isa.encoder import encode_instruction
from repro.isa.registers import parse_register
from repro.isa.rocc import DecimalFunct, RoccInstruction
from repro.asm.program import (
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    Program,
)

TEXT = ".text"
DATA = ".data"


@dataclass
class Fixup:
    """A placeholder instruction to be patched once addresses are known."""

    section: str
    offset: int
    kind: str  # "branch" | "jal" | "la"
    label: str
    mnemonic: str = ""
    rd: int = 0
    rs1: int = 0
    rs2: int = 0


class AsmBuilder:
    """Emit RV64 instructions and data, then link into a flat image."""

    def __init__(self, program: Program = None) -> None:
        self.program = program if program is not None else Program()
        self.fixups = []
        self._section = TEXT
        # Ensure deterministic section ordering: text first, then data.
        self.program.section(TEXT)
        self.program.section(DATA)

    # ------------------------------------------------------------------ state
    @property
    def current_section(self):
        return self.program.section(self._section)

    def text(self) -> "AsmBuilder":
        """Switch emission to the text section."""
        self._section = TEXT
        return self

    def data(self) -> "AsmBuilder":
        """Switch emission to the data section."""
        self._section = DATA
        return self

    def label(self, name: str) -> str:
        """Define ``name`` at the current position of the current section."""
        self.program.define_symbol(name, self._section, len(self.current_section))
        return name

    def here(self) -> int:
        """Byte offset of the next emission in the current section."""
        return len(self.current_section)

    # ------------------------------------------------------------- raw emits
    def emit_word(self, word: int) -> int:
        """Append a raw 32-bit instruction word to the current section."""
        return self.current_section.append_word(word)

    def emit(self, mnemonic: str, *operands) -> int:
        """Encode and append an instruction; register operands may be names."""
        resolved = []
        for operand in operands:
            if isinstance(operand, str):
                resolved.append(parse_register(operand))
            else:
                resolved.append(operand)
        return self.emit_word(encode_instruction(mnemonic, *resolved))

    # ---------------------------------------------------- label-target emits
    def branch(self, mnemonic: str, rs1, rs2, label: str) -> int:
        """Emit a conditional branch to ``label`` (patched at link time)."""
        offset = self.emit_word(0)
        self.fixups.append(
            Fixup(
                section=self._section,
                offset=offset,
                kind="branch",
                label=label,
                mnemonic=mnemonic,
                rs1=parse_register(rs1),
                rs2=parse_register(rs2),
            )
        )
        return offset

    def jal(self, rd, label: str) -> int:
        """Emit ``jal rd, label`` (patched at link time)."""
        offset = self.emit_word(0)
        self.fixups.append(
            Fixup(
                section=self._section,
                offset=offset,
                kind="jal",
                label=label,
                rd=parse_register(rd),
            )
        )
        return offset

    def j(self, label: str) -> int:
        """Unconditional jump (``jal x0, label``)."""
        return self.jal(0, label)

    def call(self, label: str) -> int:
        """Call a subroutine (``jal ra, label``)."""
        return self.jal(1, label)

    def la(self, rd, symbol: str) -> int:
        """Load the absolute address of ``symbol`` (``lui`` + ``addi`` pair)."""
        rd = parse_register(rd)
        offset = self.emit_word(0)
        self.emit_word(0)
        self.fixups.append(
            Fixup(
                section=self._section,
                offset=offset,
                kind="la",
                label=symbol,
                rd=rd,
            )
        )
        return offset

    # --------------------------------------------------------------- pseudos
    def nop(self) -> int:
        return self.emit("addi", 0, 0, 0)

    def mv(self, rd, rs) -> int:
        return self.emit("addi", rd, rs, 0)

    def ret(self) -> int:
        return self.emit("jalr", 0, 1, 0)

    def jr(self, rs) -> int:
        return self.emit("jalr", 0, rs, 0)

    def not_(self, rd, rs) -> int:
        return self.emit("xori", rd, rs, -1)

    def neg(self, rd, rs) -> int:
        return self.emit("sub", rd, 0, rs)

    def seqz(self, rd, rs) -> int:
        return self.emit("sltiu", rd, rs, 1)

    def snez(self, rd, rs) -> int:
        return self.emit("sltu", rd, 0, rs)

    def beqz(self, rs, label: str) -> int:
        return self.branch("beq", rs, 0, label)

    def bnez(self, rs, label: str) -> int:
        return self.branch("bne", rs, 0, label)

    def bgtz(self, rs, label: str) -> int:
        return self.branch("blt", 0, rs, label)

    def blez(self, rs, label: str) -> int:
        return self.branch("bge", 0, rs, label)

    def li(self, rd, value: int) -> None:
        """Materialise an arbitrary 64-bit constant into ``rd``.

        Uses the conventional ``lui``/``addi`` pair for 32-bit values and a
        shift/add chain for wider constants (at most 8 instructions).
        """
        rd = parse_register(rd)
        value_signed = ((value & 0xFFFFFFFFFFFFFFFF) ^ (1 << 63)) - (1 << 63)
        self._li_signed(rd, value_signed)

    def _li_signed(self, rd: int, value: int) -> None:
        if -2048 <= value <= 2047:
            self.emit("addi", rd, 0, value)
            return
        if -(1 << 31) <= value < (1 << 31):
            hi = (value + 0x800) >> 12
            lo = value - (hi << 12)
            # lui sign-extends bit 31; the +0x800 adjustment keeps hi in range.
            self.emit("lui", rd, hi & 0xFFFFF)
            if lo:
                self.emit("addiw", rd, rd, lo)
            else:
                # Ensure canonical sign extension of the 32-bit value.
                self.emit("addiw", rd, rd, 0)
            return
        lo12 = ((value & 0xFFF) ^ 0x800) - 0x800
        upper = (value - lo12) >> 12
        self._li_signed(rd, upper)
        self.emit("slli", rd, rd, 12)
        if lo12:
            self.emit("addi", rd, rd, lo12)

    # ------------------------------------------------------------------ CSRs
    def csrr(self, rd, csr_addr: int) -> int:
        """Read a CSR (``csrrs rd, csr, x0``)."""
        return self.emit("csrrs", rd, csr_addr, 0)

    def rdcycle(self, rd) -> int:
        """The paper's measurement primitive: read the cycle counter."""
        return self.csrr(rd, csrdefs.CYCLE)

    def rdinstret(self, rd) -> int:
        return self.csrr(rd, csrdefs.INSTRET)

    # ------------------------------------------------------------------ RoCC
    def rocc(
        self,
        function,
        rd=0,
        rs1=0,
        rs2=0,
        xd: bool = False,
        xs1: bool = False,
        xs2: bool = False,
        custom: int = 0,
    ) -> int:
        """Emit a RoCC custom instruction.

        ``function`` is either a Table II mnemonic (``"DEC_ADD"``) or a raw
        ``funct7`` value.
        """
        if isinstance(function, str):
            try:
                funct7 = DecimalFunct.BY_NAME[function.upper()]
            except KeyError:
                raise AssemblerError(
                    f"unknown accelerator function: {function!r}"
                ) from None
        else:
            funct7 = int(function)
        instruction = RoccInstruction(
            funct7=funct7,
            rd=parse_register(rd),
            rs1=parse_register(rs1),
            rs2=parse_register(rs2),
            xd=xd,
            xs1=xs1,
            xs2=xs2,
            custom=custom,
        )
        return self.emit_word(instruction.encode())

    # ------------------------------------------------------------------ data
    def dword(self, *values) -> int:
        """Append 64-bit little-endian data words; returns the first offset."""
        first = None
        for value in values:
            offset = self.current_section.append_dword(value)
            if first is None:
                first = offset
        return first if first is not None else self.here()

    def word(self, *values) -> int:
        """Append 32-bit little-endian data words; returns the first offset."""
        first = None
        for value in values:
            offset = self.current_section.append_word(value)
            if first is None:
                first = offset
        return first if first is not None else self.here()

    def byte(self, *values) -> int:
        first = None
        for value in values:
            offset = self.current_section.append_bytes(bytes([value & 0xFF]))
            if first is None:
                first = offset
        return first if first is not None else self.here()

    def asciz(self, string: str) -> int:
        return self.current_section.append_bytes(string.encode("ascii") + b"\x00")

    def space(self, count: int, fill: int = 0) -> int:
        return self.current_section.append_bytes(bytes([fill & 0xFF]) * count)

    def align(self, boundary: int) -> None:
        self.current_section.align(boundary)

    # ------------------------------------------------- stack-frame utilities
    def prologue(self, saved_registers=("ra",), extra_bytes: int = 0) -> int:
        """Standard function prologue: allocate a frame and save registers."""
        saved = [parse_register(reg) for reg in saved_registers]
        frame = (len(saved) * 8 + extra_bytes + 15) // 16 * 16
        self.emit("addi", 2, 2, -frame)
        for index, reg in enumerate(saved):
            self.emit("sd", reg, 2, index * 8)
        return frame

    def epilogue(self, saved_registers=("ra",), extra_bytes: int = 0) -> None:
        """Matching epilogue: restore registers, free the frame and return."""
        saved = [parse_register(reg) for reg in saved_registers]
        frame = (len(saved) * 8 + extra_bytes + 15) // 16 * 16
        for index, reg in enumerate(saved):
            self.emit("ld", reg, 2, index * 8)
        self.emit("addi", 2, 2, frame)
        self.ret()

    # ------------------------------------------------------------------ link
    def link(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
        entry_symbol: str = None,
    ):
        """Lay out sections, resolve fix-ups and return an Image."""
        from repro.asm.linker import Linker

        if entry_symbol is not None:
            self.program.entry_symbol = entry_symbol
        linker = Linker(text_base=text_base, data_base=data_base)
        return linker.link(self.program, self.fixups)
