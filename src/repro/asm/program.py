"""Program, section and image containers shared by the assembler and linker."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import LinkError

#: Default load addresses.  Kept in the positive 31-bit range so that
#: ``lui``/``addi`` address materialisation needs no 64-bit fix-ups.
DEFAULT_TEXT_BASE = 0x1000_0000
DEFAULT_DATA_BASE = 0x2000_0000

#: Conventional MMIO address for the HTIF-style "tohost" register: writing an
#: odd value terminates simulation with exit code ``value >> 1``; writing an
#: even value prints the low byte to the console.
TOHOST_ADDRESS = 0x4000_0000


@dataclass
class Section:
    """A named, contiguous chunk of bytes with a (possibly unresolved) base."""

    name: str
    base: int = None
    data: bytearray = field(default_factory=bytearray)

    def __len__(self) -> int:
        return len(self.data)

    def append_bytes(self, raw: bytes) -> int:
        """Append raw bytes; return the offset they were placed at."""
        offset = len(self.data)
        self.data.extend(raw)
        return offset

    def append_word(self, value: int) -> int:
        """Append a 32-bit little-endian word."""
        return self.append_bytes(struct.pack("<I", value & 0xFFFFFFFF))

    def append_dword(self, value: int) -> int:
        """Append a 64-bit little-endian word."""
        return self.append_bytes(struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def align(self, boundary: int) -> None:
        """Pad with zero bytes up to ``boundary`` alignment."""
        remainder = len(self.data) % boundary
        if remainder:
            self.data.extend(b"\x00" * (boundary - remainder))

    def patch_word(self, offset: int, value: int) -> None:
        """Overwrite a previously appended 32-bit word (used by fix-ups)."""
        if offset + 4 > len(self.data):
            raise LinkError(f"patch outside section {self.name!r}: offset {offset}")
        self.data[offset:offset + 4] = struct.pack("<I", value & 0xFFFFFFFF)


@dataclass
class Program:
    """An assembled program: sections plus a symbol table (pre-layout)."""

    sections: dict = field(default_factory=dict)
    #: symbol name -> (section name, offset)
    symbols: dict = field(default_factory=dict)
    entry_symbol: str = "_start"

    def section(self, name: str) -> Section:
        """Get or create a section by name."""
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    def define_symbol(self, name: str, section: str, offset: int) -> None:
        if name in self.symbols:
            raise LinkError(f"duplicate symbol: {name!r}")
        self.symbols[name] = (section, offset)

    def has_symbol(self, name: str) -> bool:
        return name in self.symbols


@dataclass
class Image:
    """A laid-out program: every byte has an absolute address."""

    #: section name -> (base address, bytes)
    segments: dict
    #: symbol name -> absolute address
    symbols: dict
    entry: int

    def symbol(self, name: str) -> int:
        """Absolute address of a symbol."""
        try:
            return self.symbols[name]
        except KeyError:
            raise LinkError(f"undefined symbol: {name!r}") from None

    def total_size(self) -> int:
        """Total number of bytes across all segments."""
        return sum(len(data) for _base, data in self.segments.values())

    def iter_bytes(self):
        """Yield ``(address, bytes)`` pairs for loading into memory."""
        for _name, (base, data) in self.segments.items():
            yield base, bytes(data)

    def segment_range(self, name: str) -> tuple:
        """Return ``(base, end)`` addresses of a named segment."""
        base, data = self.segments[name]
        return base, base + len(data)
