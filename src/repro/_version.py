"""Single source of truth for the package version."""

__version__ = "0.1.0"
