"""Command-line entry point for paper-scale evaluation campaigns.

Runs a Table IV-style campaign through the sharded multiprocess engine
(:mod:`repro.core.campaign`) and prints the merged table plus a campaign
summary.  Typical paper-scale invocation::

    PYTHONPATH=src python -m repro.campaign --samples 8000 --workers 4

With the default ``--shards-per-cell 1`` the output is bit-identical to the
serial ``EvaluationFramework.evaluate_table_iv`` at the same seed; raise it
to shard each solution's vector set across workers too (see
docs/campaigns.md for the determinism trade-off).

``--workload NAME[,NAME...]`` swaps (or multiplies) the operand scenario:
each registered workload (docs/workloads.md, ``--list-workloads``) becomes
its own set of cells, rendered as per-workload tables plus a cross-workload
speedup comparison::

    PYTHONPATH=src python -m repro.campaign --samples 2000 --workers 4 \\
        --workload telco-billing,carry-stress,special-values

``--format NAME[,NAME...]`` adds the interchange-format axis
(docs/formats.md): each named format gets its own kernels, accelerator
sizing, operand distributions and oracle contexts.  With ``--differential``
and no explicit workload list, every registered format-compatible workload
is co-simulated across spike/rocket/gem5 under each format::

    PYTHONPATH=src python -m repro.campaign --samples 200 --workers 4 \\
        --format decimal64,decimal128 --differential

``--op NAME[,NAME...]`` adds the operation axis (docs/operations.md):
every requested decimal operation (multiply/add/subtract/fma, aliases
mul/sub/mac) is measured — and, with ``--differential``, co-simulated and
dual-oracle checked — per format, rendered as one speedup table per
(operation, format) group plus a cross-operation comparison::

    PYTHONPATH=src python -m repro.campaign --samples 200 --workers 4 \\
        --op mul,add,fma --format decimal64,decimal128 --differential

``--pipeline-sweep`` runs the microarchitecture design-space study
(docs/pipeline.md): every staged-pipeline (depth × width) variant of
Method-1 — plus the software baseline — is measured per requested format
and operation, and each group renders a cycles-vs-area Pareto frontier::

    PYTHONPATH=src python -m repro.campaign --samples 200 --workers 4 \\
        --pipeline-sweep --depths 1,2,4,8 --widths 1,2,4 --differential
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core import reporting
from repro.core.campaign import (
    run_format_campaign,
    run_operation_campaign,
    run_pipeline_sweep_campaign,
    run_table_iv_campaign,
    run_workload_campaign,
)
from repro.testgen.config import SolutionKind
from repro.verification.database import OperandClass
from repro.workloads import registered_workloads, workloads_for_format


def _parse_workloads(text: str):
    from repro.errors import ConfigurationError
    from repro.workloads import get_workload

    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(
            "--workload needs at least one workload name"
        )
    for name in names:
        try:
            get_workload(name)  # unknown names get the registry's
        except ConfigurationError as error:  # did-you-mean message
            raise argparse.ArgumentTypeError(str(error)) from None
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise argparse.ArgumentTypeError(
            f"duplicate workload name(s): {', '.join(sorted(duplicates))}"
        )
    return names


def _parse_formats(text: str):
    from repro.decnumber.formats import resolve_format_name
    from repro.errors import DecimalError

    names = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            names.append(resolve_format_name(part))
        except DecimalError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
    if not names:
        raise argparse.ArgumentTypeError("--format needs at least one format name")
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise argparse.ArgumentTypeError(
            f"duplicate format name(s): {', '.join(sorted(duplicates))}"
        )
    return tuple(names)


def _parse_operations(text: str):
    from repro.decnumber.operations import resolve_operation_name
    from repro.errors import DecimalError

    names = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            names.append(resolve_operation_name(part))
        except DecimalError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
    if not names:
        raise argparse.ArgumentTypeError("--op needs at least one operation name")
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise argparse.ArgumentTypeError(
            f"duplicate operation name(s): {', '.join(sorted(duplicates))}"
        )
    return tuple(names)


def _parse_positive_ints(flag: str):
    def parse(text: str):
        values = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                value = int(part)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"{flag} values must be integers, got {part!r}"
                ) from None
            if value < 1:
                raise argparse.ArgumentTypeError(
                    f"{flag} values must be positive, got {value}"
                )
            values.append(value)
        if not values:
            raise argparse.ArgumentTypeError(f"{flag} needs at least one value")
        duplicates = {value for value in values if values.count(value) > 1}
        if duplicates:
            raise argparse.ArgumentTypeError(
                f"duplicate {flag} value(s): "
                f"{', '.join(str(v) for v in sorted(duplicates))}"
            )
        return tuple(values)

    return parse


def _parse_kinds(text: str):
    kinds = tuple(part.strip() for part in text.split(",") if part.strip())
    for kind in kinds:
        if kind not in SolutionKind.ALL:
            raise argparse.ArgumentTypeError(
                f"unknown solution kind {kind!r} (choose from {SolutionKind.ALL})"
            )
    return kinds


def _parse_classes(text: str):
    classes = tuple(part.strip() for part in text.split(",") if part.strip())
    for name in classes:
        if name not in OperandClass.ALL:
            raise argparse.ArgumentTypeError(
                f"unknown operand class {name!r} (choose from {OperandClass.ALL})"
            )
    return classes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_BENCH_SAMPLES", 200)),
        help="samples per cell (default 200; paper scale 8000)",
    )
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1,
        help="worker processes (default: CPU count; 1 = serial in-process)",
    )
    parser.add_argument(
        "--shards-per-cell", type=int, default=1,
        help="contiguous shards per cell (1 = bit-identical to serial)",
    )
    parser.add_argument("--repetitions", type=int, default=1,
                        help="kernel repetitions per sample")
    parser.add_argument("--seed", type=int, default=2018,
                        help="operand-database seed")
    parser.add_argument(
        "--kinds", type=_parse_kinds, default=None,
        help="comma-separated solution kinds (default: all three Table IV rows)",
    )
    parser.add_argument(
        "--classes", type=_parse_classes, default=None,
        help="comma-separated operand classes (default: the Table IV mix; "
             "mutually exclusive with --workload)",
    )
    parser.add_argument(
        "--workload", type=_parse_workloads, default=None, metavar="NAME[,NAME...]",
        help=(
            "registered workload scenario(s) to evaluate (see "
            "--list-workloads and docs/workloads.md); more than one name "
            "fans (solution x workload) cells across the shards and renders "
            "per-workload tables plus a cross-workload speedup comparison"
        ),
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="list registered workloads and exit",
    )
    parser.add_argument(
        "--format", type=_parse_formats, default=None, metavar="NAME[,NAME...]",
        dest="formats",
        help=(
            "interchange format(s) to evaluate: decimal64 and/or decimal128 "
            "(docs/formats.md); more than one name fans (format x solution) "
            "cells and renders per-format speedup tables.  Combined with "
            "--differential and no explicit --workload, every registered "
            "format-compatible workload is co-simulated under each format"
        ),
    )
    parser.add_argument(
        "--op", type=_parse_operations, default=None, metavar="NAME[,NAME...]",
        dest="operations",
        help=(
            "decimal operation(s) to evaluate: multiply, add, subtract "
            "and/or fma (aliases mul/sub/mac; docs/operations.md); fans "
            "(operation x format x solution) cells and renders one speedup "
            "table per (operation, format) group plus a cross-operation "
            "comparison.  Defaults to the paper's multiply-only campaign"
        ),
    )
    parser.add_argument(
        "--pipeline-sweep", action="store_true",
        help=(
            "microarchitecture design-space study (docs/pipeline.md): "
            "measure every staged-pipeline (depth x width) Method-1 "
            "variant plus the software baseline per format/operation and "
            "render a cycles-vs-area Pareto frontier per group"
        ),
    )
    parser.add_argument(
        "--depths", type=_parse_positive_ints("--depths"), default=(1, 2, 4, 8),
        metavar="N[,N...]",
        help="pipeline stage depths to sweep (default 1,2,4,8; "
             "requires --pipeline-sweep)",
    )
    parser.add_argument(
        "--widths", type=_parse_positive_ints("--widths"), default=(1, 2, 4),
        metavar="N[,N...]",
        help="issue widths to sweep (default 1,2,4; requires --pipeline-sweep)",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help=(
            "cross-model differential mode: co-simulate every cell on "
            "spike+rocket+gem5 with the dual (decnumber + stdlib decimal) "
            "oracle, and render the divergence/coverage table; the exit "
            "status is non-zero on any divergence (docs/verification.md)"
        ),
    )
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the functional verification pass")
    parser.add_argument(
        "--mp-start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (default: platform default)",
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the campaign summary as JSON")
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help=(
            "content-addressed result cache directory (docs/service.md): "
            "cells already stored under the same inputs + code version are "
            "served from disk instead of re-simulated, and fresh cells are "
            "persisted for the next run.  The same store backs the "
            "long-running service (python -m repro.serve)"
        ),
    )
    return parser


def _render_cache_line(result, cache) -> str:
    """One-line cache accounting printed under the campaign summary."""
    total = result.cache_hits + result.cache_misses
    rate = result.cache_hits / total if total else 0.0
    return (
        f"result cache: {result.cache_hits}/{total} cells served from "
        f"{cache.path} ({rate:.0%} hit rate, {len(cache)} entries stored)"
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_workloads:
        for name, workload in sorted(registered_workloads().items()):
            print(f"{name:<16s} {workload.description}")
        return 0
    if args.workload and args.classes is not None:
        build_parser().error(
            "--classes and --workload are mutually exclusive: a workload "
            "defines its own operand distribution"
        )
    if args.pipeline_sweep and args.workload:
        build_parser().error(
            "--pipeline-sweep and --workload are mutually exclusive: the "
            "sweep measures the Table IV operand mix per design point"
        )
    if args.pipeline_sweep and args.kinds:
        build_parser().error(
            "--pipeline-sweep and --kinds are mutually exclusive: the sweep "
            "defines its own design points (Method-1 variants + baseline)"
        )

    cache = None
    if args.cache_dir:
        from repro.service.cache import ResultCache

        cache = ResultCache(args.cache_dir)

    if args.pipeline_sweep:
        # Microarchitecture design-space study: one cell per (operation x
        # format x pipeline design point), rendered as per-group Pareto
        # frontiers over (cycles, gate equivalents).
        from repro.core.pareto import frontier_of, points_from_campaign

        result = run_pipeline_sweep_campaign(
            depths=args.depths,
            widths=args.widths,
            formats=args.formats or ("decimal64",),
            operations=args.operations or ("multiply",),
            num_samples=args.samples,
            repetitions=args.repetitions,
            seed=args.seed,
            operand_classes=(
                args.classes if args.classes is not None
                else OperandClass.TABLE_IV_MIX
            ),
            verify_functionally=not args.no_verify,
            differential=args.differential,
            workers=args.workers,
            shards_per_cell=args.shards_per_cell,
            mp_start_method=args.mp_start_method,
            cache=cache,
        )
        print(reporting.render_pipeline_frontier(result))
        if args.differential:
            print()
            print(reporting.render_differential(result))
        print()
        print(reporting.render_campaign(result))
        if cache is not None:
            print(_render_cache_line(result, cache))
        if args.json:
            summary = result.to_summary()
            summary["pipeline_frontier"] = {}
            for (op, fmt), points in points_from_campaign(result).items():
                frontier = frontier_of(points)
                summary["pipeline_frontier"][f"{op}/{fmt}"] = [
                    {
                        "name": point.name,
                        "avg_cycles": round(point.avg_cycles, 3),
                        "gate_equivalents": round(point.gate_equivalents, 1),
                        "flip_flops": point.flip_flops,
                        "pareto": point in frontier,
                    }
                    for point in sorted(
                        points,
                        key=lambda p: (p.avg_cycles, p.gate_equivalents, p.name),
                    )
                ]
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=2)
                handle.write("\n")
            print(f"summary -> {os.path.abspath(args.json)}")
        if args.differential and not result.differential_clean:
            return 1
        return 0

    common = dict(
        num_samples=args.samples,
        kinds=args.kinds,
        repetitions=args.repetitions,
        seed=args.seed,
        verify_functionally=not args.no_verify,
        workers=args.workers,
        shards_per_cell=args.shards_per_cell,
        mp_start_method=args.mp_start_method,
        differential=args.differential,
        cache=cache,
    )
    if args.operations is not None:
        # Operation axis: one cell group per (operation x format x
        # workload-or-mix x solution), rendered as per-operation speedup
        # tables.  Kinds default to the two verifiable Table IV rows — the
        # dummy row measures multiply-shaped stub traffic and contributes
        # nothing to a per-operation comparison.
        result = run_operation_campaign(
            args.operations,
            formats=args.formats or ("decimal64",),
            operand_classes=(
                args.classes if args.classes is not None
                else OperandClass.TABLE_IV_MIX
            ),
            workloads=args.workload,
            **common,
        )
        tables = result.table_iv_by_operation()
        print(reporting.render_operation_tables(result, tables=tables))
        if len(tables) > 1:
            print()
            print(reporting.render_operation_matrix(result, tables=tables))
    elif args.formats is not None:
        # Explicit format axis: one cell group per (format x workload-or-mix
        # x solution), rendered as per-format speedup tables.  In
        # differential mode with no explicit workload list, every
        # registered workload compatible with a requested format runs —
        # the "does the whole pipeline generalise?" sweep.
        workloads = args.workload
        if args.differential and not workloads and args.classes is None:
            workloads = tuple(sorted({
                name
                for fmt in args.formats
                for name in workloads_for_format(fmt)
            }))
        result = run_format_campaign(
            args.formats,
            operand_classes=(
                args.classes if args.classes is not None
                else OperandClass.TABLE_IV_MIX
            ),
            workloads=workloads,
            **common,
        )
        tables = result.table_iv_grouped()
        print(reporting.render_format_tables(result, tables=tables))
        if len(tables) > 1:
            print()
            print(reporting.render_format_matrix(result, tables=tables))
    elif args.workload and len(args.workload) > 1:
        result = run_workload_campaign(args.workload, **common)
        tables = result.table_iv_by_workload()
        print(reporting.render_workload_tables(result, tables=tables))
        print()
        print(reporting.render_workload_matrix(result, tables=tables))
    else:
        # Zero or one workload: a plain Table IV campaign.  With
        # --workload paper-uniform this is bit-identical to the default
        # class-mix path at the same seed.
        workload = args.workload[0] if args.workload else None
        result = run_table_iv_campaign(
            operand_classes=(
                args.classes if args.classes is not None
                else OperandClass.TABLE_IV_MIX
            ),
            workload=workload,
            **common,
        )
        tables = {workload: result.table_iv()}
        if workload is None:
            print(reporting.render_table_iv(tables[None]))
        else:
            # The paper's published rows only make sense next to the
            # paper's own operand mix.
            print(reporting.render_workload_tables(
                result, include_paper=(workload == "paper-uniform"),
                tables=tables,
            ))
    if args.differential:
        print()
        print(reporting.render_differential(result))
    print()
    print(reporting.render_campaign(result))
    if cache is not None:
        print(_render_cache_line(result, cache))
    if args.json:
        summary = result.to_summary()
        if args.operations is not None:
            summary["table_iv_rows"] = {
                f"{op}/{fmt}/{workload or 'default'}": table.rows()
                for (op, fmt, workload), table in tables.items()
            }
        elif args.formats is not None:
            summary["table_iv_rows"] = {
                f"{fmt}/{workload or 'default'}": table.rows()
                for (fmt, workload), table in tables.items()
            }
        else:
            summary["table_iv_rows"] = {
                workload or "default": table.rows()
                for workload, table in tables.items()
            }
            if not args.workload:
                # Pre-workload schema: a single default campaign keeps its
                # rows as a flat list.
                summary["table_iv_rows"] = summary["table_iv_rows"]["default"]
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"summary -> {os.path.abspath(args.json)}")
    if args.differential and not result.differential_clean:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
