"""Command-line entry point for paper-scale evaluation campaigns.

Runs a Table IV-style campaign through the sharded multiprocess engine
(:mod:`repro.core.campaign`) and prints the merged table plus a campaign
summary.  Typical paper-scale invocation::

    PYTHONPATH=src python -m repro.campaign --samples 8000 --workers 4

With the default ``--shards-per-cell 1`` the output is bit-identical to the
serial ``EvaluationFramework.evaluate_table_iv`` at the same seed; raise it
to shard each solution's vector set across workers too (see
docs/campaigns.md for the determinism trade-off).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core import reporting
from repro.core.campaign import run_table_iv_campaign
from repro.testgen.config import SolutionKind
from repro.verification.database import OperandClass


def _parse_kinds(text: str):
    kinds = tuple(part.strip() for part in text.split(",") if part.strip())
    for kind in kinds:
        if kind not in SolutionKind.ALL:
            raise argparse.ArgumentTypeError(
                f"unknown solution kind {kind!r} (choose from {SolutionKind.ALL})"
            )
    return kinds


def _parse_classes(text: str):
    classes = tuple(part.strip() for part in text.split(",") if part.strip())
    for name in classes:
        if name not in OperandClass.ALL:
            raise argparse.ArgumentTypeError(
                f"unknown operand class {name!r} (choose from {OperandClass.ALL})"
            )
    return classes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--samples", type=int,
        default=int(os.environ.get("REPRO_BENCH_SAMPLES", 200)),
        help="samples per cell (default 200; paper scale 8000)",
    )
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1,
        help="worker processes (default: CPU count; 1 = serial in-process)",
    )
    parser.add_argument(
        "--shards-per-cell", type=int, default=1,
        help="contiguous shards per cell (1 = bit-identical to serial)",
    )
    parser.add_argument("--repetitions", type=int, default=1,
                        help="kernel repetitions per sample")
    parser.add_argument("--seed", type=int, default=2018,
                        help="operand-database seed")
    parser.add_argument(
        "--kinds", type=_parse_kinds, default=None,
        help="comma-separated solution kinds (default: all three Table IV rows)",
    )
    parser.add_argument(
        "--classes", type=_parse_classes, default=OperandClass.TABLE_IV_MIX,
        help="comma-separated operand classes (default: the Table IV mix)",
    )
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the functional verification pass")
    parser.add_argument(
        "--mp-start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (default: platform default)",
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the campaign summary as JSON")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    result = run_table_iv_campaign(
        num_samples=args.samples,
        kinds=args.kinds,
        repetitions=args.repetitions,
        seed=args.seed,
        operand_classes=args.classes,
        verify_functionally=not args.no_verify,
        workers=args.workers,
        shards_per_cell=args.shards_per_cell,
        mp_start_method=args.mp_start_method,
    )
    table = result.table_iv()
    print(reporting.render_table_iv(table))
    print()
    print(reporting.render_campaign(result))
    if args.json:
        summary = result.to_summary()
        summary["table_iv_rows"] = table.rows()
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"summary -> {os.path.abspath(args.json)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
