"""The decimal RoCC accelerator (paper Fig. 4, Table II instruction set).

The accelerator contains (Fig. 4): a register set, a BCD carry-lookahead
adder, control logic, and the decode/interface and execution FSMs.  On top of
those, this model adds a wide BCD accumulator used by ``DEC_ACCUM`` so that a
full 32-digit product can be accumulated inside the accelerator — this is how
the Method-1 kernel keeps the paper's "accumulate partial products in
hardware" step functionally exact for decimal64 operands (see DESIGN.md).

Operand selection follows the RoCC flag semantics exactly as in the paper:
when ``xs1``/``xs2`` is set the operand value travels with the command from a
Rocket core register, otherwise the corresponding 5-bit field addresses the
accelerator's own register set; when ``xd`` is set the core blocks until the
accelerator responds with a value for core register ``rd``, otherwise the
result stays inside the accelerator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import AcceleratorError
from repro.hw.bcd_adder import BcdCarryLookaheadAdder
from repro.hw.bcd_multiplier import BcdMultiplier
from repro.hw.binary_to_bcd import BinaryToBcdConverter
from repro.hw.cost import AreaReport, GateCost, register_cost
from repro.isa.rocc import DecimalFunct
from repro.rocc.fsm import FsmState, InterfaceFsm
from repro.rocc.interface import Accelerator, RoccCommand, RoccResult
from repro.rocc.pipeline import AcceleratorPipeline
from repro.rocc.regfile import AcceleratorRegisterFile

#: RD selector values above the register file: the two low accumulator words
#: and the status register (the original decimal64 read surface).
ACC_LO_SELECTOR = 16
ACC_HI_SELECTOR = 17
STATUS_SELECTOR = 18

#: RD selectors for accumulator words beyond the first two (wider formats):
#: word k of the accumulator reads through ``ACC_WORD_SELECTORS[k]``.  The
#: low two words keep their historic selector values so decimal64 kernels
#: are unchanged; words 2+ continue after the status register.
ACC_WORD_SELECTORS = (ACC_LO_SELECTOR, ACC_HI_SELECTOR, 19, 20, 21, 22)

#: RD selectors for word lanes of wide register-file registers.  These do
#: not fit the 5-bit rs2 field, so kernels pass them by value (``xs2=1``):
#: ``selector = REGFILE_WORD_SELECTOR_BASE + 4 * register + lane``.
REGFILE_WORD_SELECTOR_BASE = 64
REGFILE_WORD_LANES = 4


def acc_word_selector(word: int) -> int:
    """RD selector for accumulator word ``word`` (64 bits each)."""
    if not 0 <= word < len(ACC_WORD_SELECTORS):
        raise AcceleratorError(f"no RD selector for accumulator word {word}")
    return ACC_WORD_SELECTORS[word]


def regfile_word_selector(register: int, word: int) -> int:
    """RD selector (passed by value) for one word lane of a wide register."""
    if not 0 <= word < REGFILE_WORD_LANES:
        raise AcceleratorError(f"register word lane out of range: {word}")
    return REGFILE_WORD_SELECTOR_BASE + REGFILE_WORD_LANES * register + word

_MASK64 = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class DecimalAcceleratorConfig:
    """Datapath configuration (the co-design knobs a framework user can turn).

    ``digits`` is the operand digit width the datapath is sized for — the
    coefficient precision of the interchange format the accelerator serves
    (16 for decimal64, 34 for decimal128).  Register width, accumulator
    width and adder pass counts all follow from it; use :meth:`for_format`
    to derive the whole configuration from a format spec.
    """

    num_registers: int = 16
    register_width_digits: int = 20
    accumulator_digits: int = 32
    adder_width_digits: int = 20
    adder_latency_cycles: int = 1
    include_multiplier: bool = False
    include_converter: bool = True
    digits: int = 16
    #: Microarchitecture knobs (docs/pipeline.md).  ``pipeline_depth`` is the
    #: physical register stage count of the staged datapath; ``issue_width``
    #: the number of stage-0 issue slots.  The 1/1 default is timing-identical
    #: to the paper's blocking FSM; ``pipelined=False`` removes the pipeline
    #: model entirely (the legacy timing path, kept for lockstep tests).
    pipeline_depth: int = 1
    issue_width: int = 1
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.digits < 1:
            raise AcceleratorError("operand digit width must be positive")
        if self.pipeline_depth < 1:
            raise AcceleratorError("pipeline depth must be positive")
        if self.issue_width < 1:
            raise AcceleratorError("issue width must be positive")
        if self.register_width_digits < self.digits + 1:
            # Multiples of a ``digits``-digit coefficient reach digits + 1.
            raise AcceleratorError(
                f"register width must hold at least {self.digits + 1} digits "
                f"for {self.digits}-digit operands"
            )
        if self.accumulator_digits < 2 * self.digits:
            raise AcceleratorError(
                f"the accumulator must hold a full {2 * self.digits}-digit "
                f"product of {self.digits}-digit operands"
            )

    @classmethod
    def for_format(cls, fmt, **overrides) -> "DecimalAcceleratorConfig":
        """Datapath sized for an interchange format (spec or name).

        The decimal64 result is exactly the historical default
        configuration (16-digit operands, 20-digit registers, 32-digit
        accumulator, 20-digit adder); wider formats scale the same shape.
        """
        from repro.decnumber.formats import get_format

        spec = get_format(fmt)
        params = dict(
            digits=spec.precision,
            register_width_digits=spec.precision + 4,
            accumulator_digits=spec.product_digits,
            adder_width_digits=spec.precision + 4,
        )
        params.update(overrides)
        return cls(**params)

    @property
    def accumulator_words(self) -> int:
        """64-bit words needed to read the full accumulator back."""
        return -(-(4 * self.accumulator_digits) // 64)

    @property
    def register_words(self) -> int:
        """64-bit word lanes of one register-file register."""
        return -(-(4 * self.register_width_digits) // 64)

    def area_report(self) -> AreaReport:
        """Hardware overhead of this configuration (no accelerator needed).

        This is the single area model: :meth:`DecimalAccelerator.
        area_report` delegates here, and solution-level overhead queries
        (:meth:`repro.core.solution.CoDesignSolution.hardware_overhead`)
        read it straight off the config instead of instantiating a full
        accelerator.
        """
        report = AreaReport()
        report.add(
            AcceleratorRegisterFile(
                num_registers=self.num_registers,
                width_bits=4 * self.register_width_digits,
            ).cost()
        )
        report.add(
            register_cost(
                f"accumulator ({self.accumulator_digits} digits)",
                4 * self.accumulator_digits,
            )
        )
        hardware_adder = BcdCarryLookaheadAdder(
            width_digits=self.adder_width_digits,
            latency_cycles=self.adder_latency_cycles,
        )
        report.add(hardware_adder.cost())
        report.add(GateCost("decode + interface FSM", 350.0, 4, flip_flops=18))
        report.add(GateCost("operand multiplexers", 4.0 * 2 * self.accumulator_digits, 2))
        if self.include_multiplier:
            for component in BcdMultiplier(operand_digits=self.digits).cost().components:
                report.add(component)
        if self.include_converter:
            converter = BinaryToBcdConverter(
                input_bits=64, output_digits=self.register_width_digits
            )
            for component in converter.cost().components:
                report.add(component)
        # Staged-pipeline overhead (docs/pipeline.md).  Both terms are zero at
        # the blocking-equivalent depth=1 / width=1 point, so the paper's
        # Table V area is unchanged for the baseline design.
        if self.pipeline_depth > 1:
            # One latch rank per stage boundary, wide enough for the datapath
            # result in flight plus per-stage control/valid bits.
            boundary_bits = 4 * self.accumulator_digits + 16
            report.add(
                register_cost(
                    f"pipeline stage registers ({self.pipeline_depth} stages)",
                    (self.pipeline_depth - 1) * boundary_bits,
                )
            )
        if self.issue_width > 1:
            # Each extra issue slot buffers a full RoCC command (two 64-bit
            # operands + funct7/rd/rs1/rs2 + flags) and a pending response
            # (64-bit data + rd tag), plus the select/arbiter logic.
            command_bits = 2 * 64 + 7 + 3 * 5 + 3
            response_bits = 64 + 5
            extra = self.issue_width - 1
            report.add(
                register_cost(
                    f"issue/retire queues (width {self.issue_width})",
                    extra * (command_bits + response_bits),
                )
            )
            report.add(
                GateCost(
                    "issue arbiter + retire select",
                    60.0 * extra,
                    3,
                )
            )
        return report


class DecimalAccelerator(Accelerator):
    """Executes the Table II decimal instructions behind the RoCC interface."""

    name = "decimal-accelerator"

    def __init__(self, config: DecimalAcceleratorConfig = None) -> None:
        super().__init__()
        self.config = config if config is not None else DecimalAcceleratorConfig()
        self.regfile = AcceleratorRegisterFile(
            num_registers=self.config.num_registers,
            width_bits=4 * self.config.register_width_digits,
        )
        # One functional adder wide enough for the accumulator; the *hardware*
        # adder is adder_width_digits wide and wider additions take multiple
        # passes (reflected in busy cycles, not in values).
        self.adder = BcdCarryLookaheadAdder(
            width_digits=self.config.accumulator_digits,
            latency_cycles=self.config.adder_latency_cycles,
        )
        self.multiplier = (
            BcdMultiplier(operand_digits=self.config.digits)
            if self.config.include_multiplier
            else None
        )
        self.converter = (
            BinaryToBcdConverter(input_bits=64, output_digits=self.config.register_width_digits)
            if self.config.include_converter
            else None
        )
        self.fsm = InterfaceFsm()
        if self.config.pipelined:
            self.pipeline = AcceleratorPipeline(
                depth=self.config.pipeline_depth,
                width=self.config.issue_width,
            )
        self.accumulator = 0
        self.status = 0
        self.function_counts = Counter()
        self._acc_mask = (1 << (4 * self.config.accumulator_digits)) - 1
        self._reg_mask = (1 << (4 * self.config.register_width_digits)) - 1

    # ------------------------------------------------------------------ helpers
    def _adder_passes(self, digits_needed: int) -> int:
        """Datapath passes of the (narrower) hardware adder for a wide add."""
        width = self.config.adder_width_digits
        return max(1, -(-digits_needed // width))  # ceil division

    def _operand(self, use_core_value: bool, value: int, field: int) -> int:
        if use_core_value:
            return value
        return self.regfile.read(field)

    @staticmethod
    def _require_bcd(value: int, what: str) -> None:
        probe = value
        while probe:
            if probe & 0xF > 9:
                raise AcceleratorError(f"{what} is not valid packed BCD")
            probe >>= 4

    # ----------------------------------------------------------------- commands
    def execute_command(self, command: RoccCommand, memory) -> RoccResult:
        funct = command.funct7
        self.function_counts[command.function_name] += 1
        if funct == DecimalFunct.WR:
            return self._cmd_write(command)
        if funct == DecimalFunct.RD:
            return self._cmd_read(command)
        if funct == DecimalFunct.LD:
            return self._cmd_load(command, memory)
        if funct == DecimalFunct.ACCUM:
            return self._cmd_accum_binary(command)
        if funct == DecimalFunct.DEC_ADD:
            return self._cmd_dec_add(command)
        if funct == DecimalFunct.CLR_ALL:
            return self._cmd_clear(command)
        if funct == DecimalFunct.DEC_CNV:
            return self._cmd_convert(command)
        if funct == DecimalFunct.DEC_MUL:
            return self._cmd_multiply(command)
        if funct == DecimalFunct.DEC_ACCUM:
            return self._cmd_dec_accum(command)
        if funct == DecimalFunct.DEC_ADDSUB:
            return self._cmd_dec_addsub(command)
        if funct == DecimalFunct.DEC_FMA_ACC:
            return self._cmd_dec_fma_acc(command)
        if funct == DecimalFunct.DEC_ADDC:
            return self._cmd_dec_addc(command)
        if funct == DecimalFunct.DEC_SUBB:
            return self._cmd_dec_subb(command)
        raise AcceleratorError(f"unknown accelerator function funct7={funct:#04x}")

    # WR: move a core register value into the accelerator register set.
    # The rd field selects the destination *word lane* for registers wider
    # than one machine word: lane 0 (the decimal64 kernels' encoding)
    # replaces the whole register, lane k > 0 merges bits [64k, 64k+64).
    def _cmd_write(self, command: RoccCommand) -> RoccResult:
        self.require(command.xs1, "WR needs the operand value from the core (xs1)")
        destination = int(command.rs2_value if command.xs2 else command.rs2)
        index = destination % self.config.num_registers
        if command.rd:
            self.regfile.write_word(index, command.rd, command.rs1_value)
        else:
            self.regfile.write(index, command.rs1_value)
        busy = self.fsm.run_command(FsmState.WRITE, respond=False, busy_cycles=1)
        return RoccResult(has_response=False, value=0, busy_cycles=busy)

    # RD: respond to the core with a value from the accelerator.
    def _cmd_read(self, command: RoccCommand) -> RoccResult:
        self.require(command.xd, "RD must write a core register (xd)")
        selector = command.rs2_value if command.xs2 else command.rs2
        selector = int(selector)
        if selector == STATUS_SELECTOR:
            value = self.status
        elif selector in ACC_WORD_SELECTORS:
            word = ACC_WORD_SELECTORS.index(selector)
            value = (self.accumulator >> (64 * word)) & _MASK64
        elif selector >= REGFILE_WORD_SELECTOR_BASE:
            offset = selector - REGFILE_WORD_SELECTOR_BASE
            index, word = divmod(offset, REGFILE_WORD_LANES)
            value = self.regfile.read_word(
                index % self.config.num_registers, word
            )
        else:
            value = self.regfile.read(selector % self.config.num_registers) & _MASK64
        busy = self.fsm.run_command(FsmState.READ, respond=True, busy_cycles=1)
        return RoccResult(has_response=True, value=value, busy_cycles=busy)

    # LD: fetch a 64-bit value from memory through the RoCC memory interface.
    def _cmd_load(self, command: RoccCommand, memory) -> RoccResult:
        self.require(command.xs1, "LD needs the address from the core (xs1)")
        self.require(memory is not None, "LD needs a memory port")
        destination = (command.rs2_value if command.xs2 else command.rs2)
        value = memory.read(command.rs1_value, 8)
        self.regfile.write(int(destination) % self.config.num_registers, value)
        busy = self.fsm.run_command(FsmState.LOAD, respond=False, busy_cycles=2)
        return RoccResult(
            has_response=False, value=0, busy_cycles=busy, memory_accesses=1
        )

    # ACCUM: binary accumulate into an accelerator register.
    def _cmd_accum_binary(self, command: RoccCommand) -> RoccResult:
        self.require(command.xs1, "ACCUM needs the operand value from the core (xs1)")
        index = command.rd % self.config.num_registers
        total = (self.regfile.read(index) + command.rs1_value) & self._reg_mask
        self.regfile.write(index, total)
        has_response = bool(command.xd)
        busy = self.fsm.run_command(
            FsmState.ACCUM, respond=has_response, busy_cycles=1
        )
        return RoccResult(
            has_response=has_response, value=total & _MASK64, busy_cycles=busy
        )

    # DEC_ADD: BCD addition of two operands through the BCD-CLA.
    def _cmd_dec_add(self, command: RoccCommand) -> RoccResult:
        op1 = self._operand(command.xs1, command.rs1_value, command.rs1)
        op2 = self._operand(command.xs2, command.rs2_value, command.rs2)
        self._require_bcd(op1, "DEC_ADD operand 1")
        self._require_bcd(op2, "DEC_ADD operand 2")
        result = self.adder.add(op1, op2)
        digits_needed = max(
            self.config.register_width_digits,
            16 if (command.xs1 or command.xs2) else self.config.register_width_digits,
        )
        passes = self._adder_passes(digits_needed)
        self.status = (self.status & ~1) | result.carry_out
        if command.xd:
            value = result.value & _MASK64
            busy = self.fsm.run_command(FsmState.DEC_ADD, respond=True, busy_cycles=passes)
            return RoccResult(has_response=True, value=value, busy_cycles=busy)
        self.regfile.write(command.rd % self.config.num_registers, result.value)
        busy = self.fsm.run_command(FsmState.DEC_ADD, respond=False, busy_cycles=passes)
        return RoccResult(has_response=False, value=0, busy_cycles=busy)

    # CLR_ALL: clear the register set, accumulator and status.
    def _cmd_clear(self, command: RoccCommand) -> RoccResult:
        self.regfile.clear_all()
        self.accumulator = 0
        self.status = 0
        busy = self.fsm.run_command(FsmState.CLR_ALL, respond=False, busy_cycles=1)
        return RoccResult(has_response=False, value=0, busy_cycles=busy)

    # DEC_CNV: binary-to-BCD conversion.
    def _cmd_convert(self, command: RoccCommand) -> RoccResult:
        self.require(self.converter is not None, "this configuration has no converter")
        self.require(command.xs1, "DEC_CNV needs the binary value from the core (xs1)")
        conversion = self.converter.convert(command.rs1_value)
        if command.xd:
            busy = self.fsm.run_command(
                FsmState.DEC_CNV, respond=True, busy_cycles=conversion.cycles
            )
            return RoccResult(
                has_response=True, value=conversion.value & _MASK64, busy_cycles=busy
            )
        self.regfile.write(command.rd % self.config.num_registers, conversion.value)
        busy = self.fsm.run_command(
            FsmState.DEC_CNV, respond=False, busy_cycles=conversion.cycles
        )
        return RoccResult(has_response=False, value=0, busy_cycles=busy)

    # DEC_MUL: full BCD multiplication into the accumulator.
    def _cmd_multiply(self, command: RoccCommand) -> RoccResult:
        self.require(
            self.multiplier is not None,
            "this configuration has no hardware multiplier (include_multiplier=False)",
        )
        op1 = self._operand(command.xs1, command.rs1_value, command.rs1) & _MASK64
        op2 = self._operand(command.xs2, command.rs2_value, command.rs2) & _MASK64
        result = self.multiplier.multiply(op1, op2)
        self.accumulator = result.value & self._acc_mask
        has_response = bool(command.xd)
        busy = self.fsm.run_command(
            FsmState.DEC_MUL, respond=has_response, busy_cycles=result.cycles
        )
        return RoccResult(
            has_response=has_response,
            value=self.accumulator & _MASK64,
            busy_cycles=busy,
        )

    # DEC_ACCUM: accumulator = (accumulator << shift digits) + regfile[k].
    def _cmd_dec_accum(self, command: RoccCommand) -> RoccResult:
        index = command.rs1_value if command.xs1 else command.rs1
        index = int(index) % self.config.num_registers
        shift_digits = int(command.rs2_value) if command.xs2 else 1
        if not 0 <= shift_digits <= self.config.accumulator_digits:
            raise AcceleratorError(f"DEC_ACCUM shift out of range: {shift_digits}")
        shifted = (self.accumulator << (4 * shift_digits)) & self._acc_mask
        if shifted >> (4 * shift_digits) != self.accumulator & (
            self._acc_mask >> (4 * shift_digits)
        ):
            self.status |= 0b10  # accumulator overflow (should not happen for decimal64)
        addend = self.regfile.read(index)
        result = self.adder.add(shifted, addend & self._acc_mask)
        self.accumulator = result.value
        self.status = (self.status & ~1) | result.carry_out
        passes = self._adder_passes(self.config.accumulator_digits)
        has_response = bool(command.xd)
        busy = self.fsm.run_command(
            FsmState.DEC_ACCUM, respond=has_response, busy_cycles=passes
        )
        return RoccResult(
            has_response=has_response,
            value=self.accumulator & _MASK64,
            busy_cycles=busy,
        )

    # DEC_ADDSUB: BCD subtraction through the adder (nines-complement pass
    # followed by an add with carry-in, the classic two-pass use of one
    # BCD-CLA).  result = op1 - op2 mod 10^register_width; status bit 0 is
    # the borrow (1 when op1 < op2 and the result wrapped).
    def _cmd_dec_addsub(self, command: RoccCommand) -> RoccResult:
        op1 = self._operand(command.xs1, command.rs1_value, command.rs1)
        op2 = self._operand(command.xs2, command.rs2_value, command.rs2)
        self._require_bcd(op1, "DEC_ADDSUB operand 1")
        self._require_bcd(op2, "DEC_ADDSUB operand 2")
        width = self.config.register_width_digits
        # Digit-wise 9 - d never borrows, so the complement is plain binary.
        nines = int("9" * width, 16)
        complement = nines - (op2 & self._reg_mask)
        result = self.adder.add(op1 & self._reg_mask, complement, carry_in=1)
        carry = 1 if (result.value >> (4 * width)) or result.carry_out else 0
        value = result.value & self._reg_mask
        self.status = (self.status & ~1) | (1 - carry)
        passes = 2 * self._adder_passes(width)  # complement pass + add pass
        if command.xd:
            busy = self.fsm.run_command(
                FsmState.DEC_ADDSUB, respond=True, busy_cycles=passes
            )
            return RoccResult(
                has_response=True, value=value & _MASK64, busy_cycles=busy
            )
        self.regfile.write(command.rd % self.config.num_registers, value)
        busy = self.fsm.run_command(
            FsmState.DEC_ADDSUB, respond=False, busy_cycles=passes
        )
        return RoccResult(has_response=False, value=0, busy_cycles=busy)

    # DEC_FMA_ACC: accumulator += regfile[k] << shift digits.  The FMA
    # kernels use it to merge an aligned addend into the accumulated product
    # without reading the accumulator back first; unlike DEC_ACCUM the
    # accumulator itself stays in place and the *addend* is shifted.
    # Status bit 0 latches the carry out of the accumulator width.
    def _cmd_dec_fma_acc(self, command: RoccCommand) -> RoccResult:
        index = command.rs1_value if command.xs1 else command.rs1
        index = int(index) % self.config.num_registers
        shift_digits = int(command.rs2_value) if command.xs2 else 0
        if not 0 <= shift_digits <= self.config.accumulator_digits:
            raise AcceleratorError(f"DEC_FMA_ACC shift out of range: {shift_digits}")
        addend = self.regfile.read(index)
        shifted = addend << (4 * shift_digits)
        if shifted & ~self._acc_mask:
            self.status |= 0b10  # addend digits shifted past the accumulator
        result = self.adder.add(self.accumulator, shifted & self._acc_mask)
        self.accumulator = result.value & self._acc_mask
        self.status = (self.status & ~1) | result.carry_out
        passes = self._adder_passes(self.config.accumulator_digits)
        has_response = bool(command.xd)
        busy = self.fsm.run_command(
            FsmState.DEC_FMA_ACC, respond=has_response, busy_cycles=passes
        )
        return RoccResult(
            has_response=has_response,
            value=self.accumulator & _MASK64,
            busy_cycles=busy,
        )

    # DEC_ADDC / DEC_SUBB: the chunked multi-word interface.  The core
    # streams a long BCD number through the adder one 16-digit machine word
    # per command; the carry/borrow between words lives in status bit 0
    # (consumed as carry-in, latched as carry-out) and the result word comes
    # back on the response channel.  One command per word replaces the
    # DEC_ADD / carry add / RD / RD sequence the chunked kernels needed with
    # carry chaining done on the core side.
    def _cmd_dec_addc(self, command: RoccCommand) -> RoccResult:
        self.require(
            command.xs1 and command.xs2,
            "DEC_ADDC needs both operand words from the core (xs1, xs2)",
        )
        self.require(
            command.xd, "DEC_ADDC returns the result word on the response channel (xd)"
        )
        op1 = command.rs1_value & _MASK64
        op2 = command.rs2_value & _MASK64
        self._require_bcd(op1, "DEC_ADDC operand 1")
        self._require_bcd(op2, "DEC_ADDC operand 2")
        result = self.adder.add(op1, op2, carry_in=self.status & 1)
        carry = 1 if result.value >> 64 else 0
        self.status = (self.status & ~1) | carry
        passes = self._adder_passes(16)
        busy = self.fsm.run_command(FsmState.DEC_ADDC, respond=True, busy_cycles=passes)
        return RoccResult(
            has_response=True, value=result.value & _MASK64, busy_cycles=busy
        )

    def _cmd_dec_subb(self, command: RoccCommand) -> RoccResult:
        self.require(
            command.xs1 and command.xs2,
            "DEC_SUBB needs both operand words from the core (xs1, xs2)",
        )
        self.require(
            command.xd, "DEC_SUBB returns the result word on the response channel (xd)"
        )
        op1 = command.rs1_value & _MASK64
        op2 = command.rs2_value & _MASK64
        self._require_bcd(op1, "DEC_SUBB operand 1")
        self._require_bcd(op2, "DEC_SUBB operand 2")
        borrow_in = self.status & 1
        # Digit-wise 9 - d never borrows, so the complement is plain binary;
        # a carry out of digit 16 means the word did *not* borrow.
        nines = 0x9999999999999999
        complement = nines - op2
        result = self.adder.add(op1, complement, carry_in=1 - borrow_in)
        carry = 1 if result.value >> 64 else 0
        self.status = (self.status & ~1) | (1 - carry)
        passes = 2 * self._adder_passes(16)  # complement pass + add pass
        busy = self.fsm.run_command(FsmState.DEC_SUBB, respond=True, busy_cycles=passes)
        return RoccResult(
            has_response=True, value=result.value & _MASK64, busy_cycles=busy
        )

    # ------------------------------------------------------------------- state
    def reset(self) -> None:
        super().reset()  # statistics + pipeline occupancy
        self.regfile.clear_all()
        self.regfile.reset_statistics()
        self.accumulator = 0
        self.status = 0
        self.fsm.reset()
        self.function_counts.clear()

    # -------------------------------------------------------------------- cost
    def area_report(self) -> AreaReport:
        """Hardware overhead of this accelerator configuration.

        Pure function of the configuration — see
        :meth:`DecimalAcceleratorConfig.area_report`.
        """
        return self.config.area_report()
