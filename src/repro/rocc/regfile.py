"""Accelerator-internal register set (the "Register Set" block of Fig. 4)."""

from __future__ import annotations

from repro.errors import AcceleratorError
from repro.hw.cost import register_cost


class AcceleratorRegisterFile:
    """A small register file addressed by the rs/rd fields of RoCC commands."""

    def __init__(self, num_registers: int = 16, width_bits: int = 80) -> None:
        if num_registers < 1 or num_registers > 32:
            raise AcceleratorError("register file must have 1..32 entries")
        self.num_registers = num_registers
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values = [0] * num_registers
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> int:
        if not 0 <= index < self.num_registers:
            raise AcceleratorError(f"register index out of range: {index}")
        self.reads += 1
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self.num_registers:
            raise AcceleratorError(f"register index out of range: {index}")
        self.writes += 1
        self._values[index] = value & self._mask

    def clear_all(self) -> None:
        """The CLR_ALL instruction: zero every register."""
        self._values = [0] * self.num_registers
        self.writes += self.num_registers

    def snapshot(self) -> tuple:
        """Current contents (for tests and debugging)."""
        return tuple(self._values)

    def cost(self):
        """Hardware overhead of the register file."""
        return register_cost(
            f"register set ({self.num_registers} x {self.width_bits} bits)",
            self.num_registers * self.width_bits,
        )
