"""Accelerator-internal register set (the "Register Set" block of Fig. 4)."""

from __future__ import annotations

from repro.errors import AcceleratorError
from repro.hw.cost import register_cost


class AcceleratorRegisterFile:
    """A small register file addressed by the rs/rd fields of RoCC commands."""

    def __init__(self, num_registers: int = 16, width_bits: int = 80) -> None:
        if num_registers < 1 or num_registers > 32:
            raise AcceleratorError("register file must have 1..32 entries")
        self.num_registers = num_registers
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values = [0] * num_registers
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> int:
        if not 0 <= index < self.num_registers:
            raise AcceleratorError(f"register index out of range: {index}")
        self.reads += 1
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self.num_registers:
            raise AcceleratorError(f"register index out of range: {index}")
        self.writes += 1
        self._values[index] = value & self._mask

    def write_word(self, index: int, word: int, value: int) -> None:
        """Merge a 64-bit ``value`` into word lane ``word`` of a register.

        Word 0 covers bits [0, 64), word 1 bits [64, 128) and so on; other
        lanes are preserved.  Registers wider than 64 bits are written by
        the core one word lane at a time (the RoCC operand channel is one
        machine word wide).
        """
        if not 0 <= index < self.num_registers:
            raise AcceleratorError(f"register index out of range: {index}")
        if word < 0 or 64 * word >= self.width_bits:
            raise AcceleratorError(
                f"word lane {word} out of range for a "
                f"{self.width_bits}-bit register"
            )
        self.writes += 1
        shift = 64 * word
        lane_mask = 0xFFFFFFFFFFFFFFFF << shift
        merged = (self._values[index] & ~lane_mask) | ((value & 0xFFFFFFFFFFFFFFFF) << shift)
        self._values[index] = merged & self._mask

    def read_word(self, index: int, word: int) -> int:
        """One 64-bit word lane of a (possibly wider) register."""
        if word < 0 or 64 * word >= self.width_bits:
            raise AcceleratorError(
                f"word lane {word} out of range for a "
                f"{self.width_bits}-bit register"
            )
        return (self.read(index) >> (64 * word)) & 0xFFFFFFFFFFFFFFFF

    def clear_all(self) -> None:
        """The CLR_ALL instruction: zero every register."""
        self._values = [0] * self.num_registers
        self.writes += self.num_registers

    def reset_statistics(self) -> None:
        """Zero the access counters (a simulator reset, not an instruction).

        ``clear_all`` models the CLR_ALL instruction and therefore *counts*
        its writes; accelerator reset between warm :class:`~repro.sim.batch.
        BatchRunner` runs must also forget the access history."""
        self.reads = 0
        self.writes = 0

    def snapshot(self) -> tuple:
        """Current contents (for tests and debugging)."""
        return tuple(self._values)

    def cost(self):
        """Hardware overhead of the register file."""
        return register_cost(
            f"register set ({self.num_registers} x {self.width_bits} bits)",
            self.num_registers * self.width_bits,
        )
