"""RoCC (Rocket Custom Coprocessor) accelerator framework.

Implements the paper's Fig. 4 architecture in software: the command/response
interface between the Rocket core and an accelerator, the interface FSM of
Fig. 5, an accelerator register set, and the decimal accelerator that executes
the Table II instruction set (WR/RD/LD/ACCUM/CLR_ALL/DEC_CNV/DEC_ADD/DEC_MUL/
DEC_ACCUM).
"""

from repro.rocc.interface import (
    Accelerator,
    RoccCommand,
    RoccResponse,
    RoccResult,
    RoccStatistics,
)
from repro.rocc.fsm import FsmState, InterfaceFsm
from repro.rocc.pipeline import (
    AcceleratorPipeline,
    PipelineTransaction,
    split_busy_cycles,
)
from repro.rocc.regfile import AcceleratorRegisterFile
from repro.rocc.decimal_accel import DecimalAccelerator, DecimalAcceleratorConfig

__all__ = [
    "Accelerator",
    "RoccCommand",
    "RoccResponse",
    "RoccResult",
    "RoccStatistics",
    "FsmState",
    "InterfaceFsm",
    "AcceleratorPipeline",
    "PipelineTransaction",
    "split_busy_cycles",
    "AcceleratorRegisterFile",
    "DecimalAccelerator",
    "DecimalAcceleratorConfig",
]
