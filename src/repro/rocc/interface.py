"""RoCC command/response interface between the core and an accelerator.

The real RoCC interface has three default signal groups (Section IV-A of the
paper): core control, the register-mode command/response channel, and the
memory-mode channel to the L1 D-cache.  This module models the register-mode
channel as value objects plus an abstract :class:`Accelerator` base class; the
memory channel is represented by handing the accelerator a reference to the
simulated memory when a command executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AcceleratorError


@dataclass(frozen=True)
class RoccCommand:
    """One command sent over the ``cmd`` channel (decoded custom instruction)."""

    funct7: int
    rd: int
    rs1: int
    rs2: int
    rs1_value: int
    rs2_value: int
    xd: bool
    xs1: bool
    xs2: bool

    @property
    def function_name(self) -> str:
        from repro.isa.rocc import DecimalFunct

        return DecimalFunct.BY_VALUE.get(self.funct7, f"FUNCT_{self.funct7}")


@dataclass(frozen=True)
class RoccResponse:
    """One response on the ``resp`` channel (written back to a core register)."""

    rd: int
    data: int


@dataclass
class RoccStatistics:
    """Cumulative counters of the command/response channel.

    Grouped in one value object so :meth:`Accelerator.reset` (used between
    warm :class:`~repro.sim.batch.BatchRunner` runs) can clear every counter
    in one place and tests can snapshot/compare them wholesale.
    """

    commands_executed: int = 0
    busy_cycles_total: int = 0
    responses_sent: int = 0

    def reset(self) -> None:
        self.commands_executed = 0
        self.busy_cycles_total = 0
        self.responses_sent = 0


@dataclass(frozen=True)
class RoccResult:
    """What the executor needs to know after issuing a command.

    ``busy_cycles`` is the number of cycles the accelerator datapath is
    occupied; the timing model combines it with the interface latencies.
    ``memory_accesses`` counts L1-D requests made through the memory-mode
    interface (the LD instruction).
    """

    has_response: bool
    value: int
    busy_cycles: int
    memory_accesses: int = 0


class Accelerator:
    """Base class for RoCC accelerators.

    Subclasses implement :meth:`execute_command`; the plumbing that adapts the
    executor's call signature, counts statistics and tracks busy cycles lives
    here so every accelerator gets it for free.
    """

    name = "accelerator"

    def __init__(self) -> None:
        self.stats = RoccStatistics()
        #: Occupancy model for staged datapaths (an
        #: :class:`~repro.rocc.pipeline.AcceleratorPipeline`), or ``None``
        #: for blocking accelerators.  The Rocket timing model threads
        #: back-to-back command occupancy through this attribute.
        self.pipeline = None

    # ------------------------------------------------------------ statistics
    # Historic attribute spelling; the counters live on ``self.stats``.
    @property
    def commands_executed(self) -> int:
        return self.stats.commands_executed

    @property
    def busy_cycles_total(self) -> int:
        return self.stats.busy_cycles_total

    @property
    def responses_sent(self) -> int:
        return self.stats.responses_sent

    # ------------------------------------------------------------- executor API
    def execute(
        self,
        funct7: int,
        rd: int,
        rs1: int,
        rs2: int,
        rs1_value: int,
        rs2_value: int,
        xd: bool,
        xs1: bool,
        xs2: bool,
        memory,
    ) -> RoccResult:
        """Adapter called by :class:`repro.sim.executor.Executor`."""
        command = RoccCommand(
            funct7=funct7,
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            rs1_value=rs1_value,
            rs2_value=rs2_value,
            xd=xd,
            xs1=xs1,
            xs2=xs2,
        )
        result = self.execute_command(command, memory)
        stats = self.stats
        stats.commands_executed += 1
        stats.busy_cycles_total += result.busy_cycles
        if result.has_response:
            stats.responses_sent += 1
        return result

    def rocc_adapter(self):
        """Object with the executor-facing ``execute`` method (self)."""
        return self

    # ----------------------------------------------------------------- override
    def execute_command(self, command: RoccCommand, memory) -> RoccResult:
        """Execute one command; subclasses must override."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset architectural state and statistics."""
        self.stats.reset()
        if self.pipeline is not None:
            self.pipeline.reset()

    def area_report(self):
        """Hardware overhead report; subclasses should override."""
        raise NotImplementedError

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def require(condition: bool, message: str) -> None:
        if not condition:
            raise AcceleratorError(message)
