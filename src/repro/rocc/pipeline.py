"""Staged pipeline timing model of the accelerator datapath.

The paper's accelerator is a single blocking design point: the interface FSM
(Fig. 5) accepts one command, occupies its function state for the datapath's
busy cycles and only then returns to ``Idle``, so back-to-back RoCC commands
serialise completely.  This module generalises that into a *staged* datapath
behind issue/retire queues, which is what ROADMAP item 2's design-space study
sweeps:

* a command's busy cycles are split into ``min(depth, busy)`` balanced
  segments — the stage occupancies of a ``depth``-deep pipeline (the logical
  stage names per function come from :data:`repro.isa.rocc.PIPELINE_STAGES`:
  multiplicand-gen → pp-accumulate → round for the multiply family, align →
  effective-op → round for the add family);
* stage 0 has ``width`` issue slots; a command is *accepted* when it arrives
  AND a slot is free, occupies its slot for the first segment (the pipeline's
  initiation interval), then drains through the remaining stages while the
  next command enters behind it;
* a command *completes* (its architectural effects retire) ``busy`` cycles
  after acceptance — segment times sum exactly to the blocking datapath's
  busy cycles, so the work done is conserved at every depth;
* commands that carry ``xd`` hold the core until completion plus the response
  latency (the core blocks for the response value); commands without ``xd``
  release the core as soon as their issue slot frees, which is where deeper
  pipelines overlap back-to-back RoCC traffic.

Timing-only model: functional execution stays in program order inside
:class:`~repro.rocc.decimal_accel.DecimalAccelerator` (the hardware analogue
is full forwarding between in-flight commands), and at ``depth=1, width=1``
every formula above collapses to the blocking FSM's timing bit-for-bit —
``tests/test_pipeline_accel.py`` pins that lockstep equivalence.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import AcceleratorError
from repro.isa.rocc import DecimalFunct, stage_plan


def split_busy_cycles(busy_cycles: int, depth: int) -> tuple:
    """Balanced stage segments of a command's busy cycles.

    Returns ``min(depth, busy_cycles)`` positive segments summing exactly to
    ``busy_cycles``, longest first (so segment 0 — the initiation interval —
    is ``ceil(busy / n)``).  ``depth=1`` returns ``(busy_cycles,)``: the
    blocking datapath.
    """
    if busy_cycles < 1:
        raise AcceleratorError(f"busy cycles must be positive: {busy_cycles}")
    if depth < 1:
        raise AcceleratorError(f"pipeline depth must be positive: {depth}")
    stages = min(depth, busy_cycles)
    base, extra = divmod(busy_cycles, stages)
    return (base + 1,) * extra + (base,) * (stages - extra)


@dataclass(frozen=True)
class PipelineTransaction:
    """One command's trip through the staged datapath (all times in cycles).

    ``arrival``   when the command reaches the issue queue,
    ``accept``    when a stage-0 slot takes it (``max(arrival, slot free)``),
    ``complete``  when its architectural effects retire
                  (``accept + sum(segments)``),
    ``next_issue`` when its issue slot frees for the next command
                  (``accept + segments[0]`` — the initiation interval),
    ``release``   when the core may proceed: ``complete`` for responding
                  commands (the response latency is the core's to add),
                  ``next_issue`` otherwise.
    """

    funct_name: str
    arrival: int
    accept: int
    complete: int
    next_issue: int
    responds: bool
    segments: tuple

    @property
    def release(self) -> int:
        return self.complete if self.responds else self.next_issue

    @property
    def stall_cycles(self) -> int:
        """Cycles the command waited in the issue queue for a slot."""
        return self.accept - self.arrival

    @property
    def stage_names(self) -> tuple:
        """Logical stage names matching ``segments`` (see PIPELINE_STAGES)."""
        plan = stage_plan(self.funct_name)
        n = len(self.segments)
        if n <= len(plan):
            return plan[:n]
        # More physical segments than logical stages: number the extras.
        return plan + tuple(f"{plan[-1]}+{k}" for k in range(1, n - len(plan) + 1))


class AcceleratorPipeline:
    """Issue/retire-queue occupancy tracker for the staged datapath.

    The Rocket timing model calls :meth:`issue` once per RoCC command with
    the command's arrival cycle and the blocking datapath's busy cycles; the
    pipeline answers with the transaction's event times and keeps occupancy
    statistics.  It holds no architectural state — resetting it (or the
    owning accelerator) is safe between warm :class:`~repro.sim.batch.
    BatchRunner` runs.
    """

    def __init__(self, depth: int = 1, width: int = 1) -> None:
        if depth < 1:
            raise AcceleratorError(f"pipeline depth must be positive: {depth}")
        if width < 1:
            raise AcceleratorError(f"issue width must be positive: {width}")
        self.depth = depth
        self.width = width
        # Cycle at which each stage-0 issue slot frees.
        self._slot_free = [0] * width
        self._in_flight = []  # completion times of commands still in stages
        self.transactions = 0
        self.retired = 0
        self.stall_cycles = 0
        self.overlap_cycles = 0  # core cycles saved vs the blocking datapath
        self.peak_in_flight = 0
        self.function_counts = Counter()

    # ------------------------------------------------------------------ issue
    def issue(
        self, arrival: int, busy_cycles: int, responds: bool, funct7: int
    ) -> PipelineTransaction:
        """Accept one command into the pipeline; return its event times."""
        segments = split_busy_cycles(busy_cycles, self.depth)
        slot = min(range(self.width), key=self._slot_free.__getitem__)
        free = self._slot_free[slot]
        accept = arrival if arrival >= free else free
        complete = accept + busy_cycles
        next_issue = accept + segments[0]
        self._slot_free[slot] = next_issue
        txn = PipelineTransaction(
            funct_name=DecimalFunct.name_for(funct7),
            arrival=arrival,
            accept=accept,
            complete=complete,
            next_issue=next_issue,
            responds=responds,
            segments=segments,
        )
        # Retire everything that finished before this command was accepted.
        still = [t for t in self._in_flight if t > accept]
        self.retired += len(self._in_flight) - len(still)
        still.append(complete)
        self._in_flight = still
        if len(still) > self.peak_in_flight:
            self.peak_in_flight = len(still)
        self.transactions += 1
        self.stall_cycles += txn.stall_cycles
        self.overlap_cycles += complete - txn.release
        self.function_counts[txn.funct_name] += 1
        return txn

    # ------------------------------------------------------------------ state
    @property
    def in_flight(self) -> int:
        """Commands accepted but not yet retired by a later acceptance."""
        return len(self._in_flight)

    def reset(self) -> None:
        self._slot_free = [0] * self.width
        self._in_flight = []
        self.transactions = 0
        self.retired = 0
        self.stall_cycles = 0
        self.overlap_cycles = 0
        self.peak_in_flight = 0
        self.function_counts.clear()
