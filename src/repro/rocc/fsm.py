"""Interface finite-state machine of the accelerator (paper Fig. 5).

The decode-and-interface FSM sits between the RoCC command queue and the
execution units: from ``Idle`` it moves to a per-function state
(``RD``, ``WR``, ``CLR_ALL``, ``DEC_ADD``, ``ACCUM`` ...), then to a response
state (``Read Resp`` / ``Write Resp``) when the core expects data back, and
returns to ``Idle``.  The software model tracks the visited states and
transition counts so tests can assert the Fig. 5 structure and the timing
model can charge one cycle per transition.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import AcceleratorError


class FsmState:
    """States of the interface FSM (Fig. 5)."""

    IDLE = "Idle"
    READ = "RD"
    WRITE = "WR"
    CLR_ALL = "CLR_ALL"
    DEC_ADD = "DEC_ADD"
    DEC_ACCUM = "DEC_ACCUM"
    DEC_CNV = "DEC_CNV"
    DEC_MUL = "DEC_MUL"
    DEC_ADDSUB = "DEC_ADDSUB"
    DEC_FMA_ACC = "DEC_FMA_ACC"
    DEC_ADDC = "DEC_ADDC"
    DEC_SUBB = "DEC_SUBB"
    ACCUM = "ACCUM"
    LOAD = "LD"
    READ_RESP = "Read Resp"
    WRITE_RESP = "Write Resp"

    ALL = (
        IDLE,
        READ,
        WRITE,
        CLR_ALL,
        DEC_ADD,
        DEC_ACCUM,
        DEC_CNV,
        DEC_MUL,
        DEC_ADDSUB,
        DEC_FMA_ACC,
        DEC_ADDC,
        DEC_SUBB,
        ACCUM,
        LOAD,
        READ_RESP,
        WRITE_RESP,
    )


#: Function states reachable directly from Idle when a command fires.
_EXECUTE_STATES = {
    FsmState.READ,
    FsmState.WRITE,
    FsmState.CLR_ALL,
    FsmState.DEC_ADD,
    FsmState.DEC_ACCUM,
    FsmState.DEC_CNV,
    FsmState.DEC_MUL,
    FsmState.DEC_ADDSUB,
    FsmState.DEC_FMA_ACC,
    FsmState.DEC_ADDC,
    FsmState.DEC_SUBB,
    FsmState.ACCUM,
    FsmState.LOAD,
}

#: Legal transitions; anything else is a modelling bug.
_LEGAL = set()
for _state in _EXECUTE_STATES:
    _LEGAL.add((FsmState.IDLE, _state))
    _LEGAL.add((_state, FsmState.IDLE))
    _LEGAL.add((_state, FsmState.READ_RESP))
    _LEGAL.add((_state, FsmState.WRITE_RESP))
_LEGAL.add((FsmState.READ_RESP, FsmState.IDLE))
_LEGAL.add((FsmState.WRITE_RESP, FsmState.IDLE))


class InterfaceFsm:
    """Tracks the interface FSM state, transitions and cycle counts."""

    def __init__(self) -> None:
        self.state = FsmState.IDLE
        self.transition_counts = Counter()
        self.visited_states = {FsmState.IDLE}
        self.cycles = 0

    def _go(self, next_state: str) -> None:
        if (self.state, next_state) not in _LEGAL:
            raise AcceleratorError(
                f"illegal FSM transition {self.state!r} -> {next_state!r}"
            )
        self.transition_counts[(self.state, next_state)] += 1
        self.state = next_state
        self.visited_states.add(next_state)
        self.cycles += 1

    def run_command(self, execute_state: str, respond: bool, busy_cycles: int = 1) -> int:
        """Walk the FSM for one command; return the cycles it spent.

        ``execute_state`` is the per-function state; ``respond`` selects the
        Read Resp / Write Resp hop before returning to Idle (used when the
        command carries ``xd`` and the core waits for data).
        """
        if self.state != FsmState.IDLE:
            raise AcceleratorError("command fired while the FSM was busy")
        start_cycles = self.cycles
        self._go(execute_state)
        # Execution occupies the function state for busy_cycles - 1 extra ticks.
        self.cycles += max(busy_cycles - 1, 0)
        if respond:
            resp_state = (
                FsmState.READ_RESP if execute_state == FsmState.READ else FsmState.WRITE_RESP
            )
            self._go(resp_state)
        self._go(FsmState.IDLE)
        return self.cycles - start_cycles

    def reset(self) -> None:
        self.state = FsmState.IDLE
        self.transition_counts.clear()
        self.visited_states = {FsmState.IDLE}
        self.cycles = 0
