"""Sharded multiprocess campaign engine for paper-scale evaluations.

The paper evaluates with 8,000 constrained-random samples per table; the
serial :class:`~repro.core.evaluation.EvaluationFramework` runs every
solution in one process, one simulator run after another.  The campaign
engine decomposes an evaluation into independent units and fans them out
over ``multiprocessing`` workers:

* a **cell** is one (co-design solution × workload-or-operand-mix ×
  RocketConfig) combination with its sample count and seed — one row of a
  table, one scenario of a ``--workload`` campaign, or one design point of
  a config sweep;
* each cell's shared vector set is generated once from the seed
  (bit-identical to the serial framework's) and **sharded** into contiguous
  slices; a shard is the unit of work: the worker builds and links the
  shard's test program once, runs SPIKE-style verification and the Rocket
  measurement, and returns a picklable :class:`ShardCycleReport`;
* shards are merged (order-independently, keyed by sample range) through
  :func:`repro.core.results.merge_shard_reports` — the same accounting the
  serial path uses.

Determinism guarantees:

* the **shard plan is a pure function** of (num_samples, shards_per_cell),
  so a fixed plan produces the same merged report for any worker count,
  any completion order, and any multiprocessing start method;
* with ``shards_per_cell=1`` each cell is measured in a single simulator
  run, exactly like the serial framework — the merged report is
  **bit-identical** to ``EvaluationFramework.evaluate_table_iv`` at the
  same seed (parallelism then comes from running cells concurrently);
* with ``shards_per_cell>1`` each shard starts with cold caches and a fresh
  replacement PRNG, which perturbs a handful of boundary samples — results
  are still exactly reproducible for the same plan, but differ slightly
  from the single-shard measurement (see docs/campaigns.md).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.core.evaluation import run_solution_shard
from repro.core.results import (
    SolutionCycleReport,
    TableIVReport,
    merge_shard_reports,
)
from repro.core.solution import CoDesignSolution, standard_solutions
from repro.errors import ConfigurationError
from repro.rocket.config import RocketConfig
from repro.testgen.config import SolutionKind
from repro.verification.database import OperandClass, VerificationDatabase


@dataclass(frozen=True)
class CampaignCell:
    """One evaluation cell: solution × operand mix × core configuration."""

    solution: CoDesignSolution
    num_samples: int
    operand_classes: tuple = OperandClass.TABLE_IV_MIX
    repetitions: int = 1
    seed: int = 2018
    rocket_config: RocketConfig = field(default_factory=RocketConfig)
    verify_functionally: bool = True
    label: str = ""
    #: Registered workload name; when set, the cell's vectors come from the
    #: workload registry (``operand_classes`` is then ignored) and campaign
    #: reports can be grouped per workload.
    workload: str = None
    #: Differential cell: co-simulate spike/rocket/gem5 over every shard,
    #: check with the dual oracle, and record divergences in the merged
    #: report instead of raising (see docs/verification.md).
    differential: bool = False
    #: Interchange format the cell evaluates (a first-class sweep axis:
    #: selects the kernels, accelerator sizing, operand distributions and
    #: oracle contexts — see docs/formats.md).
    fmt: str = "decimal64"
    #: Decimal operation the cell evaluates (the second first-class sweep
    #: axis: selects the kernels, the vector shape — pairs vs fma triples —
    #: and the oracle operation; see docs/operations.md).
    op: str = "multiply"

    def __post_init__(self) -> None:
        from repro.decnumber.formats import resolve_format_name
        from repro.decnumber.operations import resolve_operation_name
        from repro.errors import DecimalError

        if self.num_samples < 1:
            raise ConfigurationError("cell num_samples must be at least 1")
        try:
            object.__setattr__(self, "fmt", resolve_format_name(self.fmt))
            object.__setattr__(self, "op", resolve_operation_name(self.op))
        except DecimalError as error:
            raise ConfigurationError(str(error)) from None
        if self.workload is not None:
            from repro.workloads import get_workload

            workload = get_workload(self.workload)  # raises on unknown names
            if not workload.supports_format(self.fmt):
                raise ConfigurationError(
                    f"workload {self.workload!r} does not support format "
                    f"{self.fmt!r} (declares {workload.formats})"
                )
            if not workload.supports_operation(self.op):
                raise ConfigurationError(
                    f"workload {self.workload!r} does not support operation "
                    f"{self.op!r} (declares {workload.operations}); see "
                    "docs/operations.md"
                )
        if not self.label:
            label = self.solution.kind
            if self.workload is not None:
                label = f"{self.solution.kind} @ {self.workload}"
            if self.op != "multiply":
                label = f"{label} ({self.op})"
            if self.fmt != "decimal64":
                label = f"{label} [{self.fmt}]"
            if self.differential:
                label = f"{label} [diff]"
            object.__setattr__(self, "label", label)

    def generate_vectors(self) -> list:
        """The cell's full vector set — identical to the serial framework's."""
        from repro.testgen.generator import draw_vectors

        return draw_vectors(
            self.num_samples,
            self.seed,
            operand_classes=self.operand_classes,
            workload=self.workload,
            fmt=self.fmt,
            operation=self.op,
        )


def plan_shards(num_samples: int, shards: int) -> list:
    """Split ``num_samples`` into ``shards`` contiguous (start, stop) slices.

    The plan is deterministic and depends only on its arguments: the first
    ``num_samples % shards`` shards are one sample longer.  Empty slices
    (more shards than samples) are dropped.
    """
    if shards < 1:
        raise ConfigurationError("shards_per_cell must be at least 1")
    shards = min(shards, num_samples)
    base, extra = divmod(num_samples, shards)
    plan = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        plan.append((start, stop))
        start = stop
    return plan


#: Per-process warm-simulator cache (see :mod:`repro.sim.batch`).  Pool
#: workers live across many shard tasks, so shards sharing a program shape
#: (same solution x format x shard size) reuse one warm executor — tier-2
#: compiled superblocks, promotion heat and speculation state carry over
#: instead of being rebuilt per shard.  Batch mode is bit-identical to the
#: cold path, so the engine's determinism guarantees are unchanged.
_SHARD_RUNNER = None


def _shard_runner():
    global _SHARD_RUNNER
    if _SHARD_RUNNER is None:
        from repro.sim.batch import BatchRunner

        _SHARD_RUNNER = BatchRunner()
    return _SHARD_RUNNER


def _run_shard_task(task):
    """Worker entry point: run one shard and return its picklable report."""
    cell_id, shard_index, start, stop, cell, vectors = task
    outcome = run_solution_shard(
        cell.solution,
        vectors,
        operand_classes=cell.operand_classes,
        repetitions=cell.repetitions,
        seed=cell.seed,
        rocket_config=cell.rocket_config,
        verify_functionally=cell.verify_functionally,
        shard_index=shard_index,
        start=start,
        workload=cell.workload,
        differential=cell.differential,
        fmt=cell.fmt,
        operation=cell.op,
        runner=_shard_runner(),
    )
    return cell_id, outcome.shard_report


@dataclass
class CampaignResult:
    """Merged outcome of one campaign run."""

    cells: list
    reports: list                  # SolutionCycleReport, aligned with cells
    #: Worker processes the shard *plan* was sized for (1 = in-process).
    #: Plan-based rather than task-based so a cache-hit rerun (which
    #: schedules no tasks) summarises identically to the cold run.
    workers: int
    shards_per_cell: int
    wall_seconds: float
    baseline_kind: str = SolutionKind.SOFTWARE
    #: Content-addressed cache accounting (0/0 when no cache was attached).
    #: Deliberately *not* part of :meth:`to_summary`: a warm rerun's summary
    #: must stay bit-identical to the cold run's.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_samples(self) -> int:
        return sum(cell.num_samples for cell in self.cells)

    @property
    def total_shards(self) -> int:
        return sum(report.num_shards for report in self.reports)

    @property
    def total_sim_wall_seconds(self) -> float:
        """Summed simulator wall-clock across all shards (CPU work done)."""
        return sum(report.sim_wall_seconds for report in self.reports)

    @property
    def differential(self) -> bool:
        """True when any cell ran in cross-model differential mode."""
        return any(cell.differential for cell in self.cells)

    @property
    def total_divergences(self) -> int:
        return sum(report.divergences for report in self.reports)

    @property
    def total_oracle_disagreements(self) -> int:
        return sum(report.oracle_disagreements for report in self.reports)

    @property
    def total_check_failures(self) -> int:
        return sum(report.verification_failures for report in self.reports)

    @property
    def differential_clean(self) -> bool:
        """No divergence, oracle split or check failure across all cells."""
        return not (
            self.total_divergences
            or self.total_oracle_disagreements
            or self.total_check_failures
        )

    def report_for(self, kind: str, workload: str = None,
                   fmt: str = None, op: str = None) -> SolutionCycleReport:
        """The merged report of one solution kind (plus workload/format/op).

        ``workload=None``/``fmt=None``/``op=None`` mean "unspecified": they
        match only when the matching cells all share one workload/format/
        operation, and raise on an ambiguous multi-workload, multi-format
        or multi-operation campaign rather than silently picking the first.
        ``fmt`` and ``op`` accept aliases ("quad", "mul", "mac").
        """
        if fmt is not None:
            from repro.decnumber.formats import resolve_format_name

            fmt = resolve_format_name(fmt)
        if op is not None:
            from repro.decnumber.operations import resolve_operation_name

            op = resolve_operation_name(op)
        matches = [
            (cell, report)
            for cell, report in zip(self.cells, self.reports)
            if cell.solution.kind == kind
            and (workload is None or cell.workload == workload)
            and (fmt is None or cell.fmt == fmt)
            and (op is None or cell.op == op)
        ]
        if not matches:
            raise ConfigurationError(
                f"no campaign cell evaluated kind {kind!r}"
                + (f" with workload {workload!r}" if workload else "")
                + (f" under format {fmt!r}" if fmt else "")
                + (f" for operation {op!r}" if op else "")
            )
        if workload is None and len({cell.workload for cell, _ in matches}) > 1:
            raise ConfigurationError(
                f"kind {kind!r} was evaluated under several workloads "
                f"({sorted(str(cell.workload) for cell, _ in matches)}); "
                "pass report_for(kind, workload=...)"
            )
        if fmt is None and len({cell.fmt for cell, _ in matches}) > 1:
            raise ConfigurationError(
                f"kind {kind!r} was evaluated under several formats "
                f"({sorted(cell.fmt for cell, _ in matches)}); "
                "pass report_for(kind, fmt=...)"
            )
        if op is None and len({cell.op for cell, _ in matches}) > 1:
            raise ConfigurationError(
                f"kind {kind!r} was evaluated under several operations "
                f"({sorted(cell.op for cell, _ in matches)}); "
                "pass report_for(kind, op=...)"
            )
        return matches[0][1]

    @property
    def workloads(self) -> tuple:
        """Distinct workload names of the cells, in first-seen order.

        Cells without a workload (legacy class-mix cells) appear as ``None``.
        """
        seen = []
        for cell in self.cells:
            if cell.workload not in seen:
                seen.append(cell.workload)
        return tuple(seen)

    @property
    def formats(self) -> tuple:
        """Distinct interchange formats of the cells, in first-seen order."""
        seen = []
        for cell in self.cells:
            if cell.fmt not in seen:
                seen.append(cell.fmt)
        return tuple(seen)

    @property
    def operations(self) -> tuple:
        """Distinct decimal operations of the cells, in first-seen order."""
        seen = []
        for cell in self.cells:
            if cell.op not in seen:
                seen.append(cell.op)
        return tuple(seen)

    def table_iv(self, baseline_kind: str = None) -> TableIVReport:
        """The campaign's rows as a Table IV report (one cell per kind)."""
        kinds = [cell.solution.kind for cell in self.cells]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError(
                "table_iv() needs one cell per solution kind; this campaign "
                f"evaluated {kinds} (use table_iv_by_workload() for multi-"
                "workload campaigns, .reports for sweep-style ones)"
            )
        report = TableIVReport(
            num_samples=max((c.num_samples for c in self.cells), default=0),
            baseline_kind=baseline_kind or self.baseline_kind,
        )
        for cell, cycle_report in zip(self.cells, self.reports):
            report.reports[cell.solution.kind] = cycle_report
        return report

    def table_iv_by_workload(self, baseline_kind: str = None) -> dict:
        """One Table IV report per evaluated workload (keyed by name).

        A multi-workload campaign holds one cell per (solution × workload);
        this groups its rows so each workload renders as its own table and
        speedups are computed against that workload's own baseline run.
        Raises on multi-format campaigns — group those with
        :meth:`table_iv_grouped` instead.
        """
        if len(self.formats) > 1:
            raise ConfigurationError(
                "table_iv_by_workload() is ambiguous over formats "
                f"{self.formats}; use table_iv_grouped()"
            )
        if len(self.operations) > 1:
            raise ConfigurationError(
                "table_iv_by_workload() is ambiguous over operations "
                f"{self.operations}; use table_iv_by_operation()"
            )
        grouped: dict = {}
        for cell, cycle_report in zip(self.cells, self.reports):
            table = grouped.setdefault(
                cell.workload,
                TableIVReport(
                    num_samples=cell.num_samples,
                    baseline_kind=baseline_kind or self.baseline_kind,
                ),
            )
            if cell.solution.kind in table.reports:
                raise ConfigurationError(
                    f"workload {cell.workload!r} has duplicate cells for "
                    f"kind {cell.solution.kind!r}"
                )
            table.reports[cell.solution.kind] = cycle_report
            table.num_samples = max(table.num_samples, cell.num_samples)
        return grouped

    def table_iv_grouped(self, baseline_kind: str = None) -> dict:
        """One Table IV report per (format, workload) cell group.

        The fully general grouping: keys are ``(fmt, workload)`` tuples in
        first-seen order, each holding that group's solution rows, so a
        ``--format decimal64,decimal128`` campaign renders one speedup
        table per format (per workload) with speedups computed against the
        group's own baseline run.  Raises on multi-operation campaigns —
        group those with :meth:`table_iv_by_operation` instead (the keys
        here stay ``(fmt, workload)`` so multiply-only callers are
        unaffected by the operation axis).
        """
        if len(self.operations) > 1:
            raise ConfigurationError(
                "table_iv_grouped() is ambiguous over operations "
                f"{self.operations}; use table_iv_by_operation()"
            )
        grouped: dict = {}
        for cell, cycle_report in zip(self.cells, self.reports):
            key = (cell.fmt, cell.workload)
            table = grouped.setdefault(
                key,
                TableIVReport(
                    num_samples=cell.num_samples,
                    baseline_kind=baseline_kind or self.baseline_kind,
                ),
            )
            if cell.solution.kind in table.reports:
                raise ConfigurationError(
                    f"cell group {key!r} has duplicate cells for kind "
                    f"{cell.solution.kind!r}"
                )
            table.reports[cell.solution.kind] = cycle_report
            table.num_samples = max(table.num_samples, cell.num_samples)
        return grouped

    def table_iv_by_operation(self, baseline_kind: str = None) -> dict:
        """One Table IV report per (operation, format, workload) cell group.

        The operation-axis grouping behind ``python -m repro.campaign
        --op mul,add,fma``: keys are ``(op, fmt, workload)`` tuples in
        first-seen order, each holding that group's solution rows, so every
        operation renders its own speedup table (per format, per workload)
        against the group's own baseline run.
        """
        grouped: dict = {}
        for cell, cycle_report in zip(self.cells, self.reports):
            key = (cell.op, cell.fmt, cell.workload)
            table = grouped.setdefault(
                key,
                TableIVReport(
                    num_samples=cell.num_samples,
                    baseline_kind=baseline_kind or self.baseline_kind,
                ),
            )
            if cell.solution.kind in table.reports:
                raise ConfigurationError(
                    f"cell group {key!r} has duplicate cells for kind "
                    f"{cell.solution.kind!r}"
                )
            table.reports[cell.solution.kind] = cycle_report
            table.num_samples = max(table.num_samples, cell.num_samples)
        return grouped

    def to_summary(self) -> dict:
        """JSON-ready summary (used by the CLI and the campaign benchmark)."""
        summary = {
            "workers": self.workers,
            "shards_per_cell": self.shards_per_cell,
            "wall_seconds": round(self.wall_seconds, 4),
            "sim_wall_seconds": round(self.total_sim_wall_seconds, 4),
            "total_samples": self.total_samples,
            "total_shards": self.total_shards,
            "cells": [
                {
                    "label": cell.label,
                    "kind": cell.solution.kind,
                    "workload": cell.workload,
                    "fmt": cell.fmt,
                    "op": cell.op,
                    "solution": report.solution_name,
                    "samples": report.num_samples,
                    "shards": report.num_shards,
                    "avg_total_cycles": round(report.avg_total_cycles, 3),
                    "avg_hw_cycles": round(report.avg_hw_cycles, 3),
                    "avg_sw_cycles": round(report.avg_sw_cycles, 3),
                    "icache_hit_rate": round(report.icache_hit_rate, 6),
                    "dcache_hit_rate": round(report.dcache_hit_rate, 6),
                    "rocc_commands": report.rocc_commands,
                    "verification_failures": report.verification_failures,
                    "sim_wall_seconds": round(report.sim_wall_seconds, 4),
                }
                for cell, report in zip(self.cells, self.reports)
            ],
        }
        if self.differential:
            summary["differential"] = {
                "divergences": self.total_divergences,
                "oracle_disagreements": self.total_oracle_disagreements,
                "check_failures": self.total_check_failures,
            }
            for cell_summary, report in zip(summary["cells"], self.reports):
                if not report.differential:
                    continue
                cell_summary["differential"] = {
                    "models": list(report.models),
                    "divergences": report.divergences,
                    "oracle_disagreements": report.oracle_disagreements,
                    "gem5_cycles": report.gem5_cycles,
                    "conditions_covered": report.conditions_covered,
                    "first_divergence": report.first_divergence,
                }
        return summary


def run_campaign(
    cells,
    workers: int = 1,
    shards_per_cell: int = 1,
    mp_start_method: str = None,
    cache=None,
) -> CampaignResult:
    """Run every cell, sharded and fanned out over worker processes.

    ``workers <= 1`` runs all shards in-process (the serial reference mode);
    any worker count produces the same merged reports for the same shard
    plan, because the plan — not the scheduling — defines the measurement.
    ``mp_start_method`` overrides the platform's multiprocessing start
    method ("fork" is fastest where available).

    ``cache`` may pass a :class:`repro.service.cache.ResultCache`: cells
    whose content address (inputs + code fingerprint) is already stored are
    satisfied without generating vectors or scheduling shards, and freshly
    computed cells are persisted for the next run.  Cached and fresh shard
    reports merge through the same accounting, so a warm rerun's summary is
    bit-identical to the cold run's (the ``--cache-dir`` CLI mode and the
    campaign service both rest on this).
    """
    cells = list(cells)
    if not cells:
        raise ConfigurationError("a campaign needs at least one cell")

    started = time.perf_counter()
    plans = [plan_shards(cell.num_samples, shards_per_cell) for cell in cells]
    planned_shards = sum(len(plan) for plan in plans)
    # Vectors are generated once per cell in the parent and pre-sliced into
    # the tasks, so workers never regenerate a cell's full set per shard.
    # Cache-hit cells skip vector generation entirely — their measurements
    # are already on disk.
    tasks = []
    shard_reports = {}
    cell_keys = [None] * len(cells)
    computed_ids = set()
    for cell_id, cell in enumerate(cells):
        if cache is not None:
            key = cache.key_for(cell, shards_per_cell)
            cell_keys[cell_id] = key
            cached = cache.load(key)
            if cached is not None:
                shard_reports[cell_id] = list(cached)
                continue
            computed_ids.add(cell_id)
        shard_reports[cell_id] = []
        vectors = cell.generate_vectors()
        for shard_index, (start, stop) in enumerate(plans[cell_id]):
            tasks.append(
                (cell_id, shard_index, start, stop, cell, vectors[start:stop])
            )

    if workers is None:
        workers = os.cpu_count() or 1
    # Plan-based, so a fully cached rerun reports the same worker count as
    # the cold run it is replaying (see CampaignResult.workers).
    pool_size = 1 if workers <= 1 or planned_shards == 1 else min(
        workers, planned_shards
    )
    if pool_size == 1 or len(tasks) <= 1:
        for task in tasks:
            cell_id, report = _run_shard_task(task)
            shard_reports[cell_id].append(report)
    elif tasks:
        context = (
            multiprocessing.get_context(mp_start_method)
            if mp_start_method
            else multiprocessing.get_context()
        )
        with context.Pool(processes=min(pool_size, len(tasks))) as pool:
            for cell_id, report in pool.imap_unordered(_run_shard_task, tasks):
                shard_reports[cell_id].append(report)
    if cache is not None:
        for cell_id in sorted(computed_ids):
            cache.store(
                cell_keys[cell_id],
                shard_reports[cell_id],
                label=cells[cell_id].label,
            )
    wall_seconds = time.perf_counter() - started

    reports = [
        merge_shard_reports(
            solution_name=cell.solution.name,
            solution_kind=cell.solution.kind,
            shards=shard_reports[cell_id],
            repetitions=cell.repetitions,
        )
        for cell_id, cell in enumerate(cells)
    ]
    return CampaignResult(
        cells=cells,
        reports=reports,
        workers=pool_size,
        shards_per_cell=shards_per_cell,
        wall_seconds=wall_seconds,
        cache_hits=len(cells) - len(computed_ids) if cache is not None else 0,
        cache_misses=len(computed_ids),
    )


def table_iv_cells(
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workload: str = None,
    differential: bool = False,
    fmt: str = "decimal64",
    op: str = "multiply",
) -> list:
    """One campaign cell per Table IV solution kind."""
    kinds = kinds or (
        SolutionKind.METHOD1,
        SolutionKind.SOFTWARE,
        SolutionKind.METHOD1_DUMMY,
    )
    solutions = solutions if solutions is not None else standard_solutions()
    return [
        CampaignCell(
            solution=solutions[kind],
            num_samples=num_samples,
            operand_classes=tuple(operand_classes),
            repetitions=repetitions,
            seed=seed,
            rocket_config=(
                rocket_config if rocket_config is not None else RocketConfig()
            ),
            verify_functionally=verify_functionally,
            workload=workload,
            differential=differential,
            fmt=fmt,
            op=op,
        )
        for kind in kinds
    ]


def workload_cells(
    workloads,
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    differential: bool = False,
    fmt: str = "decimal64",
    op: str = "multiply",
) -> list:
    """One campaign cell per (solution kind × workload name).

    The cell grid this returns is what ``python -m repro.campaign
    --workload a,b,c`` runs: every named scenario is evaluated with every
    solution kind over the same shard plan, so
    :meth:`CampaignResult.table_iv_by_workload` can render one table per
    workload and the speedup comparison across them.
    """
    workloads = list(workloads)
    if not workloads:
        raise ConfigurationError("workload_cells needs at least one workload")
    cells = []
    for workload in workloads:
        cells.extend(
            table_iv_cells(
                num_samples=num_samples,
                kinds=kinds,
                repetitions=repetitions,
                seed=seed,
                rocket_config=rocket_config,
                verify_functionally=verify_functionally,
                solutions=solutions,
                workload=workload,
                differential=differential,
                fmt=fmt,
                op=op,
            )
        )
    return cells


def format_cells(
    formats,
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workloads=None,
    differential: bool = False,
    op: str = "multiply",
) -> list:
    """One campaign cell per (format × workload-or-mix × solution kind).

    The cell grid behind ``python -m repro.campaign --format
    decimal64,decimal128``: every named interchange format is evaluated
    with every solution kind, optionally crossed with a workload list.
    ``workloads`` entries not supporting a format are skipped for that
    format (e.g. a decimal64-only third-party scenario in a two-format
    sweep); a workload supported by *no* requested format raises.
    """
    from repro.workloads import get_workload

    formats = list(formats)
    if not formats:
        raise ConfigurationError("format_cells needs at least one format")
    cells = []
    if workloads:
        workloads = list(workloads)
        for name in workloads:
            workload = get_workload(name)
            if not any(workload.supports_format(fmt) for fmt in formats):
                raise ConfigurationError(
                    f"workload {name!r} supports none of the requested "
                    f"formats {formats} (declares {workload.formats})"
                )
    for fmt in formats:
        if workloads:
            for name in workloads:
                if not get_workload(name).supports_format(fmt):
                    continue
                cells.extend(
                    table_iv_cells(
                        num_samples=num_samples,
                        kinds=kinds,
                        repetitions=repetitions,
                        seed=seed,
                        rocket_config=rocket_config,
                        verify_functionally=verify_functionally,
                        solutions=solutions,
                        workload=name,
                        differential=differential,
                        fmt=fmt,
                        op=op,
                    )
                )
        else:
            cells.extend(
                table_iv_cells(
                    num_samples=num_samples,
                    kinds=kinds,
                    repetitions=repetitions,
                    seed=seed,
                    operand_classes=operand_classes,
                    rocket_config=rocket_config,
                    verify_functionally=verify_functionally,
                    solutions=solutions,
                    differential=differential,
                    fmt=fmt,
                    op=op,
                )
            )
    return cells


def run_format_campaign(
    formats,
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workloads=None,
    workers: int = 1,
    shards_per_cell: int = 1,
    mp_start_method: str = None,
    differential: bool = False,
    op: str = "multiply",
    cache=None,
) -> CampaignResult:
    """Fan (format × workload × solution) cells over the campaign engine."""
    cells = format_cells(
        formats,
        num_samples=num_samples,
        kinds=kinds,
        repetitions=repetitions,
        seed=seed,
        operand_classes=operand_classes,
        rocket_config=rocket_config,
        verify_functionally=verify_functionally,
        solutions=solutions,
        workloads=workloads,
        differential=differential,
        op=op,
    )
    return run_campaign(
        cells,
        workers=workers,
        shards_per_cell=shards_per_cell,
        mp_start_method=mp_start_method,
        cache=cache,
    )


def operation_cells(
    operations,
    formats=("decimal64",),
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workloads=None,
    differential: bool = False,
) -> list:
    """One campaign cell per (operation × format × workload-or-mix × kind).

    The cell grid behind ``python -m repro.campaign --op mul,add,fma``:
    every requested decimal operation is evaluated with every solution kind
    under every requested format, optionally crossed with a workload list.
    ``kinds`` defaults to the two *verifiable* Table IV kinds (method1 and
    the software baseline) — the dummy row measures multiply-shaped stub
    traffic and contributes nothing to a per-operation speedup comparison,
    but can be requested explicitly.  Workload entries not supporting an
    (operation, format) pair are skipped for that pair; a workload
    supported by *no* requested combination raises.
    """
    from repro.decnumber.operations import resolve_operation_name
    from repro.errors import DecimalError

    operations = list(operations)
    if not operations:
        raise ConfigurationError("operation_cells needs at least one operation")
    try:
        operations = [resolve_operation_name(name) for name in operations]
    except DecimalError as error:
        raise ConfigurationError(str(error)) from None
    formats = list(formats)
    if not formats:
        raise ConfigurationError("operation_cells needs at least one format")
    kinds = kinds or (SolutionKind.METHOD1, SolutionKind.SOFTWARE)
    cells = []
    if workloads:
        from repro.workloads import get_workload

        workloads = list(workloads)
        for name in workloads:
            workload = get_workload(name)
            if not any(
                workload.supports_format(fmt) and workload.supports_operation(op)
                for fmt in formats
                for op in operations
            ):
                raise ConfigurationError(
                    f"workload {name!r} supports none of the requested "
                    f"(operation, format) combinations "
                    f"({operations} x {formats}; declares "
                    f"{workload.operations} x {workload.formats})"
                )
        for op in operations:
            for fmt in formats:
                for name in workloads:
                    workload = get_workload(name)
                    if not (
                        workload.supports_format(fmt)
                        and workload.supports_operation(op)
                    ):
                        continue
                    cells.extend(
                        table_iv_cells(
                            num_samples=num_samples,
                            kinds=kinds,
                            repetitions=repetitions,
                            seed=seed,
                            rocket_config=rocket_config,
                            verify_functionally=verify_functionally,
                            solutions=solutions,
                            workload=name,
                            differential=differential,
                            fmt=fmt,
                            op=op,
                        )
                    )
        return cells
    for op in operations:
        for fmt in formats:
            cells.extend(
                table_iv_cells(
                    num_samples=num_samples,
                    kinds=kinds,
                    repetitions=repetitions,
                    seed=seed,
                    operand_classes=operand_classes,
                    rocket_config=rocket_config,
                    verify_functionally=verify_functionally,
                    solutions=solutions,
                    differential=differential,
                    fmt=fmt,
                    op=op,
                )
            )
    return cells


def run_operation_campaign(
    operations,
    formats=("decimal64",),
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workloads=None,
    workers: int = 1,
    shards_per_cell: int = 1,
    mp_start_method: str = None,
    differential: bool = False,
    cache=None,
) -> CampaignResult:
    """Fan (operation × format × workload × solution) cells over the engine.

    The default grid of ``--op mul,add,fma --format decimal64,decimal128
    --differential`` is 3 operations × 2 formats × 2 verifiable kinds =
    12 differential cells, each dual-oracle checked and cross-model
    diffed; :meth:`CampaignResult.table_iv_by_operation` then renders one
    speedup table per (operation, format) group.
    """
    cells = operation_cells(
        operations,
        formats=formats,
        num_samples=num_samples,
        kinds=kinds,
        repetitions=repetitions,
        seed=seed,
        operand_classes=operand_classes,
        rocket_config=rocket_config,
        verify_functionally=verify_functionally,
        solutions=solutions,
        workloads=workloads,
        differential=differential,
    )
    return run_campaign(
        cells,
        workers=workers,
        shards_per_cell=shards_per_cell,
        mp_start_method=mp_start_method,
        cache=cache,
    )


def pipeline_sweep_cells(
    depths=(1, 2, 4, 8),
    widths=(1, 2, 4),
    formats=("decimal64",),
    operations=("multiply",),
    num_samples: int = 100,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    differential: bool = False,
    include_baseline: bool = True,
) -> list:
    """One campaign cell per (operation × format × pipeline design point).

    The cell grid behind ``python -m repro.campaign --pipeline-sweep``:
    every (depth, width) microarchitecture variant of Method-1 — plus the
    software baseline as the zero-hardware reference — is evaluated per
    requested operation and format over the same shard plan, so the CLI can
    render one cycles-vs-area Pareto frontier per group (docs/pipeline.md).
    The default grid is 4 depths × 3 widths + baseline = 13 design points
    per group.
    """
    from repro.core.solution import microarchitecture_variants
    from repro.decnumber.operations import resolve_operation_name
    from repro.errors import DecimalError

    operations = list(operations)
    formats = list(formats)
    if not operations:
        raise ConfigurationError("pipeline_sweep_cells needs at least one operation")
    if not formats:
        raise ConfigurationError("pipeline_sweep_cells needs at least one format")
    try:
        operations = [resolve_operation_name(name) for name in operations]
    except DecimalError as error:
        raise ConfigurationError(str(error)) from None
    baseline = standard_solutions()[SolutionKind.SOFTWARE]
    cells = []
    for op in operations:
        for fmt in formats:
            solutions = [baseline] if include_baseline else []
            solutions.extend(microarchitecture_variants(depths, widths, fmt=fmt))
            for solution in solutions:
                label = f"{solution.name} ({op}) [{fmt}]"
                if differential:
                    label += " [diff]"
                cells.append(
                    CampaignCell(
                        solution=solution,
                        num_samples=num_samples,
                        operand_classes=tuple(operand_classes),
                        repetitions=repetitions,
                        seed=seed,
                        rocket_config=(
                            rocket_config
                            if rocket_config is not None
                            else RocketConfig()
                        ),
                        verify_functionally=verify_functionally,
                        differential=differential,
                        fmt=fmt,
                        op=op,
                        label=label,
                    )
                )
    return cells


def run_pipeline_sweep_campaign(
    depths=(1, 2, 4, 8),
    widths=(1, 2, 4),
    formats=("decimal64",),
    operations=("multiply",),
    num_samples: int = 100,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    differential: bool = False,
    include_baseline: bool = True,
    workers: int = 1,
    shards_per_cell: int = 1,
    mp_start_method: str = None,
    cache=None,
) -> CampaignResult:
    """Fan the pipeline design-space grid over the campaign engine.

    The design-space study ROADMAP item 2 asks for: each cell measures one
    staged-pipeline microarchitecture (cycles) whose area comes straight
    off its pinned configuration; ``repro.core.pareto.points_from_campaign``
    turns the result into per-group Pareto point clouds.
    """
    cells = pipeline_sweep_cells(
        depths=depths,
        widths=widths,
        formats=formats,
        operations=operations,
        num_samples=num_samples,
        repetitions=repetitions,
        seed=seed,
        operand_classes=operand_classes,
        rocket_config=rocket_config,
        verify_functionally=verify_functionally,
        differential=differential,
        include_baseline=include_baseline,
    )
    return run_campaign(
        cells,
        workers=workers,
        shards_per_cell=shards_per_cell,
        mp_start_method=mp_start_method,
        cache=cache,
    )


def run_workload_campaign(
    workloads,
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workers: int = 1,
    shards_per_cell: int = 1,
    mp_start_method: str = None,
    differential: bool = False,
    fmt: str = "decimal64",
    op: str = "multiply",
    cache=None,
) -> CampaignResult:
    """Fan (solution × workload) cells over the sharded campaign engine."""
    cells = workload_cells(
        workloads,
        num_samples=num_samples,
        kinds=kinds,
        repetitions=repetitions,
        seed=seed,
        rocket_config=rocket_config,
        verify_functionally=verify_functionally,
        solutions=solutions,
        differential=differential,
        fmt=fmt,
        op=op,
    )
    return run_campaign(
        cells,
        workers=workers,
        shards_per_cell=shards_per_cell,
        mp_start_method=mp_start_method,
        cache=cache,
    )


def run_table_iv_campaign(
    num_samples: int = 100,
    kinds=None,
    repetitions: int = 1,
    seed: int = 2018,
    operand_classes=OperandClass.TABLE_IV_MIX,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    solutions: dict = None,
    workers: int = 1,
    shards_per_cell: int = 1,
    mp_start_method: str = None,
    workload: str = None,
    differential: bool = False,
    fmt: str = "decimal64",
    op: str = "multiply",
    cache=None,
) -> CampaignResult:
    """Convenience wrapper: plan, run and merge a Table IV campaign."""
    cells = table_iv_cells(
        num_samples=num_samples,
        kinds=kinds,
        repetitions=repetitions,
        seed=seed,
        operand_classes=operand_classes,
        rocket_config=rocket_config,
        verify_functionally=verify_functionally,
        solutions=solutions,
        workload=workload,
        differential=differential,
        fmt=fmt,
        op=op,
    )
    return run_campaign(
        cells,
        workers=workers,
        shards_per_cell=shards_per_cell,
        mp_start_method=mp_start_method,
        cache=cache,
    )
