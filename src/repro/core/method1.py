"""Host-level (pure Python) model of Method-1 decimal multiplication.

This is the same Fig. 1 flow the RISC-V kernel implements, expressed in
Python.  It serves three purposes:

* executable documentation of the algorithm (white = software steps, the
  ``hardware`` object = grey steps);
* the "Method-1 using dummy function" implementation timed on the *host* for
  the Table V reproduction (the paper ran it on an Intel i7 under Windows);
* a cross-check of the RISC-V kernel: with :class:`FunctionalHardware` the
  model produces bit-exact IEEE results, with :class:`DummyHardware` it
  reproduces the estimation methodology (fixed return values, timing only).
"""

from __future__ import annotations

from repro.decnumber import decimal64
from repro.decnumber.bcd import bcd_to_int, int_to_bcd
from repro.decnumber.number import DecNumber

_ETINY = -398
_ETOP = 369
_EMAX = 384
_PRECISION = 16


class FunctionalHardware:
    """Hardware part modelled functionally (what the real accelerator does)."""

    name = "functional"

    def __init__(self) -> None:
        self.multiples = [0] * 10
        self.accumulator = 0
        self.operations = 0

    def clear(self) -> None:
        self.multiples = [0] * 10
        self.accumulator = 0
        self.operations += 1

    def write_multiplicand(self, bcd_value: int) -> None:
        self.multiples[1] = bcd_value
        self.operations += 1

    def generate_multiple(self, index: int) -> None:
        """MM[index+1] = MM[index] + MM[1] (one BCD-CLA addition)."""
        self.multiples[index + 1] = int_to_bcd(
            bcd_to_int(self.multiples[index]) + bcd_to_int(self.multiples[1])
        )
        self.operations += 1

    def accumulate_digit(self, digit: int) -> None:
        """accumulator = accumulator * 10 + MM[digit]."""
        self.accumulator = self.accumulator * 10 + bcd_to_int(self.multiples[digit])
        self.operations += 1

    def read_product(self) -> int:
        """The accumulated coefficient product (as an integer)."""
        self.operations += 1
        return self.accumulator

    def bcd_increment(self, value: int) -> int:
        """value + 1 through the BCD adder."""
        self.operations += 1
        return value + 1


class DummyHardware:
    """The dummy functions of the estimation methodology: fixed return values."""

    name = "dummy"

    def __init__(self) -> None:
        self.operations = 0

    def clear(self) -> None:
        self.operations += 1

    def write_multiplicand(self, bcd_value: int) -> None:
        self.operations += 1

    def generate_multiple(self, index: int) -> None:
        self.operations += 1

    def accumulate_digit(self, digit: int) -> None:
        self.operations += 1

    def read_product(self) -> int:
        self.operations += 1
        return 0x123  # fixed return value

    def bcd_increment(self, value: int) -> int:
        self.operations += 1
        return 1  # fixed return value


class Method1HostModel:
    """Method-1 multiplication with a pluggable hardware part."""

    def __init__(self, hardware=None) -> None:
        self.hardware = hardware if hardware is not None else FunctionalHardware()

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _is_zero(number: DecNumber) -> bool:
        return number.is_finite and number.coefficient == 0

    @staticmethod
    def _encode_zero(sign: int, exponent: int) -> DecNumber:
        exponent = min(max(exponent, _ETINY), _ETOP)
        return DecNumber(sign, 0, exponent)

    # ----------------------------------------------------------------- multiply
    def multiply(self, x: DecNumber, y: DecNumber) -> DecNumber:
        """Multiply two decimal64 values following the Fig. 1 flow."""
        hardware = self.hardware

        # Special values (software).
        if x.is_nan or y.is_nan:
            source = x if x.is_nan else y
            return DecNumber.qnan(source.coefficient, source.sign)
        sign = x.sign ^ y.sign
        if x.is_infinite or y.is_infinite:
            if self._is_zero(x) or self._is_zero(y):
                return DecNumber.qnan()
            return DecNumber.infinity(sign)

        # Sign / exponent (software).
        exponent = x.exponent + y.exponent
        if x.coefficient == 0 or y.coefficient == 0:
            return self._encode_zero(sign, exponent)

        # Convert to BCD (software) and run the hardware part.
        x_bcd = int_to_bcd(x.coefficient, _PRECISION)
        y_digits = [(y.coefficient // 10 ** k) % 10 for k in range(_PRECISION)]
        hardware.clear()
        hardware.write_multiplicand(x_bcd)
        for index in range(1, 9):
            hardware.generate_multiple(index)
        for digit in reversed(y_digits):  # most significant digit first
            hardware.accumulate_digit(digit)
        product = hardware.read_product()

        # Rounding (software), single-shot drop as in the kernels.
        digits = len(str(product)) if product else 1
        drop = max(0, digits - _PRECISION, _ETINY - exponent)
        if drop > 0:
            if drop >= digits:
                # Deep underflow: 0 or 1 ulp.
                coefficient = 1 if drop == digits and product > 5 * 10 ** (digits - 1) else 0
            else:
                quotient, remainder = divmod(product, 10 ** drop)
                half = 5 * 10 ** (drop - 1)
                round_up = remainder > half or (remainder == half and quotient & 1)
                if round_up:
                    quotient = hardware.bcd_increment(quotient)
                    if quotient == 10 ** _PRECISION:
                        quotient //= 10
                        drop += 1
                coefficient = quotient
            exponent += drop
        else:
            coefficient = product

        if coefficient == 0:
            return self._encode_zero(sign, exponent)

        # Overflow / clamp (software).
        adjusted = exponent + len(str(coefficient)) - 1
        if adjusted > _EMAX:
            return DecNumber.infinity(sign)
        if exponent > _ETOP:
            coefficient *= 10 ** (exponent - _ETOP)
            exponent = _ETOP
        return DecNumber(sign, coefficient, exponent)

    def multiply_words(self, x_word: int, y_word: int) -> int:
        """decimal64-bit-pattern convenience wrapper (used by host timing)."""
        result = self.multiply(decimal64.decode(x_word), decimal64.decode(y_word))
        return decimal64.encode(result)
