"""Co-design solution descriptions.

A :class:`CoDesignSolution` bundles everything the framework needs to evaluate
one point in the software/hardware design space: which kernel to generate,
whether (and which) accelerator to attach, and how to describe it in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rocc.decimal_accel import DecimalAccelerator, DecimalAcceleratorConfig
from repro.testgen.config import SolutionKind


@dataclass(frozen=True)
class CoDesignSolution:
    """One evaluated solution (a row of Table IV)."""

    name: str
    kind: str                       # a SolutionKind value
    description: str = ""
    uses_accelerator: bool = False
    accelerator_config: DecimalAcceleratorConfig = None
    #: whether functional results are meaningful (False for dummy functions)
    verifiable: bool = True

    def make_accelerator(self):
        """Instantiate a fresh accelerator for a run (or None)."""
        if not self.uses_accelerator:
            return None
        config = self.accelerator_config or DecimalAcceleratorConfig()
        return DecimalAccelerator(config)

    def hardware_overhead(self):
        """Area report of the required dedicated hardware (None if all-software)."""
        accelerator = self.make_accelerator()
        if accelerator is None:
            return None
        return accelerator.area_report()


def standard_solutions() -> dict:
    """The three solutions the paper's Table IV compares."""
    return {
        SolutionKind.SOFTWARE: CoDesignSolution(
            name="Software [2]",
            kind=SolutionKind.SOFTWARE,
            description=(
                "decNumber-style pure-software decimal64 multiplication on the "
                "binary ALU (base-billion limbs, division-based rounding)"
            ),
            uses_accelerator=False,
        ),
        SolutionKind.METHOD1: CoDesignSolution(
            name="Method-1 [9]",
            kind=SolutionKind.METHOD1,
            description=(
                "software-hardware co-design: DPD<->BCD and rounding in "
                "software, multiplicand multiples and partial-product "
                "accumulation on the RoCC BCD accelerator"
            ),
            uses_accelerator=True,
        ),
        SolutionKind.METHOD1_DUMMY: CoDesignSolution(
            name="Method-1 using dummy function [9]",
            kind=SolutionKind.METHOD1_DUMMY,
            description=(
                "the same software flow with accelerator calls replaced by "
                "fixed-return dummy functions (estimation methodology)"
            ),
            uses_accelerator=False,
            verifiable=False,
        ),
    }
