"""Co-design solution descriptions.

A :class:`CoDesignSolution` bundles everything the framework needs to evaluate
one point in the software/hardware design space: which kernel to generate,
whether (and which) accelerator to attach, and how to describe it in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rocc.decimal_accel import DecimalAccelerator, DecimalAcceleratorConfig
from repro.testgen.config import SolutionKind


@dataclass(frozen=True)
class CoDesignSolution:
    """One evaluated solution (a row of Table IV).

    A solution is format-neutral: the same three Table IV rows exist for
    every interchange format, and the accelerator datapath is sized for the
    format at instantiation time (unless ``accelerator_config`` pins an
    explicit configuration, e.g. for a Pareto sweep).
    """

    name: str
    kind: str                       # a SolutionKind value
    description: str = ""
    uses_accelerator: bool = False
    accelerator_config: Optional[DecimalAcceleratorConfig] = None
    #: whether functional results are meaningful (False for dummy functions)
    verifiable: bool = True

    def resolve_accelerator_config(
        self, fmt: str = "decimal64"
    ) -> Optional[DecimalAcceleratorConfig]:
        """The datapath configuration a run under ``fmt`` would use.

        A pinned ``accelerator_config`` is validated against the format's
        precision up front, so a decimal64-sized datapath under a wider
        format fails here with a clear message instead of deep inside a
        simulated kernel's register-file lane write.
        """
        if not self.uses_accelerator:
            return None
        if self.accelerator_config is not None:
            from repro.decnumber.formats import get_format
            from repro.errors import ConfigurationError

            spec = get_format(fmt)
            if self.accelerator_config.digits < spec.precision:
                raise ConfigurationError(
                    f"solution {self.name!r} pins a "
                    f"{self.accelerator_config.digits}-digit accelerator "
                    f"datapath, too narrow for {spec.name} "
                    f"({spec.precision} digits); pin a "
                    f"DecimalAcceleratorConfig.for_format({spec.name!r}) "
                    "variant instead"
                )
            return self.accelerator_config
        return DecimalAcceleratorConfig.for_format(fmt)

    def make_accelerator(self, fmt: str = "decimal64"):
        """Instantiate a fresh accelerator for a run (or None)."""
        config = self.resolve_accelerator_config(fmt)
        if config is None:
            return None
        return DecimalAccelerator(config)

    def hardware_overhead(self, fmt: str = "decimal64"):
        """Area report of the required dedicated hardware (None if all-software).

        Computed straight from the configuration — no accelerator is
        instantiated just to read its area.
        """
        config = self.resolve_accelerator_config(fmt)
        if config is None:
            return None
        return config.area_report()


def microarchitecture_variants(
    depths=(1, 2, 4, 8),
    widths=(1, 2, 4),
    fmt: str = "decimal64",
    base: CoDesignSolution = None,
) -> list:
    """Method-1 variants pinning one staged-pipeline design point each.

    The depth × width grid behind ``ParetoAnalyzer.sweep_microarchitecture``
    and ``python -m repro.campaign --pipeline-sweep``: every variant shares
    the Method-1 kernel and a format-sized datapath, differing only in the
    :class:`~repro.rocc.decimal_accel.DecimalAcceleratorConfig` pipeline
    knobs (docs/pipeline.md).  The ``d1w1`` point is timing-identical to the
    paper's blocking accelerator.
    """
    import dataclasses

    from repro.errors import ConfigurationError

    depths = list(depths)
    widths = list(widths)
    if not depths or not widths:
        raise ConfigurationError(
            "microarchitecture_variants needs at least one depth and one width"
        )
    if base is None:
        base = standard_solutions()[SolutionKind.METHOD1]
    variants = []
    for depth in depths:
        for width in widths:
            config = DecimalAcceleratorConfig.for_format(
                fmt, pipeline_depth=depth, issue_width=width
            )
            variants.append(
                dataclasses.replace(
                    base,
                    name=f"{base.name} d{depth}w{width}",
                    description=(
                        f"{base.description} — staged datapath, "
                        f"{depth}-deep pipeline, {width}-wide issue"
                    ),
                    accelerator_config=config,
                )
            )
    return variants


def standard_solutions() -> dict:
    """The three solutions the paper's Table IV compares."""
    return {
        SolutionKind.SOFTWARE: CoDesignSolution(
            name="Software [2]",
            kind=SolutionKind.SOFTWARE,
            description=(
                "decNumber-style pure-software decimal64 multiplication on the "
                "binary ALU (base-billion limbs, division-based rounding)"
            ),
            uses_accelerator=False,
        ),
        SolutionKind.METHOD1: CoDesignSolution(
            name="Method-1 [9]",
            kind=SolutionKind.METHOD1,
            description=(
                "software-hardware co-design: DPD<->BCD and rounding in "
                "software, multiplicand multiples and partial-product "
                "accumulation on the RoCC BCD accelerator"
            ),
            uses_accelerator=True,
        ),
        SolutionKind.METHOD1_DUMMY: CoDesignSolution(
            name="Method-1 using dummy function [9]",
            kind=SolutionKind.METHOD1_DUMMY,
            description=(
                "the same software flow with accelerator calls replaced by "
                "fixed-return dummy functions (estimation methodology)"
            ),
            uses_accelerator=False,
            verifiable=False,
        ),
    }
