"""Pareto analysis of co-design configurations (performance vs hardware cost).

The paper motivates co-design by the *Pareto points* it offers between
hardware cost and performance.  This module evaluates a set of solutions /
accelerator configurations with the same framework and extracts the Pareto
frontier over (average cycles, gate equivalents).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluation import EvaluationFramework
from repro.core.solution import CoDesignSolution
from repro.testgen.config import SolutionKind


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point."""

    name: str
    avg_cycles: float
    gate_equivalents: float
    flip_flops: int = 0

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good on both axes and better on one."""
        not_worse = (
            self.avg_cycles <= other.avg_cycles
            and self.gate_equivalents <= other.gate_equivalents
        )
        strictly_better = (
            self.avg_cycles < other.avg_cycles
            or self.gate_equivalents < other.gate_equivalents
        )
        return not_worse and strictly_better


@dataclass
class ParetoAnalyzer:
    """Evaluates a family of solutions and reports the Pareto frontier."""

    framework: EvaluationFramework
    points: list = field(default_factory=list)

    def evaluate_solution(self, solution: CoDesignSolution) -> ParetoPoint:
        """Measure one solution and record its design point."""
        original = self.framework.solutions.get(solution.kind)
        self.framework.solutions[solution.kind] = solution
        try:
            run = self.framework.run_cycle_accurate(solution.kind)
        finally:
            if original is not None:
                self.framework.solutions[solution.kind] = original
        overhead = solution.hardware_overhead()
        point = ParetoPoint(
            name=solution.name,
            avg_cycles=run.cycle_report.avg_total_cycles,
            gate_equivalents=overhead.total_gate_equivalents if overhead else 0.0,
            flip_flops=overhead.total_flip_flops if overhead else 0,
        )
        self.points.append(point)
        return point

    def evaluate_standard_points(self) -> list:
        """Evaluate the software baseline and Method-1 (the paper's two designs)."""
        for kind in (SolutionKind.SOFTWARE, SolutionKind.METHOD1):
            self.evaluate_solution(self.framework.solutions[kind])
        return self.points

    def frontier(self) -> list:
        """The non-dominated subset of evaluated points, sorted by cycles."""
        frontier = [
            point
            for point in self.points
            if not any(other.dominates(point) for other in self.points)
        ]
        return sorted(frontier, key=lambda point: point.avg_cycles)
