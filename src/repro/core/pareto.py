"""Pareto analysis of co-design configurations (performance vs hardware cost).

The paper motivates co-design by the *Pareto points* it offers between
hardware cost and performance.  This module evaluates a set of solutions /
accelerator configurations with the same framework and extracts the Pareto
frontier over (average cycles, gate equivalents).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.evaluation import EvaluationFramework
from repro.core.solution import CoDesignSolution
from repro.testgen.config import SolutionKind


@dataclass(frozen=True)
class ParetoPoint:
    """One evaluated design point."""

    name: str
    avg_cycles: float
    gate_equivalents: float
    flip_flops: int = 0

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is at least as good on both axes and better on one."""
        not_worse = (
            self.avg_cycles <= other.avg_cycles
            and self.gate_equivalents <= other.gate_equivalents
        )
        strictly_better = (
            self.avg_cycles < other.avg_cycles
            or self.gate_equivalents < other.gate_equivalents
        )
        return not_worse and strictly_better


def frontier_of(points) -> list:
    """The non-dominated subset of ``points``, deterministically ordered.

    A point survives iff no other point dominates it; coincident points
    (neither dominates the other) all survive.  The order — ascending
    cycles, then gate equivalents, then name — is a pure function of the
    point set, so repeated sweeps render identically.
    """
    points = list(points)
    frontier = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(
        frontier,
        key=lambda point: (point.avg_cycles, point.gate_equivalents, point.name),
    )


def points_from_campaign(result) -> dict:
    """Pareto points of a sweep-style campaign, grouped ``(op, fmt)``.

    One :class:`ParetoPoint` per campaign cell: cycles from the merged
    report, area straight off the solution's pinned configuration.  Used by
    ``python -m repro.campaign --pipeline-sweep`` to render one frontier per
    format × operation group.
    """
    groups: dict = {}
    for cell, report in zip(result.cells, result.reports):
        overhead = cell.solution.hardware_overhead(cell.fmt)
        point = ParetoPoint(
            name=cell.solution.name,
            avg_cycles=report.avg_total_cycles,
            gate_equivalents=overhead.total_gate_equivalents if overhead else 0.0,
            flip_flops=overhead.total_flip_flops if overhead else 0,
        )
        groups.setdefault((cell.op, cell.fmt), []).append(point)
    return groups


@dataclass
class ParetoAnalyzer:
    """Evaluates a family of solutions and reports the Pareto frontier."""

    framework: EvaluationFramework
    points: list = field(default_factory=list)

    def evaluate_solution(self, solution: CoDesignSolution) -> ParetoPoint:
        """Measure one solution and record its design point."""
        original = self.framework.solutions.get(solution.kind)
        self.framework.solutions[solution.kind] = solution
        try:
            run = self.framework.run_cycle_accurate(solution.kind)
        finally:
            if original is not None:
                self.framework.solutions[solution.kind] = original
            else:
                # The kind had no registered solution before: drop the
                # temporary entry instead of leaking it into later runs.
                self.framework.solutions.pop(solution.kind, None)
        return self._record_point(solution, run.cycle_report)

    def _record_point(self, solution: CoDesignSolution, cycle_report) -> ParetoPoint:
        overhead = solution.hardware_overhead(self.framework.fmt)
        point = ParetoPoint(
            name=solution.name,
            avg_cycles=cycle_report.avg_total_cycles,
            gate_equivalents=overhead.total_gate_equivalents if overhead else 0.0,
            flip_flops=overhead.total_flip_flops if overhead else 0,
        )
        self.points.append(point)
        return point

    def evaluate_sweep(
        self,
        solutions,
        rocket_configs=None,
        workers: int = 1,
        shards_per_cell: int = 1,
    ) -> list:
        """Evaluate a family of design points through the campaign engine.

        Builds one campaign cell per (solution × RocketConfig) combination —
        all over the framework's shared vector parameters — runs them (in
        parallel when ``workers > 1``) and records the resulting points.
        Unlike :meth:`evaluate_solution` this never touches
        ``framework.solutions``, so there is no state to restore.
        """
        from repro.core.campaign import CampaignCell, run_campaign

        framework = self.framework
        configs = list(rocket_configs) if rocket_configs else [framework.rocket_config]
        cells = [
            CampaignCell(
                solution=solution,
                num_samples=framework.num_samples,
                operand_classes=tuple(framework.operand_classes),
                repetitions=framework.repetitions,
                seed=framework.seed,
                rocket_config=config,
                verify_functionally=framework.verify_functionally,
                workload=framework.workload,
                fmt=framework.fmt,
                label=f"{solution.name} @ {config.frequency_hz / 1e6:.0f}MHz",
            )
            for solution in solutions
            for config in configs
        ]
        result = run_campaign(
            cells, workers=workers, shards_per_cell=shards_per_cell
        )
        return [
            self._record_point(cell.solution, report)
            for cell, report in zip(result.cells, result.reports)
        ]

    def evaluate_standard_points(self, workers: int = 1) -> list:
        """Evaluate the software baseline and Method-1 (the paper's two designs)."""
        self.evaluate_sweep(
            [
                self.framework.solutions[kind]
                for kind in (SolutionKind.SOFTWARE, SolutionKind.METHOD1)
            ],
            workers=workers,
        )
        return self.points

    def sweep_microarchitecture(
        self,
        depths=(1, 2, 4, 8),
        widths=(1, 2, 4),
        include_baseline: bool = True,
        workers: int = 1,
        shards_per_cell: int = 1,
    ) -> list:
        """Evaluate a staged-pipeline depth × width grid as design points.

        Builds one Method-1 variant per (depth, width) with a format-sized
        datapath pinning those pipeline knobs (docs/pipeline.md), plus the
        software baseline as the zero-hardware reference point, and fans
        them through :meth:`evaluate_sweep`.  The recorded points trade
        cycles (deeper pipelines overlap back-to-back RoCC commands)
        against area (stage latch ranks and issue-queue registers).
        """
        from repro.core.solution import microarchitecture_variants

        solutions = []
        if include_baseline:
            solutions.append(self.framework.solutions[SolutionKind.SOFTWARE])
        solutions.extend(
            microarchitecture_variants(depths, widths, fmt=self.framework.fmt)
        )
        return self.evaluate_sweep(
            solutions, workers=workers, shards_per_cell=shards_per_cell
        )

    def frontier(self) -> list:
        """The non-dominated subset of evaluated points, sorted by cycles."""
        return frontier_of(self.points)
