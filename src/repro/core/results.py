"""Result containers for the evaluation framework (Tables IV, V, VI).

Cycle measurements are collected per *shard* — a contiguous slice of a
solution's operand vectors measured in one simulator run — and merged into
:class:`SolutionCycleReport` rows.  A serial evaluation is simply the
single-shard case, so the campaign engine (``repro.core.campaign``) and the
serial framework share one accounting path and produce bit-identical numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _stdev(values) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((value - mean) ** 2 for value in values) / (len(values) - 1))


def _hit_rate(hits: int, accesses: int) -> float:
    return hits / accesses if accesses else 0.0


@dataclass
class ShardCycleReport:
    """Raw measurements of one shard run — plain ints/floats, picklable.

    ``raw_cycle_samples`` holds the RDCYCLE deltas exactly as read back from
    the simulated cycle buffer (one per sample, covering all ``repetitions``
    of that sample); the repetitions division happens once, at merge time.
    """

    shard_index: int
    start: int
    stop: int
    raw_cycle_samples: list = field(default_factory=list)
    hw_cycles: int = 0
    sw_cycles: int = 0
    instructions_retired: int = 0
    total_cycles_run: int = 0
    icache_accesses: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    rocc_commands: int = 0
    check_total: int = 0
    check_failed: int = 0
    verified: bool = False
    sim_wall_seconds: float = 0.0
    #: Interchange format the shard's kernel/operands were generated for.
    fmt: str = "decimal64"
    #: Decimal operation the shard's kernel computes (multiply/add/…).
    operation: str = "multiply"
    #: Differential-mode measurements (cross-model co-simulation).  All
    #: plain ints/strings/dicts so shard reports stay picklable.
    differential: bool = False
    models: tuple = ()
    divergences: int = 0
    first_divergence: str = ""
    oracle_disagreements: int = 0
    gem5_cycles: int = 0
    #: Golden-result condition name -> count over this shard's vectors.
    condition_coverage: dict = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        return self.stop - self.start


def shard_report_to_dict(report: ShardCycleReport) -> dict:
    """JSON-ready dict of one shard report (see :func:`shard_report_from_dict`).

    Every field is a plain int/float/str/bool/list/dict, and floats survive a
    ``json.dumps``/``loads`` round trip exactly (repr-based), so a report
    persisted by the campaign service's result cache merges bit-identically
    to the in-memory original.
    """
    import dataclasses

    data = dataclasses.asdict(report)
    data["models"] = list(report.models)
    return data


def shard_report_from_dict(data: dict) -> ShardCycleReport:
    """Rebuild a :class:`ShardCycleReport` persisted by ``shard_report_to_dict``."""
    data = dict(data)
    data["models"] = tuple(data.get("models", ()))
    return ShardCycleReport(**data)


@dataclass
class SolutionCycleReport:
    """Cycle-accurate measurements of one solution (one row of Table IV)."""

    solution_name: str
    solution_kind: str
    num_samples: int
    per_sample_cycles: list = field(default_factory=list)
    hw_cycles_total: float = 0
    sw_cycles_total: int = 0
    instructions_retired: int = 0
    total_cycles_run: int = 0
    verification_passed: bool = True
    verification_failures: int = 0
    icache_hit_rate: float = 0.0
    dcache_hit_rate: float = 0.0
    rocc_commands: int = 0
    #: Raw cache counters (0 when the report predates shard accounting);
    #: hit rates above stay authoritative for rendering.
    icache_accesses: int = 0
    icache_hits: int = 0
    dcache_accesses: int = 0
    dcache_hits: int = 0
    #: Host wall-clock seconds spent inside simulator runs for this row.
    sim_wall_seconds: float = 0.0
    #: Number of shards this report was merged from (1 for a serial run).
    num_shards: int = 1
    #: Interchange format the row was measured under.
    fmt: str = "decimal64"
    #: Decimal operation the row was measured over (multiply/add/…).
    operation: str = "multiply"
    #: Differential-mode rollup (zero/empty for plain measurement runs).
    differential: bool = False
    models: tuple = ()
    divergences: int = 0
    first_divergence: str = ""
    oracle_disagreements: int = 0
    gem5_cycles: int = 0
    condition_coverage: dict = field(default_factory=dict)

    @property
    def conditions_covered(self) -> int:
        """Distinct golden-result conditions this row's vectors exercised."""
        return sum(1 for count in self.condition_coverage.values() if count)

    @property
    def avg_total_cycles(self) -> float:
        """Average RDCYCLE-measured cycles per multiplication."""
        return _mean(self.per_sample_cycles)

    @property
    def avg_hw_cycles(self) -> float:
        """Average hardware-part cycles per multiplication."""
        if not self.num_samples:
            return 0.0
        return self.hw_cycles_total / self.num_samples

    @property
    def avg_sw_cycles(self) -> float:
        """Average software-part cycles per multiplication."""
        return self.avg_total_cycles - self.avg_hw_cycles

    @property
    def stdev_cycles(self) -> float:
        return _stdev(self.per_sample_cycles)

    def speedup_over(self, baseline: "SolutionCycleReport") -> float:
        """Speedup of this solution relative to ``baseline``."""
        if not self.avg_total_cycles:
            return 0.0
        return baseline.avg_total_cycles / self.avg_total_cycles


def merge_shard_reports(
    solution_name: str,
    solution_kind: str,
    shards,
    repetitions: int = 1,
) -> SolutionCycleReport:
    """Merge shard measurements into one :class:`SolutionCycleReport`.

    The merge is order-independent: shards are keyed by their sample range,
    so the same shard set produces the same report no matter which workers
    ran them or in which order they completed.  Per-sample cycles and the
    hardware-cycle total use *true* division by ``repetitions`` (rounding is
    a rendering concern), except that the exact integer totals are preserved
    when ``repetitions == 1``.
    """
    shards = sorted(shards, key=lambda shard: (shard.start, shard.shard_index))
    expected = 0
    for shard in shards:
        if shard.start != expected:
            raise ConfigurationError(
                f"shard set for {solution_kind!r} is not contiguous: "
                f"expected a shard starting at {expected}, got {shard.start}"
            )
        if len(shard.raw_cycle_samples) != shard.num_samples:
            raise ConfigurationError(
                f"shard [{shard.start}:{shard.stop}] returned "
                f"{len(shard.raw_cycle_samples)} cycle samples"
            )
        expected = shard.stop

    per_sample = [
        count / repetitions
        for shard in shards
        for count in shard.raw_cycle_samples
    ]
    hw_raw = sum(shard.hw_cycles for shard in shards)
    ic_accesses = sum(shard.icache_accesses for shard in shards)
    ic_hits = sum(shard.icache_hits for shard in shards)
    dc_accesses = sum(shard.dcache_accesses for shard in shards)
    dc_hits = sum(shard.dcache_hits for shard in shards)
    check_failed = sum(shard.check_failed for shard in shards)
    verified = any(shard.verified for shard in shards)
    condition_coverage = {}
    for shard in shards:
        for name, count in shard.condition_coverage.items():
            condition_coverage[name] = condition_coverage.get(name, 0) + count
    first_divergence = next(
        (shard.first_divergence for shard in shards if shard.first_divergence),
        "",
    )
    models = next((shard.models for shard in shards if shard.models), ())
    return SolutionCycleReport(
        solution_name=solution_name,
        solution_kind=solution_kind,
        num_samples=expected,
        per_sample_cycles=per_sample,
        hw_cycles_total=hw_raw if repetitions == 1 else hw_raw / repetitions,
        sw_cycles_total=sum(shard.sw_cycles for shard in shards),
        instructions_retired=sum(shard.instructions_retired for shard in shards),
        total_cycles_run=sum(shard.total_cycles_run for shard in shards),
        verification_passed=(check_failed == 0) if verified else True,
        verification_failures=check_failed,
        icache_hit_rate=_hit_rate(ic_hits, ic_accesses),
        dcache_hit_rate=_hit_rate(dc_hits, dc_accesses),
        rocc_commands=sum(shard.rocc_commands for shard in shards),
        icache_accesses=ic_accesses,
        icache_hits=ic_hits,
        dcache_accesses=dc_accesses,
        dcache_hits=dc_hits,
        sim_wall_seconds=sum(shard.sim_wall_seconds for shard in shards),
        num_shards=len(shards),
        fmt=next((shard.fmt for shard in shards), "decimal64"),
        operation=next((shard.operation for shard in shards), "multiply"),
        differential=any(shard.differential for shard in shards),
        models=tuple(models),
        divergences=sum(shard.divergences for shard in shards),
        first_divergence=first_divergence,
        oracle_disagreements=sum(shard.oracle_disagreements for shard in shards),
        gem5_cycles=sum(shard.gem5_cycles for shard in shards),
        condition_coverage=condition_coverage,
    )


@dataclass
class TableIVReport:
    """The three-row cycle comparison of Table IV."""

    num_samples: int
    reports: dict = field(default_factory=dict)  # kind -> SolutionCycleReport
    baseline_kind: str = "software"

    def speedups(self, strict: bool = False) -> dict:
        """Speedup of every evaluated kind over ``baseline_kind``.

        When the evaluated subset does not include the baseline there is
        nothing to normalise against: every speedup is ``None`` (or, with
        ``strict=True``, a :class:`ConfigurationError` naming the missing
        baseline is raised instead of a bare ``KeyError``).
        """
        baseline = self.reports.get(self.baseline_kind)
        if baseline is None:
            if strict:
                raise ConfigurationError(
                    f"baseline kind {self.baseline_kind!r} was not evaluated "
                    f"(have: {', '.join(self.reports) or 'none'})"
                )
            return {kind: None for kind in self.reports}
        return {
            kind: report.speedup_over(baseline) for kind, report in self.reports.items()
        }

    def rows(self) -> list:
        """Rows in the paper's layout: SW part / HW part / Total / Speedup."""
        speedups = self.speedups()
        rows = []
        for kind, report in self.reports.items():
            speedup = speedups.get(kind)
            rows.append(
                {
                    "solution": report.solution_name,
                    "sw_part": round(report.avg_sw_cycles),
                    "hw_part": round(report.avg_hw_cycles),
                    "total": round(report.avg_total_cycles),
                    "speedup": (
                        None
                        if kind == self.baseline_kind or speedup is None
                        else round(speedup, 2)
                    ),
                }
            )
        return rows


@dataclass
class TimedRow:
    """One row of a wall-clock (Table V) or simulated-time (Table VI) report."""

    name: str
    seconds: float
    samples: int


@dataclass
class TableVReport:
    """Host "real implementation" timing comparison (Table V)."""

    rows: dict = field(default_factory=dict)   # kind -> TimedRow
    baseline_kind: str = "software"

    def speedup(self, kind: str) -> float:
        baseline = self.rows[self.baseline_kind].seconds
        mine = self.rows[kind].seconds
        return baseline / mine if mine else 0.0


@dataclass
class TableVIReport:
    """Gem5 AtomicSimpleCPU timing comparison (Table VI)."""

    rows: dict = field(default_factory=dict)   # kind -> TimedRow
    baseline_kind: str = "software"
    instructions: dict = field(default_factory=dict)

    def speedup(self, kind: str) -> float:
        baseline = self.rows[self.baseline_kind].seconds
        mine = self.rows[kind].seconds
        return baseline / mine if mine else 0.0
