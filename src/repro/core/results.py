"""Result containers for the evaluation framework (Tables IV, V, VI)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _stdev(values) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(sum((value - mean) ** 2 for value in values) / (len(values) - 1))


@dataclass
class SolutionCycleReport:
    """Cycle-accurate measurements of one solution (one row of Table IV)."""

    solution_name: str
    solution_kind: str
    num_samples: int
    per_sample_cycles: list = field(default_factory=list)
    hw_cycles_total: int = 0
    sw_cycles_total: int = 0
    instructions_retired: int = 0
    total_cycles_run: int = 0
    verification_passed: bool = True
    verification_failures: int = 0
    icache_hit_rate: float = 0.0
    dcache_hit_rate: float = 0.0
    rocc_commands: int = 0

    @property
    def avg_total_cycles(self) -> float:
        """Average RDCYCLE-measured cycles per multiplication."""
        return _mean(self.per_sample_cycles)

    @property
    def avg_hw_cycles(self) -> float:
        """Average hardware-part cycles per multiplication."""
        if not self.num_samples:
            return 0.0
        return self.hw_cycles_total / self.num_samples

    @property
    def avg_sw_cycles(self) -> float:
        """Average software-part cycles per multiplication."""
        return self.avg_total_cycles - self.avg_hw_cycles

    @property
    def stdev_cycles(self) -> float:
        return _stdev(self.per_sample_cycles)

    def speedup_over(self, baseline: "SolutionCycleReport") -> float:
        """Speedup of this solution relative to ``baseline``."""
        if not self.avg_total_cycles:
            return 0.0
        return baseline.avg_total_cycles / self.avg_total_cycles


@dataclass
class TableIVReport:
    """The three-row cycle comparison of Table IV."""

    num_samples: int
    reports: dict = field(default_factory=dict)  # kind -> SolutionCycleReport
    baseline_kind: str = "software"

    def speedups(self) -> dict:
        baseline = self.reports[self.baseline_kind]
        return {
            kind: report.speedup_over(baseline) for kind, report in self.reports.items()
        }

    def rows(self) -> list:
        """Rows in the paper's layout: SW part / HW part / Total / Speedup."""
        speedups = self.speedups()
        rows = []
        for kind, report in self.reports.items():
            speedup = speedups[kind]
            rows.append(
                {
                    "solution": report.solution_name,
                    "sw_part": round(report.avg_sw_cycles),
                    "hw_part": round(report.avg_hw_cycles),
                    "total": round(report.avg_total_cycles),
                    "speedup": None if kind == self.baseline_kind else round(speedup, 2),
                }
            )
        return rows


@dataclass
class TimedRow:
    """One row of a wall-clock (Table V) or simulated-time (Table VI) report."""

    name: str
    seconds: float
    samples: int


@dataclass
class TableVReport:
    """Host "real implementation" timing comparison (Table V)."""

    rows: dict = field(default_factory=dict)   # kind -> TimedRow
    baseline_kind: str = "software"

    def speedup(self, kind: str) -> float:
        baseline = self.rows[self.baseline_kind].seconds
        mine = self.rows[kind].seconds
        return baseline / mine if mine else 0.0


@dataclass
class TableVIReport:
    """Gem5 AtomicSimpleCPU timing comparison (Table VI)."""

    rows: dict = field(default_factory=dict)   # kind -> TimedRow
    baseline_kind: str = "software"
    instructions: dict = field(default_factory=dict)

    def speedup(self, kind: str) -> float:
        baseline = self.rows[self.baseline_kind].seconds
        mine = self.rows[kind].seconds
        return baseline / mine if mine else 0.0
