"""Plain-text rendering of the paper's tables from measured data.

Every render function takes the corresponding report object and returns a
string shaped like the table in the paper, so benchmark output can be compared
against the published numbers side by side (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from repro.asm import macros
from repro.isa.rocc import DecimalFunct
from repro.testgen.config import SolutionKind

#: The published numbers, kept here so reports can show paper-vs-measured.
PAPER_TABLE_IV = {
    SolutionKind.METHOD1: {"sw": 1013, "hw": 188, "total": 1201, "speedup": 2.73},
    SolutionKind.SOFTWARE: {"sw": 3285, "hw": 0, "total": 3285, "speedup": None},
    SolutionKind.METHOD1_DUMMY: {"sw": 1446, "hw": 0, "total": 1446, "speedup": 2.27},
}
PAPER_TABLE_V = {
    SolutionKind.METHOD1_DUMMY: {"seconds": 589.0, "speedup": 2.32},
    SolutionKind.SOFTWARE: {"seconds": 1367.0, "speedup": None},
}
PAPER_TABLE_VI = {
    SolutionKind.METHOD1_DUMMY: {"seconds": 0.005443, "speedup": 2.30},
    SolutionKind.SOFTWARE: {"seconds": 0.012511, "speedup": None},
}


def _format_speedup(value) -> str:
    return "-" if value is None else f"{value:.2f}x"


def render_table_ii() -> str:
    """Table II: the decimal accelerator instruction set."""
    lines = [
        "Table II: List of instructions",
        f"{'Function':<12s} {'Function7':<10s} Description",
        "-" * 72,
    ]
    for name, funct in DecimalFunct.BY_NAME.items():
        description = DecimalFunct.DESCRIPTIONS.get(name, "")
        lines.append(f"{name:<12s} {funct:07b}    {description}")
    return "\n".join(lines)


def render_table_iii() -> str:
    """Table III: RoCC instruction encodings produced by the macro generator."""
    rows = macros.table_iii_rows()
    header = (
        f"{'Instruction':<12s} {'funct7':>8s} {'rs2':>6s} {'rs1':>6s} "
        f"{'xd':>3s} {'xs1':>4s} {'xs2':>4s} {'rd':>6s} {'opcode':>8s} {'hex':>12s}"
    )
    lines = ["Table III: RoCC instructions (our encodings)", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['instruction']:<12s} {row['funct7']:>8s} {row['rs2']:>6s} "
            f"{row['rs1']:>6s} {row['xd']:>3d} {row['xs1']:>4d} {row['xs2']:>4d} "
            f"{row['rd']:>6s} {row['opcode']:>8s} {row['hex']:>12s}"
        )
    return "\n".join(lines)


def render_table_iv(report, include_paper: bool = True) -> str:
    """Table IV: average cycles per multiplication and speedups."""
    lines = [
        f"Table IV: Average number of cycles ({report.num_samples} samples)",
        f"{'Solution':<36s} {'SW part':>9s} {'HW part':>9s} {'Total':>9s} {'Speedup':>9s}",
    ]
    lines.append("-" * 76)
    speedups = report.speedups()
    for kind, cycle_report in report.reports.items():
        speedup = None if kind == report.baseline_kind else speedups.get(kind)
        lines.append(
            f"{cycle_report.solution_name:<36s} "
            f"{cycle_report.avg_sw_cycles:>9.0f} {cycle_report.avg_hw_cycles:>9.0f} "
            f"{cycle_report.avg_total_cycles:>9.0f} {_format_speedup(speedup):>9s}"
        )
        if include_paper and kind in PAPER_TABLE_IV:
            paper = PAPER_TABLE_IV[kind]
            lines.append(
                f"{'  (paper)':<36s} {paper['sw']:>9d} {paper['hw']:>9d} "
                f"{paper['total']:>9d} {_format_speedup(paper['speedup']):>9s}"
            )
    return "\n".join(lines)


def render_table_v(report, include_paper: bool = True) -> str:
    """Table V: host wall-clock comparison."""
    lines = [
        "Table V: Evaluation by real (host) implementation",
        f"{'Solution':<36s} {'Time (sec)':>12s} {'Speedup':>9s}",
        "-" * 60,
    ]
    for kind, row in report.rows.items():
        speedup = None if kind == report.baseline_kind else report.speedup(kind)
        lines.append(
            f"{row.name:<36s} {row.seconds:>12.4f} {_format_speedup(speedup):>9s}"
        )
        if include_paper and kind in PAPER_TABLE_V:
            paper = PAPER_TABLE_V[kind]
            lines.append(
                f"{'  (paper, Intel i7)':<36s} {paper['seconds']:>12.4f} "
                f"{_format_speedup(paper['speedup']):>9s}"
            )
    return "\n".join(lines)


def render_table_vi(report, include_paper: bool = True) -> str:
    """Table VI: Gem5 AtomicSimpleCPU comparison."""
    lines = [
        "Table VI: Evaluation using Gem5 AtomicSimpleCPU (SE mode, RISC-V ISA)",
        f"{'Solution':<36s} {'Time (sec)':>12s} {'Speedup':>9s}",
        "-" * 60,
    ]
    for kind, row in report.rows.items():
        speedup = None if kind == report.baseline_kind else report.speedup(kind)
        lines.append(
            f"{row.name:<36s} {row.seconds:>12.6f} {_format_speedup(speedup):>9s}"
        )
        if include_paper and kind in PAPER_TABLE_VI:
            paper = PAPER_TABLE_VI[kind]
            lines.append(
                f"{'  (paper)':<36s} {paper['seconds']:>12.6f} "
                f"{_format_speedup(paper['speedup']):>9s}"
            )
    return "\n".join(lines)


def render_campaign(result) -> str:
    """Summary of a sharded campaign run (cells, shards, workers, wall clock)."""
    lines = [
        (
            f"Campaign: {len(result.cells)} cells, {result.total_shards} shards, "
            f"{result.workers} workers, {result.total_samples} samples"
        ),
        (
            f"wall clock {result.wall_seconds:.2f}s, "
            f"simulator time {result.total_sim_wall_seconds:.2f}s"
            + (
                f" ({result.total_sim_wall_seconds / result.wall_seconds:.2f}x "
                f"concurrency)"
                if result.wall_seconds
                else ""
            )
        ),
        f"{'Cell':<40s} {'Samples':>8s} {'Shards':>7s} {'Avg cyc':>9s} "
        f"{'I$ hit':>7s} {'D$ hit':>7s} {'Sim s':>7s}",
        "-" * 90,
    ]
    for cell, report in zip(result.cells, result.reports):
        lines.append(
            f"{cell.label:<40s} {report.num_samples:>8d} {report.num_shards:>7d} "
            f"{report.avg_total_cycles:>9.0f} {report.icache_hit_rate:>6.1%} "
            f"{report.dcache_hit_rate:>6.1%} {report.sim_wall_seconds:>7.2f}"
        )
    return "\n".join(lines)


def render_differential(result) -> str:
    """Divergence/coverage table of a differential campaign.

    One row per cell: cross-model divergence count, oracle disagreements,
    kernel-vs-oracle check failures, gem5 total ticks and how many golden
    result conditions the cell's vectors exercised.  Cells with divergences
    also print their first diverging vector, so the table alone is enough
    to start debugging.
    """
    from repro.verification.coverage import CoverageTracker

    total_conditions = len(CoverageTracker.CONDITIONS)
    lines = [
        (
            "Differential campaign: "
            f"{result.total_divergences} divergence(s), "
            f"{result.total_oracle_disagreements} oracle disagreement(s), "
            f"{result.total_check_failures} check failure(s)"
        ),
        f"{'Cell':<40s} {'Samples':>8s} {'Models':>20s} {'Diverge':>8s} "
        f"{'Oracle':>7s} {'Checks':>7s} {'gem5 cyc':>10s} {'Cond':>6s}",
        "-" * 112,
    ]
    first_divergences = []
    covered_overall = set()
    differential_cells = 0
    for cell, report in zip(result.cells, result.reports):
        if not report.differential:
            continue
        differential_cells += 1
        covered_overall.update(
            name for name, count in report.condition_coverage.items() if count
        )
        lines.append(
            f"{cell.label:<40s} {report.num_samples:>8d} "
            f"{'+'.join(report.models):>20s} {report.divergences:>8d} "
            f"{report.oracle_disagreements:>7d} "
            f"{report.verification_failures:>7d} {report.gem5_cycles:>10d} "
            f"{report.conditions_covered:>3d}/{total_conditions:<2d}"
        )
        if report.first_divergence:
            first_divergences.append(f"{cell.label}: {report.first_divergence}")
    if not differential_cells:
        return "Differential campaign: no differential cells"
    missing = sorted(set(CoverageTracker.CONDITIONS) - covered_overall)
    lines.append(
        f"conditions covered across cells: {len(covered_overall)}/"
        f"{total_conditions}"
        + (f" (missing: {', '.join(missing)})" if missing else "")
    )
    if first_divergences:
        lines.append("first divergences:")
        lines.extend("  " + entry for entry in first_divergences)
    return "\n".join(lines)


def render_format_tables(result, tables: dict = None) -> str:
    """One Table IV-style block per (format, workload) cell group.

    The renderer behind ``python -m repro.campaign --format ...``: every
    interchange format gets its own table (per workload when the campaign
    crossed formats with workloads), with speedups against that group's own
    baseline.  The paper's published rows are only meaningful next to the
    paper's own experiment, so they render exclusively under decimal64 with
    the default mix or the ``paper-uniform`` workload.
    """
    blocks = []
    if tables is None:
        tables = result.table_iv_grouped()
    for (fmt, workload), table in tables.items():
        title = f"Format: {fmt}"
        if workload is not None:
            title += f" · workload: {workload}"
        include_paper = fmt == "decimal64" and workload in (None, "paper-uniform")
        blocks.append("\n".join([title, "=" * len(title),
                                 render_table_iv(table, include_paper)]))
    return "\n\n".join(blocks)


def render_format_matrix(result, baseline_kind: str = None,
                         tables: dict = None) -> str:
    """Cross-format/workload comparison: per-solution cycles and speedups.

    One row per (format, workload) group — the format axis analogue of
    :func:`render_workload_matrix`, answering "how does the co-design's
    advantage change with the interchange width?" at a glance.
    """
    grouped = (
        tables
        if tables is not None
        else result.table_iv_grouped(baseline_kind=baseline_kind)
    )
    kinds = []
    for table in grouped.values():
        for kind in table.reports:
            if kind not in kinds:
                kinds.append(kind)
    header = f"{'Format / workload':<34s}" + "".join(
        f" {kind:>24s}" for kind in kinds
    )
    lines = [
        "Cross-format comparison (avg cycles, speedup vs baseline)",
        header,
        "-" * len(header),
    ]
    for (fmt, workload), table in grouped.items():
        speedups = table.speedups()
        label = fmt if workload is None else f"{fmt} / {workload}"
        row = f"{label:<34s}"
        for kind in kinds:
            report = table.reports.get(kind)
            if report is None:
                row += f" {'-':>24s}"
                continue
            cell = f"{report.avg_total_cycles:.0f}"
            if kind != table.baseline_kind:
                cell += f" ({_format_speedup(speedups.get(kind))})"
            row += f" {cell:>24s}"
        lines.append(row)
    return "\n".join(lines)


def render_operation_tables(result, tables: dict = None) -> str:
    """One Table IV-style block per (operation, format, workload) group.

    The renderer behind ``python -m repro.campaign --op mul,add,fma``:
    every decimal operation gets its own table (per format, per workload
    when the campaign crossed axes), with speedups against that group's
    own baseline.  The paper only published multiply numbers, so its rows
    render exclusively under (multiply, decimal64) with the default mix or
    the ``paper-uniform`` workload — other operations show measured data
    alone.
    """
    blocks = []
    if tables is None:
        tables = result.table_iv_by_operation()
    for (op, fmt, workload), table in tables.items():
        title = f"Operation: {op} · format: {fmt}"
        if workload is not None:
            title += f" · workload: {workload}"
        include_paper = (
            op == "multiply"
            and fmt == "decimal64"
            and workload in (None, "paper-uniform")
        )
        blocks.append("\n".join([title, "=" * len(title),
                                 render_table_iv(table, include_paper)]))
    return "\n\n".join(blocks)


def render_operation_matrix(result, baseline_kind: str = None,
                            tables: dict = None) -> str:
    """Cross-operation comparison: per-solution cycles and speedups.

    One row per (operation, format, workload) group — the operation-axis
    analogue of :func:`render_workload_matrix`, answering "how does the
    co-design's advantage change with the arithmetic operation?" at a
    glance.
    """
    grouped = (
        tables
        if tables is not None
        else result.table_iv_by_operation(baseline_kind=baseline_kind)
    )
    kinds = []
    for table in grouped.values():
        for kind in table.reports:
            if kind not in kinds:
                kinds.append(kind)
    header = f"{'Operation / format':<34s}" + "".join(
        f" {kind:>24s}" for kind in kinds
    )
    lines = [
        "Cross-operation comparison (avg cycles, speedup vs baseline)",
        header,
        "-" * len(header),
    ]
    for (op, fmt, workload), table in grouped.items():
        speedups = table.speedups()
        label = f"{op} / {fmt}"
        if workload is not None:
            label += f" / {workload}"
        row = f"{label:<34s}"
        for kind in kinds:
            report = table.reports.get(kind)
            if report is None:
                row += f" {'-':>24s}"
                continue
            cell = f"{report.avg_total_cycles:.0f}"
            if kind != table.baseline_kind:
                cell += f" ({_format_speedup(speedups.get(kind))})"
            row += f" {cell:>24s}"
        lines.append(row)
    return "\n".join(lines)


def render_workload_tables(result, include_paper: bool = False,
                           tables: dict = None) -> str:
    """One Table IV-style block per workload of a multi-workload campaign.

    ``tables`` takes a precomputed ``result.table_iv_by_workload()``
    grouping so callers rendering several views need not regroup.
    """
    blocks = []
    if tables is None:
        tables = result.table_iv_by_workload()
    for workload, table in tables.items():
        title = f"Workload: {workload or 'default mix'}"
        blocks.append("\n".join([title, "=" * len(title),
                                 render_table_iv(table, include_paper)]))
    return "\n\n".join(blocks)


def render_workload_matrix(result, baseline_kind: str = None,
                           tables: dict = None) -> str:
    """Cross-workload comparison: per-solution average cycles and speedups.

    One row per workload; for every non-baseline solution kind the row shows
    ``avg cycles (speedup vs that workload's own baseline run)``, so the
    matrix answers "*where* does the co-design help most?" at a glance.
    ``tables`` takes a precomputed grouping, as in
    :func:`render_workload_tables`.
    """
    grouped = (
        tables
        if tables is not None
        else result.table_iv_by_workload(baseline_kind=baseline_kind)
    )
    kinds = []
    for table in grouped.values():
        for kind in table.reports:
            if kind not in kinds:
                kinds.append(kind)
    header = f"{'Workload':<18s}" + "".join(f" {kind:>24s}" for kind in kinds)
    lines = [
        "Cross-workload comparison (avg cycles, speedup vs baseline)",
        header,
        "-" * len(header),
    ]
    for workload, table in grouped.items():
        speedups = table.speedups()
        row = f"{(workload or 'default'):<18s}"
        for kind in kinds:
            report = table.reports.get(kind)
            if report is None:
                row += f" {'-':>24s}"
                continue
            cell = f"{report.avg_total_cycles:.0f}"
            if kind != table.baseline_kind:
                cell += f" ({_format_speedup(speedups.get(kind))})"
            row += f" {cell:>24s}"
        lines.append(row)
    return "\n".join(lines)


def render_pipeline_frontier(result) -> str:
    """Pareto tables of a ``--pipeline-sweep`` campaign, one per group.

    Each (operation, format) group renders its design points — the staged-
    pipeline depth × width grid plus the software baseline — sorted by
    cycles, with area and frontier membership, so the cycles-vs-area
    trade-off reads directly off the table (docs/pipeline.md).
    """
    from repro.core.pareto import frontier_of, points_from_campaign

    sections = []
    for (op, fmt), points in points_from_campaign(result).items():
        frontier = {
            (p.name, p.avg_cycles, p.gate_equivalents) for p in frontier_of(points)
        }
        header = (
            f"{'Design point':<36s} {'Avg cycles':>12s} "
            f"{'Gate equiv.':>12s} {'Flip-flops':>11s} {'Pareto':>8s}"
        )
        lines = [
            f"Pipeline microarchitecture sweep — {op} / {fmt} (cycles vs area)",
            header,
            "-" * len(header),
        ]
        for point in sorted(
            points,
            key=lambda p: (p.avg_cycles, p.gate_equivalents, p.name),
        ):
            on_frontier = (
                point.name,
                point.avg_cycles,
                point.gate_equivalents,
            ) in frontier
            lines.append(
                f"{point.name:<36s} {point.avg_cycles:>12.0f} "
                f"{point.gate_equivalents:>12.0f} {point.flip_flops:>11d} "
                f"{'yes' if on_frontier else 'no':>8s}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def render_pareto(points) -> str:
    """Design points and which of them are Pareto-optimal."""
    frontier = {
        point.name
        for point in points
        if not any(other.dominates(point) for other in points)
    }
    lines = [
        "Co-design Pareto points (performance vs hardware overhead)",
        f"{'Design':<36s} {'Avg cycles':>12s} {'Gate equiv.':>12s} {'Pareto':>8s}",
        "-" * 72,
    ]
    for point in sorted(points, key=lambda item: item.avg_cycles):
        lines.append(
            f"{point.name:<36s} {point.avg_cycles:>12.0f} "
            f"{point.gate_equivalents:>12.0f} {'yes' if point.name in frontier else 'no':>8s}"
        )
    return "\n".join(lines)
