"""The evaluation framework (the paper's primary contribution).

Everything below this package is a substrate (ISA, assembler, simulators,
accelerator, decimal library, kernels).  :class:`EvaluationFramework` wires
them together into the paper's flow (Fig. 2):

1. the test-program generator builds a RISC-V binary for a co-design solution,
2. the SPIKE-like functional simulator verifies it against the golden decimal
   library and the verification database,
3. the Rocket-like emulator with the RoCC decimal accelerator measures cycles
   (split into software part and hardware part, as in Table IV),
4. the Gem5 AtomicSimpleCPU model and host wall-clock runs provide the
   cross-checks of Tables V and VI,
5. the reporting module renders the paper's tables from the measurements, and
6. the Pareto module relates performance to hardware overhead across
   accelerator configurations.
"""

from repro.core.solution import CoDesignSolution, standard_solutions
from repro.core.results import (
    ShardCycleReport,
    SolutionCycleReport,
    TableIVReport,
    TableVReport,
    TableVIReport,
    merge_shard_reports,
)
from repro.core.evaluation import EvaluationFramework, run_solution_shard
from repro.core.campaign import (
    CampaignCell,
    CampaignResult,
    plan_shards,
    run_campaign,
    run_table_iv_campaign,
    table_iv_cells,
)
from repro.core.method1 import Method1HostModel, DummyHardware, FunctionalHardware
from repro.core.software_baseline import SoftwareBaseline
from repro.core.host_eval import HostEvaluator
from repro.core.pareto import ParetoAnalyzer, ParetoPoint
from repro.core import reporting

__all__ = [
    "CoDesignSolution",
    "standard_solutions",
    "CampaignCell",
    "CampaignResult",
    "plan_shards",
    "run_campaign",
    "run_table_iv_campaign",
    "table_iv_cells",
    "run_solution_shard",
    "merge_shard_reports",
    "ShardCycleReport",
    "SolutionCycleReport",
    "TableIVReport",
    "TableVReport",
    "TableVIReport",
    "EvaluationFramework",
    "Method1HostModel",
    "DummyHardware",
    "FunctionalHardware",
    "SoftwareBaseline",
    "HostEvaluator",
    "ParetoAnalyzer",
    "ParetoPoint",
    "reporting",
]
