"""The evaluation framework: functional verification + cycle-accurate measurement.

``EvaluationFramework`` reproduces the paper's flow end to end.  A typical use
(the Table IV experiment) is::

    framework = EvaluationFramework(num_samples=200)
    table_iv = framework.evaluate_table_iv()
    print(reporting.render_table_iv(table_iv))

All three solutions are evaluated over the *same* operand vectors, results of
verifiable solutions are checked against the golden library on the functional
simulator first, and the cycle measurements come from the Rocket-like emulator
with the decimal accelerator attached.

The measurement primitive is :func:`run_solution_shard`: one build/link +
spike + Rocket pass over a contiguous slice of vectors.  A serial evaluation
is the single-shard case; the campaign engine (:mod:`repro.core.campaign`)
fans many shards out over worker processes and merges them through the same
accounting code, so both paths agree bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.host_eval import HostEvaluator
from repro.core.results import (
    ShardCycleReport,
    SolutionCycleReport,
    TableIVReport,
    TableVIReport,
    TimedRow,
    merge_shard_reports,
)
from repro.core.solution import CoDesignSolution, standard_solutions
from repro.errors import ConfigurationError, VerificationError
from repro.gem5.se_mode import Gem5Config, SyscallEmulationRunner
from repro.rocket.config import RocketConfig
from repro.rocket.core import RocketEmulator
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program
from repro.verification.checker import ResultChecker
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.reference import GoldenReference


def checker_for_workload(workload: str = None, fmt: str = "decimal64",
                         operation: str = "multiply") -> ResultChecker:
    """The functional checker for a run.

    When ``workload`` resolves in this process's registry the checker
    judges results with that workload's :meth:`~repro.workloads.Workload.
    expected` oracle; otherwise (no workload, or a user-registered name a
    spawn-started worker never imported — the vectors themselves always
    come from the parent) it falls back to the golden-library default,
    which is also what the base oracle delegates to.  ``fmt`` selects the
    interchange format and ``operation`` the arithmetic operation the
    oracle computes under.
    """
    if workload is not None:
        from repro.workloads import get_workload

        try:
            resolved = get_workload(workload)
        except ConfigurationError:
            resolved = None  # only the unknown-name case may fall back
        if resolved is not None:
            return resolved.make_checker(fmt, operation)
    return ResultChecker(GoldenReference(operation=operation, precision=fmt))


@dataclass
class ShardRunOutcome:
    """Everything produced by one shard run (live objects + picklable report)."""

    program: object
    shard_report: ShardCycleReport
    functional_result: object = None
    timed_result: object = None
    check_report: object = None


def run_solution_shard(
    solution: CoDesignSolution,
    vectors,
    *,
    operand_classes=OperandClass.TABLE_IV_MIX,
    repetitions: int = 1,
    seed: int = 2018,
    rocket_config: RocketConfig = None,
    verify_functionally: bool = True,
    checker: ResultChecker = None,
    shard_index: int = 0,
    start: int = 0,
    workload: str = None,
    differential: bool = False,
    fmt: str = "decimal64",
    operation: str = "multiply",
    runner=None,
) -> ShardRunOutcome:
    """Build, verify and measure one solution over one slice of vectors.

    This is the single unit of work of every evaluation: the shard's test
    program is built and linked once, run on the SPIKE-style functional
    simulator (golden-checked when the solution is verifiable), then measured
    on the Rocket-like emulator.  ``start``/``shard_index`` only label the
    shard inside a larger campaign; a serial run passes the full vector set
    with ``start=0``.

    With ``differential=True`` the shard becomes a cross-model cell: the
    functional check uses the **dual-oracle** checker (decnumber + stdlib
    ``decimal``), the program additionally runs on the gem5 atomic model,
    and the spike/rocket/gem5 result buffers are diffed vector-by-vector.
    Divergences, oracle disagreements and check failures are *recorded* in
    the shard report (instead of raising), so a sharded campaign can merge
    and render them; host-side golden condition coverage of the shard's
    vectors is recorded alongside.

    ``runner`` may pass a :class:`repro.sim.batch.BatchRunner`: the shard's
    program is then rebound onto a cached template (no re-assemble/re-link)
    and the functional run reuses that runner's warm executor — tier-2
    compiled superblocks and promotion state carry over between shards of
    the same shape.  Batch mode is bit-identical to the cold path (same
    image bytes, same results, same retire counts); the campaign engine
    turns it on per worker process.
    """
    vectors = list(vectors)
    config = TestProgramConfig(
        solution=solution.kind,
        precision=TestProgramConfig.precision_for_format(fmt),
        num_samples=len(vectors),
        repetitions=repetitions,
        operand_classes=operand_classes,
        seed=seed,
        workload=workload,
        operation=operation,
    )
    fmt = config.fmt  # canonical name
    operation = config.operation  # canonical name
    if runner is not None:
        program, warm_simulator = runner.acquire(solution, config, vectors)
    else:
        program = build_test_program(config, vectors=vectors)
        warm_simulator = None
    outcome = ShardRunOutcome(
        program=program,
        shard_report=ShardCycleReport(
            shard_index=shard_index, start=start, stop=start + len(vectors)
        ),
    )
    report = outcome.shard_report
    report.differential = differential
    report.fmt = fmt
    report.operation = operation

    spike_words = None
    run_spike = (verify_functionally and solution.verifiable) or differential
    if run_spike:
        if warm_simulator is not None:
            simulator = warm_simulator
        else:
            simulator = SpikeSimulator(
                program.image, accelerator=solution.make_accelerator(fmt)
            )
        started = time.perf_counter()
        functional = simulator.run()
        report.sim_wall_seconds += time.perf_counter() - started
        outcome.functional_result = functional
        spike_words = program.read_results(functional)

    if verify_functionally and solution.verifiable:
        if checker is None:
            if differential:
                from repro.verification.differential import (
                    dual_checker_for_workload,
                )

                checker = dual_checker_for_workload(workload, fmt, operation)
            else:
                checker = checker_for_workload(workload, fmt, operation)
        outcome.check_report = checker.check_run(vectors, spike_words)
        report.verified = True
        report.check_total = outcome.check_report.total
        report.check_failed = outcome.check_report.failed
        report.oracle_disagreements = len(
            getattr(outcome.check_report, "oracle_disagreements", ())
        )
        if not differential and not outcome.check_report.all_passed:
            # Differential cells record failures for the campaign report
            # instead of aborting the whole run on the first bad shard.
            raise VerificationError(
                f"{solution.name}: functional verification failed "
                f"({outcome.check_report.failed}/{outcome.check_report.total}) "
                f"on samples [{start}:{start + len(vectors)})"
            )

    if runner is not None:
        # Warm cycle-accurate path: cold caches are restored by reset(),
        # only the timing compiler (decoded code + compiled spans) is
        # reused — cycle counts are bit-identical to the cold branch.
        _, emulator = runner.acquire_timed(
            solution, config, vectors, rocket_config=rocket_config
        )
    else:
        emulator = RocketEmulator(
            program.image,
            accelerator=solution.make_accelerator(fmt),
            config=rocket_config if rocket_config is not None else RocketConfig(),
        )
    started = time.perf_counter()
    timed = emulator.run()
    report.sim_wall_seconds += time.perf_counter() - started
    outcome.timed_result = timed

    report.raw_cycle_samples = program.read_cycle_samples(timed)
    report.hw_cycles = timed.hw_cycles
    report.sw_cycles = timed.sw_cycles
    report.instructions_retired = timed.instructions_retired
    report.total_cycles_run = timed.cycles
    report.icache_accesses = timed.icache_stats.accesses
    report.icache_hits = timed.icache_stats.hits
    report.icache_misses = timed.icache_stats.misses
    report.dcache_accesses = timed.dcache_stats.accesses
    report.dcache_hits = timed.dcache_stats.hits
    report.dcache_misses = timed.dcache_stats.misses
    report.rocc_commands = timed.rocc_commands

    if differential:
        from repro.verification.coverage import CoverageTracker
        from repro.verification.differential import diff_result_words

        runner = SyscallEmulationRunner(Gem5Config())
        started = time.perf_counter()
        gem5_result = runner.run_binary(
            program.image, accelerator=solution.make_accelerator(fmt)
        )
        report.sim_wall_seconds += time.perf_counter() - started
        report.gem5_cycles = gem5_result.ticks

        words_by_model = {
            "spike": spike_words,
            "rocket": program.read_results(timed),
            "gem5": program.read_results(gem5_result),
        }
        report.models = tuple(words_by_model)
        divergences = diff_result_words(
            vectors, words_by_model,
            decode=GoldenReference(precision=fmt).decode,
            operation=operation,
        )
        report.divergences = len(divergences)
        if divergences:
            report.first_divergence = divergences[0].describe()
        tracker = CoverageTracker(
            GoldenReference(operation=operation, precision=fmt)
        )
        tracker.record_all(vectors)
        report.condition_coverage = dict(tracker.condition_counts)
    return outcome


@dataclass
class EvaluationRun:
    """Everything produced by evaluating one solution once."""

    solution: CoDesignSolution
    program: object
    functional_result: object = None
    timed_result: object = None
    check_report: object = None
    cycle_report: SolutionCycleReport = None
    #: Host wall-clock seconds spent inside simulator runs for this
    #: evaluation, and the resulting simulation rate — tracked so the
    #: framework's own overhead stays visible at paper scale
    #: (REPRO_BENCH_SAMPLES=8000).
    sim_wall_seconds: float = 0.0

    @property
    def sim_instructions_per_second(self) -> float:
        retired = 0
        if self.functional_result is not None:
            retired += self.functional_result.instructions_retired
        if self.timed_result is not None:
            retired += self.timed_result.instructions_retired
        if not self.sim_wall_seconds:
            return 0.0
        return retired / self.sim_wall_seconds


@dataclass
class EvaluationFramework:
    """Drives the full evaluation pipeline over a shared set of vectors."""

    num_samples: int = 100
    repetitions: int = 1
    seed: int = 2018
    operand_classes: tuple = OperandClass.TABLE_IV_MIX
    rocket_config: RocketConfig = field(default_factory=RocketConfig)
    verify_functionally: bool = True
    solutions: dict = field(default_factory=standard_solutions)
    #: Registered workload name; when set, the shared vectors come from the
    #: workload registry instead of the ``operand_classes`` mix.
    workload: str = None
    #: Interchange format the whole evaluation runs under.
    fmt: str = "decimal64"
    #: Decimal operation the whole evaluation measures (multiply/add/
    #: subtract/fma): selects the kernels, the vector shape and the oracles.
    operation: str = "multiply"

    def __post_init__(self) -> None:
        from repro.decnumber.formats import resolve_format_name
        from repro.decnumber.operations import resolve_operation_name
        from repro.errors import DecimalError
        from repro.testgen.generator import draw_vectors

        try:
            self.fmt = resolve_format_name(self.fmt)
            self.operation = resolve_operation_name(self.operation)
        except DecimalError as error:
            raise ConfigurationError(str(error)) from None
        self.database = VerificationDatabase(self.seed, fmt=self.fmt)
        self.vectors = draw_vectors(
            self.num_samples,
            self.seed,
            operand_classes=self.operand_classes,
            workload=self.workload,
            database=self.database,
            fmt=self.fmt,
            operation=self.operation,
        )
        self.reference = GoldenReference(
            operation=self.operation, precision=self.fmt
        )
        self.checker = checker_for_workload(
            self.workload, self.fmt, self.operation
        )

    # ----------------------------------------------------------------- building
    def _config_for(self, kind: str) -> TestProgramConfig:
        return TestProgramConfig(
            solution=kind,
            precision=TestProgramConfig.precision_for_format(self.fmt),
            num_samples=self.num_samples,
            repetitions=self.repetitions,
            operand_classes=self.operand_classes,
            seed=self.seed,
            workload=self.workload,
            operation=self.operation,
        )

    def build_program(self, kind: str):
        """Generate the test program for one solution over the shared vectors."""
        return build_test_program(self._config_for(kind), vectors=self.vectors)

    # ------------------------------------------------------------- single runs
    def run_functional(self, kind: str) -> EvaluationRun:
        """SPIKE-style functional run + golden check (when verifiable)."""
        solution = self.solutions[kind]
        program = self.build_program(kind)
        simulator = SpikeSimulator(
            program.image, accelerator=solution.make_accelerator(self.fmt)
        )
        started = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - started
        run = EvaluationRun(
            solution=solution, program=program, functional_result=result,
            sim_wall_seconds=elapsed,
        )
        if solution.verifiable:
            run.check_report = self.checker.check_run(
                self.vectors, program.read_results(result)
            )
        return run

    def run_cycle_accurate(self, kind: str) -> EvaluationRun:
        """Full pipeline for one solution: verify functionally, then measure."""
        solution = self.solutions[kind]
        outcome = run_solution_shard(
            solution,
            self.vectors,
            operand_classes=self.operand_classes,
            repetitions=self.repetitions,
            seed=self.seed,
            rocket_config=self.rocket_config,
            verify_functionally=self.verify_functionally,
            checker=self.checker,
            workload=self.workload,
            fmt=self.fmt,
            operation=self.operation,
        )
        run = EvaluationRun(
            solution=solution,
            program=outcome.program,
            functional_result=outcome.functional_result,
            timed_result=outcome.timed_result,
            check_report=outcome.check_report,
            sim_wall_seconds=outcome.shard_report.sim_wall_seconds,
        )
        run.cycle_report = merge_shard_reports(
            solution_name=solution.name,
            solution_kind=kind,
            shards=[outcome.shard_report],
            repetitions=self.repetitions,
        )
        return run

    # -------------------------------------------------------------- experiments
    def evaluate_table_iv(
        self, kinds=None, workers: int = None, shards_per_cell: int = 1
    ) -> TableIVReport:
        """Reproduce Table IV: average cycles and speedups of the solutions.

        With ``workers`` set, the evaluation is fanned out over that many
        worker processes by the campaign engine; ``shards_per_cell=1`` (the
        default) keeps each solution's measurement a single simulator run, so
        the resulting report is bit-identical to the serial path.
        """
        kinds = kinds or (
            SolutionKind.METHOD1,
            SolutionKind.SOFTWARE,
            SolutionKind.METHOD1_DUMMY,
        )
        if workers is not None and workers > 1:
            from repro.core.campaign import run_table_iv_campaign

            return run_table_iv_campaign(
                kinds=kinds,
                num_samples=self.num_samples,
                repetitions=self.repetitions,
                seed=self.seed,
                operand_classes=self.operand_classes,
                rocket_config=self.rocket_config,
                verify_functionally=self.verify_functionally,
                solutions=self.solutions,
                workers=workers,
                shards_per_cell=shards_per_cell,
                workload=self.workload,
                fmt=self.fmt,
                op=self.operation,
            ).table_iv()
        report = TableIVReport(
            num_samples=self.num_samples, baseline_kind=SolutionKind.SOFTWARE
        )
        for kind in kinds:
            run = self.run_cycle_accurate(kind)
            report.reports[kind] = run.cycle_report
        return report

    def evaluate_table_v(self, num_samples: int = None, repetitions: int = 1):
        """Reproduce Table V: host wall-clock of the software-only variants."""
        evaluator = HostEvaluator(
            num_samples=num_samples or self.num_samples,
            repetitions=repetitions,
            seed=self.seed,
            operand_classes=self.operand_classes,
        )
        return evaluator.evaluate()

    def evaluate_table_vi(self, frequency_hz: int = 2_000_000_000) -> TableVIReport:
        """Reproduce Table VI: the same binaries on the Gem5 atomic model."""
        runner = SyscallEmulationRunner(Gem5Config(frequency_hz=frequency_hz))
        report = TableVIReport(baseline_kind=SolutionKind.SOFTWARE)
        for kind in (SolutionKind.METHOD1_DUMMY, SolutionKind.SOFTWARE):
            solution = self.solutions[kind]
            program = self.build_program(kind)
            result = runner.run_binary(
                program.image, accelerator=solution.make_accelerator(self.fmt)
            )
            report.rows[kind] = TimedRow(
                name=solution.name,
                seconds=result.simulated_seconds,
                samples=self.num_samples,
            )
            report.instructions[kind] = result.instructions_retired
        return report

    def hardware_overhead(self, kind: str = SolutionKind.METHOD1):
        """Area report of the accelerator a solution needs (None if software-only)."""
        return self.solutions[kind].hardware_overhead(self.fmt)
