"""The evaluation framework: functional verification + cycle-accurate measurement.

``EvaluationFramework`` reproduces the paper's flow end to end.  A typical use
(the Table IV experiment) is::

    framework = EvaluationFramework(num_samples=200)
    table_iv = framework.evaluate_table_iv()
    print(reporting.render_table_iv(table_iv))

All three solutions are evaluated over the *same* operand vectors, results of
verifiable solutions are checked against the golden library on the functional
simulator first, and the cycle measurements come from the Rocket-like emulator
with the decimal accelerator attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.host_eval import HostEvaluator
from repro.core.results import (
    SolutionCycleReport,
    TableIVReport,
    TableVIReport,
    TimedRow,
)
from repro.core.solution import CoDesignSolution, standard_solutions
from repro.errors import VerificationError
from repro.gem5.se_mode import Gem5Config, SyscallEmulationRunner
from repro.rocket.config import RocketConfig
from repro.rocket.core import RocketEmulator
from repro.sim.spike import SpikeSimulator
from repro.testgen.config import SolutionKind, TestProgramConfig
from repro.testgen.generator import build_test_program
from repro.verification.checker import ResultChecker
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.reference import GoldenReference


@dataclass
class EvaluationRun:
    """Everything produced by evaluating one solution once."""

    solution: CoDesignSolution
    program: object
    functional_result: object = None
    timed_result: object = None
    check_report: object = None
    cycle_report: SolutionCycleReport = None
    #: Host wall-clock seconds spent inside simulator runs for this
    #: evaluation, and the resulting simulation rate — tracked so the
    #: framework's own overhead stays visible at paper scale
    #: (REPRO_BENCH_SAMPLES=8000).
    sim_wall_seconds: float = 0.0

    @property
    def sim_instructions_per_second(self) -> float:
        retired = 0
        if self.functional_result is not None:
            retired += self.functional_result.instructions_retired
        if self.timed_result is not None:
            retired += self.timed_result.instructions_retired
        if not self.sim_wall_seconds:
            return 0.0
        return retired / self.sim_wall_seconds


@dataclass
class EvaluationFramework:
    """Drives the full evaluation pipeline over a shared set of vectors."""

    num_samples: int = 100
    repetitions: int = 1
    seed: int = 2018
    operand_classes: tuple = OperandClass.TABLE_IV_MIX
    rocket_config: RocketConfig = field(default_factory=RocketConfig)
    verify_functionally: bool = True
    solutions: dict = field(default_factory=standard_solutions)

    def __post_init__(self) -> None:
        self.database = VerificationDatabase(self.seed)
        self.vectors = self.database.generate_mix(self.num_samples, self.operand_classes)
        self.reference = GoldenReference()
        self.checker = ResultChecker(self.reference)

    # ----------------------------------------------------------------- building
    def _config_for(self, kind: str) -> TestProgramConfig:
        return TestProgramConfig(
            solution=kind,
            num_samples=self.num_samples,
            repetitions=self.repetitions,
            operand_classes=self.operand_classes,
            seed=self.seed,
        )

    def build_program(self, kind: str):
        """Generate the test program for one solution over the shared vectors."""
        return build_test_program(self._config_for(kind), vectors=self.vectors)

    # ------------------------------------------------------------- single runs
    def run_functional(self, kind: str) -> EvaluationRun:
        """SPIKE-style functional run + golden check (when verifiable)."""
        solution = self.solutions[kind]
        program = self.build_program(kind)
        simulator = SpikeSimulator(
            program.image, accelerator=solution.make_accelerator()
        )
        started = time.perf_counter()
        result = simulator.run()
        elapsed = time.perf_counter() - started
        run = EvaluationRun(
            solution=solution, program=program, functional_result=result,
            sim_wall_seconds=elapsed,
        )
        if solution.verifiable:
            run.check_report = self.checker.check_run(
                self.vectors, program.read_results(result)
            )
        return run

    def run_cycle_accurate(self, kind: str) -> EvaluationRun:
        """Full pipeline for one solution: verify functionally, then measure."""
        solution = self.solutions[kind]
        program = self.build_program(kind)
        run = EvaluationRun(solution=solution, program=program)

        if self.verify_functionally and solution.verifiable:
            simulator = SpikeSimulator(
                program.image, accelerator=solution.make_accelerator()
            )
            started = time.perf_counter()
            functional = simulator.run()
            run.sim_wall_seconds += time.perf_counter() - started
            run.functional_result = functional
            run.check_report = self.checker.check_run(
                self.vectors, program.read_results(functional)
            )
            if not run.check_report.all_passed:
                raise VerificationError(
                    f"{solution.name}: functional verification failed "
                    f"({run.check_report.failed}/{run.check_report.total})"
                )

        emulator = RocketEmulator(
            program.image,
            accelerator=solution.make_accelerator(),
            config=self.rocket_config,
        )
        started = time.perf_counter()
        timed = emulator.run()
        run.sim_wall_seconds += time.perf_counter() - started
        run.timed_result = timed

        per_sample = program.read_cycle_samples(timed)
        run.cycle_report = SolutionCycleReport(
            solution_name=solution.name,
            solution_kind=kind,
            num_samples=self.num_samples,
            per_sample_cycles=[count / self.repetitions for count in per_sample],
            hw_cycles_total=timed.hw_cycles // self.repetitions,
            sw_cycles_total=timed.sw_cycles,
            instructions_retired=timed.instructions_retired,
            total_cycles_run=timed.cycles,
            verification_passed=(
                run.check_report.all_passed if run.check_report else True
            ),
            verification_failures=(
                run.check_report.failed if run.check_report else 0
            ),
            icache_hit_rate=timed.icache_stats.hit_rate,
            dcache_hit_rate=timed.dcache_stats.hit_rate,
            rocc_commands=timed.rocc_commands,
        )
        return run

    # -------------------------------------------------------------- experiments
    def evaluate_table_iv(self, kinds=None) -> TableIVReport:
        """Reproduce Table IV: average cycles and speedups of the solutions."""
        kinds = kinds or (
            SolutionKind.METHOD1,
            SolutionKind.SOFTWARE,
            SolutionKind.METHOD1_DUMMY,
        )
        report = TableIVReport(
            num_samples=self.num_samples, baseline_kind=SolutionKind.SOFTWARE
        )
        for kind in kinds:
            run = self.run_cycle_accurate(kind)
            report.reports[kind] = run.cycle_report
        return report

    def evaluate_table_v(self, num_samples: int = None, repetitions: int = 1):
        """Reproduce Table V: host wall-clock of the software-only variants."""
        evaluator = HostEvaluator(
            num_samples=num_samples or self.num_samples,
            repetitions=repetitions,
            seed=self.seed,
            operand_classes=self.operand_classes,
        )
        return evaluator.evaluate()

    def evaluate_table_vi(self, frequency_hz: int = 2_000_000_000) -> TableVIReport:
        """Reproduce Table VI: the same binaries on the Gem5 atomic model."""
        runner = SyscallEmulationRunner(Gem5Config(frequency_hz=frequency_hz))
        report = TableVIReport(baseline_kind=SolutionKind.SOFTWARE)
        for kind in (SolutionKind.METHOD1_DUMMY, SolutionKind.SOFTWARE):
            solution = self.solutions[kind]
            program = self.build_program(kind)
            result = runner.run_binary(
                program.image, accelerator=solution.make_accelerator()
            )
            report.rows[kind] = TimedRow(
                name=solution.name,
                seconds=result.simulated_seconds,
                samples=self.num_samples,
            )
            report.instructions[kind] = result.instructions_retired
        return report

    def hardware_overhead(self, kind: str = SolutionKind.METHOD1):
        """Area report of the accelerator a solution needs (None if software-only)."""
        return self.solutions[kind].hardware_overhead()
