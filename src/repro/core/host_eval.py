"""Host wall-clock evaluation (the Table V "real implementation" comparison).

The paper times the two *software-only* implementations — the decNumber
library and Method-1 with dummy functions — natively on an Intel i7.  Our
equivalents are the pure-Python implementations in
:mod:`repro.core.software_baseline` and :mod:`repro.core.method1`; only the
speedup *ratio* is comparable, never the absolute seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.method1 import DummyHardware, Method1HostModel
from repro.core.results import TableVReport, TimedRow
from repro.core.software_baseline import SoftwareBaseline
from repro.testgen.config import SolutionKind
from repro.verification.database import OperandClass, VerificationDatabase
from repro.verification.reference import GoldenReference


@dataclass(frozen=True)
class HostTiming:
    """Wall-clock measurement of one implementation."""

    name: str
    seconds: float
    samples: int
    repetitions: int

    @property
    def seconds_per_sample(self) -> float:
        return self.seconds / (self.samples * self.repetitions) if self.samples else 0.0


class HostEvaluator:
    """Times the host implementations over a shared vector set."""

    def __init__(self, num_samples: int = 2000, repetitions: int = 1, seed: int = 2018,
                 operand_classes=OperandClass.TABLE_IV_MIX) -> None:
        self.num_samples = num_samples
        self.repetitions = repetitions
        database = VerificationDatabase(seed)
        self.vectors = database.generate_mix(num_samples, operand_classes)
        reference = GoldenReference()
        self.operand_words = [
            (reference.encode_operand(vector.x), reference.encode_operand(vector.y))
            for vector in self.vectors
        ]

    # ------------------------------------------------------------------ timing
    def _time_implementation(self, name: str, multiply_words) -> HostTiming:
        start = time.perf_counter()
        for _ in range(self.repetitions):
            for x_word, y_word in self.operand_words:
                multiply_words(x_word, y_word)
        elapsed = time.perf_counter() - start
        return HostTiming(
            name=name,
            seconds=elapsed,
            samples=self.num_samples,
            repetitions=self.repetitions,
        )

    def time_software(self) -> HostTiming:
        baseline = SoftwareBaseline()
        return self._time_implementation("Software [2]", baseline.multiply_words)

    def time_method1_dummy(self) -> HostTiming:
        model = Method1HostModel(hardware=DummyHardware())
        return self._time_implementation(
            "Method-1 using dummy function [9]", model.multiply_words
        )

    def evaluate(self) -> TableVReport:
        """Produce the Table V comparison."""
        software = self.time_software()
        dummy = self.time_method1_dummy()
        report = TableVReport(baseline_kind=SolutionKind.SOFTWARE)
        report.rows[SolutionKind.SOFTWARE] = TimedRow(
            name=software.name, seconds=software.seconds, samples=software.samples
        )
        report.rows[SolutionKind.METHOD1_DUMMY] = TimedRow(
            name=dummy.name, seconds=dummy.seconds, samples=dummy.samples
        )
        return report
