"""Host-level software baseline: the decNumber stand-in library itself.

For the Table V "real implementation" comparison the paper times the IBM
decNumber C library on the host.  Our equivalent follows the *library's*
algorithm — decNumber never multiplies wide integers; it keeps coefficients as
arrays of 3-digit units (``DECDPUN=3``) and runs a unit-by-unit schoolbook
loop with carry normalisation — including the interchange-format decode/encode
on every call (as ``decDoubleMultiply`` does).  Only the speedup ratio against
the Method-1 host model is meaningful, never the absolute time.
"""

from __future__ import annotations

from repro.decnumber import decimal64
from repro.decnumber.arith import finalize, multiply
from repro.decnumber.context import Context
from repro.decnumber.number import DecNumber

_UNITS = 6          # 16 digits -> six 3-digit units (DECDPUN = 3)
_ACC_UNITS = 12


class SoftwareBaseline:
    """Software-only decimal64 multiplication, decNumber-style."""

    name = "software"

    def __init__(self) -> None:
        self._context_template = decimal64.context()

    def _context(self) -> Context:
        return Context(
            prec=self._context_template.prec,
            emax=self._context_template.emax,
            emin=self._context_template.emin,
        )

    def multiply(self, x: DecNumber, y: DecNumber) -> DecNumber:
        """Reference-context multiplication (used by tests and examples)."""
        return multiply(x, y, self._context())

    def multiply_words(self, x_word: int, y_word: int) -> int:
        """Full library path: unpack, unit-wise multiply, round, repack."""
        x = decimal64.decode(x_word)
        y = decimal64.decode(y_word)
        if x.is_special or y.is_special or x.coefficient == 0 or y.coefficient == 0:
            return decimal64.encode(self.multiply(x, y))

        # decNumber-style coefficient multiplication on 3-digit units.
        x_units = [(x.coefficient // 1000 ** k) % 1000 for k in range(_UNITS)]
        y_units = [(y.coefficient // 1000 ** k) % 1000 for k in range(_UNITS)]
        accumulator = [0] * _ACC_UNITS
        for j in range(_UNITS):
            yu = y_units[j]
            for i in range(_UNITS):
                accumulator[i + j] += x_units[i] * yu
        carry = 0
        for k in range(_ACC_UNITS):
            total = accumulator[k] + carry
            carry, accumulator[k] = divmod(total, 1000)
        coefficient = 0
        for unit in reversed(accumulator):
            coefficient = coefficient * 1000 + unit

        ctx = self._context()
        result = finalize(x.sign ^ y.sign, coefficient, x.exponent + y.exponent, ctx)
        return decimal64.encode(result, ctx.copy())
