"""Gem5-style simulation layer (used only for the Table VI cross-check).

The paper's third evaluation point runs the dummy-function binaries on Gem5's
``AtomicSimpleCPU`` in system-call-emulation (SE) mode targeting the RISC-V
ISA.  :class:`~repro.gem5.atomic_cpu.AtomicSimpleCPU` reproduces that timing
model: every instruction takes one CPU cycle and memory responds atomically,
so simulated time is simply ``instructions / frequency`` (plus a fixed cost
per memory access when configured).
"""

from repro.gem5.atomic_cpu import AtomicSimpleCPU, AtomicResult
from repro.gem5.se_mode import SyscallEmulationRunner

__all__ = ["AtomicSimpleCPU", "AtomicResult", "SyscallEmulationRunner"]
