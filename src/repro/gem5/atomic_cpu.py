"""AtomicSimpleCPU timing model.

Gem5's ``AtomicSimpleCPU`` advances simulated time by a fixed period per
instruction and performs memory accesses atomically (no cache timing, no
pipeline).  That is deliberately a much coarser model than the Rocket
emulator — the paper uses it only to show that the *dummy-function* speedup is
consistent across evaluation environments (Table VI), not to measure the
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa import csr as csrdefs
from repro.sim.executor import Executor, TC_MEM
from repro.sim.hart import DEFAULT_STACK_TOP, Hart
from repro.sim.htif import Htif
from repro.sim.memory import SparseMemory
from repro.sim.spike import DEFAULT_MAX_INSTRUCTIONS, SimulationResult


@dataclass
class AtomicResult(SimulationResult):
    """Functional result plus the atomic model's simulated time."""

    ticks: int = 0
    simulated_seconds: float = 0.0
    frequency_hz: int = 0


class AtomicSimpleCPU:
    """One-instruction-per-cycle atomic CPU model (SE mode)."""

    def __init__(
        self,
        image,
        frequency_hz: int = 2_000_000_000,
        memory_access_extra_cycles: int = 0,
        accelerator=None,
        stack_top: int = DEFAULT_STACK_TOP,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> None:
        self.image = image
        self.frequency_hz = frequency_hz
        self.memory_access_extra_cycles = memory_access_extra_cycles
        self.max_instructions = max_instructions

        self.memory = SparseMemory()
        self.memory.load_image(image)
        self.htif = Htif()
        self.htif.attach(self.memory)
        self.hart = Hart(pc=image.entry, stack_pointer=stack_top)
        rocc_adapter = accelerator.rocc_adapter() if accelerator is not None else None
        self.executor = Executor(
            self.hart,
            self.memory,
            csr_provider=self._read_counter,
            rocc=rocc_adapter,
        )
        # Stop a batched Executor.run on the instruction that writes tohost.
        self.htif.on_exit = self.executor.request_halt
        self.cycles = 0
        self.instructions_retired = 0

    def _read_counter(self, address: int) -> int:
        if address in (csrdefs.CYCLE, csrdefs.MCYCLE, csrdefs.TIME):
            # Without a memory penalty the model is exactly 1 CPI, so the
            # live executor count is the cycle count even mid-batch.
            if self.memory_access_extra_cycles:
                return self.cycles
            return self.executor.retired
        if address in (csrdefs.INSTRET, csrdefs.MINSTRET):
            return self.executor.retired
        return 0

    def run(self) -> AtomicResult:
        """Run to completion; simulated time is cycles / frequency."""
        executor = self.executor
        htif = self.htif
        limit = self.max_instructions
        extra = self.memory_access_extra_cycles
        if extra:
            # Memory accesses cost extra cycles.  The timing input per
            # instruction is just its *static* timing class, so instead of
            # the per-step ExecInfo protocol this loop drives the decode-once
            # ``_timed`` tables directly (the same batching the Rocket
            # emulator's interpreted loop uses): direct ops run their fast
            # closure, only CSR/trap/RoCC ops pay for the info path.
            hart = self.hart
            timed_get = executor._timed.get
            compile_ = executor._compile
            retired_base = executor.retired
            instructions = self.instructions_retired
            cycles = self.cycles
            done = 0
            try:
                while not htif.exited and not executor.exit_requested:
                    if instructions >= limit:
                        raise SimulationError(
                            f"instruction limit exceeded ({limit}); "
                            f"pc={hart.pc:#x}"
                        )
                    entry = timed_get(hart.pc)
                    if entry is None:
                        compile_(hart.pc)
                        entry = timed_get(hart.pc)
                    op, info, direct = entry
                    if direct:
                        # Direct ops are never TC_MEM (loads/stores keep
                        # the info path), so the cycle charge is flat.
                        hart.pc = op()
                        cycles += 1
                    else:
                        # Counter CSRs observe the live counts mid-batch.
                        executor.retired = retired_base + done
                        self.cycles = cycles
                        op()
                        cycles += 1
                        if info.timing_class == TC_MEM:
                            cycles += extra
                    instructions += 1
                    done += 1
            finally:
                self.cycles = cycles
                self.instructions_retired = instructions
                executor.retired = retired_base + done
        else:
            # Pure 1-CPI: no per-step info needed, run the threaded-code loop.
            while not htif.exited and not executor.exit_requested:
                remaining = limit - executor.retired
                if remaining <= 0:
                    raise SimulationError(
                        f"instruction limit exceeded ({limit}); pc={self.hart.pc:#x}"
                    )
                executor.run(remaining)
            self.instructions_retired = executor.retired
            self.cycles = executor.retired
        exit_code = htif.exit_code if htif.exited else executor.exit_code
        return AtomicResult(
            exit_code=exit_code,
            instructions_retired=self.instructions_retired,
            console_output=htif.console_output,
            symbols=dict(self.image.symbols),
            memory=self.memory,
            hart=self.hart,
            ticks=self.cycles,
            simulated_seconds=self.cycles / self.frequency_hz,
            frequency_hz=self.frequency_hz,
        )
