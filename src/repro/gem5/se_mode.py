"""System-call-emulation (SE) mode runner.

In Gem5's SE mode "we need to specify a binary file to be executed" (paper,
Section V).  This thin wrapper plays that role for our framework: it accepts a
linked :class:`~repro.asm.program.Image` (our "binary"), selects the CPU
model, runs it, and returns the simulated statistics in one object — the same
shape of workflow as ``gem5 ... --cpu-type=AtomicSimpleCPU se.py -c binary``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gem5.atomic_cpu import AtomicResult, AtomicSimpleCPU


@dataclass(frozen=True)
class Gem5Config:
    """The subset of Gem5 options the paper's evaluation uses."""

    cpu_type: str = "AtomicSimpleCPU"
    frequency_hz: int = 2_000_000_000
    memory_access_extra_cycles: int = 0


class SyscallEmulationRunner:
    """Run binaries under an SE-mode CPU model."""

    def __init__(self, config: Gem5Config = None) -> None:
        self.config = config if config is not None else Gem5Config()
        if self.config.cpu_type != "AtomicSimpleCPU":
            raise ConfigurationError(
                f"unsupported cpu type {self.config.cpu_type!r}; "
                "only AtomicSimpleCPU is modelled (as in the paper)"
            )

    def run_binary(self, image, accelerator=None) -> AtomicResult:
        """Execute one linked image and return its simulated statistics."""
        cpu = AtomicSimpleCPU(
            image,
            frequency_hz=self.config.frequency_hz,
            memory_access_extra_cycles=self.config.memory_access_extra_cycles,
            accelerator=accelerator,
        )
        return cpu.run()
