"""BCD carry-lookahead adder model (the accelerator's main execution unit).

Method-1 of the paper needs exactly one BCD-CLA "to generate multiplicand
multiples and accumulate partial products".  This class models it:

* *functionally* — digit-serial BCD addition with carry in/out (the carry
  network only changes delay, not values, so the functional model is simple);
* *for timing* — a combinational latency in clock cycles (1 by default, the
  adder fits in a pipeline stage at Rocket-class frequencies);
* *for cost* — gate-equivalent area and logic depth estimates of a
  carry-lookahead implementation, which feed the hardware-overhead report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AcceleratorError
from repro.hw.cost import GE_PER_AND_OR, GE_PER_XOR, GateCost

#: Gate-equivalents of one BCD digit adder cell (4-bit binary adder, the
#: +6 correction stage and the digit generate/propagate logic).
_DIGIT_CELL_GE = 42.0
#: Gate-equivalents per digit of the lookahead carry network.
_LOOKAHEAD_GE_PER_DIGIT = 9.0


@dataclass(frozen=True)
class BcdAddResult:
    """Outcome of one BCD addition."""

    value: int       # packed BCD sum, truncated to the adder width
    carry_out: int   # 1 if the sum exceeded the adder width
    digits: int      # adder width in digits


class BcdCarryLookaheadAdder:
    """A ``width_digits``-digit BCD carry-lookahead adder."""

    def __init__(self, width_digits: int = 16, latency_cycles: int = 1) -> None:
        if width_digits < 1:
            raise AcceleratorError("adder width must be at least one digit")
        self.width_digits = width_digits
        self.latency_cycles = latency_cycles
        self.operations = 0

    # ------------------------------------------------------------------ value
    def add(self, a: int, b: int, carry_in: int = 0) -> BcdAddResult:
        """Add two packed-BCD operands (must fit the adder width)."""
        mask = (1 << (4 * self.width_digits)) - 1
        if a & ~mask or b & ~mask:
            raise AcceleratorError(
                f"operand wider than the {self.width_digits}-digit adder"
            )
        carry = 1 if carry_in else 0
        result = 0
        for digit_index in range(self.width_digits):
            da = (a >> (4 * digit_index)) & 0xF
            db = (b >> (4 * digit_index)) & 0xF
            if da > 9 or db > 9:
                raise AcceleratorError(
                    f"invalid BCD nibble in operand at digit {digit_index}"
                )
            total = da + db + carry
            if total > 9:
                total -= 10
                carry = 1
            else:
                carry = 0
            result |= total << (4 * digit_index)
        self.operations += 1
        return BcdAddResult(value=result, carry_out=carry, digits=self.width_digits)

    # ------------------------------------------------------------------- cost
    def cost(self) -> GateCost:
        """Gate-equivalent area and depth of a CLA implementation."""
        digit_cells = _DIGIT_CELL_GE * self.width_digits
        lookahead = _LOOKAHEAD_GE_PER_DIGIT * self.width_digits
        # Two-level lookahead tree: depth grows with log4(width).
        levels = 4 + 2 * max(1, math.ceil(math.log(max(self.width_digits, 2), 4)))
        extra = (GE_PER_XOR + GE_PER_AND_OR) * self.width_digits  # sum correction
        return GateCost(
            name=f"BCD-CLA ({self.width_digits} digits)",
            gate_equivalents=digit_cells + lookahead + extra,
            logic_levels=levels,
        )
