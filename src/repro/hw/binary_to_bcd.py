"""Binary to BCD converter (the DEC_CNV instruction's execution unit).

Models the classic shift-and-add-3 ("double dabble") converter: functionally
exact, with a cycle count of one per input bit (the usual iterative hardware
implementation) and a gate cost proportional to the number of output digits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AcceleratorError
from repro.decnumber.bcd import int_to_bcd
from repro.hw.cost import GateCost, register_cost, AreaReport


@dataclass(frozen=True)
class ConversionResult:
    """Outcome of one binary-to-BCD conversion."""

    value: int    # packed BCD
    cycles: int   # iterative converter cycles (one per input bit)


class BinaryToBcdConverter:
    """Iterative double-dabble converter for ``input_bits``-wide integers."""

    def __init__(self, input_bits: int = 64, output_digits: int = 20) -> None:
        self.input_bits = input_bits
        self.output_digits = output_digits
        self.operations = 0

    def convert(self, value: int) -> ConversionResult:
        """Convert an unsigned binary integer to packed BCD."""
        if value < 0 or value >= (1 << self.input_bits):
            raise AcceleratorError(
                f"value does not fit in {self.input_bits} input bits"
            )
        if value > 10 ** self.output_digits - 1:
            raise AcceleratorError(
                f"value needs more than {self.output_digits} BCD digits"
            )
        self.operations += 1
        return ConversionResult(
            value=int_to_bcd(value, self.output_digits), cycles=self.input_bits
        )

    def cost(self) -> AreaReport:
        """Hardware overhead of the iterative converter."""
        report = AreaReport()
        # One add-3 corrector (4 gates-ish -> ~9 GE) per output digit.
        report.add(
            GateCost(
                f"add-3 correctors ({self.output_digits} digits)",
                9.0 * self.output_digits,
                3,
            )
        )
        report.add(register_cost("shift register", self.input_bits + 4 * self.output_digits))
        report.add(GateCost("converter control", 80.0, 3, flip_flops=7))
        return report
