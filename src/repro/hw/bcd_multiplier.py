"""Iterative BCD multiplier built around the BCD carry-lookahead adder.

This models the *larger* hardware option (the paper's DEC_MUL instruction):
a digit-serial multiplier that generates multiplicand multiples with the BCD
adder and accumulates partial products internally.  It trades more hardware
(wide accumulator, multiple registers, control) for fewer instructions on the
software side — one of the Pareto points the evaluation framework is meant to
explore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AcceleratorError
from repro.decnumber.bcd import bcd_to_int, int_to_bcd
from repro.hw.bcd_adder import BcdCarryLookaheadAdder
from repro.hw.cost import AreaReport, GateCost, register_cost


@dataclass(frozen=True)
class BcdMultiplyResult:
    """Outcome of one BCD multiplication."""

    value: int      # packed BCD product (2x operand width)
    cycles: int     # datapath cycles the iterative multiply needed


class BcdMultiplier:
    """Digit-serial BCD multiplier: one digit of the multiplier per step."""

    def __init__(self, operand_digits: int = 16) -> None:
        self.operand_digits = operand_digits
        self.adder = BcdCarryLookaheadAdder(width_digits=2 * operand_digits)
        self.operations = 0

    def multiply(self, multiplicand: int, multiplier: int) -> BcdMultiplyResult:
        """Multiply two packed-BCD operands of at most ``operand_digits`` digits."""
        limit = (1 << (4 * self.operand_digits)) - 1
        if multiplicand & ~limit or multiplier & ~limit:
            raise AcceleratorError("operand wider than the multiplier datapath")
        x = bcd_to_int(multiplicand)
        cycles = 0
        # Multiple generation: MM[i] = MM[i-1] + X, eight additions (2..9).
        multiples = [0, x]
        for i in range(2, 10):
            multiples.append(multiples[i - 1] + x)
            cycles += self.adder.latency_cycles
        # Horner accumulation over the multiplier digits, MSD first.
        accumulator = 0
        for digit_index in reversed(range(self.operand_digits)):
            digit = (multiplier >> (4 * digit_index)) & 0xF
            if digit > 9:
                raise AcceleratorError("invalid BCD nibble in multiplier")
            accumulator = accumulator * 10 + multiples[digit]
            cycles += self.adder.latency_cycles
        self.operations += 1
        return BcdMultiplyResult(
            value=int_to_bcd(accumulator, 2 * self.operand_digits), cycles=cycles
        )

    def cost(self) -> AreaReport:
        """Hardware overhead of the full multiplier."""
        report = AreaReport()
        report.add(self.adder.cost())
        report.add(
            register_cost(
                f"multiple registers (10 x {self.operand_digits + 1} digits)",
                10 * 4 * (self.operand_digits + 1),
            )
        )
        report.add(
            register_cost(
                f"product accumulator ({2 * self.operand_digits} digits)",
                4 * 2 * self.operand_digits,
            )
        )
        report.add(GateCost("multiplier control FSM", 220.0, 4, flip_flops=12))
        return report
