"""Gate-count / delay cost model for the accelerator's hardware components.

The paper evaluates co-design solutions along two axes: performance (cycles)
and hardware overhead.  Without a synthesis flow we report *gate equivalents*
(2-input NAND equivalents) and logic depth, using conventional per-cell
estimates.  The absolute numbers are estimates; what matters for the Pareto
analysis is that they scale correctly with datapath width and component
choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Gate-equivalent cost of common cells (2-input NAND equivalents).
GE_PER_FLIPFLOP = 6.0
GE_PER_FULL_ADDER = 6.5
GE_PER_MUX2 = 2.5
GE_PER_AND_OR = 1.0
GE_PER_XOR = 2.5


@dataclass(frozen=True)
class GateCost:
    """Area (gate equivalents) and delay (logic levels) of one component."""

    name: str
    gate_equivalents: float
    logic_levels: int
    flip_flops: int = 0

    def scaled(self, factor: float, name: str = None) -> "GateCost":
        """Cost of ``factor`` copies of this component."""
        return GateCost(
            name=name or f"{factor}x {self.name}",
            gate_equivalents=self.gate_equivalents * factor,
            logic_levels=self.logic_levels,
            flip_flops=int(self.flip_flops * factor),
        )

    def __add__(self, other: "GateCost") -> "GateCost":
        return GateCost(
            name=f"{self.name}+{other.name}",
            gate_equivalents=self.gate_equivalents + other.gate_equivalents,
            logic_levels=max(self.logic_levels, other.logic_levels),
            flip_flops=self.flip_flops + other.flip_flops,
        )


@dataclass
class AreaReport:
    """Aggregated hardware overhead of an accelerator configuration."""

    components: list = field(default_factory=list)

    def add(self, cost: GateCost) -> None:
        self.components.append(cost)

    @property
    def total_gate_equivalents(self) -> float:
        return sum(component.gate_equivalents for component in self.components)

    @property
    def total_flip_flops(self) -> int:
        return sum(component.flip_flops for component in self.components)

    @property
    def critical_path_levels(self) -> int:
        return max(
            (component.logic_levels for component in self.components), default=0
        )

    def as_rows(self) -> list:
        """Rows for tabular reporting (component, GE, FFs, levels)."""
        rows = [
            {
                "component": component.name,
                "gate_equivalents": round(component.gate_equivalents, 1),
                "flip_flops": component.flip_flops,
                "logic_levels": component.logic_levels,
            }
            for component in self.components
        ]
        rows.append(
            {
                "component": "TOTAL",
                "gate_equivalents": round(self.total_gate_equivalents, 1),
                "flip_flops": self.total_flip_flops,
                "logic_levels": self.critical_path_levels,
            }
        )
        return rows

    def render(self) -> str:
        """Plain-text table of the report."""
        rows = self.as_rows()
        header = f"{'component':<32s} {'GE':>10s} {'FFs':>8s} {'levels':>7s}"
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['component']:<32s} {row['gate_equivalents']:>10.1f} "
                f"{row['flip_flops']:>8d} {row['logic_levels']:>7d}"
            )
        return "\n".join(lines)


def register_cost(name: str, bits: int) -> GateCost:
    """Cost of a ``bits``-wide register."""
    return GateCost(
        name=name,
        gate_equivalents=bits * GE_PER_FLIPFLOP,
        logic_levels=1,
        flip_flops=bits,
    )
