"""Hardware component models with gate-level cost estimates.

These classes model the *dedicated hardware* side of the co-design: the BCD
carry-lookahead adder that Method-1 requires, a BCD multiplier and a
binary-to-BCD converter, together with a simple gate/delay cost model used to
report hardware overhead (the other axis of the paper's Pareto trade-off).
"""

from repro.hw.cost import GateCost, AreaReport
from repro.hw.bcd_adder import BcdCarryLookaheadAdder
from repro.hw.bcd_multiplier import BcdMultiplier
from repro.hw.binary_to_bcd import BinaryToBcdConverter

__all__ = [
    "GateCost",
    "AreaReport",
    "BcdCarryLookaheadAdder",
    "BcdMultiplier",
    "BinaryToBcdConverter",
]
