"""The built-in workload scenarios.

Seven distributions beyond (and including) the paper's own mix.  Each one
stresses a different corner of the decimal64 multiply pipeline, so the
speedup of the co-design over the software baseline is *workload-dependent* —
exactly the comparison ``python -m repro.campaign --workload a,b,c`` renders.

Every operand stays strictly representable in decimal64 (coefficient of at
most 16 digits, exponent within [-398, 369]) so the encoded program operand
round-trips bit-exactly and the golden checker sees the same value the kernel
does.
"""

from __future__ import annotations

from repro.decnumber.formats import get_format
from repro.decnumber.number import DecNumber
from repro.verification.database import OperandClass, VerificationDatabase
from repro.workloads.base import Workload


def _finite(rng, digit_range, exponent_range, signed: bool = True) -> DecNumber:
    digits = rng.randint(*digit_range)
    low = 10 ** (digits - 1) if digits > 1 else 1
    coefficient = rng.randint(low, 10 ** digits - 1)
    exponent = rng.randint(*exponent_range)
    sign = rng.randint(0, 1) if signed else 0
    return DecNumber(sign, coefficient, exponent)


class PaperUniform(Workload):
    """The paper's Table IV constrained-random mix, bit-identical.

    Delegates to the legacy :class:`VerificationDatabase` stream (same seed
    ⇒ same vectors, same per-class tags), so evaluations naming this
    workload merge to exactly the numbers the pre-registry default path
    produced.  Under wider formats the database's per-format class
    parameters size the same mix to that format's envelope.
    """

    name = "paper-uniform"
    description = (
        "Table IV mix: normal/rounding/overflow/underflow/clamping, "
        "uniform round-robin (bit-identical to the legacy testgen path)"
    )
    tags = ("paper", "reference")
    formats = ("decimal64", "decimal128")
    #: Multiply only, deliberately: this workload IS the paper's pinned
    #: stream, and pinning means never consuming rng draws for other ops.
    operations = ("multiply",)
    classes = OperandClass.TABLE_IV_MIX

    def vectors(self, count: int, seed: int = 2018, fmt: str = "decimal64") -> list:
        return VerificationDatabase(seed, fmt=fmt).generate_mix(count, self.classes)


class TelcoBilling(Workload):
    """Call-record rating: duration × per-second tariff (telco benchmark)."""

    name = "telco-billing"
    description = (
        "call rating: 0.01s..2h durations (2 fraction digits) x 3-7 "
        "significant-digit tariffs at 1e-7 $/s"
    )
    tags = ("financial",)
    formats = ("decimal64", "decimal128")
    # Rating naturally accumulates: duration x tariff + running balance.
    operations = ("multiply", "fma")

    def pair(self, rng, index):
        duration = DecNumber(0, rng.randint(1, 720_000), -2)   # up to 2 hours
        tariff = DecNumber(0, rng.randint(100, 9_999_999), -7)
        return duration, tariff

    def triple_for_format(self, rng, index, spec):
        duration, tariff = self.pair(rng, index)
        # Running bill so far: dollars and cents, up to ~1e6.
        balance = DecNumber(0, rng.randint(0, 99_999_999), -2)
        return duration, tariff, balance


class CurrencyFx(Workload):
    """Rounding-heavy currency conversion: cent amounts × 6-digit FX rates."""

    name = "currency-fx"
    description = (
        "conversions: 1-13 digit cent amounts x 6-significant-digit FX "
        "rates (products need rounding almost every time)"
    )
    tags = ("financial", "rounding")
    formats = ("decimal64", "decimal128")
    # Conversion with fees folds in as amount x rate + fee.
    operations = ("multiply", "fma")

    def pair(self, rng, index):
        amount = _finite(rng, (1, 13), (-2, -2), signed=False)
        # Rates like 1.08432 or 0.0093214: 6 significant digits, magnitude
        # spread over a few decades.
        rate = DecNumber(0, rng.randint(100_000, 999_999), rng.randint(-7, -4))
        return amount, rate


class TaxLadder(Workload):
    """Chained small multiplications: full-precision base × (1 + rate)."""

    name = "tax-ladder"
    description = (
        "tax/compounding ladders: 8-16 digit accumulated amounts x "
        "1.0000-1.1999 step factors (inexact at nearly every rung)"
    )
    tags = ("financial", "rounding")
    formats = ("decimal64", "decimal128")
    # A ladder rung is amount x factor + flat levy: fma-shaped.
    operations = ("multiply", "fma")

    def pair(self, rng, index):
        # The amount's precision grows along a ladder; model rungs by cycling
        # the digit count with the sample index.
        digits = 8 + index % 9                         # 8..16 digits
        amount = _finite(rng, (digits, digits), (-6, -2), signed=False)
        factor = DecNumber(0, rng.randint(10_000, 11_999), -4)
        return amount, factor


class SparseDigits(Workload):
    """Few significant digits, wide exponents: the coefficient path idles."""

    name = "sparse-digits"
    description = (
        "1-3 significant digits with exponents across [-380, 360]: exact "
        "products, exponent/clamp logic dominates"
    )
    tags = ("exponent",)
    formats = ("decimal64", "decimal128")
    # Exponent/alignment logic dominates for every operation alike.
    operations = ("multiply", "add", "subtract", "fma")

    def pair(self, rng, index):
        return (
            _finite(rng, (1, 3), (-380, 360)),
            _finite(rng, (1, 3), (-380, 360)),
        )


class CarryStress(Workload):
    """Maximal BCD carry chains: all-nines coefficients of varying width.

    The digit range tops out at the format's full precision (16 for
    decimal64, 34 for decimal128), so every format gets its own worst-case
    carry chains; the decimal64 stream is unchanged.
    """

    name = "carry-stress"
    description = (
        "all-nines coefficients (8 digits up to full precision): every "
        "partial-product digit carries, the worst case for the BCD adder tree"
    )
    tags = ("stress",)
    formats = ("decimal64", "decimal128")
    # All-nines coefficients are the worst case for every BCD datapath:
    # partial products, alignment adds, and the fma accumulator alike.
    operations = ("multiply", "add", "subtract", "fma")

    def pair(self, rng, index, precision: int = 16):
        def nines():
            return DecNumber(
                rng.randint(0, 1),
                10 ** rng.randint(8, precision) - 1,
                rng.randint(-10, 10),
            )

        return nines(), nines()

    def pair_for_format(self, rng, index, spec):
        return self.pair(rng, index, precision=spec.precision)


class SpecialValues(Workload):
    """NaN/Inf/zero-dense with subnormal finite pairs in between."""

    name = "special-values"
    description = (
        "40% pairs with an infinity/NaN/signed zero, the rest subnormal-"
        "territory finite pairs (underflow to subnormal or zero)"
    )
    tags = ("special", "stress")
    formats = ("decimal64", "decimal128")
    # NaN/Inf/zero propagation rules differ per operation; run them all.
    operations = ("multiply", "add", "subtract", "fma")

    def _special(self, rng, spec):
        choice = rng.randint(0, 3)
        if choice == 0:
            return DecNumber.infinity(rng.randint(0, 1))
        if choice == 1:
            return DecNumber.qnan(rng.randint(0, 999))
        if choice == 2:
            return DecNumber.snan(rng.randint(0, 999))
        return DecNumber(rng.randint(0, 1), 0, rng.randint(spec.etiny, spec.etop))

    def pair(self, rng, index, spec=None):
        spec = spec if spec is not None else get_format("decimal64")
        if rng.random() < 0.4:
            x = self._special(rng, spec)
            y = (
                self._special(rng, spec)
                if rng.random() < 0.5
                else _finite(rng, (1, spec.precision),
                             (-spec.precision * 12 - 8, spec.precision * 12 + 8))
            )
            return (x, y) if rng.random() < 0.5 else (y, x)
        # Subnormal-dense: products land between etiny and emin, or flush
        # to zero — the underflow/clamp corner of the rounding code.
        return (
            _finite(rng, (1, 8), (spec.etiny, spec.etiny + 18)),
            _finite(rng, (1, 8), (spec.etiny, spec.etiny + 18)),
        )

    def pair_for_format(self, rng, index, spec):
        return self.pair(rng, index, spec=spec)


class MacChain(Workload):
    """Dot-product accumulation: element x element + running sum (fma-only).

    Models the inner loop of a decimal dot product / sum-of-products: two
    half-precision factors and an accumulator that has already absorbed many
    terms, so it carries (near-)full precision and usually dominates the
    product.  About a quarter of the triples flip the accumulator's sign
    against the product to exercise cancellation mid-chain.
    """

    name = "mac-chain"
    description = (
        "multiply-accumulate chains: half-precision factor pairs + a "
        "full-precision running accumulator (fma only)"
    )
    tags = ("fma", "accumulation")
    formats = ("decimal64", "decimal128")
    operations = ("fma",)

    def triple_for_format(self, rng, index, spec):
        half = max(1, spec.precision // 2)
        x = _finite(rng, (1, half), (-4, 4))
        y = _finite(rng, (1, half), (-4, 4))
        accumulator = _finite(rng, (half, spec.precision), (-4, 6))
        if rng.random() < 0.25:
            # Cancellation rung: accumulator opposes the incoming product.
            accumulator = DecNumber(
                1 - (x.sign ^ y.sign),
                accumulator.coefficient,
                accumulator.exponent,
            )
        return x, y, accumulator


#: Instances in registration order (paper mix first).
BUILTIN_WORKLOADS = (
    PaperUniform(),
    TelcoBilling(),
    CurrencyFx(),
    TaxLadder(),
    SparseDigits(),
    CarryStress(),
    SpecialValues(),
    MacChain(),
)
