"""Pluggable operand-distribution scenarios (the workload registry).

See docs/workloads.md.  ``repro.workloads`` is the one import site the rest
of the stack uses::

    from repro.workloads import get_workload, register, workload_names

Importing the package registers the built-in scenarios.
"""

from repro.workloads.base import Workload
from repro.workloads.builtin import (
    BUILTIN_WORKLOADS,
    CarryStress,
    CurrencyFx,
    MacChain,
    PaperUniform,
    SparseDigits,
    SpecialValues,
    TaxLadder,
    TelcoBilling,
)
from repro.workloads.registry import (
    get_workload,
    register,
    registered_workloads,
    unregister,
    workload_names,
    workload_vectors,
    workloads_for_format,
)

for _workload in BUILTIN_WORKLOADS:
    register(_workload, replace=True)
del _workload

__all__ = [
    "Workload",
    "BUILTIN_WORKLOADS",
    "PaperUniform",
    "TelcoBilling",
    "CurrencyFx",
    "TaxLadder",
    "SparseDigits",
    "CarryStress",
    "SpecialValues",
    "MacChain",
    "get_workload",
    "register",
    "registered_workloads",
    "unregister",
    "workload_names",
    "workload_vectors",
    "workloads_for_format",
]
