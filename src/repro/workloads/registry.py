"""Name-keyed workload registry (entry-point-style lookup).

The registry is the single place the rest of the stack resolves a workload
name — ``TestProgramConfig(workload=...)``, ``CampaignCell(workload=...)``,
``EvaluationFramework(workload=...)`` and ``python -m repro.campaign
--workload`` all go through :func:`get_workload`.  Registering a new scenario
is one call::

    from repro.workloads import Workload, register

    class MyScenario(Workload):
        name = "my-scenario"
        description = "..."
        def pair(self, rng, index): ...

    register(MyScenario())

Built-in workloads register themselves when :mod:`repro.workloads` is
imported, so lookup always sees them first.
"""

from __future__ import annotations

import difflib

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

_REGISTRY: dict = {}


def register(workload: Workload, replace: bool = False) -> Workload:
    """Add ``workload`` to the registry (returns it, so usable as a helper)."""
    name = workload.name
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"workload {workload!r} needs a non-empty string name"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"workload {name!r} is already registered (pass replace=True to "
            "override it)"
        )
    _REGISTRY[name] = workload
    return workload


def unregister(name: str) -> None:
    """Remove a workload (no-op if absent) — mainly for tests."""
    _REGISTRY.pop(name, None)


def get_workload(name: str) -> Workload:
    """Look a workload up by name; unknown names raise with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(str(name), _REGISTRY, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown workload {name!r}{hint}; registered: "
            f"{', '.join(workload_names())}"
        ) from None


def workload_names() -> tuple:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def registered_workloads() -> dict:
    """A name -> Workload snapshot of the registry."""
    return dict(_REGISTRY)
