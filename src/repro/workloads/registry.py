"""Name-keyed workload registry (entry-point-style lookup).

The registry is the single place the rest of the stack resolves a workload
name — ``TestProgramConfig(workload=...)``, ``CampaignCell(workload=...)``,
``EvaluationFramework(workload=...)`` and ``python -m repro.campaign
--workload`` all go through :func:`get_workload`.  Registering a new scenario
is one call::

    from repro.workloads import Workload, register

    class MyScenario(Workload):
        name = "my-scenario"
        description = "..."
        def pair(self, rng, index): ...

    register(MyScenario())

Built-in workloads register themselves when :mod:`repro.workloads` is
imported, so lookup always sees them first.
"""

from __future__ import annotations

import difflib

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

_REGISTRY: dict = {}


def register(workload: Workload, replace: bool = False) -> Workload:
    """Add ``workload`` to the registry (returns it, so usable as a helper)."""
    name = workload.name
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"workload {workload!r} needs a non-empty string name"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"workload {name!r} is already registered (pass replace=True to "
            "override it)"
        )
    _REGISTRY[name] = workload
    return workload


def unregister(name: str) -> None:
    """Remove a workload (no-op if absent) — mainly for tests."""
    _REGISTRY.pop(name, None)


def get_workload(name: str) -> Workload:
    """Look a workload up by name; unknown names raise with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(str(name), _REGISTRY, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigurationError(
            f"unknown workload {name!r}{hint}; registered: "
            f"{', '.join(workload_names())}"
        ) from None


def workload_names() -> tuple:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def registered_workloads() -> dict:
    """A name -> Workload snapshot of the registry."""
    return dict(_REGISTRY)


def workloads_for_format(fmt) -> dict:
    """Registered workloads that declare support for format ``fmt``."""
    return {
        name: workload
        for name, workload in _REGISTRY.items()
        if workload.supports_format(fmt)
    }


def workload_vectors(workload: Workload, count: int, seed: int,
                     fmt: str = "decimal64",
                     operation: str = "multiply") -> list:
    """Draw ``count`` vectors from ``workload`` for ``fmt`` and ``operation``.

    The single call site the rest of the stack uses: it enforces the
    workload's declared format and operation support and keeps the
    decimal64-multiply call shape identical to the pre-axis one (so
    third-party ``vectors`` overrides without the ``fmt``/``operation``
    parameters keep working for decimal64 multiplication).
    """
    from repro.decnumber.formats import resolve_format_name
    from repro.decnumber.operations import resolve_operation_name

    fmt = resolve_format_name(fmt)
    operation = resolve_operation_name(operation)
    if not workload.supports_operation(operation):
        raise ConfigurationError(
            f"workload {workload.name!r} does not support operation "
            f"{operation!r} (declares {workload.operations}); see "
            "docs/operations.md for the opt-in recipe"
        )
    if operation != "multiply":
        if not workload.supports_format(fmt):
            raise ConfigurationError(
                f"workload {workload.name!r} does not support format {fmt!r} "
                f"(declares {workload.formats}); see docs/formats.md for the "
                "opt-in recipe"
            )
        return workload.vectors(count, seed, fmt=fmt, operation=operation)
    if fmt == "decimal64":
        return workload.vectors(count, seed)
    if not workload.supports_format(fmt):
        raise ConfigurationError(
            f"workload {workload.name!r} does not support format {fmt!r} "
            f"(declares {workload.formats}); see docs/formats.md for the "
            "opt-in recipe"
        )
    return workload.vectors(count, seed, fmt=fmt)
