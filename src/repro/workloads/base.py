"""The :class:`Workload` protocol: a named, seeded operand-pair scenario.

A workload answers one question: *which decimal64 operand pairs should this
evaluation run?*  The paper's tables use a fixed constrained-random mix
(:data:`~repro.verification.database.OperandClass.TABLE_IV_MIX`); real decimal
workloads — telco billing, currency conversion, tax ladders, carry-chain
stress — exercise the accelerator and the software baseline very differently.
Wrapping the operand source in a small protocol lets every layer above
(testgen, evaluation framework, campaign engine, CLI) treat "which scenario"
as one more axis next to the solution kind and the RocketConfig.

A workload must be:

* **deterministic per seed** — ``vectors(count, seed)`` returns the same
  list for the same arguments, on every host and in every worker process
  (the campaign engine generates vectors once in the parent and ships
  slices to shards, but tests regenerate them independently);
* **decimal64-encodable** — every operand must survive
  :meth:`repro.verification.reference.GoldenReference.encode_operand`
  (finite coefficients of at most 16 digits; the encoder clamps/rounds
  out-of-range exponents, so staying inside [-398, 369] keeps operands
  bit-exact);
* **picklable-free** — only the *vectors* travel to worker processes, never
  the workload object itself, so workloads may hold arbitrary state.

Subclasses implement :meth:`pair` (one operand pair per sample) or override
:meth:`vectors` wholesale when they need a different drawing scheme (e.g.
``paper-uniform`` delegates to the legacy
:class:`~repro.verification.database.VerificationDatabase` stream to stay
bit-identical with the pre-registry evaluation path).
"""

from __future__ import annotations

import random

from repro.verification.database import VerificationVector
from repro.verification.reference import GoldenReference


class Workload:
    """One named operand-distribution scenario.

    Class attributes double as the registry metadata:

    ``name``
        Registry key, also used to tag generated vectors' ``operand_class``.
    ``description``
        One-line human description (shown by ``--workload help`` style
        listings and docs).
    ``tags``
        Free-form trait strings (``"financial"``, ``"stress"``, …).
    ``formats``
        Interchange formats the workload can generate for.  The default is
        decimal64 only — the pre-format-axis contract — so third-party
        workloads are never silently run under a wider format they were not
        written for; declare ``("decimal64", "decimal128")`` (and accept the
        ``fmt`` argument in :meth:`vectors`) to opt in.
    ``operations``
        Canonical operation names the workload's distribution makes sense
        for.  The default is multiply only — the pre-operation-axis
        contract; declare e.g. ``("multiply", "fma")`` (and implement
        :meth:`triple_for_format` for ternary ops) to opt in.
    """

    name: str = ""
    description: str = ""
    tags: tuple = ()
    formats: tuple = ("decimal64",)
    operations: tuple = ("multiply",)

    # ------------------------------------------------------------- generation
    def pair(self, rng: random.Random, index: int):
        """Draw one ``(x, y)`` DecNumber operand pair for sample ``index``."""
        raise NotImplementedError(
            f"workload {self.name!r} must implement pair() or override vectors()"
        )

    def pair_for_format(self, rng: random.Random, index: int, spec):
        """Format-aware drawing hook: one pair sized for ``spec``.

        The default ignores the spec and delegates to :meth:`pair` — any
        decimal64-encodable operand is exactly encodable in decimal128
        too, and the per-format oracle context is applied at verification
        time.  Workloads whose *distribution* should scale with the
        format override this (see ``carry-stress``/``special-values``);
        overrides must keep the decimal64 draw stream unchanged.
        """
        return self.pair(rng, index)

    def triple_for_format(self, rng: random.Random, index: int, spec):
        """One ``(x, y, z)`` fma triple sized for ``spec``.

        The default draws two pairs from the workload's own distribution
        and uses the second pair's first operand as the addend, so any
        binary workload that opts into fma gets an addend shaped like its
        own operands.  Workloads with a meaningful accumulation structure
        (see ``mac-chain``) override this.
        """
        x, y = self.pair_for_format(rng, index, spec)
        z, _ = self.pair_for_format(rng, index, spec)
        return x, y, z

    def vectors(self, count: int, seed: int = 2018, fmt: str = "decimal64",
                operation: str = "multiply") -> list:
        """``count`` :class:`VerificationVector` drawn deterministically.

        ``operation`` sizes the operand tuple: binary operations draw
        pairs (the multiply stream is unchanged — same rng consumption as
        before the operation axis existed), ternary ones draw triples via
        :meth:`triple_for_format`.
        """
        from repro.decnumber.formats import get_format
        from repro.decnumber.operations import get_operation

        spec = get_format(fmt)
        rng = random.Random(seed)
        if get_operation(operation).arity == 3:
            vectors = []
            for index in range(count):
                x, y, z = self.triple_for_format(rng, index, spec)
                vectors.append(
                    VerificationVector(
                        x, y, operand_class=self.name, index=index, z=z
                    )
                )
            return vectors
        return [
            VerificationVector(*self.pair_for_format(rng, index, spec),
                               operand_class=self.name, index=index)
            for index in range(count)
        ]

    def supports_format(self, fmt) -> bool:
        """Whether this workload declares support for ``fmt``."""
        from repro.decnumber.formats import resolve_format_name

        return resolve_format_name(fmt) in self.formats

    def supports_operation(self, operation) -> bool:
        """Whether this workload declares support for ``operation``."""
        from repro.decnumber.operations import resolve_operation_name

        return resolve_operation_name(operation) in self.operations

    # ------------------------------------------------------------ oracle hook
    def expected(self, x, y, fmt: str = "decimal64"):
        """Expected result for one pair (the workload's oracle).

        Functional verification checks kernel output against this, via
        :meth:`make_checker`.  The default oracle is the decNumber-style
        golden library under ``fmt``'s arithmetic context; scenario
        packages with a domain-specific notion of correctness (e.g. a
        regulatory rounding table) override it.  Returns a
        :class:`~repro.verification.reference.GoldenResult`.

        A custom oracle is resolved through the registry in the process
        doing the verification: with the ``spawn``/``forkserver``
        multiprocessing start methods, register the workload at import
        time of a module the workers also import, or the check falls back
        to the golden default.
        """
        return self._reference(fmt).compute(x, y)

    def make_checker(self, fmt: str = "decimal64", operation: str = "multiply"):
        """A :class:`~repro.verification.checker.ResultChecker` that judges
        results with this workload's :meth:`expected` oracle under ``fmt``.

        The :meth:`expected` hook is multiply-shaped (the pre-operation-axis
        custom-oracle contract), so non-multiply operations are judged by
        the golden library directly — a domain-specific multiply oracle has
        nothing to say about an add or an fma.
        """
        from repro.verification.checker import ResultChecker

        if operation != "multiply":
            return ResultChecker(self._reference(fmt, operation))
        return ResultChecker(_OracleReference(self, fmt))

    def _reference(self, fmt: str = "decimal64",
                   operation: str = "multiply") -> GoldenReference:
        from repro.decnumber.formats import resolve_format_name

        fmt = resolve_format_name(fmt)
        cache = getattr(self, "_golden_by_format", None)
        if cache is None:
            cache = {}
            self._golden_by_format = cache
        key = fmt if operation == "multiply" else (fmt, operation)
        reference = cache.get(key)
        if reference is None:
            reference = GoldenReference(operation=operation, precision=fmt)
            cache[key] = reference
        return reference

    # --------------------------------------------------------------- metadata
    def describe(self) -> dict:
        """JSON-ready metadata (used by docs tooling and CLI listings)."""
        return {
            "name": self.name,
            "description": self.description,
            "tags": list(self.tags),
            "formats": list(self.formats),
            "operations": list(self.operations),
        }

    def __repr__(self) -> str:
        return f"<Workload {self.name!r}>"


class _OracleReference:
    """Adapter presenting a workload's oracle as the checker's reference.

    ``fmt`` is forwarded to format-aware ``expected`` implementations;
    legacy two-argument overrides (pre-format-axis custom oracles) are
    called without it — they only ever run under decimal64, which the
    registry-side format gating guarantees.
    """

    def __init__(self, workload: Workload, fmt: str = "decimal64") -> None:
        self._workload = workload
        self._fmt = fmt
        # The custom-oracle contract is multiply-shaped (see make_checker);
        # the checker reads this when rendering a failure.
        self.operation = "multiply"

    def compute(self, x, y):
        if self._fmt == "decimal64":
            return self._workload.expected(x, y)
        return self._workload.expected(x, y, fmt=self._fmt)

    def decode(self, word):
        return self._workload._reference(self._fmt).decode(word)

    def encode_operand(self, value):
        return self._workload._reference(self._fmt).encode_operand(value)
