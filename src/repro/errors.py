"""Exception hierarchy shared across the repro package.

Keeping every error type in one module lets callers catch the broad
:class:`ReproError` when they only care about "something in the framework
failed", while tests can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad operand, out-of-range field)."""


class DecodingError(ReproError):
    """A machine word could not be decoded into a known instruction."""


class AssemblerError(ReproError):
    """The assembler rejected a program (syntax, unknown mnemonic, bad label)."""


class LinkError(ReproError):
    """Symbol resolution or section layout failed."""


class SimulationError(ReproError):
    """The functional or timing simulator hit an unrecoverable condition."""


class MemoryError_(SimulationError):
    """An access touched unmapped or misaligned memory.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class TrapError(SimulationError):
    """The simulated hart raised a trap the environment does not handle."""


class AcceleratorError(ReproError):
    """The RoCC accelerator received an invalid command or malformed operand."""


class DecimalError(ReproError):
    """The decimal library was asked to do something invalid."""


class InvalidOperationError(DecimalError):
    """IEEE 754 invalid-operation condition surfaced as an exception."""


class VerificationError(ReproError):
    """A simulated result disagreed with the golden reference."""


class ConfigurationError(ReproError):
    """An evaluation/test-generator configuration is inconsistent."""
