"""Golden reference results, computed with the decNumber stand-in library."""

from __future__ import annotations

from dataclasses import dataclass

from repro.decnumber.arith import add, fma, multiply, subtract
from repro.decnumber.context import Context
from repro.decnumber.formats import DECIMAL64, DECIMAL128
from repro.decnumber.number import DecNumber
from repro.errors import ConfigurationError

_OPERATIONS = {
    "multiply": multiply,
    "add": add,
    "subtract": subtract,
    "fma": fma,
}

#: ``precision`` accepts the paper's double/quad terminology and the
#: canonical interchange-format names interchangeably; either way the
#: reference computes through the :class:`~repro.decnumber.formats.
#: InterchangeFormat` spec (the single source of truth for widths).
_FORMATS = {
    "double": DECIMAL64,
    "quad": DECIMAL128,
    "decimal64": DECIMAL64,
    "decimal128": DECIMAL128,
}


@dataclass(frozen=True)
class GoldenResult:
    """Expected result of one operation: value, encoding, and raised flags."""

    value: DecNumber
    encoded: int
    flags: frozenset


class GoldenReference:
    """Computes expected results/encodings for the verification checker."""

    def __init__(self, operation: str = "multiply", precision: str = "double") -> None:
        if operation not in _OPERATIONS:
            raise ConfigurationError(f"unsupported operation: {operation!r}")
        if precision not in _FORMATS:
            raise ConfigurationError(f"unsupported precision: {precision!r}")
        self.operation = operation
        self.precision = precision
        self._format_module = _FORMATS[precision]

    @property
    def spec(self):
        """The :class:`~repro.decnumber.formats.InterchangeFormat` in use."""
        return self._format_module

    @property
    def format_name(self) -> str:
        """Canonical interchange-format name ("decimal64"/"decimal128")."""
        return self._format_module.name

    def context(self) -> Context:
        return self._format_module.context()

    def compute(self, *operands: DecNumber) -> GoldenResult:
        """Expected rounded result and interchange encoding for op(operands).

        Binary operations take ``(x, y)``; fma takes ``(x, y, z)``.
        """
        ctx = self.context()
        value = _OPERATIONS[self.operation](*operands, ctx)
        encoded = self._format_module.encode(value, ctx.copy())
        return GoldenResult(value=value, encoded=encoded, flags=ctx.flags.raised())

    def encode_operand(self, value: DecNumber) -> int:
        """Interchange encoding of an operand."""
        return self._format_module.encode(value)

    def decode(self, word: int) -> DecNumber:
        """Decode an interchange word produced by a kernel."""
        return self._format_module.decode(word)
