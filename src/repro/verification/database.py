"""Constrained-random operand database for decimal64 multiplication.

The paper evaluates with "8,000 sample inputs including overflow, underflow,
normal, rounding, and clamping cases".  This module generates exactly those
classes (plus special values and exact/zero corner cases) deterministically
from a seed, so every simulator sees the same vectors and results are
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.decnumber.number import DecNumber
from repro.errors import ConfigurationError


class OperandClass:
    """Names of the operand classes (the paper's "input data-type")."""

    NORMAL = "normal"
    ROUNDING = "rounding"
    OVERFLOW = "overflow"
    UNDERFLOW = "underflow"
    CLAMPING = "clamping"
    SPECIAL = "special"
    ZERO = "zero"
    EXACT = "exact"

    ALL = (NORMAL, ROUNDING, OVERFLOW, UNDERFLOW, CLAMPING, SPECIAL, ZERO, EXACT)

    #: The mix used for the paper's Table IV evaluation (no specials: the
    #: co-design flow and the baseline treat them identically and the paper's
    #: list names only these five).
    TABLE_IV_MIX = (NORMAL, ROUNDING, OVERFLOW, UNDERFLOW, CLAMPING)


@dataclass(frozen=True)
class VerificationVector:
    """One operand pair plus the class it was drawn from."""

    x: DecNumber
    y: DecNumber
    operand_class: str
    index: int = 0


class VerificationDatabase:
    """Seeded generator of decimal64 operand pairs by class."""

    def __init__(self, seed: int = 2018) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._underflow_toggle = False

    # ------------------------------------------------------------ class mixes
    def generate(self, operand_class: str, count: int) -> list:
        """Generate ``count`` vectors of a single class."""
        generator = self._generators().get(operand_class)
        if generator is None:
            raise ConfigurationError(f"unknown operand class: {operand_class!r}")
        return [
            VerificationVector(*generator(), operand_class=operand_class, index=i)
            for i in range(count)
        ]

    def generate_mix(self, count: int, classes=OperandClass.TABLE_IV_MIX) -> list:
        """Generate ``count`` vectors cycling uniformly through ``classes``."""
        generators = self._generators()
        for name in classes:
            if name not in generators:
                raise ConfigurationError(f"unknown operand class: {name!r}")
        vectors = []
        for index in range(count):
            name = classes[index % len(classes)]
            x, y = generators[name]()
            vectors.append(
                VerificationVector(x=x, y=y, operand_class=name, index=index)
            )
        return vectors

    # -------------------------------------------------------------- generators
    def _generators(self) -> dict:
        return {
            OperandClass.NORMAL: self._normal,
            OperandClass.ROUNDING: self._rounding,
            OperandClass.OVERFLOW: self._overflow,
            OperandClass.UNDERFLOW: self._underflow,
            OperandClass.CLAMPING: self._clamping,
            OperandClass.SPECIAL: self._special,
            OperandClass.ZERO: self._zero,
            OperandClass.EXACT: self._exact,
        }

    def _finite(self, coeff_digits, exponent_range) -> DecNumber:
        rng = self._rng
        digits = rng.randint(*coeff_digits)
        low = 10 ** (digits - 1) if digits > 1 else 0
        coefficient = rng.randint(max(low, 1), 10 ** digits - 1)
        exponent = rng.randint(*exponent_range)
        return DecNumber(rng.randint(0, 1), coefficient, exponent)

    def _normal(self) -> tuple:
        return (
            self._finite((1, 16), (-150, 150)),
            self._finite((1, 16), (-150, 150)),
        )

    def _rounding(self) -> tuple:
        # Full-precision coefficients: the product has ~32 digits and is
        # almost always inexact, exercising the rounding path.
        return (
            self._finite((15, 16), (-100, 100)),
            self._finite((15, 16), (-100, 100)),
        )

    def _overflow(self) -> tuple:
        return (
            self._finite((10, 16), (180, 369)),
            self._finite((10, 16), (180, 369)),
        )

    def _underflow(self) -> tuple:
        # Alternate between products that stay *subnormal* (nonzero, adjusted
        # exponent between etiny and emin) and products that underflow all the
        # way to zero, so both conditions are always exercised.
        self._underflow_toggle = not self._underflow_toggle
        if self._underflow_toggle:
            return (
                self._finite((16, 16), (-212, -208)),
                self._finite((16, 16), (-212, -208)),
            )
        return (
            self._finite((8, 16), (-398, -280)),
            self._finite((8, 16), (-398, -280)),
        )

    def _clamping(self) -> tuple:
        # Few significant digits with large exponents: the preferred exponent
        # of the product exceeds etop (369) while the adjusted exponent stays
        # below emax (384), forcing the fold-down clamp rather than overflow.
        rng = self._rng
        target_exponent = rng.randint(371, 379)
        x_exponent = rng.randint(182, 189)
        return (
            self._finite((1, 2), (x_exponent, x_exponent)),
            self._finite((1, 2), (target_exponent - x_exponent, target_exponent - x_exponent)),
        )

    def _zero(self) -> tuple:
        rng = self._rng
        zero = DecNumber(rng.randint(0, 1), 0, rng.randint(-398, 369))
        other = self._finite((1, 16), (-200, 200))
        return (zero, other) if rng.random() < 0.5 else (other, zero)

    def _exact(self) -> tuple:
        # Small coefficients whose product stays within 16 digits: exact result.
        return (
            self._finite((1, 8), (-100, 100)),
            self._finite((1, 8), (-100, 100)),
        )

    def _special(self) -> tuple:
        rng = self._rng
        specials = [
            DecNumber.infinity(0),
            DecNumber.infinity(1),
            DecNumber.qnan(rng.randint(0, 999)),
            DecNumber.snan(rng.randint(0, 999)),
            DecNumber(rng.randint(0, 1), 0, 0),
        ]
        x = rng.choice(specials)
        y = (
            rng.choice(specials)
            if rng.random() < 0.4
            else self._finite((1, 16), (-200, 200))
        )
        if rng.random() < 0.5:
            x, y = y, x
        return x, y
