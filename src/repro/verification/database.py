"""Constrained-random operand database for decimal multiplication.

The paper evaluates with "8,000 sample inputs including overflow, underflow,
normal, rounding, and clamping cases".  This module generates exactly those
classes (plus special values and exact/zero corner cases) deterministically
from a seed, so every simulator sees the same vectors and results are
reproducible.

The class distributions are defined **per interchange format**: the same
eight operand classes exist for decimal64 and decimal128, with digit counts
and exponent ranges sized to the format's precision and exponent envelope
(:data:`CLASS_PARAMS`).  The decimal64 parameters are the original, pinned
stream — campaign digests depend on them — so they are spelled out as
literals rather than derived.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.decnumber.formats import resolve_format_name
from repro.decnumber.number import DecNumber
from repro.errors import ConfigurationError


class OperandClass:
    """Names of the operand classes (the paper's "input data-type")."""

    NORMAL = "normal"
    ROUNDING = "rounding"
    OVERFLOW = "overflow"
    UNDERFLOW = "underflow"
    CLAMPING = "clamping"
    SPECIAL = "special"
    ZERO = "zero"
    EXACT = "exact"

    ALL = (NORMAL, ROUNDING, OVERFLOW, UNDERFLOW, CLAMPING, SPECIAL, ZERO, EXACT)

    #: The mix used for the paper's Table IV evaluation (no specials: the
    #: co-design flow and the baseline treat them identically and the paper's
    #: list names only these five).
    TABLE_IV_MIX = (NORMAL, ROUNDING, OVERFLOW, UNDERFLOW, CLAMPING)


#: Per-format class-generator parameters.  Every entry is sized so the class
#: semantics hold under that format's context: normal products stay normal,
#: overflow pairs (statistically) overflow, the subnormal half of the
#: underflow toggle lands between etiny and emin, clamping pairs exceed etop
#: without exceeding emax, and zeros/finites stay exactly encodable.
CLASS_PARAMS = {
    # decimal64: precision 16, emax 384, emin -383, etiny -398, etop 369.
    # These literals ARE the pinned pre-format-axis stream; do not derive.
    "decimal64": {
        "precision": 16,
        "normal_exponent": (-150, 150),
        "rounding_digits": (15, 16),
        "rounding_exponent": (-100, 100),
        "overflow_digits": (10, 16),
        "overflow_exponent": (180, 369),
        "underflow_subnormal_exponent": (-212, -208),
        "underflow_zero_digits": (8, 16),
        "underflow_zero_exponent": (-398, -280),
        "clamping_target_exponent": (371, 379),
        "clamping_x_exponent": (182, 189),
        "zero_exponent": (-398, 369),
        "exact_digits": (1, 8),
        "exact_exponent": (-100, 100),
        "special_payload": (0, 999),
        "special_finite_exponent": (-200, 200),
    },
    # decimal128: precision 34, emax 6144, emin -6143, etiny -6176, etop 6111.
    "decimal128": {
        "precision": 34,
        "normal_exponent": (-2400, 2400),
        "rounding_digits": (33, 34),
        "rounding_exponent": (-1600, 1600),
        "overflow_digits": (20, 34),
        "overflow_exponent": (3000, 6111),
        "underflow_subnormal_exponent": (-3118, -3108),
        "underflow_zero_digits": (8, 34),
        "underflow_zero_exponent": (-6176, -4500),
        "clamping_target_exponent": (6113, 6121),
        "clamping_x_exponent": (3000, 3050),
        "zero_exponent": (-6176, 6111),
        "exact_digits": (1, 16),
        "exact_exponent": (-1600, 1600),
        "special_payload": (0, 999),
        "special_finite_exponent": (-3200, 3200),
    },
}


@dataclass(frozen=True)
class VerificationVector:
    """One operand tuple plus the class it was drawn from.

    Binary operations (multiply/add/subtract) carry ``x`` and ``y``;
    the ternary fma additionally carries the addend ``z``.
    """

    x: DecNumber
    y: DecNumber
    operand_class: str
    index: int = 0
    z: DecNumber = None

    @property
    def operands(self) -> tuple:
        """The operand tuple in positional order, sized to the operation."""
        if self.z is None:
            return (self.x, self.y)
        return (self.x, self.y, self.z)


#: Addend strategies the fma triple generator cycles through: a plain
#: same-class addend, an addend that dominates the product, a product that
#: dominates the addend, a near-cancelling addend (z ~ -x*y), and a zero
#: addend — together they exercise alignment in both directions, the
#: effective-subtract cancellation path, and the zero-operand special cases.
FMA_ADDEND_STRATEGIES = (
    "normal", "z_dominant", "product_dominant", "cancellation", "zero",
)


class VerificationDatabase:
    """Seeded generator of decimal operand pairs by class.

    ``fmt`` selects the interchange format whose :data:`CLASS_PARAMS` entry
    sizes the distributions (default decimal64 — the paper's evaluation and
    the pinned legacy stream).  Same seed + same format ⇒ same vectors on
    every host and in every worker process.
    """

    def __init__(self, seed: int = 2018, fmt: str = "decimal64") -> None:
        self.seed = seed
        self.fmt = resolve_format_name(fmt)
        self._params = CLASS_PARAMS[self.fmt]
        self._rng = random.Random(seed)
        self._underflow_toggle = False

    # ------------------------------------------------------------ class mixes
    def generate(self, operand_class: str, count: int,
                 operation: str = "multiply") -> list:
        """Generate ``count`` vectors of a single class.

        ``operation`` sizes the operand tuple: ternary operations draw an
        extra fma addend per vector (binary operations consume exactly the
        pre-operation-axis rng stream, so multiply vectors stay pinned).
        """
        generator = self._generators().get(operand_class)
        if generator is None:
            raise ConfigurationError(f"unknown operand class: {operand_class!r}")
        ternary = self._is_ternary(operation)
        vectors = []
        for index in range(count):
            x, y = generator()
            z = self._fma_addend(x, y, index) if ternary else None
            vectors.append(
                VerificationVector(
                    x=x, y=y, operand_class=operand_class, index=index, z=z
                )
            )
        return vectors

    def generate_mix(self, count: int, classes=OperandClass.TABLE_IV_MIX,
                     operation: str = "multiply") -> list:
        """Generate ``count`` vectors cycling uniformly through ``classes``."""
        generators = self._generators()
        for name in classes:
            if name not in generators:
                raise ConfigurationError(f"unknown operand class: {name!r}")
        ternary = self._is_ternary(operation)
        vectors = []
        for index in range(count):
            name = classes[index % len(classes)]
            x, y = generators[name]()
            z = self._fma_addend(x, y, index) if ternary else None
            vectors.append(
                VerificationVector(
                    x=x, y=y, operand_class=name, index=index, z=z
                )
            )
        return vectors

    @staticmethod
    def _is_ternary(operation: str) -> bool:
        from repro.decnumber.operations import get_operation

        return get_operation(operation).arity == 3

    def _fma_addend(self, x: DecNumber, y: DecNumber, index: int) -> DecNumber:
        """The fma addend for pair ``(x, y)``, cycling the triple strategies."""
        params = self._params
        rng = self._rng
        precision = params["precision"]
        strategy = FMA_ADDEND_STRATEGIES[index % len(FMA_ADDEND_STRATEGIES)]
        if strategy == "zero":
            return DecNumber(
                rng.randint(0, 1), 0, rng.randint(*params["zero_exponent"])
            )
        finite_pair = (
            x.is_finite and y.is_finite and x.coefficient and y.coefficient
        )
        if strategy == "normal" or not finite_pair:
            return self._finite((1, precision), params["normal_exponent"])
        product_coefficient = x.coefficient * y.coefficient
        product_exponent = x.exponent + y.exponent
        low, high = params["zero_exponent"]        # the [etiny, etop] envelope
        if strategy == "cancellation":
            # Negate the product, truncated to format precision so the
            # addend stays encodable: the leading digits cancel exactly,
            # exercising the effective-subtract renormalisation path.  The
            # truncated quantum must stay inside [etiny, etop] — operands
            # below etiny do not round-trip through the interchange
            # encoding bit-exactly (drop more digits), and ones above etop
            # cannot be represented at all (fall back to a plain addend).
            digits = len(str(product_coefficient))
            drop = max(0, digits - precision, low - product_exponent)
            if drop >= digits or product_exponent + drop > high:
                return self._finite((1, precision), params["normal_exponent"])
            return DecNumber(
                1 - (x.sign ^ y.sign),
                product_coefficient // (10 ** drop),
                product_exponent + drop,
            )
        adjusted = product_exponent + len(str(product_coefficient)) - 1
        if strategy == "z_dominant":
            exponent = adjusted + rng.randint(precision + 2, 2 * precision)
        else:  # product_dominant
            exponent = adjusted - rng.randint(precision + 2, 2 * precision)
        exponent = max(low, min(exponent, high))
        return self._finite((1, precision), (exponent, exponent))

    # -------------------------------------------------------------- generators
    def _generators(self) -> dict:
        return {
            OperandClass.NORMAL: self._normal,
            OperandClass.ROUNDING: self._rounding,
            OperandClass.OVERFLOW: self._overflow,
            OperandClass.UNDERFLOW: self._underflow,
            OperandClass.CLAMPING: self._clamping,
            OperandClass.SPECIAL: self._special,
            OperandClass.ZERO: self._zero,
            OperandClass.EXACT: self._exact,
        }

    def _finite(self, coeff_digits, exponent_range) -> DecNumber:
        rng = self._rng
        digits = rng.randint(*coeff_digits)
        low = 10 ** (digits - 1) if digits > 1 else 0
        coefficient = rng.randint(max(low, 1), 10 ** digits - 1)
        exponent = rng.randint(*exponent_range)
        return DecNumber(rng.randint(0, 1), coefficient, exponent)

    def _normal(self) -> tuple:
        params = self._params
        return (
            self._finite((1, params["precision"]), params["normal_exponent"]),
            self._finite((1, params["precision"]), params["normal_exponent"]),
        )

    def _rounding(self) -> tuple:
        # Full-precision coefficients: the product has ~2x precision digits
        # and is almost always inexact, exercising the rounding path.
        params = self._params
        return (
            self._finite(params["rounding_digits"], params["rounding_exponent"]),
            self._finite(params["rounding_digits"], params["rounding_exponent"]),
        )

    def _overflow(self) -> tuple:
        params = self._params
        return (
            self._finite(params["overflow_digits"], params["overflow_exponent"]),
            self._finite(params["overflow_digits"], params["overflow_exponent"]),
        )

    def _underflow(self) -> tuple:
        # Alternate between products that stay *subnormal* (nonzero, adjusted
        # exponent between etiny and emin) and products that underflow all the
        # way to zero, so both conditions are always exercised.
        params = self._params
        precision = params["precision"]
        self._underflow_toggle = not self._underflow_toggle
        if self._underflow_toggle:
            return (
                self._finite(
                    (precision, precision),
                    params["underflow_subnormal_exponent"],
                ),
                self._finite(
                    (precision, precision),
                    params["underflow_subnormal_exponent"],
                ),
            )
        return (
            self._finite(
                params["underflow_zero_digits"], params["underflow_zero_exponent"]
            ),
            self._finite(
                params["underflow_zero_digits"], params["underflow_zero_exponent"]
            ),
        )

    def _clamping(self) -> tuple:
        # Few significant digits with large exponents: the preferred exponent
        # of the product exceeds etop while the adjusted exponent stays below
        # emax, forcing the fold-down clamp rather than overflow.
        params = self._params
        rng = self._rng
        target_exponent = rng.randint(*params["clamping_target_exponent"])
        x_exponent = rng.randint(*params["clamping_x_exponent"])
        return (
            self._finite((1, 2), (x_exponent, x_exponent)),
            self._finite((1, 2), (target_exponent - x_exponent, target_exponent - x_exponent)),
        )

    def _zero(self) -> tuple:
        params = self._params
        rng = self._rng
        zero = DecNumber(rng.randint(0, 1), 0, rng.randint(*params["zero_exponent"]))
        other = self._finite(
            (1, params["precision"]), params["special_finite_exponent"]
        )
        return (zero, other) if rng.random() < 0.5 else (other, zero)

    def _exact(self) -> tuple:
        # Coefficients small enough that their product stays within the
        # format's precision: exact result.
        params = self._params
        return (
            self._finite(params["exact_digits"], params["exact_exponent"]),
            self._finite(params["exact_digits"], params["exact_exponent"]),
        )

    def _special(self) -> tuple:
        params = self._params
        rng = self._rng
        specials = [
            DecNumber.infinity(0),
            DecNumber.infinity(1),
            DecNumber.qnan(rng.randint(*params["special_payload"])),
            DecNumber.snan(rng.randint(*params["special_payload"])),
            DecNumber(rng.randint(0, 1), 0, 0),
        ]
        x = rng.choice(specials)
        y = (
            rng.choice(specials)
            if rng.random() < 0.4
            else self._finite(
                (1, params["precision"]), params["special_finite_exponent"]
            )
        )
        if rng.random() < 0.5:
            x, y = y, x
        return x, y
