"""Coverage bookkeeping over operand classes and result conditions.

The verification database draws vectors by class, but what actually matters
is which *result conditions* (inexact, overflow, underflow, subnormal,
clamped, special) the simulated kernels were exercised with.  The tracker
records both, so the test suite can assert that an evaluation really covered
the cases the paper lists.
"""

from __future__ import annotations

from collections import Counter

from repro.verification.reference import GoldenReference


class CoverageTracker:
    """Counts operand classes and golden-result conditions seen so far."""

    CONDITIONS = (
        "exact",
        "inexact",
        "rounded",
        "overflow",
        "underflow",
        "subnormal",
        "clamped",
        "invalid",
        "result_nan",
        "result_infinity",
        "result_zero",
    )

    def __init__(self, reference: GoldenReference = None) -> None:
        self.reference = reference if reference is not None else GoldenReference()
        self.class_counts = Counter()
        self.condition_counts = Counter()
        self.total = 0

    def record(self, vector) -> frozenset:
        """Record one vector; returns the set of conditions it produced."""
        operands = getattr(vector, "operands", (vector.x, vector.y))
        golden = self.reference.compute(*operands)
        conditions = set(golden.flags)
        if not golden.flags & {"inexact"}:
            conditions.add("exact")
        if golden.value.is_nan:
            conditions.add("result_nan")
        if golden.value.is_infinite:
            conditions.add("result_infinity")
        if golden.value.is_zero:
            conditions.add("result_zero")
        self.class_counts[vector.operand_class] += 1
        for condition in conditions:
            self.condition_counts[condition] += 1
        self.total += 1
        return frozenset(conditions)

    def record_all(self, vectors) -> None:
        for vector in vectors:
            self.record(vector)

    def covered_conditions(self) -> frozenset:
        return frozenset(name for name, count in self.condition_counts.items() if count)

    def missing_conditions(self, required) -> frozenset:
        return frozenset(required) - self.covered_conditions()

    def summary(self) -> str:
        lines = [f"vectors: {self.total}"]
        lines.append("classes:")
        for name, count in sorted(self.class_counts.items()):
            lines.append(f"  {name:<12s} {count}")
        lines.append("conditions:")
        for name in self.CONDITIONS:
            lines.append(f"  {name:<16s} {self.condition_counts.get(name, 0)}")
        return "\n".join(lines)
