"""Compare kernel results read back from simulated memory with the golden reference."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decnumber.number import DecNumber
from repro.errors import VerificationError
from repro.verification.reference import GoldenReference


def render_application(operation: str, *operands) -> str:
    """``x * y`` / ``fma(x, y, z)`` — the one place failure text renders ops."""
    from repro.decnumber.operations import get_operation

    return get_operation(operation).render(*operands)


@dataclass(frozen=True)
class CheckFailure:
    """One mismatching sample."""

    index: int
    operand_class: str
    x: DecNumber
    y: DecNumber
    expected: DecNumber
    actual: DecNumber
    expected_bits: int
    actual_bits: int
    z: DecNumber = None
    operation: str = "multiply"

    @property
    def operands(self) -> tuple:
        return (self.x, self.y) if self.z is None else (self.x, self.y, self.z)

    def describe(self) -> str:
        return (
            f"sample {self.index} [{self.operand_class}]: "
            f"{render_application(self.operation, *self.operands)} -> "
            f"expected {self.expected} "
            f"(0x{self.expected_bits:016x}), got {self.actual} "
            f"(0x{self.actual_bits:016x})"
        )


@dataclass
class CheckReport:
    """Outcome of checking a whole run."""

    total: int = 0
    passed: int = 0
    failures: list = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def all_passed(self) -> bool:
        return self.failed == 0 and self.total > 0

    def raise_on_failure(self, max_reported: int = 5) -> None:
        if self.failed:
            detail = "\n".join(
                failure.describe() for failure in self.failures[:max_reported]
            )
            raise VerificationError(
                f"{self.failed}/{self.total} samples mismatched:\n{detail}"
            )


class ResultChecker:
    """Checks per-sample results of a simulated kernel run."""

    def __init__(self, reference: GoldenReference = None) -> None:
        self.reference = reference if reference is not None else GoldenReference()

    @staticmethod
    def results_match(expected: DecNumber, actual: DecNumber) -> bool:
        """IEEE-level equality: NaNs match NaNs (payload ignored), everything
        else must match in kind, sign, coefficient and exponent."""
        if expected.is_nan:
            return actual.is_nan
        if expected.is_infinite:
            return actual.is_infinite and actual.sign == expected.sign
        return (
            actual.is_finite
            and actual.sign == expected.sign
            and actual.coefficient == expected.coefficient
            and actual.exponent == expected.exponent
        )

    def _new_report(self) -> CheckReport:
        """The report type a run fills in (subclasses may extend it)."""
        return CheckReport()

    def _cross_check(self, report, vector, golden) -> None:
        """Hook: extra per-vector validation of the reference itself.

        Called with the primary golden result before the kernel comparison;
        the base checker trusts its single reference and does nothing.
        """

    def check_run(self, vectors, result_words) -> CheckReport:
        """Check one simulated run.

        ``vectors`` is the list of :class:`VerificationVector` the program was
        built from; ``result_words`` the interchange words the kernel stored,
        in the same order.
        """
        report = self._new_report()
        for vector, word in zip(vectors, result_words):
            report.total += 1
            golden = self.reference.compute(*vector.operands)
            self._cross_check(report, vector, golden)
            actual = self.reference.decode(word)
            if self.results_match(golden.value, actual):
                report.passed += 1
            else:
                report.failures.append(
                    CheckFailure(
                        index=vector.index,
                        operand_class=vector.operand_class,
                        x=vector.x,
                        y=vector.y,
                        z=getattr(vector, "z", None),
                        operation=self.reference.operation,
                        expected=golden.value,
                        actual=actual,
                        expected_bits=golden.encoded,
                        actual_bits=word,
                    )
                )
        return report
