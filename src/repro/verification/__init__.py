"""Verification layer: operand database, golden reference, result checking.

Plays the role of the "Test and verification Database" box of Fig. 2 (the
paper uses the constraint-based decimal verification vectors of reference
[18]): a seeded, constrained-random generator produces operand pairs in the
paper's input classes (normal / rounding / overflow / underflow / clamping /
special values), the golden reference computes the expected IEEE 754-2008
results with :mod:`repro.decnumber`, and the checker compares what a simulated
kernel wrote back to memory against those expectations.
"""

from repro.verification.database import OperandClass, VerificationDatabase, VerificationVector
from repro.verification.reference import GoldenReference
from repro.verification.checker import CheckFailure, CheckReport, ResultChecker
from repro.verification.coverage import CoverageTracker
from repro.verification.differential import (
    CoSimulator,
    Divergence,
    DivergenceReport,
    DualCheckReport,
    DualOracleChecker,
    OracleDisagreement,
    StdlibDecimalReference,
    dual_checker_for_workload,
)

__all__ = [
    "OperandClass",
    "VerificationDatabase",
    "VerificationVector",
    "GoldenReference",
    "CheckFailure",
    "CheckReport",
    "ResultChecker",
    "CoverageTracker",
    "CoSimulator",
    "Divergence",
    "DivergenceReport",
    "DualCheckReport",
    "DualOracleChecker",
    "OracleDisagreement",
    "StdlibDecimalReference",
    "dual_checker_for_workload",
]
