"""Cross-model differential verification: co-simulation + dual oracles.

The paper's measurement story rests on three independent execution paths —
Spike-style functional simulation, the Rocket-like cycle-accurate emulator,
and the gem5 SE-mode atomic model — but trusting them individually is not the
same as proving they agree.  This module closes that gap from two directions:

* the :class:`CoSimulator` runs *the same linked test program* on every model,
  reads each model's architectural result buffer back, and diffs them
  vector-by-vector into a structured :class:`DivergenceReport` that pinpoints
  the first diverging vector and its operand class (plus the Rocket/gem5
  cycle numbers of the run, so gross timing-model breakage is visible too);
* the :class:`DualOracleChecker` extends the plain
  :class:`~repro.verification.checker.ResultChecker` so every expected value
  is computed **twice** — once by our :mod:`repro.decnumber` port and once by
  Python's independently implemented stdlib :mod:`decimal` module, quantized
  to the decimal64 format.  A kernel mismatch is still a
  :class:`~repro.verification.checker.CheckFailure`; the two oracles
  disagreeing with *each other* is reported as its own failure class
  (:class:`OracleDisagreement`), because it means the reference itself —
  not the kernel — is suspect.

Both pieces are what the fuzz engine (:mod:`repro.fuzz`) drives in bulk, and
what ``python -m repro.campaign --differential`` shards over worker
processes.
"""

from __future__ import annotations

import decimal as _pydecimal

from dataclasses import dataclass, field

from repro.decnumber import decimal64
from repro.decnumber.number import DecNumber
from repro.errors import ConfigurationError
from repro.verification.checker import CheckReport, ResultChecker
from repro.verification.reference import GoldenReference, GoldenResult

#: Simulation models the co-simulator knows how to drive, in reference order:
#: the first available model's results are what the oracle check judges.
MODELS = ("spike", "rocket", "gem5")

#: stdlib ``decimal`` signal classes -> our flag names.
_PYTHON_SIGNALS = {
    "inexact": _pydecimal.Inexact,
    "rounded": _pydecimal.Rounded,
    "overflow": _pydecimal.Overflow,
    "underflow": _pydecimal.Underflow,
    "subnormal": _pydecimal.Subnormal,
    "clamped": _pydecimal.Clamped,
    "invalid": _pydecimal.InvalidOperation,
    "division_by_zero": _pydecimal.DivisionByZero,
}


# --------------------------------------------------------------------- oracles
class StdlibDecimalReference:
    """Independent golden oracle built on Python's stdlib :mod:`decimal`.

    The stdlib module implements the same General Decimal Arithmetic
    specification as decNumber but shares no code with our port, which makes
    it a genuinely independent second opinion.  Results are computed under
    the context matching ``precision`` — the decimal64 context (16 digits,
    emax 384, clamp) or the decimal128 one (34 digits, emax 6144) — and
    re-encoded through the same interchange encoder the primary reference
    uses, so the two oracles are compared bit-for-bit.  ``precision``
    accepts "double"/"quad" or the canonical format names.
    """

    def __init__(self, operation: str = "multiply", precision: str = "double") -> None:
        # Reuse the primary reference for operation/precision validation and
        # for the interchange encode/decode plumbing.
        self._golden = GoldenReference(operation=operation, precision=precision)
        self.operation = operation
        self.precision = precision

    def context(self):
        """The equivalent stdlib :class:`decimal.Context` (fresh flags)."""
        return self._golden.context().to_python_context()

    def compute(self, *operands: DecNumber) -> GoldenResult:
        """Expected result of op(operands) per the stdlib decimal oracle.

        The canonical operation names double as :class:`decimal.Context`
        method names (``multiply``/``add``/``subtract``/``fma``), so the
        dispatch is a plain ``getattr`` for binary and ternary ops alike.
        """
        ctx = self.context()
        operation = getattr(ctx, self.operation)
        value = DecNumber.from_decimal(
            operation(*(operand.to_decimal() for operand in operands))
        )
        flags = frozenset(
            name
            for name, signal in _PYTHON_SIGNALS.items()
            if ctx.flags.get(signal)
        )
        encoded = self._golden.encode_operand(value)
        return GoldenResult(value=value, encoded=encoded, flags=flags)

    def encode_operand(self, value: DecNumber) -> int:
        return self._golden.encode_operand(value)

    def decode(self, word: int) -> DecNumber:
        return self._golden.decode(word)


@dataclass(frozen=True)
class OracleDisagreement:
    """The two reference oracles produced different expected values.

    Distinct from :class:`~repro.verification.checker.CheckFailure`: the
    kernel may well match one of the oracles — the point is that the golden
    *references* cannot both be right, so the sample proves a reference bug
    (or a genuine specification ambiguity) rather than a kernel bug.
    """

    index: int
    operand_class: str
    x: DecNumber
    y: DecNumber
    primary: DecNumber
    secondary: DecNumber
    primary_bits: int
    secondary_bits: int
    z: DecNumber = None
    operation: str = "multiply"

    @property
    def operands(self) -> tuple:
        return (self.x, self.y) if self.z is None else (self.x, self.y, self.z)

    def describe(self) -> str:
        from repro.verification.checker import render_application

        return (
            f"sample {self.index} [{self.operand_class}]: oracles disagree on "
            f"{render_application(self.operation, *self.operands)} -> "
            f"decnumber {self.primary} "
            f"(0x{self.primary_bits:016x}) vs stdlib-decimal {self.secondary} "
            f"(0x{self.secondary_bits:016x})"
        )


@dataclass
class DualCheckReport(CheckReport):
    """A :class:`CheckReport` that also tracks oracle disagreements."""

    oracle_disagreements: list = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return super().all_passed and not self.oracle_disagreements

    def raise_on_failure(self, max_reported: int = 5) -> None:
        if self.oracle_disagreements:
            from repro.errors import VerificationError

            detail = "\n".join(
                item.describe()
                for item in self.oracle_disagreements[:max_reported]
            )
            raise VerificationError(
                f"{len(self.oracle_disagreements)}/{self.total} samples with "
                f"oracle disagreement:\n{detail}"
            )
        super().raise_on_failure(max_reported)


class DualOracleChecker(ResultChecker):
    """Checks kernel results against two independently computed references.

    Every expected value is computed by the ``primary`` reference (the
    decNumber port — or a workload's custom oracle) *and* the ``secondary``
    stdlib-decimal reference.  Kernel-vs-primary mismatches are recorded as
    ordinary :class:`CheckFailure`; primary-vs-secondary mismatches become
    :class:`OracleDisagreement` entries, a separate failure class that fails
    the run on its own.  ``fmt`` selects the interchange format both
    default oracles compute under.
    """

    def __init__(self, primary=None, secondary=None, fmt: str = "decimal64",
                 operation: str = "multiply") -> None:
        super().__init__(
            primary
            if primary is not None
            else GoldenReference(operation=operation, precision=fmt)
        )
        self.secondary = (
            secondary
            if secondary is not None
            else StdlibDecimalReference(operation=operation, precision=fmt)
        )

    def _new_report(self) -> DualCheckReport:
        return DualCheckReport()

    def _cross_check(self, report, vector, golden) -> None:
        second = self.secondary.compute(*vector.operands)
        if golden.encoded != second.encoded:
            report.oracle_disagreements.append(
                OracleDisagreement(
                    index=vector.index,
                    operand_class=vector.operand_class,
                    x=vector.x,
                    y=vector.y,
                    z=getattr(vector, "z", None),
                    operation=self.secondary.operation,
                    primary=golden.value,
                    secondary=second.value,
                    primary_bits=golden.encoded,
                    secondary_bits=second.encoded,
                )
            )


def dual_checker_for_workload(workload: str = None, fmt: str = "decimal64",
                              operation: str = "multiply") -> ResultChecker:
    """The differential-mode checker for a (possibly workload-scoped) run.

    Mirrors :func:`repro.core.evaluation.checker_for_workload`: a resolvable
    workload name contributes its own :meth:`~repro.workloads.Workload.
    expected` oracle (falling back to the golden library for unknown names
    in spawn-started workers).  The stdlib-decimal cross-check only makes
    sense against the golden-default oracle, so a workload that *overrides*
    ``expected()`` — a domain-specific notion of correctness the stdlib
    module cannot second-guess — keeps its own single-oracle checker
    instead of drowning in spurious disagreements.
    """
    if workload is not None:
        from repro.workloads import Workload, get_workload

        try:
            resolved = get_workload(workload)
        except ConfigurationError:
            resolved = None
        if resolved is not None:
            if type(resolved).expected is not Workload.expected:
                return resolved.make_checker(fmt, operation)
            return DualOracleChecker(
                primary=resolved.make_checker(fmt, operation).reference,
                fmt=fmt,
                operation=operation,
            )
    return DualOracleChecker(fmt=fmt, operation=operation)


# ---------------------------------------------------------------- co-simulation
@dataclass(frozen=True)
class ModelRun:
    """One model's architectural outcome over a test program."""

    model: str
    result_words: tuple
    exit_code: int
    instructions_retired: int
    #: Total simulated cycles/ticks (None for the untimed functional model).
    cycles: int = None
    #: Per-vector RDCYCLE deltas as the program measured them (Rocket only).
    cycle_samples: tuple = None


@dataclass(frozen=True)
class Divergence:
    """One vector on which the models' architectural results differ."""

    index: int
    operand_class: str
    x: DecNumber
    y: DecNumber
    words: dict          # model name -> result word
    values: dict         # model name -> decoded DecNumber
    z: DecNumber = None
    operation: str = "multiply"

    def disagreeing_models(self) -> tuple:
        """Models whose word differs from the (majority) reference word."""
        counts = {}
        for word in self.words.values():
            counts[word] = counts.get(word, 0) + 1
        reference = max(counts, key=lambda word: (counts[word], -word))
        return tuple(
            sorted(model for model, word in self.words.items() if word != reference)
        )

    def describe(self) -> str:
        from repro.verification.checker import render_application

        operands = (self.x, self.y) if self.z is None else (self.x, self.y, self.z)
        per_model = ", ".join(
            f"{model}={self.values[model]} (0x{self.words[model]:016x})"
            for model in sorted(self.words)
        )
        return (
            f"vector {self.index} [{self.operand_class}]: "
            f"{render_application(self.operation, *operands)} -> {per_model}"
        )


def diff_result_words(vectors, words_by_model, decode=None,
                      operation: str = "multiply") -> list:
    """Vector-by-vector cross-model diff of architectural result words.

    ``words_by_model`` maps each model name to its full result-word list
    (aligned with ``vectors``).  Returns one :class:`Divergence` per vector
    on which any two models disagree — the single diff implementation both
    :meth:`CoSimulator.diff_program` and the campaign engine's differential
    shards use, so they can never drift apart.
    """
    if decode is None:
        decode = decimal64.decode
    divergences = []
    for position, vector in enumerate(vectors):
        words = {
            model: model_words[position]
            for model, model_words in words_by_model.items()
        }
        if len(set(words.values())) > 1:
            divergences.append(
                Divergence(
                    index=vector.index,
                    operand_class=vector.operand_class,
                    x=vector.x,
                    y=vector.y,
                    z=getattr(vector, "z", None),
                    operation=operation,
                    words=words,
                    values={
                        model: decode(word) for model, word in words.items()
                    },
                )
            )
    return divergences


@dataclass
class DivergenceReport:
    """Outcome of co-simulating one vector set across several models."""

    solution_kind: str
    models: tuple
    total: int
    divergences: list = field(default_factory=list)
    runs: dict = field(default_factory=dict)       # model -> ModelRun
    check_report: object = None                    # DualCheckReport or None
    workload: str = None
    fmt: str = "decimal64"
    operation: str = "multiply"

    @property
    def all_agree(self) -> bool:
        return not self.divergences

    @property
    def first_divergence(self):
        return self.divergences[0] if self.divergences else None

    @property
    def oracle_disagreements(self) -> list:
        if self.check_report is None:
            return []
        return list(getattr(self.check_report, "oracle_disagreements", []))

    @property
    def check_failures(self) -> list:
        if self.check_report is None:
            return []
        return list(self.check_report.failures)

    @property
    def failed(self) -> bool:
        """Any divergence, kernel/oracle check failure, or oracle split."""
        return bool(
            self.divergences or self.check_failures or self.oracle_disagreements
        )

    def cycle_summary(self) -> dict:
        """Per-model total cycles (models without a timing model omitted)."""
        return {
            model: run.cycles
            for model, run in self.runs.items()
            if run.cycles is not None
        }

    def describe(self, max_reported: int = 5) -> str:
        lines = [
            f"differential: {self.total} vectors x {len(self.models)} models "
            f"({', '.join(self.models)}), solution {self.solution_kind}"
            + (f", operation {self.operation}" if self.operation != "multiply" else "")
            + (f", format {self.fmt}" if self.fmt != "decimal64" else "")
            + (f", workload {self.workload}" if self.workload else "")
        ]
        cycles = self.cycle_summary()
        if cycles:
            lines.append(
                "cycles: "
                + ", ".join(f"{model}={count}" for model, count in sorted(cycles.items()))
            )
        if self.all_agree:
            lines.append("all models agree")
        else:
            lines.append(f"{len(self.divergences)} diverging vector(s):")
            lines.extend(
                "  " + divergence.describe()
                for divergence in self.divergences[:max_reported]
            )
        for item in self.oracle_disagreements[:max_reported]:
            lines.append("  " + item.describe())
        for item in self.check_failures[:max_reported]:
            lines.append("  " + item.describe())
        return "\n".join(lines)


class CoSimulator:
    """Runs one test program on several simulation models and diffs them.

    ``solution`` may be a :class:`~repro.core.solution.CoDesignSolution` or a
    :class:`~repro.testgen.config.SolutionKind` string (resolved through
    :func:`~repro.core.solution.standard_solutions`).  Every model gets its
    own fresh accelerator instance, so no architectural state leaks between
    models.  Functional results are oracle-checked (dual-oracle by default)
    against the first model in ``models`` — the reference model — whenever
    the solution is verifiable.
    """

    def __init__(
        self,
        solution=None,
        models=MODELS,
        rocket_config=None,
        gem5_config=None,
        checker=None,
        workload: str = None,
        verify: bool = True,
        fmt: str = "decimal64",
        operation: str = "multiply",
    ) -> None:
        from repro.core.solution import standard_solutions
        from repro.decnumber.formats import resolve_format_name
        from repro.decnumber.operations import resolve_operation_name
        from repro.testgen.config import SolutionKind

        if solution is None:
            solution = SolutionKind.METHOD1
        if isinstance(solution, str):
            solutions = standard_solutions()
            if solution not in solutions:
                raise ConfigurationError(
                    f"unknown solution kind {solution!r} "
                    f"(choose from {tuple(solutions)})"
                )
            solution = solutions[solution]
        self.solution = solution
        models = tuple(models)
        if not models:
            raise ConfigurationError("co-simulation needs at least one model")
        for model in models:
            if model not in MODELS:
                raise ConfigurationError(
                    f"unknown model {model!r} (choose from {MODELS})"
                )
        self.models = models
        self.rocket_config = rocket_config
        self.gem5_config = gem5_config
        self.workload = workload
        self.verify = verify
        self.fmt = resolve_format_name(fmt)
        self.operation = resolve_operation_name(operation)
        if checker is None and verify and solution.verifiable:
            checker = dual_checker_for_workload(workload, self.fmt, self.operation)
        self.checker = checker

    # ------------------------------------------------------------- model runs
    def run_model(self, model: str, program) -> ModelRun:
        """Run ``program`` on one model and capture its architectural output."""
        accelerator = self.solution.make_accelerator(self.fmt)
        if model == "spike":
            from repro.sim.spike import SpikeSimulator

            result = SpikeSimulator(program.image, accelerator=accelerator).run()
            cycles = None
            cycle_samples = None
        elif model == "rocket":
            from repro.rocket.config import RocketConfig
            from repro.rocket.core import RocketEmulator

            result = RocketEmulator(
                program.image,
                accelerator=accelerator,
                config=(
                    self.rocket_config
                    if self.rocket_config is not None
                    else RocketConfig()
                ),
            ).run()
            cycles = result.cycles
            cycle_samples = tuple(program.read_cycle_samples(result))
        elif model == "gem5":
            from repro.gem5.se_mode import Gem5Config, SyscallEmulationRunner

            runner = SyscallEmulationRunner(
                self.gem5_config if self.gem5_config is not None else Gem5Config()
            )
            result = runner.run_binary(program.image, accelerator=accelerator)
            cycles = result.ticks
            cycle_samples = None
        else:  # pragma: no cover - guarded in __init__
            raise ConfigurationError(f"unknown model {model!r}")
        return ModelRun(
            model=model,
            result_words=tuple(program.read_results(result)),
            exit_code=result.exit_code,
            instructions_retired=result.instructions_retired,
            cycles=cycles,
            cycle_samples=cycle_samples,
        )

    # ------------------------------------------------------------------ diffs
    def co_simulate(
        self, vectors, seed: int = 2018, repetitions: int = 1
    ) -> DivergenceReport:
        """Build one program over ``vectors``, run every model, diff results."""
        from repro.testgen.config import TestProgramConfig
        from repro.testgen.generator import build_test_program

        vectors = list(vectors)
        config = TestProgramConfig(
            solution=self.solution.kind,
            precision=TestProgramConfig.precision_for_format(self.fmt),
            operation=self.operation,
            num_samples=len(vectors),
            repetitions=repetitions,
            seed=seed,
            workload=self.workload,
        )
        program = build_test_program(config, vectors=vectors)
        return self.diff_program(program)

    def diff_program(self, program) -> DivergenceReport:
        """Run an already-built program on every model and diff the results."""
        runs = {model: self.run_model(model, program) for model in self.models}
        report = DivergenceReport(
            solution_kind=self.solution.kind,
            models=self.models,
            total=program.num_samples,
            runs=runs,
            workload=self.workload,
            fmt=self.fmt,
            operation=self.operation,
        )
        report.divergences = diff_result_words(
            program.vectors,
            {model: run.result_words for model, run in runs.items()},
            decode=GoldenReference(precision=self.fmt).decode,
            operation=self.operation,
        )
        if self.checker is not None and self.verify and self.solution.verifiable:
            reference_model = self.models[0]
            report.check_report = self.checker.check_run(
                program.vectors, list(runs[reference_model].result_words)
            )
        return report
