"""Minimal stdlib HTTP client for the campaign service.

Used by the CI smoke runner (``python -m repro.serve --smoke``), the
``benchmarks/bench_campaign.py --service`` mode and the tests — anything
that needs to drive a live server without adding a dependency.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """A non-2xx response from the campaign service."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


def request_json(url: str, body: dict = None, timeout: float = 30):
    """``(status, payload)`` of one JSON request (POST when ``body`` given)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        try:
            payload = json.loads(error.read().decode())
        except (ValueError, OSError):
            payload = {"error": str(error)}
        return error.code, payload


def get_json(url: str, timeout: float = 30) -> dict:
    status, payload = request_json(url, timeout=timeout)
    if status >= 400:
        raise ServiceError(status, payload)
    return payload


def submit(base_url: str, spec: dict, timeout: float = 30) -> dict:
    """POST a campaign spec; returns the ``202`` submit payload."""
    status, payload = request_json(f"{base_url}/submit", spec, timeout=timeout)
    if status != 202:
        raise ServiceError(status, payload)
    return payload


def wait_for_result(base_url: str, job_id: str, poll_seconds: float = 0.05,
                    timeout: float = 600) -> dict:
    """Poll ``/status`` until the job finishes, then fetch ``/result``."""
    deadline = time.monotonic() + timeout
    while True:
        status = get_json(f"{base_url}/status/{job_id}")
        if status["status"] in ("done", "failed"):
            break
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} still {status['status']!r} "
                               f"after {timeout}s")
        time.sleep(poll_seconds)
    result_status, payload = request_json(f"{base_url}/result/{job_id}")
    if result_status != 200:
        raise ServiceError(result_status, payload)
    return payload


def submit_and_wait(base_url: str, spec: dict, poll_seconds: float = 0.05,
                    timeout: float = 600) -> dict:
    """Submit + wait; returns the ``/result`` payload (summary + cache info)."""
    ticket = submit(base_url, spec)
    return wait_for_result(base_url, ticket["job"], poll_seconds, timeout)


def stream_events(base_url: str, job_id: str, timeout: float = 600) -> list:
    """All NDJSON progress events of one job (blocks until it finishes)."""
    events = []
    with urllib.request.urlopen(
        f"{base_url}/stream/{job_id}", timeout=timeout
    ) as response:
        for line in response:
            line = line.strip()
            if line:
                events.append(json.loads(line.decode()))
    return events
