"""Campaign-as-a-service: content-addressed result cache + async job engine.

The persistent-service layer of ROADMAP item 5 (see docs/service.md):

* :mod:`repro.service.cache` — :func:`cell_key` content-addresses one
  campaign cell (inputs + code fingerprint); :class:`ResultCache` persists
  its shard reports so repeated requests become dict lookups;
* :mod:`repro.service.engine` — :class:`CampaignService`, the asyncio job
  engine that satisfies cached cells immediately, coalesces concurrent
  duplicates, and fans novel shards onto a worker pool;
* :mod:`repro.service.server` — the stdlib HTTP endpoints behind
  ``python -m repro.serve``.
"""

from repro.service.cache import ResultCache, cell_key, cell_key_payload, code_version
from repro.service.engine import (
    CampaignService,
    cells_from_spec,
    comparable_summary,
)
from repro.service.server import (
    BackgroundServer,
    ServiceServer,
    serve_forever,
    serve_in_background,
)

__all__ = [
    "BackgroundServer",
    "CampaignService",
    "ResultCache",
    "ServiceServer",
    "cell_key",
    "cell_key_payload",
    "cells_from_spec",
    "code_version",
    "comparable_summary",
    "serve_forever",
    "serve_in_background",
]
