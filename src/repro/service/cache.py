"""Content-addressed result store for campaign cells.

A campaign cell's measurement is fully determined by its inputs: the seed,
the co-design solution (including the resolved accelerator datapath), the
workload or operand-class mix, the interchange format, the operation, the
sample/repetition counts, the Rocket timing configuration, the shard plan —
and the code that implements all of the above.  :func:`cell_key` hashes that
closure canonically; :class:`ResultCache` persists the cell's merged-input
:class:`~repro.core.results.ShardCycleReport` list under the key, so a
repeated request is a dict lookup instead of a simulation.

Key discipline (why this cache may be persisted while
:class:`repro.sim.batch.BatchRunner`'s in-process key may not):

* the BatchRunner key covers only the *program shape* because vectors are
  rebound on every hit — correct for a warm simulator, wrong for stored
  results;
* ``cell_key`` additionally covers everything that selects the vectors
  (seed, workload, operand classes) and everything that turns vectors into
  numbers (Rocket config, shard plan, verification/differential mode) plus
  :func:`code_version`, a fingerprint over every ``repro`` source file —
  editing any simulator/kernel/workload source invalidates the whole store.

The store layout is one JSON document per key under ``<dir>/<key[:2]>/``,
written atomically (temp file + ``os.replace``); corrupt or foreign entries
read as misses.  ``hits``/``misses``/``bypasses`` counters feed the service's
``/stats`` endpoint and ``BENCH_campaign.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile

from repro.core.results import shard_report_from_dict, shard_report_to_dict
from repro.errors import ConfigurationError

#: Bump when the persisted document layout changes (distinct from
#: :func:`code_version`, which tracks the *measuring* code).
SCHEMA_VERSION = 1

_CODE_VERSION = None


def code_version(root: str = None) -> str:
    """Fingerprint of every ``.py`` file under the ``repro`` package.

    The hex digest changes whenever any source file changes, so cached
    results can never outlive the code that produced them.  The default
    root's fingerprint is computed once per process.
    """
    global _CODE_VERSION
    if root is None:
        if _CODE_VERSION is not None:
            return _CODE_VERSION
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        _CODE_VERSION = _fingerprint_tree(root)
        return _CODE_VERSION
    return _fingerprint_tree(root)


def _fingerprint_tree(root: str) -> str:
    digest = hashlib.sha256()
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in filenames:
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                sources.append((os.path.relpath(path, root), path))
    for relpath, path in sorted(sources):
        digest.update(relpath.encode())
        digest.update(b"\0")
        with open(path, "rb") as handle:
            digest.update(handle.read())
        digest.update(b"\0")
    return digest.hexdigest()


def _jsonable(value):
    """Canonical JSON-ready form of a key component."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return value


def cell_key_payload(cell, shards_per_cell: int = 1, version: str = None) -> dict:
    """The canonical (pre-hash) key document of one campaign cell.

    Exposed separately so tests and operators can see exactly which fields
    participate in the content address (also documented in docs/service.md).
    ``operand_classes`` is recorded only when no workload is set — a
    workload fully replaces the class mix, so including the (ignored)
    classes would split identical measurements across keys.
    """
    from repro.core.campaign import plan_shards

    accelerator = cell.solution.resolve_accelerator_config(cell.fmt)
    return {
        "schema": SCHEMA_VERSION,
        "code_version": version if version is not None else code_version(),
        "seed": cell.seed,
        "num_samples": cell.num_samples,
        "repetitions": cell.repetitions,
        "solution": {
            "name": cell.solution.name,
            "kind": cell.solution.kind,
            "verifiable": cell.solution.verifiable,
            "accelerator": _jsonable(accelerator),
        },
        "workload": cell.workload,
        "operand_classes": (
            None if cell.workload is not None else list(cell.operand_classes)
        ),
        "fmt": cell.fmt,
        "op": cell.op,
        "verify_functionally": cell.verify_functionally,
        "differential": cell.differential,
        "rocket": _jsonable(cell.rocket_config),
        "shard_plan": [list(span) for span in
                       plan_shards(cell.num_samples, shards_per_cell)],
    }


def cell_key(cell, shards_per_cell: int = 1, version: str = None) -> str:
    """Content address (sha256 hex) of one campaign cell's measurement."""
    payload = cell_key_payload(cell, shards_per_cell, version)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Persistent key -> ``[ShardCycleReport, ...]`` store (see module docs)."""

    def __init__(self, path: str, version: str = None) -> None:
        if not path:
            raise ConfigurationError("ResultCache needs a directory path")
        self.path = os.path.abspath(path)
        os.makedirs(self.path, exist_ok=True)
        self.version = version if version is not None else code_version()
        #: Counters over this handle's lifetime (feed ``/stats`` + benchmarks).
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    # ------------------------------------------------------------------ keys
    def key_for(self, cell, shards_per_cell: int = 1) -> str:
        return cell_key(cell, shards_per_cell, self.version)

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.path, key[:2], f"{key}.json")

    # ----------------------------------------------------------------- store
    def load(self, key: str, count: bool = True):
        """The cached shard reports for ``key``, or ``None`` on a miss.

        Anything unreadable — missing, corrupt, written under a different
        schema or key — is a miss; the cache never raises on bad entries.
        """
        try:
            with open(self._entry_path(key)) as handle:
                document = json.load(handle)
            if document.get("schema") != SCHEMA_VERSION or document.get("key") != key:
                raise ValueError("foreign cache entry")
            shards = [
                shard_report_from_dict(data) for data in document["shards"]
            ]
        except (OSError, ValueError, TypeError, KeyError):
            if count:
                self.misses += 1
            return None
        if count:
            self.hits += 1
        return shards

    def store(self, key: str, shards, label: str = "") -> None:
        """Persist one cell's shard reports atomically under ``key``."""
        shards = sorted(shards, key=lambda s: (s.start, s.shard_index))
        document = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "code_version": self.version,
            "label": label,
            "shards": [shard_report_to_dict(shard) for shard in shards],
        }
        directory = os.path.dirname(self._entry_path(key))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle)
            os.replace(temp_path, self._entry_path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return os.path.exists(self._entry_path(key))

    def bypass(self, cells: int = 1) -> None:
        """Record cells that skipped the cache (per-request opt-out)."""
        self.bypasses += cells

    def __len__(self) -> int:
        count = 0
        for dirpath, _dirnames, filenames in os.walk(self.path):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        return {
            "path": self.path,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "hit_rate": round(self.hit_rate, 6),
            "code_version": self.version,
        }
