"""Stdlib-only HTTP front end for the campaign service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
third-party framework, matching the repository's no-new-dependencies rule.
Every response closes the connection, JSON in and out:

============================  =============================================
``GET  /healthz``             liveness + package version
``GET  /stats``               cache hit rate, jobs in flight, worker
                              utilization (:meth:`CampaignService.stats`)
``POST /submit``              campaign spec (docs/service.md) -> ``202``
                              with the job id
``GET  /status/<job>``        job snapshot (cells cached/coalesced/computed)
``GET  /result/<job>``        ``200`` with the merged campaign summary once
                              done, ``409`` while running, ``500`` if failed
``GET  /stream/<job>``        NDJSON progress events, one JSON object per
                              line, ending when the job finishes
============================  =============================================

:func:`serve_in_background` runs the whole stack (event loop, service,
server) on a daemon thread for tests, benchmarks and the CI smoke runner;
``python -m repro.serve`` runs it in the foreground.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.service.engine import DONE, FAILED, CampaignService

_MAX_BODY_BYTES = 4 * 1024 * 1024
_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceServer:
    """One listening socket wired to one :class:`CampaignService`."""

    def __init__(self, service: CampaignService, host: str = "127.0.0.1",
                 port: int = 8437) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.shutdown()

    # ------------------------------------------------------------- plumbing
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(writer, *request)
        except ConnectionError:
            pass
        except Exception as error:  # defensive: a handler bug must not kill the loop
            try:
                await _send_json(writer, 500, {
                    "error": f"{type(error).__name__}: {error}"
                })
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, AttributeError):
                pass

    async def _read_request(self, reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return None
        try:
            method, target, _protocol = request_line.split(" ", 2)
        except ValueError:
            return None
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            return method, target, headers, None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(self, writer, method, target, headers, body) -> None:
        if body is None:
            await _send_json(writer, 413, {"error": "request body too large"})
            return
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await _send_json(writer, 200, {
                "status": "ok", "version": __version__,
            })
        elif path == "/stats" and method == "GET":
            await _send_json(writer, 200, self.service.stats())
        elif path == "/submit":
            if method != "POST":
                await _send_json(writer, 405, {"error": "POST /submit"})
                return
            await self._submit(writer, body)
        elif path.startswith("/status/") and method == "GET":
            await self._with_job(writer, path[len("/status/"):], self._status)
        elif path.startswith("/result/") and method == "GET":
            await self._with_job(writer, path[len("/result/"):], self._result)
        elif path.startswith("/stream/") and method == "GET":
            await self._with_job(writer, path[len("/stream/"):], self._stream)
        else:
            await _send_json(writer, 404, {"error": f"no route for {method} {path}"})

    async def _with_job(self, writer, job_id, handler) -> None:
        try:
            job = self.service.job(job_id)
        except ConfigurationError as error:
            await _send_json(writer, 404, {"error": str(error)})
            return
        await handler(writer, job)

    # -------------------------------------------------------------- handlers
    async def _submit(self, writer, body: bytes) -> None:
        try:
            spec = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await _send_json(writer, 400, {"error": f"bad JSON body: {error}"})
            return
        try:
            job = await self.service.submit(spec)
        except ConfigurationError as error:
            await _send_json(writer, 400, {"error": str(error)})
            return
        await _send_json(writer, 202, {
            "job": job.job_id,
            "status": job.status,
            "cells": len(job.cells),
            "shards": job.shards_total,
            "status_url": f"/status/{job.job_id}",
            "result_url": f"/result/{job.job_id}",
            "stream_url": f"/stream/{job.job_id}",
        })

    async def _status(self, writer, job) -> None:
        await _send_json(writer, 200, job.to_status())

    async def _result(self, writer, job) -> None:
        if job.status == FAILED:
            await _send_json(writer, 500, {
                "job": job.job_id, "status": job.status, "error": job.error,
            })
        elif job.status != DONE:
            await _send_json(writer, 409, {
                "job": job.job_id, "status": job.status,
                "error": "job still running; poll /status or read /stream",
            })
        else:
            await _send_json(writer, 200, {
                "job": job.job_id,
                "status": job.status,
                "cache": {
                    "cells": len(job.cells),
                    "hits": job.cells_cached,
                    "coalesced": job.cells_coalesced,
                    "computed": job.cells_computed,
                },
                "wall_seconds": round(job.wall_seconds, 4),
                "summary": job.summary,
            })

    async def _stream(self, writer, job) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        async for event in self.service.events(job):
            writer.write(json.dumps(event).encode() + b"\n")
            await writer.drain()


async def _send_json(writer, status: int, payload: dict) -> None:
    body = json.dumps(payload, indent=2).encode() + b"\n"
    reason = _REASONS.get(status, "OK")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode()
    )
    writer.write(body)
    await writer.drain()


async def serve_forever(cache, host: str = "127.0.0.1", port: int = 8437,
                        workers: int = 1, shards_per_cell: int = 1,
                        mp_start_method: str = None, ready=None) -> None:
    """Run the service until cancelled (the ``python -m repro.serve`` core)."""
    service = CampaignService(
        cache, workers=workers, shards_per_cell=shards_per_cell,
        mp_start_method=mp_start_method,
    )
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    print(f"repro campaign service on http://{server.host}:{server.port} "
          f"(cache: {cache.path}, workers: {service.workers})", flush=True)
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()


class BackgroundServer:
    """The full service stack on a daemon thread (tests/benchmarks/smoke).

    Usage::

        with serve_in_background(cache, workers=2) as server:
            urllib.request.urlopen(server.base_url + "/healthz")
    """

    def __init__(self, cache, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 1, shards_per_cell: int = 1,
                 mp_start_method: str = None) -> None:
        self.cache = cache
        self.host = host
        self.port = port
        self.service = None
        self._loop = None
        self._server = None
        self._thread = None
        self._ready = threading.Event()
        self._stop_event = None
        self._startup_error = None
        self._kwargs = dict(
            workers=workers, shards_per_cell=shards_per_cell,
            mp_start_method=mp_start_method,
        )

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("campaign service failed to start within 30s")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main():
            self.service = CampaignService(self.cache, **self._kwargs)
            self._server = ServiceServer(self.service, self.host, self.port)
            await self._server.start()
            self.port = self._server.port
            self._stop_event = asyncio.Event()
            self._ready.set()
            await self._stop_event.wait()
            await self._server.stop()

        try:
            self._loop.run_until_complete(main())
        except Exception as error:
            self._startup_error = error
            self._ready.set()
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive() and self._stop_event is not None:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_background(cache, **kwargs) -> BackgroundServer:
    """Start :class:`BackgroundServer` and return it once it is listening."""
    return BackgroundServer(cache, **kwargs).start()
