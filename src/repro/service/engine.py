"""Asyncio campaign job engine: decompose, satisfy from cache, fan out, merge.

The engine is the service half of ROADMAP item 5.  A submitted campaign
spec is decomposed into :class:`~repro.core.campaign.CampaignCell`s; every
cell is content-addressed through :mod:`repro.service.cache`:

* **cached** cells are satisfied immediately from the store;
* **in-flight** cells (an identical cell already being computed for another
  job) coalesce onto the first job's future — concurrent duplicate
  submissions cost one computation;
* **novel** cells are sharded with the same
  :func:`~repro.core.campaign.plan_shards` plan as the CLI engine and
  scheduled onto a worker pool via ``loop.run_in_executor``, then stored.

All shard reports — cached, coalesced and fresh alike — merge through
:func:`repro.core.results.merge_shard_reports`, so a fully cache-hit job's
:meth:`~repro.core.campaign.CampaignResult.to_summary` is bit-identical to
the cold run's (modulo the request's own ``wall_seconds``; compare with
:func:`comparable_summary`).

Jobs expose a status snapshot and an append-only NDJSON-able event list that
:mod:`repro.service.server` streams; every mutation happens on the event
loop, so no locks are needed beyond the executor boundary.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.campaign import (
    CampaignResult,
    _run_shard_task,
    plan_shards,
    table_iv_cells,
    workload_cells,
)
from repro.core.results import merge_shard_reports
from repro.errors import ConfigurationError

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

_SPEC_FIELDS = frozenset({
    "samples", "seed", "repetitions", "kinds", "workload", "workloads",
    "fmt", "op", "classes", "verify", "differential", "shards_per_cell",
    "cache", "label",
})


def cells_from_spec(spec: dict) -> list:
    """Campaign cells for one submitted job spec.

    The spec is the JSON body of ``POST /submit`` (fields documented in
    docs/service.md); unknown fields are rejected so a typo cannot silently
    run a different campaign than the caller meant to key.
    """
    if not isinstance(spec, dict):
        raise ConfigurationError("campaign spec must be a JSON object")
    unknown = sorted(set(spec) - _SPEC_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown campaign spec field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_SPEC_FIELDS))})"
        )
    workloads = spec.get("workloads")
    if workloads is None and spec.get("workload") is not None:
        workloads = [spec["workload"]]
    if workloads is not None and not isinstance(workloads, (list, tuple)):
        raise ConfigurationError("'workloads' must be a list of workload names")
    common = dict(
        num_samples=int(spec.get("samples", 100)),
        kinds=tuple(spec["kinds"]) if spec.get("kinds") else None,
        repetitions=int(spec.get("repetitions", 1)),
        seed=int(spec.get("seed", 2018)),
        verify_functionally=bool(spec.get("verify", True)),
        differential=bool(spec.get("differential", False)),
        fmt=spec.get("fmt", "decimal64"),
        op=spec.get("op", "multiply"),
    )
    if workloads and len(workloads) > 1:
        if spec.get("classes") is not None:
            raise ConfigurationError(
                "'classes' and 'workloads' are mutually exclusive: a "
                "workload defines its own operand distribution"
            )
        return workload_cells(workloads, **common)
    if workloads:
        common["workload"] = workloads[0]
    elif spec.get("classes") is not None:
        common["operand_classes"] = tuple(spec["classes"])
    return table_iv_cells(**common)


def comparable_summary(summary: dict) -> dict:
    """``to_summary()`` minus the request's own wall clock.

    Everything else — including per-cell ``sim_wall_seconds``, which cached
    shards carry from the run that actually computed them — must be
    bit-identical between a cold run and a cache-hit rerun.
    """
    summary = dict(summary)
    summary.pop("wall_seconds", None)
    return summary


@dataclass
class Job:
    """One submitted campaign and everything observable about it."""

    job_id: str
    spec: dict
    cells: list
    shards_per_cell: int
    status: str = QUEUED
    error: str = ""
    result: CampaignResult = None
    summary: dict = None
    events: list = field(default_factory=list)
    cells_cached: int = 0
    cells_coalesced: int = 0
    cells_computed: int = 0
    shards_done: int = 0
    shards_total: int = 0
    wall_seconds: float = 0.0
    created_monotonic: float = field(default_factory=time.monotonic)
    _changed: object = None  # asyncio.Condition, created on the loop

    def to_status(self) -> dict:
        return {
            "job": self.job_id,
            "status": self.status,
            "label": self.spec.get("label", ""),
            "cells": len(self.cells),
            "cells_cached": self.cells_cached,
            "cells_coalesced": self.cells_coalesced,
            "cells_computed": self.cells_computed,
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "events": len(self.events),
            "error": self.error,
            "wall_seconds": round(self.wall_seconds, 4),
        }

    @property
    def finished(self) -> bool:
        return self.status in (DONE, FAILED)


class CampaignService:
    """Long-running engine behind ``python -m repro.serve`` (module docs)."""

    def __init__(self, cache, workers: int = 1, shards_per_cell: int = 1,
                 mp_start_method: str = None) -> None:
        if shards_per_cell < 1:
            raise ConfigurationError("shards_per_cell must be at least 1")
        self.cache = cache
        self.workers = max(1, int(workers or 1))
        self.shards_per_cell = shards_per_cell
        self.mp_start_method = mp_start_method
        self._jobs = {}
        self._inflight = {}          # cell key -> asyncio.Future([shards])
        self._executor = None
        self._ids = itertools.count(1)
        self._started_monotonic = time.monotonic()
        self._busy_seconds = 0.0
        self.shards_computed = 0

    # ------------------------------------------------------------- lifecycle
    def _ensure_executor(self):
        if self._executor is None:
            if self.workers <= 1:
                self._executor = ThreadPoolExecutor(max_workers=1)
            else:
                import multiprocessing

                context = (
                    multiprocessing.get_context(self.mp_start_method)
                    if self.mp_start_method
                    else multiprocessing.get_context()
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ----------------------------------------------------------------- jobs
    def job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ConfigurationError(f"unknown job {job_id!r}") from None

    @property
    def jobs(self) -> dict:
        return dict(self._jobs)

    @property
    def in_flight(self) -> int:
        return sum(1 for job in self._jobs.values() if not job.finished)

    def stats(self) -> dict:
        uptime = time.monotonic() - self._started_monotonic
        capacity = uptime * self.workers
        return {
            "workers": self.workers,
            "shards_per_cell": self.shards_per_cell,
            "uptime_seconds": round(uptime, 3),
            "jobs": {
                "total": len(self._jobs),
                "in_flight": self.in_flight,
                "done": sum(1 for j in self._jobs.values() if j.status == DONE),
                "failed": sum(1 for j in self._jobs.values() if j.status == FAILED),
            },
            "shards_computed": self.shards_computed,
            "busy_seconds": round(self._busy_seconds, 3),
            "worker_utilization": round(
                min(1.0, self._busy_seconds / capacity) if capacity else 0.0, 6
            ),
            "cache": self.cache.stats(),
        }

    async def submit(self, spec: dict) -> Job:
        """Validate ``spec``, register a job and start running it."""
        cells = cells_from_spec(spec)
        shards_per_cell = int(spec.get("shards_per_cell", self.shards_per_cell))
        job = Job(
            job_id=f"job-{next(self._ids)}",
            spec=dict(spec),
            cells=cells,
            shards_per_cell=shards_per_cell,
        )
        job.shards_total = sum(
            len(plan_shards(cell.num_samples, shards_per_cell)) for cell in cells
        )
        job._changed = asyncio.Condition()
        self._jobs[job.job_id] = job
        await self._emit(job, "submitted", cells=len(job.cells),
                         shards=job.shards_total)
        asyncio.ensure_future(self._run_job(job))
        return job

    async def wait(self, job: Job) -> Job:
        """Block until ``job`` finishes (used by tests and the smoke runner)."""
        async with job._changed:
            while not job.finished:
                await job._changed.wait()
        return job

    # ----------------------------------------------------------- event plumbing
    async def _emit(self, job: Job, event: str, **fields) -> None:
        record = {
            "event": event,
            "job": job.job_id,
            "seq": len(job.events),
            "t": round(time.monotonic() - job.created_monotonic, 4),
        }
        record.update(fields)
        job.events.append(record)
        async with job._changed:
            job._changed.notify_all()

    async def events(self, job: Job, from_seq: int = 0):
        """Async iterator over job events; ends when the job finishes."""
        index = from_seq
        while True:
            while index < len(job.events):
                yield job.events[index]
                index += 1
            if job.finished:
                return
            async with job._changed:
                if index >= len(job.events) and not job.finished:
                    await job._changed.wait()

    # -------------------------------------------------------------- execution
    async def _run_job(self, job: Job) -> None:
        job.status = RUNNING
        started = time.monotonic()
        try:
            use_cache = bool(job.spec.get("cache", True))
            if not use_cache:
                self.cache.bypass(len(job.cells))
            shard_sets = await asyncio.gather(*(
                self._cell_shards(job, cell_id, cell, use_cache)
                for cell_id, cell in enumerate(job.cells)
            ), return_exceptions=True)
            for shards in shard_sets:
                if isinstance(shards, BaseException):
                    raise shards
            reports = [
                merge_shard_reports(
                    solution_name=cell.solution.name,
                    solution_kind=cell.solution.kind,
                    shards=shards,
                    repetitions=cell.repetitions,
                )
                for cell, shards in zip(job.cells, shard_sets)
            ]
            job.wall_seconds = time.monotonic() - started
            planned = job.shards_total
            job.result = CampaignResult(
                cells=job.cells,
                reports=reports,
                workers=(
                    1 if self.workers <= 1 or planned == 1
                    else min(self.workers, planned)
                ),
                shards_per_cell=job.shards_per_cell,
                wall_seconds=job.wall_seconds,
                cache_hits=job.cells_cached,
                cache_misses=job.cells_computed + job.cells_coalesced,
            )
            job.summary = job.result.to_summary()
            job.status = DONE
            await self._emit(
                job, "done",
                cells_cached=job.cells_cached,
                cells_coalesced=job.cells_coalesced,
                cells_computed=job.cells_computed,
                wall_seconds=round(job.wall_seconds, 4),
            )
        except Exception as error:  # surfaced through /status + /result
            job.wall_seconds = time.monotonic() - started
            job.error = f"{type(error).__name__}: {error}"
            job.status = FAILED
            await self._emit(job, "failed", error=job.error)

    async def _cell_shards(self, job: Job, cell_id: int, cell, use_cache: bool):
        key = self.cache.key_for(cell, job.shards_per_cell)
        if use_cache:
            pending = self._inflight.get(key)
            if pending is not None:
                shards = await asyncio.shield(pending)
                job.cells_coalesced += 1
                job.shards_done += len(shards)
                await self._emit(job, "cell_coalesced", cell=cell.label,
                                 key=key, shards=len(shards))
                return shards
            cached = self.cache.load(key)
            if cached is not None:
                job.cells_cached += 1
                job.shards_done += len(cached)
                await self._emit(job, "cell_cached", cell=cell.label,
                                 key=key, shards=len(cached))
                return cached
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            try:
                shards = await self._compute_cell(job, cell_id, cell)
                self.cache.store(key, shards, label=cell.label)
                future.set_result(shards)
            except BaseException as error:
                future.set_exception(error)
                # A coalesced awaiter consumes the exception; nobody else
                # should trip "exception was never retrieved".
                future.exception()
                raise
            finally:
                self._inflight.pop(key, None)
        else:
            shards = await self._compute_cell(job, cell_id, cell)
        job.cells_computed += 1
        await self._emit(job, "cell_done", cell=cell.label, key=key,
                         shards=len(shards))
        return shards

    async def _compute_cell(self, job: Job, cell_id: int, cell):
        loop = asyncio.get_running_loop()
        executor = self._ensure_executor()
        vectors = await loop.run_in_executor(executor, cell.generate_vectors)
        plan = plan_shards(cell.num_samples, job.shards_per_cell)
        tasks = [
            (cell_id, shard_index, start, stop, cell, vectors[start:stop])
            for shard_index, (start, stop) in enumerate(plan)
        ]
        shards = await asyncio.gather(*(
            self._run_shard(job, cell, task) for task in tasks
        ))
        return sorted(shards, key=lambda s: (s.start, s.shard_index))

    async def _run_shard(self, job: Job, cell, task):
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        _cell_id, report = await loop.run_in_executor(
            self._ensure_executor(), _run_shard_task, task
        )
        self._busy_seconds += time.monotonic() - started
        self.shards_computed += 1
        job.shards_done += 1
        await self._emit(
            job, "shard_done", cell=cell.label, shard=report.shard_index,
            start=report.start, stop=report.stop,
            sim_wall_seconds=round(report.sim_wall_seconds, 4),
        )
        return report
