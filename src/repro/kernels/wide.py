"""Shared assembly fragments for multi-word (wide) decimal formats.

The decimal64 kernels (:mod:`repro.kernels.common`) operate on operands that
fit one RV64 register; wider interchange formats — decimal128 today — span
two registers per operand, so the special-value path, field extraction and
result assembly all need the two-word variants emitted here.  Every shift
and mask is derived from the :class:`~repro.decnumber.formats.FormatSpec`,
so a future format only needs a spec entry, not new emitters.

Register/calling conventions for two-word kernels:

* operands arrive as register pairs, least-significant word first:
  X in ``a0``/``a1``, Y in ``a2``/``a3``;
* results return in ``a0`` (low) / ``a1`` (high);
* the combination field, sign and exponent continuation live in the *high*
  word; the coefficient continuation spans the low word plus the low bits
  of the high word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.decnumber.formats import FormatSpec
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WideLayout:
    """Derived bit-layout constants of a two-word interchange format."""

    spec: FormatSpec

    def __post_init__(self) -> None:
        if self.spec.words_per_value != 2:
            raise ConfigurationError(
                f"wide kernels support two-word formats; {self.spec.name} "
                f"occupies {self.spec.words_per_value} word(s)"
            )

    # -- high-word field positions ------------------------------------------
    @property
    def sign_shift(self) -> int:
        return 63

    @property
    def comb_shift(self) -> int:
        """Combination-field shift within the high word."""
        return self.spec.total_bits - 6 - 64

    @property
    def signal_shift(self) -> int:
        """Signaling-NaN bit (MSB of the exponent continuation), high word."""
        return self.comb_shift - 1

    @property
    def exp_bits(self) -> int:
        return self.spec.exponent_continuation_bits

    @property
    def exp_shift(self) -> int:
        """Exponent-continuation shift within the high word."""
        return self.spec.coefficient_continuation_bits - 64

    @property
    def cont_hi_bits(self) -> int:
        """Coefficient-continuation bits living in the high word."""
        return self.spec.coefficient_continuation_bits - 64

    @property
    def cont_hi_clear(self) -> int:
        """Shift that isolates the high-word continuation via slli+srli."""
        return 64 - self.cont_hi_bits

    # -- arithmetic constants ------------------------------------------------
    @property
    def precision(self) -> int:
        return self.spec.precision

    @property
    def bias(self) -> int:
        return self.spec.bias

    @property
    def emax(self) -> int:
        return self.spec.emax

    @property
    def etiny(self) -> int:
        return self.spec.etiny

    @property
    def etop(self) -> int:
        return self.spec.etop

    @property
    def declets(self) -> int:
        return self.spec.declets

    def declet_bounds(self, declet: int) -> tuple:
        """(bit offset, low-word bits, high-word bits) of declet ``declet``
        inside the coefficient continuation (10 bits per declet)."""
        offset = 10 * declet
        if offset + 10 <= 64:
            return offset, 10, 0
        if offset >= 64:
            return offset, 0, 10
        return offset, 64 - offset, 10 - (64 - offset)


def emit_wide_entry_special_check(b, layout: WideLayout, prefix: str) -> None:
    """Branch to ``{prefix}_special`` when either operand is Inf/NaN.

    Expects X in ``a0``/``a1`` and Y in ``a2``/``a3``.  Leaves the
    combination fields in ``t0`` (X) and ``t1`` (Y) for the special path.
    Clobbers ``t0-t2``.  Must be emitted *before* the prologue so the
    special path can ``ret`` without an epilogue.
    """
    b.emit("srli", "t0", "a1", layout.comb_shift)
    b.emit("andi", "t0", "t0", 0x1F)
    b.emit("srli", "t1", "a3", layout.comb_shift)
    b.emit("andi", "t1", "t1", 0x1F)
    b.emit("addi", "t2", "zero", 0b11110)
    b.branch("bgeu", "t0", "t2", f"{prefix}_special")
    b.branch("bgeu", "t1", "t2", f"{prefix}_special")


def _emit_zero_coefficient_check(b, layout, comb_reg, lo, hi, target, tmp) -> None:
    """Jump to ``target`` when the operand's coefficient is nonzero."""
    b.emit("addi", tmp, "zero", 24)
    b.branch("bgeu", comb_reg, tmp, target)  # MSD is 8/9 -> nonzero
    b.emit("andi", tmp, comb_reg, 7)
    b.bnez(tmp, target)
    b.emit("slli", tmp, hi, layout.cont_hi_clear)
    b.bnez(tmp, target)
    b.bnez(lo, target)


def emit_wide_special_path(b, layout: WideLayout, prefix: str) -> None:
    """The special-value result path (NaN propagation, infinity rules).

    Entered with X in ``a0``/``a1``, Y in ``a2``/``a3``, combination fields
    in ``t0``/``t1``.  Returns the result in ``a0``/``a1`` and executes
    ``ret`` (no stack frame yet).  Clobbers ``t2-t6``.
    """
    b.label(f"{prefix}_special")
    b.emit("addi", "t2", "zero", 0b11111)
    b.branch("beq", "t0", "t2", f"{prefix}_x_nan")
    b.branch("beq", "t1", "t2", f"{prefix}_y_nan")
    # At least one infinity, no NaN.
    b.emit("addi", "t3", "zero", 0b11110)
    b.branch("bne", "t0", "t3", f"{prefix}_y_is_inf")
    b.branch("bne", "t1", "t3", f"{prefix}_x_inf_y_finite")
    b.j(f"{prefix}_make_inf")  # Inf * Inf

    # X infinite, Y finite: Inf * 0 is invalid -> NaN, otherwise Inf.
    b.label(f"{prefix}_x_inf_y_finite")
    _emit_zero_coefficient_check(
        b, layout, "t1", "a2", "a3", f"{prefix}_make_inf", "t4"
    )
    b.j(f"{prefix}_make_nan")

    # Y infinite, X finite (X cannot be special here).
    b.label(f"{prefix}_y_is_inf")
    _emit_zero_coefficient_check(
        b, layout, "t0", "a0", "a1", f"{prefix}_make_inf", "t4"
    )
    b.j(f"{prefix}_make_nan")

    b.label(f"{prefix}_make_inf")
    b.emit("xor", "t5", "a1", "a3")
    b.emit("srli", "t5", "t5", layout.sign_shift)
    b.emit("slli", "t5", "t5", layout.sign_shift)
    b.emit("addi", "t6", "zero", 0b11110)
    b.emit("slli", "t6", "t6", layout.comb_shift)
    b.emit("or", "a1", "t5", "t6")
    b.li("a0", 0)
    b.ret()

    b.label(f"{prefix}_make_nan")
    b.emit("addi", "t6", "zero", 0b11111)
    b.emit("slli", "t6", "t6", layout.comb_shift)
    b.mv("a1", "t6")
    b.li("a0", 0)
    b.ret()

    # NaN operands propagate, quieted (clear the signaling bit).
    b.label(f"{prefix}_x_nan")
    b.emit("addi", "t6", "zero", 1)
    b.emit("slli", "t6", "t6", layout.signal_shift)
    b.not_("t6", "t6")
    b.emit("and", "a1", "a1", "t6")
    b.ret()

    b.label(f"{prefix}_y_nan")
    b.mv("a0", "a2")
    b.emit("addi", "t6", "zero", 1)
    b.emit("slli", "t6", "t6", layout.signal_shift)
    b.not_("t6", "t6")
    b.emit("and", "a1", "a3", "t6")
    b.ret()


def emit_wide_unpack_fields(
    b, layout: WideLayout, prefix: str, lo, hi,
    out_sign, out_bexp, out_cont_hi, out_msd, tmp1, tmp2,
) -> None:
    """Extract sign / biased exponent / high continuation word / MSD.

    ``lo``/``hi`` hold a *finite* wide value; ``lo`` doubles as the low
    continuation word and is preserved.  All output and temporary registers
    must be distinct from each other and from ``lo``/``hi``.
    """
    b.emit("srli", out_sign, hi, layout.sign_shift)
    b.emit("srli", tmp1, hi, layout.comb_shift)
    b.emit("andi", tmp1, tmp1, 0x1F)
    b.emit("addi", tmp2, "zero", 24)
    b.branch("bltu", tmp1, tmp2, f"{prefix}_msd_small")
    b.emit("andi", out_msd, tmp1, 1)
    b.emit("ori", out_msd, out_msd, 8)
    b.emit("srli", tmp1, tmp1, 1)
    b.emit("andi", tmp1, tmp1, 3)
    b.j(f"{prefix}_msd_done")
    b.label(f"{prefix}_msd_small")
    b.emit("andi", out_msd, tmp1, 7)
    b.emit("srli", tmp1, tmp1, 3)
    b.label(f"{prefix}_msd_done")
    b.emit("slli", tmp1, tmp1, layout.exp_bits)
    # The exponent continuation can exceed andi's 12-bit immediate range,
    # so isolate it with a shift pair instead of a mask.
    b.emit("slli", out_bexp, hi, 64 - (layout.exp_shift + layout.exp_bits))
    b.emit("srli", out_bexp, out_bexp, 64 - layout.exp_bits)
    b.emit("or", out_bexp, out_bexp, tmp1)
    b.emit("slli", out_cont_hi, hi, layout.cont_hi_clear)
    b.emit("srli", out_cont_hi, out_cont_hi, layout.cont_hi_clear)


def emit_wide_encode_result(
    b, layout: WideLayout, prefix: str, sign, bexp, msd,
    cont_lo, cont_hi, out_lo, out_hi, tmp1, tmp2,
) -> None:
    """Assemble a wide word pair from its fields into ``out_lo``/``out_hi``.

    ``out_hi`` must be distinct from every input and temporary register;
    ``out_lo`` only from ``cont_lo``'s consumers (it is written last).
    """
    b.emit("srli", tmp1, bexp, layout.exp_bits)
    b.emit("addi", tmp2, "zero", 8)
    b.branch("bltu", msd, tmp2, f"{prefix}_enc_small")
    b.emit("slli", tmp1, tmp1, 1)
    b.emit("andi", tmp2, msd, 1)
    b.emit("or", tmp1, tmp1, tmp2)
    b.emit("ori", tmp1, tmp1, 24)
    b.j(f"{prefix}_enc_done")
    b.label(f"{prefix}_enc_small")
    b.emit("slli", tmp1, tmp1, 3)
    b.emit("or", tmp1, tmp1, msd)
    b.label(f"{prefix}_enc_done")
    b.emit("slli", tmp1, tmp1, layout.comb_shift)
    b.emit("slli", out_hi, sign, layout.sign_shift)
    b.emit("or", out_hi, out_hi, tmp1)
    b.emit("slli", tmp2, bexp, 64 - layout.exp_bits)
    b.emit("srli", tmp2, tmp2, 64 - layout.exp_bits)
    b.emit("slli", tmp2, tmp2, layout.exp_shift)
    b.emit("or", out_hi, out_hi, tmp2)
    b.emit("or", out_hi, out_hi, cont_hi)
    if out_lo != cont_lo:
        b.mv(out_lo, cont_lo)


def emit_wide_clamp_exponent(b, layout: WideLayout, prefix: str, exp_reg, tmp) -> None:
    """Clamp a (true) exponent register into the usable range [etiny, etop]."""
    b.li(tmp, layout.etiny)
    b.branch("bge", exp_reg, tmp, f"{prefix}_cl_lo_ok")
    b.mv(exp_reg, tmp)
    b.label(f"{prefix}_cl_lo_ok")
    b.li(tmp, layout.etop)
    b.branch("bge", tmp, exp_reg, f"{prefix}_cl_hi_ok")
    b.mv(exp_reg, tmp)
    b.label(f"{prefix}_cl_hi_ok")


def emit_extract_declet(b, layout: WideLayout, declet: int, lo, hi, out, tmp) -> None:
    """Extract 10-bit declet ``declet`` of the continuation into ``out``.

    ``lo`` holds continuation bits [0, 64), ``hi`` bits [64, ...).  ``out``
    and ``tmp`` must be distinct from ``lo``/``hi``.
    """
    offset, lo_bits, hi_bits = layout.declet_bounds(declet)
    if hi_bits == 0:
        b.emit("srli", out, lo, offset)
        b.emit("andi", out, out, 0x3FF)
    elif lo_bits == 0:
        b.emit("srli", out, hi, offset - 64)
        b.emit("andi", out, out, 0x3FF)
    else:
        b.emit("srli", out, lo, offset)
        b.emit("andi", tmp, hi, (1 << hi_bits) - 1)
        b.emit("slli", tmp, tmp, lo_bits)
        b.emit("or", out, out, tmp)


def emit_place_declet(b, layout: WideLayout, declet: int, src, lo_acc, hi_acc, tmp) -> None:
    """OR a 10-bit declet in ``src`` into the continuation accumulators.

    ``lo_acc``/``hi_acc`` accumulate continuation bits [0, 64) and
    [64, ...).  ``src`` is clobbered for high-word placements; ``tmp`` for
    straddling ones.
    """
    offset, lo_bits, hi_bits = layout.declet_bounds(declet)
    if hi_bits == 0:
        if offset:
            b.emit("slli", src, src, offset)
        b.emit("or", lo_acc, lo_acc, src)
    elif lo_bits == 0:
        b.emit("slli", src, src, offset - 64)
        b.emit("or", hi_acc, hi_acc, src)
    else:
        b.emit("andi", tmp, src, (1 << lo_bits) - 1)
        b.emit("slli", tmp, tmp, offset)
        b.emit("or", lo_acc, lo_acc, tmp)
        b.emit("srli", src, src, lo_bits)
        b.emit("or", hi_acc, hi_acc, src)
