"""Shared assembly fragments used by every decimal-multiplication kernel.

These emitters generate the parts of the IEEE 754-2008 decimal64
multiplication flow (Fig. 1) that are identical in the software baseline and
in Method-1: the special-value path, field extraction from the interchange
encoding, and re-assembly of the result word.

Register discipline: every helper documents which registers it reads, writes
and clobbers; callers pick non-conflicting registers.  Labels are prefixed
with a caller-supplied string so several kernels can coexist in one program.
"""

from __future__ import annotations

SIGN_SHIFT = 63
COMBINATION_SHIFT = 58
EXP_CONT_SHIFT = 50
EXP_BIAS = 398
ETINY = -398          # smallest usable decimal64 exponent
ETOP = 369            # largest usable decimal64 exponent
EMAX = 384            # largest adjusted exponent
PRECISION = 16


def emit_entry_special_check(b, prefix: str) -> None:
    """Branch to ``{prefix}_special`` when either operand is Inf/NaN.

    Expects X in ``a0`` and Y in ``a1``.  Leaves the combination fields in
    ``t0`` (X) and ``t1`` (Y) for the special path.  Clobbers ``t0-t2``.
    Must be emitted *before* the prologue so the special path can ``ret``
    without an epilogue.
    """
    b.emit("srli", "t0", "a0", COMBINATION_SHIFT)
    b.emit("andi", "t0", "t0", 0x1F)
    b.emit("srli", "t1", "a1", COMBINATION_SHIFT)
    b.emit("andi", "t1", "t1", 0x1F)
    b.emit("addi", "t2", "zero", 0b11110)
    b.branch("bgeu", "t0", "t2", f"{prefix}_special")
    b.branch("bgeu", "t1", "t2", f"{prefix}_special")


def emit_special_path(b, prefix: str) -> None:
    """The special-value result path (NaN propagation, infinity rules).

    Entered with X in ``a0``, Y in ``a1``, combination fields in ``t0``/``t1``.
    Returns the result in ``a0`` and executes ``ret`` (no stack frame yet).
    Clobbers ``t2-t6``.
    """
    b.label(f"{prefix}_special")
    b.emit("addi", "t2", "zero", 0b11111)
    b.branch("beq", "t0", "t2", f"{prefix}_x_nan")
    b.branch("beq", "t1", "t2", f"{prefix}_y_nan")
    # At least one infinity, no NaN.
    b.emit("addi", "t3", "zero", 0b11110)
    b.branch("bne", "t0", "t3", f"{prefix}_y_is_inf")
    b.branch("bne", "t1", "t3", f"{prefix}_x_inf_y_finite")
    b.j(f"{prefix}_make_inf")  # Inf * Inf

    # X infinite, Y finite: Inf * 0 is invalid -> NaN, otherwise Inf.
    b.label(f"{prefix}_x_inf_y_finite")
    b.emit("addi", "t4", "zero", 24)
    b.branch("bgeu", "t1", "t4", f"{prefix}_make_inf")  # MSD is 8/9 -> nonzero
    b.emit("andi", "t4", "t1", 7)
    b.bnez("t4", f"{prefix}_make_inf")
    b.emit("slli", "t4", "a1", 14)
    b.bnez("t4", f"{prefix}_make_inf")
    b.j(f"{prefix}_make_nan")

    # Y infinite, X finite (X cannot be special here).
    b.label(f"{prefix}_y_is_inf")
    b.emit("addi", "t4", "zero", 24)
    b.branch("bgeu", "t0", "t4", f"{prefix}_make_inf")
    b.emit("andi", "t4", "t0", 7)
    b.bnez("t4", f"{prefix}_make_inf")
    b.emit("slli", "t4", "a0", 14)
    b.bnez("t4", f"{prefix}_make_inf")
    b.j(f"{prefix}_make_nan")

    b.label(f"{prefix}_make_inf")
    b.emit("xor", "t5", "a0", "a1")
    b.emit("srli", "t5", "t5", SIGN_SHIFT)
    b.emit("slli", "t5", "t5", SIGN_SHIFT)
    b.emit("addi", "t6", "zero", 0b11110)
    b.emit("slli", "t6", "t6", COMBINATION_SHIFT)
    b.emit("or", "a0", "t5", "t6")
    b.ret()

    b.label(f"{prefix}_make_nan")
    b.emit("addi", "t6", "zero", 0b11111)
    b.emit("slli", "t6", "t6", COMBINATION_SHIFT)
    b.mv("a0", "t6")
    b.ret()

    # NaN operands propagate, quieted (clear the signalling bit, bit 57).
    b.label(f"{prefix}_x_nan")
    b.emit("addi", "t6", "zero", 1)
    b.emit("slli", "t6", "t6", 57)
    b.not_("t6", "t6")
    b.emit("and", "a0", "a0", "t6")
    b.ret()

    b.label(f"{prefix}_y_nan")
    b.emit("addi", "t6", "zero", 1)
    b.emit("slli", "t6", "t6", 57)
    b.not_("t6", "t6")
    b.emit("and", "a0", "a1", "t6")
    b.ret()


def emit_unpack_fields(
    b, prefix: str, src, out_sign, out_bexp, out_cont, out_msd, tmp1, tmp2
) -> None:
    """Extract sign / biased exponent / coefficient continuation / MSD.

    ``src`` holds a *finite* decimal64 word and is preserved.  All output and
    temporary registers must be distinct from each other and from ``src``.
    """
    b.emit("srli", out_sign, src, SIGN_SHIFT)
    b.emit("srli", tmp1, src, COMBINATION_SHIFT)
    b.emit("andi", tmp1, tmp1, 0x1F)
    b.emit("addi", tmp2, "zero", 24)
    b.branch("bltu", tmp1, tmp2, f"{prefix}_msd_small")
    b.emit("andi", out_msd, tmp1, 1)
    b.emit("ori", out_msd, out_msd, 8)
    b.emit("srli", tmp1, tmp1, 1)
    b.emit("andi", tmp1, tmp1, 3)
    b.j(f"{prefix}_msd_done")
    b.label(f"{prefix}_msd_small")
    b.emit("andi", out_msd, tmp1, 7)
    b.emit("srli", tmp1, tmp1, 3)
    b.label(f"{prefix}_msd_done")
    b.emit("slli", tmp1, tmp1, 8)
    b.emit("srli", out_bexp, src, EXP_CONT_SHIFT)
    b.emit("andi", out_bexp, out_bexp, 0xFF)
    b.emit("or", out_bexp, out_bexp, tmp1)
    b.emit("slli", out_cont, src, 14)
    b.emit("srli", out_cont, out_cont, 14)


def emit_encode_result(
    b, prefix: str, sign, bexp, msd, cont, out, tmp1, tmp2
) -> None:
    """Assemble a decimal64 word from its fields into ``out``.

    ``out`` must be distinct from every input and temporary register (it is
    written before all inputs are consumed).
    """
    b.emit("srli", tmp1, bexp, 8)
    b.emit("addi", tmp2, "zero", 8)
    b.branch("bltu", msd, tmp2, f"{prefix}_enc_small")
    b.emit("slli", tmp1, tmp1, 1)
    b.emit("andi", tmp2, msd, 1)
    b.emit("or", tmp1, tmp1, tmp2)
    b.emit("ori", tmp1, tmp1, 24)
    b.j(f"{prefix}_enc_done")
    b.label(f"{prefix}_enc_small")
    b.emit("slli", tmp1, tmp1, 3)
    b.emit("or", tmp1, tmp1, msd)
    b.label(f"{prefix}_enc_done")
    b.emit("slli", tmp1, tmp1, COMBINATION_SHIFT)
    b.emit("slli", out, sign, SIGN_SHIFT)
    b.emit("or", out, out, tmp1)
    b.emit("andi", tmp2, bexp, 0xFF)
    b.emit("slli", tmp2, tmp2, EXP_CONT_SHIFT)
    b.emit("or", out, out, tmp2)
    b.emit("or", out, out, cont)


def emit_clamp_exponent(b, prefix: str, exp_reg, tmp) -> None:
    """Clamp a (true) exponent register into the usable range [ETINY, ETOP]."""
    b.li(tmp, ETINY)
    b.branch("bge", exp_reg, tmp, f"{prefix}_cl_lo_ok")
    b.mv(exp_reg, tmp)
    b.label(f"{prefix}_cl_lo_ok")
    b.li(tmp, ETOP)
    b.branch("bge", tmp, exp_reg, f"{prefix}_cl_hi_ok")
    b.mv(exp_reg, tmp)
    b.label(f"{prefix}_cl_hi_ok")
