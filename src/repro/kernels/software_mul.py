"""Pure-software decimal64 multiplication kernel (the Table IV "Software" row).

This is the decNumber-style baseline: everything runs on the binary ALU of the
Rocket core, structured the way the library structures it.  Coefficients are
decoded from DPD into arrays of 3-digit *units* held in memory (decNumber's
default ``DECDPUN=3`` representation — one unit per declet), multiplied with a
generic unit-by-unit schoolbook loop into a memory accumulator, carry
normalised by division, rounded to 16 digits with round-half-even, and
re-encoded to DPD.  The result is bit-for-bit the same as
:func:`repro.decnumber.arith.multiply` + ``decimal64.encode``, so the
simulated output is checked against the golden library.

Register allocation (callee-saved across the whole kernel):

====  =======================================================
s1    result sign
s2    true exponent (e0, later the result exponent)
s3-s6 product limbs r0..r3 (base 1e9, built from the unit accumulator)
s7    ``tbl_pow10`` base address
s8    constant 1e9
s9    digits to drop (rounding amount)
s10   quotient low limb  (9 digits)
s11   quotient high limb (7 digits)
s0    multiply-loop counter
====  =======================================================

Stack frame layout (offsets from sp):

======  =============================================
0-47    six base-1e9 limb slots used by the rounder
48-95   X units (six 3-digit units, one dword each)
96-143  Y units
144-239 product unit accumulator (twelve dwords)
240-343 saved registers (ra, s0..s11)
======  =============================================
"""

from __future__ import annotations

from repro.kernels.common import (
    emit_clamp_exponent,
    emit_encode_result,
    emit_entry_special_check,
    emit_special_path,
    emit_unpack_fields,
)
from repro.kernels.tables import TABLE_SYMBOLS

_FRAME = 352
_SCRATCH = 0          # sp+0   .. sp+47 : six limb slots for the rounder
_XUNITS = 48          # sp+48  .. sp+95 : X units
_YUNITS = 96          # sp+96  .. sp+143: Y units
_ACC = 144            # sp+144 .. sp+239: product unit accumulator (12 units)
_SAVE_BASE = 240      # sp+240 .. sp+343: ra, s0..s11

_SAVED = ("ra", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11")


def _emit_prologue(b) -> None:
    b.emit("addi", "sp", "sp", -_FRAME)
    for index, reg in enumerate(_SAVED):
        b.emit("sd", reg, "sp", _SAVE_BASE + 8 * index)


def _emit_epilogue(b) -> None:
    for index, reg in enumerate(_SAVED):
        b.emit("ld", reg, "sp", _SAVE_BASE + 8 * index)
    b.emit("addi", "sp", "sp", _FRAME)
    b.ret()


def _emit_unpack_units_subroutine(b, p: str) -> None:
    """Local subroutine: decode one operand into its six 3-digit units.

    ``a2`` = decimal64 word, ``a6`` = pointer to a six-dword unit buffer.
    Returns ``a3`` = OR of all units (zero-coefficient indicator), ``a4`` =
    sign, ``a5`` = biased exponent.  Clobbers t0-t6.
    """
    b.label(f"{p}_unpack_units")
    emit_unpack_fields(
        b, f"{p}_upk", src="a2", out_sign="a4", out_bexp="a5",
        out_cont="t3", out_msd="t4", tmp1="t0", tmp2="t1",
    )
    b.la("t0", TABLE_SYMBOLS["dpd2bin"])
    b.li("a3", 0)
    for unit_index in range(5):
        b.emit("srli", "t2", "t3", 10 * unit_index)
        b.emit("andi", "t2", "t2", 0x3FF)
        b.emit("slli", "t2", "t2", 1)
        b.emit("add", "t2", "t2", "t0")
        b.emit("lhu", "t2", "t2", 0)
        b.emit("sd", "t2", "a6", 8 * unit_index)
        b.emit("or", "a3", "a3", "t2")
    b.emit("sd", "t4", "a6", 40)
    b.emit("or", "a3", "a3", "t4")
    b.ret()


def _emit_count9_subroutine(b, p: str) -> None:
    """Local subroutine: a2 = limb (< 1e9) -> a2 = number of decimal digits (>= 1).

    Uses the pow10 table via s7.  Clobbers t0, t1.
    """
    b.label(f"{p}_count9")
    b.li("t0", 1)
    b.label(f"{p}_count9_loop")
    b.emit("slli", "t1", "t0", 3)
    b.emit("add", "t1", "t1", "s7")
    b.emit("ld", "t1", "t1", 0)
    b.branch("bltu", "a2", "t1", f"{p}_count9_done")
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_count9_loop")
    b.label(f"{p}_count9_done")
    b.mv("a2", "t0")
    b.ret()


def emit_software_mul_kernel(b, label: str = "dec64_mul_sw") -> str:
    """Emit the pure-software multiplication kernel; returns its entry label.

    Calling convention: ``a0`` = X (decimal64 bits), ``a1`` = Y; returns the
    product's decimal64 bits in ``a0``.
    """
    p = label
    b.text()
    b.label(p)

    # ---- special values: handled before any stack frame exists -------------
    emit_entry_special_check(b, p)

    # ---- prologue, constants ------------------------------------------------
    _emit_prologue(b)
    b.la("s7", TABLE_SYMBOLS["pow10"])
    b.li("s8", 1_000_000_000)

    # ---- unpack both operands into 3-digit unit arrays (decNumber style) ----
    b.mv("a2", "a0")
    b.emit("addi", "a6", "sp", _XUNITS)
    b.jal("ra", f"{p}_unpack_units")
    b.mv("s3", "a3")                  # X zero indicator
    b.mv("s1", "a4")
    b.mv("s2", "a5")
    b.mv("a2", "a1")
    b.emit("addi", "a6", "sp", _YUNITS)
    b.jal("ra", f"{p}_unpack_units")
    b.emit("xor", "s1", "s1", "a4")
    b.emit("add", "s2", "s2", "a5")
    b.emit("addi", "s2", "s2", -796)  # e0 = (bx - 398) + (by - 398)

    # ---- zero operands ------------------------------------------------------
    b.beqz("s3", f"{p}_zero_result")
    b.beqz("a3", f"{p}_zero_result")

    # ---- coefficient multiplication: unit-by-unit schoolbook loop -----------
    # Clear the 12-unit accumulator.
    b.li("t0", 0)
    b.label(f"{p}_acc_clear")
    b.emit("slli", "t1", "t0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("sd", "zero", "t1", _ACC)
    b.emit("addi", "t0", "t0", 1)
    b.li("t2", 12)
    b.branch("bne", "t0", "t2", f"{p}_acc_clear")
    # for j in 0..5: for i in 0..5: acc[i+j] += xu[i] * yu[j]
    b.li("s0", 0)
    b.label(f"{p}_mac_outer")
    b.emit("slli", "t1", "s0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "a4", "t1", _YUNITS)
    b.li("t3", 0)
    b.label(f"{p}_mac_inner")
    b.emit("slli", "t1", "t3", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "t4", "t1", _XUNITS)
    b.emit("mul", "t4", "t4", "a4")
    b.emit("add", "t5", "t3", "s0")
    b.emit("slli", "t5", "t5", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "t6", "t5", _ACC)
    b.emit("add", "t6", "t6", "t4")
    b.emit("sd", "t6", "t5", _ACC)
    b.emit("addi", "t3", "t3", 1)
    b.li("t1", 6)
    b.branch("bne", "t3", "t1", f"{p}_mac_inner")
    b.emit("addi", "s0", "s0", 1)
    b.li("t1", 6)
    b.branch("bne", "s0", "t1", f"{p}_mac_outer")
    # Carry normalisation: every accumulator unit back to 0..999.
    b.li("a7", 1000)
    b.li("t2", 0)                      # running carry
    b.li("t0", 0)
    b.label(f"{p}_carry_loop")
    b.emit("slli", "t1", "t0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "t4", "t1", _ACC)
    b.emit("add", "t4", "t4", "t2")
    b.emit("divu", "t2", "t4", "a7")   # carry out
    b.emit("mul", "t5", "t2", "a7")
    b.emit("sub", "t5", "t4", "t5")    # unit value
    b.emit("sd", "t5", "t1", _ACC)
    b.emit("addi", "t0", "t0", 1)
    b.li("t1", 12)
    b.branch("bne", "t0", "t1", f"{p}_carry_loop")
    # Combine units into four base-1e9 limbs for the rounding machinery.
    b.li("a7", 1000)
    b.li("a6", 1_000_000)
    for limb_index, limb_reg in enumerate(("s3", "s4", "s5", "s6")):
        base = _ACC + 24 * limb_index
        b.emit("ld", "t0", "sp", base)
        b.emit("ld", "t1", "sp", base + 8)
        b.emit("ld", "t2", "sp", base + 16)
        b.emit("mul", "t1", "t1", "a7")
        b.emit("add", "t0", "t0", "t1")
        b.emit("mul", "t2", "t2", "a6")
        b.emit("add", limb_reg, "t0", "t2")

    # ---- significant digit count D -> a6 ------------------------------------
    b.li("a6", 27)
    b.mv("a2", "s6")
    b.bnez("s6", f"{p}_cnt")
    b.li("a6", 18)
    b.mv("a2", "s5")
    b.bnez("s5", f"{p}_cnt")
    b.li("a6", 9)
    b.mv("a2", "s4")
    b.bnez("s4", f"{p}_cnt")
    b.li("a6", 0)
    b.mv("a2", "s3")
    b.label(f"{p}_cnt")
    b.jal("ra", f"{p}_count9")
    b.emit("add", "a6", "a6", "a2")

    # ---- digits to drop: max(0, D - 16, etiny - e0) --------------------------
    b.emit("addi", "s9", "a6", -16)
    b.li("t0", -398)
    b.emit("sub", "t0", "t0", "s2")
    b.branch("bge", "s9", "t0", f"{p}_drop1")
    b.mv("s9", "t0")
    b.label(f"{p}_drop1")
    b.bgtz("s9", f"{p}_need_round")
    b.li("s9", 0)
    b.mv("s10", "s3")
    b.mv("s11", "s4")
    b.j(f"{p}_after_round")

    b.label(f"{p}_need_round")
    b.branch("blt", "s9", "a6", f"{p}_general_round")
    b.j(f"{p}_all_dropped")

    # ---- general rounding: 1 <= drop < D ------------------------------------
    b.label(f"{p}_general_round")
    b.emit("sd", "s3", "sp", _SCRATCH + 0)
    b.emit("sd", "s4", "sp", _SCRATCH + 8)
    b.emit("sd", "s5", "sp", _SCRATCH + 16)
    b.emit("sd", "s6", "sp", _SCRATCH + 24)
    b.emit("sd", "zero", "sp", _SCRATCH + 32)
    b.emit("sd", "zero", "sp", _SCRATCH + 40)
    b.li("t0", 9)
    b.emit("divu", "t1", "s9", "t0")    # w = drop // 9
    b.emit("remu", "t2", "s9", "t0")    # s = drop % 9
    b.emit("slli", "t3", "t2", 3)       # 10**s
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)
    b.li("t5", 9)
    b.emit("sub", "t5", "t5", "t2")     # 10**(9-s)
    b.emit("slli", "t5", "t5", 3)
    b.emit("add", "t5", "t5", "s7")
    b.emit("ld", "t4", "t5", 0)
    b.emit("slli", "t5", "t1", 3)       # &v[w]
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "a2", "t5", _SCRATCH + 0)
    b.emit("ld", "a3", "t5", _SCRATCH + 8)
    b.emit("ld", "a4", "t5", _SCRATCH + 16)
    # q0 = v[w] / 10**s + (v[w+1] % 10**s) * 10**(9-s)
    b.emit("divu", "s10", "a2", "t3")
    b.emit("remu", "t6", "a3", "t3")
    b.emit("mul", "t6", "t6", "t4")
    b.emit("add", "s10", "s10", "t6")
    # q1 = v[w+1] / 10**s + (v[w+2] % 10**s) * 10**(9-s)
    b.emit("divu", "s11", "a3", "t3")
    b.emit("remu", "t6", "a4", "t3")
    b.emit("mul", "t6", "t6", "t4")
    b.emit("add", "s11", "s11", "t6")
    # Rounding digit (position drop-1) and sticky digits below it.
    b.emit("addi", "t5", "s9", -1)
    b.li("t0", 9)
    b.emit("divu", "t1", "t5", "t0")    # limb holding the rounding digit
    b.emit("remu", "t2", "t5", "t0")    # its position inside that limb
    b.emit("slli", "t3", "t2", 3)       # 10**di
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)
    b.emit("slli", "t5", "t1", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "a2", "t5", _SCRATCH + 0)
    b.emit("divu", "a3", "a2", "t3")
    b.li("t0", 10)
    b.emit("remu", "a3", "a3", "t0")    # rounding digit
    b.emit("remu", "a4", "a2", "t3")    # sticky (within the limb)
    b.li("t0", 0)
    b.label(f"{p}_sticky_loop")
    b.branch("bge", "t0", "t1", f"{p}_sticky_done")
    b.emit("slli", "t5", "t0", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "t6", "t5", _SCRATCH + 0)
    b.emit("or", "a4", "a4", "t6")
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_sticky_loop")
    b.label(f"{p}_sticky_done")
    # Round-half-even decision.
    b.li("t0", 5)
    b.branch("blt", "t0", "a3", f"{p}_round_up")     # digit > 5
    b.branch("bne", "a3", "t0", f"{p}_after_incr")   # digit < 5
    b.bnez("a4", f"{p}_round_up")                    # == 5 with sticky
    b.emit("andi", "t2", "s10", 1)
    b.bnez("t2", f"{p}_round_up")                    # tie, odd quotient
    b.j(f"{p}_after_incr")
    b.label(f"{p}_round_up")
    b.emit("addi", "s10", "s10", 1)
    b.branch("bne", "s10", "s8", f"{p}_after_incr")
    b.li("s10", 0)
    b.emit("addi", "s11", "s11", 1)
    b.li("t0", 10_000_000)
    b.branch("bne", "s11", "t0", f"{p}_after_incr")
    b.li("s11", 1_000_000)                           # 10**16 -> 10**15
    b.emit("addi", "s9", "s9", 1)                    # exponent + 1
    b.label(f"{p}_after_incr")
    b.j(f"{p}_after_round")

    # ---- everything dropped: drop >= D --------------------------------------
    b.label(f"{p}_all_dropped")
    b.li("s10", 0)
    b.li("s11", 0)
    b.branch("bne", "s9", "a6", f"{p}_after_round")  # drop > D: rounds to zero
    # drop == D: result is 1 ulp iff the value exceeds half of 10**D.
    b.emit("sd", "s3", "sp", _SCRATCH + 0)
    b.emit("sd", "s4", "sp", _SCRATCH + 8)
    b.emit("sd", "s5", "sp", _SCRATCH + 16)
    b.emit("sd", "s6", "sp", _SCRATCH + 24)
    b.emit("addi", "t5", "a6", -1)
    b.li("t0", 9)
    b.emit("divu", "t1", "t5", "t0")
    b.emit("remu", "t2", "t5", "t0")
    b.emit("slli", "t5", "t1", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "a2", "t5", _SCRATCH + 0)           # top limb
    b.emit("slli", "t3", "t2", 3)
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)                       # 10**(digits_in_top-1)
    b.emit("divu", "a3", "a2", "t3")                  # most significant digit
    b.emit("remu", "a4", "a2", "t3")
    b.li("t0", 0)
    b.label(f"{p}_ad_sticky_loop")
    b.branch("bge", "t0", "t1", f"{p}_ad_sticky_done")
    b.emit("slli", "t5", "t0", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "t6", "t5", _SCRATCH + 0)
    b.emit("or", "a4", "a4", "t6")
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_ad_sticky_loop")
    b.label(f"{p}_ad_sticky_done")
    b.li("t0", 5)
    b.branch("blt", "t0", "a3", f"{p}_ad_one")
    b.branch("bne", "a3", "t0", f"{p}_after_round")
    b.beqz("a4", f"{p}_after_round")                 # exactly half: ties to even (0)
    b.label(f"{p}_ad_one")
    b.li("s10", 1)
    b.label(f"{p}_after_round")

    # ---- exponent, overflow, clamping ----------------------------------------
    b.emit("add", "s2", "s2", "s9")                   # e_r = e0 + drop
    b.emit("or", "t0", "s10", "s11")
    b.beqz("t0", f"{p}_zero_result")
    b.li("a6", 9)
    b.mv("a2", "s11")
    b.bnez("s11", f"{p}_qcnt")
    b.li("a6", 0)
    b.mv("a2", "s10")
    b.label(f"{p}_qcnt")
    b.jal("ra", f"{p}_count9")
    b.emit("add", "a6", "a6", "a2")
    b.emit("add", "t0", "s2", "a6")
    b.emit("addi", "t0", "t0", -1)                    # adjusted exponent
    b.li("t1", 384)
    b.branch("bge", "t1", "t0", f"{p}_no_ovf")
    b.j(f"{p}_overflow_inf")
    b.label(f"{p}_no_ovf")
    b.li("t1", 369)
    b.branch("bge", "t1", "s2", f"{p}_no_clamp")
    b.emit("sub", "t2", "s2", "t1")                   # pad
    b.mv("s2", "t1")
    b.label(f"{p}_clamp_limbshift")
    b.li("t3", 9)
    b.branch("blt", "t2", "t3", f"{p}_clamp_sub")
    b.mv("s11", "s10")
    b.li("s10", 0)
    b.emit("addi", "t2", "t2", -9)
    b.j(f"{p}_clamp_limbshift")
    b.label(f"{p}_clamp_sub")
    b.beqz("t2", f"{p}_no_clamp")
    b.emit("slli", "t3", "t2", 3)                     # 10**pad
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)
    b.emit("mul", "t4", "s10", "t3")
    b.emit("remu", "s10", "t4", "s8")
    b.emit("divu", "t5", "t4", "s8")
    b.emit("mul", "s11", "s11", "t3")
    b.emit("add", "s11", "s11", "t5")
    b.label(f"{p}_no_clamp")

    # ---- re-encode to DPD -----------------------------------------------------
    b.la("t0", TABLE_SYMBOLS["bin2dpd"])
    b.li("t1", 1000)
    # declet 0
    b.emit("remu", "t2", "s10", "t1")
    b.emit("divu", "s10", "s10", "t1")
    b.emit("slli", "t2", "t2", 1)
    b.emit("add", "t2", "t2", "t0")
    b.emit("lhu", "a2", "t2", 0)
    # declet 1
    b.emit("remu", "t2", "s10", "t1")
    b.emit("divu", "s10", "s10", "t1")
    b.emit("slli", "t2", "t2", 1)
    b.emit("add", "t2", "t2", "t0")
    b.emit("lhu", "t3", "t2", 0)
    b.emit("slli", "t3", "t3", 10)
    b.emit("or", "a2", "a2", "t3")
    # declet 2 (s10 is now < 1000)
    b.emit("slli", "t2", "s10", 1)
    b.emit("add", "t2", "t2", "t0")
    b.emit("lhu", "t3", "t2", 0)
    b.emit("slli", "t3", "t3", 20)
    b.emit("or", "a2", "a2", "t3")
    # declet 3
    b.emit("remu", "t2", "s11", "t1")
    b.emit("divu", "s11", "s11", "t1")
    b.emit("slli", "t2", "t2", 1)
    b.emit("add", "t2", "t2", "t0")
    b.emit("lhu", "t3", "t2", 0)
    b.emit("slli", "t3", "t3", 30)
    b.emit("or", "a2", "a2", "t3")
    # declet 4
    b.emit("remu", "t2", "s11", "t1")
    b.emit("divu", "s11", "s11", "t1")
    b.emit("slli", "t2", "t2", 1)
    b.emit("add", "t2", "t2", "t0")
    b.emit("lhu", "t3", "t2", 0)
    b.emit("slli", "t3", "t3", 40)
    b.emit("or", "a2", "a2", "t3")
    # s11 now holds the most significant digit; biased exponent -> a3
    b.emit("addi", "a3", "s2", 398)
    emit_encode_result(
        b, f"{p}_fin", sign="s1", bexp="a3", msd="s11", cont="a2",
        out="a0", tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_epilogue")

    # ---- zero result -----------------------------------------------------------
    b.label(f"{p}_zero_result")
    emit_clamp_exponent(b, f"{p}_z", "s2", "t0")
    b.emit("addi", "a3", "s2", 398)
    emit_encode_result(
        b, f"{p}_zenc", sign="s1", bexp="a3", msd="zero", cont="zero",
        out="a0", tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_epilogue")

    # ---- overflow to infinity ---------------------------------------------------
    b.label(f"{p}_overflow_inf")
    b.emit("slli", "t5", "s1", 63)
    b.li("t6", 0b11110)
    b.emit("slli", "t6", "t6", 58)
    b.emit("or", "a0", "t5", "t6")
    b.j(f"{p}_epilogue")

    # ---- epilogue ----------------------------------------------------------------
    b.label(f"{p}_epilogue")
    _emit_epilogue(b)

    # ---- local subroutines and the special path ----------------------------------
    _emit_unpack_units_subroutine(b, p)
    _emit_count9_subroutine(b, p)
    emit_special_path(b, p)
    return p
