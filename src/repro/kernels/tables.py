"""Lookup tables embedded in every generated test program's data section.

The paper's Method-1 converts DPD declets to BCD "in software" — in practice
(as in decNumber itself) that means table lookups.  The software baseline
needs the binary variants of the same tables plus a powers-of-ten table for
digit counting and rounding.
"""

from __future__ import annotations

from repro.decnumber import dpd

#: Symbol names of the embedded tables (shared between testgen and kernels).
TABLE_SYMBOLS = {
    "dpd2bin": "tbl_dpd2bin",    # declet -> binary value 0..999 (halfwords)
    "dpd2bcd": "tbl_dpd2bcd",    # declet -> 12-bit packed BCD   (halfwords)
    "bin2dpd": "tbl_bin2dpd",    # value 0..999 -> declet         (halfwords)
    "bcd2dpd": "tbl_bcd2dpd",    # 12-bit packed BCD -> declet    (halfwords)
    "pow10": "tbl_pow10",        # 10**k for k = 0..19            (dwords)
}


def _emit_halfword_table(builder, label: str, values) -> None:
    builder.align(8)
    builder.label(label)
    for value in values:
        builder.current_section.append_bytes(
            int(value & 0xFFFF).to_bytes(2, "little")
        )


def emit_tables(builder, which=("dpd2bin", "dpd2bcd", "bin2dpd", "bcd2dpd", "pow10")) -> None:
    """Emit the requested tables into the builder's *data* section.

    The builder's current section is switched to ``.data`` and left there.
    """
    builder.data()
    selected = set(which)
    if "dpd2bin" in selected:
        _emit_halfword_table(
            builder,
            TABLE_SYMBOLS["dpd2bin"],
            (dpd.decode_declet(declet) for declet in range(1024)),
        )
    if "dpd2bcd" in selected:
        _emit_halfword_table(
            builder, TABLE_SYMBOLS["dpd2bcd"], dpd.declet_table_bcd()
        )
    if "bin2dpd" in selected:
        _emit_halfword_table(
            builder,
            TABLE_SYMBOLS["bin2dpd"],
            (dpd.encode_declet(value) for value in range(1000)),
        )
    if "bcd2dpd" in selected:
        _emit_halfword_table(
            builder, TABLE_SYMBOLS["bcd2dpd"], dpd.bcd_to_declet_table()
        )
    if "pow10" in selected:
        builder.align(8)
        builder.label(TABLE_SYMBOLS["pow10"])
        builder.dword(*[10 ** k for k in range(20)])
