"""Method-1 multiplication kernel for multi-word decimal formats.

The format-generic counterpart of :mod:`repro.kernels.method1`: the software
part (special values, DPD<->BCD conversion, digit extraction, rounding and
re-encoding) runs on the Rocket core, the hardware part (multiplicand
multiples and partial-product accumulation) on the RoCC decimal accelerator.
All widths derive from the :class:`~repro.decnumber.formats.FormatSpec`:

* operands span two registers, so the packed-BCD coefficient (34 digits for
  decimal128) spans three 64-bit words — the multiplicand is written to the
  accelerator one *word lane* at a time (``WR`` with the lane in ``rd``);
* the digit loop walks ``precision`` multiplier digits;
* the product (68 digits) is read back word-by-word through the accumulator
  word selectors into a stack buffer, where the software rounding flow picks
  nibbles out of it;
* the rounding increment runs on the accelerator's BCD adder through two
  spare register-file registers, read back via the register-file word-lane
  selectors (passed by value, ``xs2=1``).

``use_accelerator=False`` emits the *dummy function* estimation variant:
identical software flow, every accelerator invocation replaced by a static
call with a fixed return value (timing-representative, results meaningless).

Calling convention: X in ``a0``/``a1`` (low/high), Y in ``a2``/``a3``;
returns the product in ``a0``/``a1``.
"""

from __future__ import annotations

from repro.decnumber.formats import FormatSpec
from repro.kernels.tables import TABLE_SYMBOLS
from repro.kernels.wide import (
    WideLayout,
    emit_extract_declet,
    emit_place_declet,
    emit_wide_clamp_exponent,
    emit_wide_encode_result,
    emit_wide_entry_special_check,
    emit_wide_special_path,
    emit_wide_unpack_fields,
)
from repro.rocc.decimal_accel import (
    DecimalAcceleratorConfig,
    acc_word_selector,
    regfile_word_selector,
)

_SAVED = ("ra", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
          "s10", "s11")

#: Accelerator register that holds the multiplicand (MM[1]); MM[i] lives in
#: register i, and register 0 stays zero so a zero multiplier digit adds 0.
_MULTIPLICAND_REG = 1
_MULTIPLE_COUNT = 9  # MM[1] .. MM[9]

#: Spare accelerator registers used for the rounding increment.
_INCR_VALUE_REG = 10
_INCR_ONE_REG = 11
_INCR_RESULT_REG = 12


def _bcd_words(precision: int) -> int:
    """64-bit words of a ``precision``-digit packed-BCD coefficient."""
    return -(-(4 * precision) // 64)


def _emit_dummy_functions(b, p: str) -> None:
    """The static dummy functions of the estimation methodology."""

    def frame_enter():
        b.emit("addi", "sp", "sp", -16)
        b.emit("sd", "s0", "sp", 0)
        b.emit("addi", "s0", "sp", 16)

    def frame_leave():
        b.emit("ld", "s0", "sp", 0)
        b.emit("addi", "sp", "sp", 16)
        b.ret()

    b.label(f"{p}_dummy_clr")
    frame_enter()
    frame_leave()
    b.label(f"{p}_dummy_wr")
    frame_enter()
    b.mv("a1", "a0")
    frame_leave()
    b.label(f"{p}_dummy_dec_add")
    frame_enter()
    b.mv("a2", "a0")
    b.li("a0", 0x1)
    frame_leave()
    b.label(f"{p}_dummy_dec_accum")
    frame_enter()
    b.mv("a1", "a0")
    frame_leave()
    b.label(f"{p}_dummy_rd")
    frame_enter()
    b.li("a0", 0x123)
    frame_leave()


def emit_wide_method1_kernel(
    b, spec: FormatSpec, label: str = None, use_accelerator: bool = True
) -> str:
    """Emit the wide Method-1 kernel; returns its entry label."""
    layout = WideLayout(spec)
    p = label if label is not None else f"dec{spec.total_bits}_mul_m1"
    precision = layout.precision
    bcd_words = _bcd_words(precision)               # 3 for decimal128
    acc_words = DecimalAcceleratorConfig.for_format(spec.name).accumulator_words
    # The quotient walk reads nibbles up to (drop + precision - 1); pad the
    # product buffer with zero words so those reads stay in-frame.
    prod_nibbles = 2 * precision + precision        # worst-case nibble index
    prod_words = -(-prod_nibbles // 16)
    save_bytes = 8 * len(_SAVED)
    prod_offset = save_bytes
    frame = (save_bytes + 8 * prod_words + 15) // 16 * 16

    if bcd_words != 3:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"wide method1 kernel expects a three-word BCD coefficient; "
            f"{spec.name} needs {bcd_words}"
        )

    # ----- hardware-invocation helpers (the only part that differs) ----------
    def hw_clear():
        if use_accelerator:
            b.rocc("CLR_ALL")
        else:
            b.call(f"{p}_dummy_clr")

    def hw_write_multiplicand_word(lane, reg):
        if use_accelerator:
            b.rocc("WR", rd=lane, rs1=reg, rs2=_MULTIPLICAND_REG,
                   xd=False, xs1=True, xs2=False)
        else:
            b.mv("a0", reg)
            b.call(f"{p}_dummy_wr")

    def hw_generate_multiple(index):
        if use_accelerator:
            # regfile[index + 1] = regfile[index] + regfile[1]
            b.rocc("DEC_ADD", rd=index + 1, rs1=index, rs2=_MULTIPLICAND_REG,
                   xd=False, xs1=False, xs2=False)
        else:
            b.call(f"{p}_dummy_dec_add")

    def hw_accumulate_digit(digit_reg):
        if use_accelerator:
            # accumulator = accumulator * 10 + regfile[digit]
            b.rocc("DEC_ACCUM", rd=0, rs1=digit_reg, rs2=0,
                   xd=False, xs1=True, xs2=False)
        else:
            b.mv("a0", digit_reg)
            b.call(f"{p}_dummy_dec_accum")

    def hw_read_acc_word(word, dest_reg):
        if use_accelerator:
            b.rocc("RD", rd=dest_reg, rs1=0, rs2=acc_word_selector(word),
                   xd=True, xs1=False, xs2=False)
        else:
            b.call(f"{p}_dummy_rd")
            b.mv(dest_reg, "a0")

    def hw_bcd_increment(regs):
        """regs (low..high BCD words) += 1 on the accelerator's BCD adder."""
        if use_accelerator:
            # Assemble the wide value in a spare register (lane 0 clears
            # the upper lanes), add the constant 1, read the sum back.
            for lane, reg in enumerate(regs):
                b.rocc("WR", rd=lane, rs1=reg, rs2=_INCR_VALUE_REG,
                       xd=False, xs1=True, xs2=False)
            b.li("t2", 1)
            b.rocc("WR", rd=0, rs1="t2", rs2=_INCR_ONE_REG,
                   xd=False, xs1=True, xs2=False)
            b.rocc("DEC_ADD", rd=_INCR_RESULT_REG, rs1=_INCR_VALUE_REG,
                   rs2=_INCR_ONE_REG, xd=False, xs1=False, xs2=False)
            for lane, reg in enumerate(regs):
                b.li("t2", regfile_word_selector(_INCR_RESULT_REG, lane))
                b.rocc("RD", rd=reg, rs1=0, rs2="t2",
                       xd=True, xs1=False, xs2=True)
        else:
            b.mv("a0", regs[0])
            b.li("a1", 1)
            b.call(f"{p}_dummy_dec_add")
            b.mv(regs[0], "a0")

    # ----- kernel entry --------------------------------------------------------
    b.text()
    b.label(p)
    emit_wide_entry_special_check(b, layout, p)
    b.emit("addi", "sp", "sp", -frame)
    for index, reg in enumerate(_SAVED):
        b.emit("sd", reg, "sp", 8 * index)

    # Unpack both operands (software, table-driven DPD -> BCD).
    b.mv("s3", "a2")                  # stash Y before clobbering a-regs
    b.mv("s4", "a3")
    b.mv("a2", "a0")
    b.mv("a3", "a1")
    b.jal("ra", f"{p}_unpack_bcd")
    b.mv("s5", "a2")                  # X BCD low/mid/high
    b.mv("s6", "a3")
    b.mv("s7", "a6")
    b.mv("s1", "a4")
    b.mv("s2", "a5")
    b.mv("a2", "s3")
    b.mv("a3", "s4")
    b.jal("ra", f"{p}_unpack_bcd")
    b.mv("s3", "a2")                  # Y BCD low/mid/high
    b.mv("s4", "a3")
    b.mv("s11", "a6")
    b.emit("xor", "s1", "s1", "a4")
    b.emit("add", "s2", "s2", "a5")
    b.li("t0", -2 * layout.bias)
    b.emit("add", "s2", "s2", "t0")

    # Zero operands short-circuit the whole hardware section.
    b.emit("or", "t0", "s5", "s6")
    b.emit("or", "t0", "t0", "s7")
    b.beqz("t0", f"{p}_zero_result")
    b.emit("or", "t0", "s3", "s4")
    b.emit("or", "t0", "t0", "s11")
    b.beqz("t0", f"{p}_zero_result")

    # ----- hardware part: multiples generation --------------------------------
    hw_clear()
    for lane, reg in enumerate(("s5", "s6", "s7")):
        hw_write_multiplicand_word(lane, reg)
    for index in range(1, _MULTIPLE_COUNT):
        hw_generate_multiple(index)

    # ----- digit loop: software extracts, hardware accumulates ----------------
    # The top multiplier digit sits at nibble (precision-1) % 16 of the high
    # BCD word; shift the three-word value left one digit per iteration.
    top_nibble_shift = 4 * ((precision - 1) % 16)
    b.li("s10", precision)
    b.label(f"{p}_digit_loop")
    b.emit("srli", "t0", "s11", top_nibble_shift)
    b.emit("andi", "t0", "t0", 0xF)
    hw_accumulate_digit("t0")
    b.emit("slli", "s11", "s11", 4)
    b.emit("srli", "t1", "s4", 60)
    b.emit("or", "s11", "s11", "t1")
    b.emit("slli", "s4", "s4", 4)
    b.emit("srli", "t1", "s3", 60)
    b.emit("or", "s4", "s4", "t1")
    b.emit("slli", "s3", "s3", 4)
    b.emit("addi", "s10", "s10", -1)
    b.bnez("s10", f"{p}_digit_loop")

    # ----- read the full product back into the stack buffer -------------------
    for word in range(acc_words):
        hw_read_acc_word(word, "t0")
        b.emit("sd", "t0", "sp", prod_offset + 8 * word)
    for word in range(acc_words, prod_words):
        b.emit("sd", "zero", "sp", prod_offset + 8 * word)

    # ----- software part: significant digit count D -> s9 ---------------------
    b.li("s0", acc_words - 1)
    b.label(f"{p}_d_loop")
    b.beqz("s0", f"{p}_d_last")
    b.emit("slli", "t1", "s0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "a2", "t1", prod_offset)
    b.bnez("a2", f"{p}_d_found")
    b.emit("addi", "s0", "s0", -1)
    b.j(f"{p}_d_loop")
    b.label(f"{p}_d_last")
    b.emit("ld", "a2", "sp", prod_offset)
    b.label(f"{p}_d_found")
    b.jal("ra", f"{p}_nibcount")
    b.emit("slli", "t0", "s0", 4)
    b.emit("add", "s9", "a2", "t0")

    # drop = max(0, D - precision, etiny - e0)
    b.emit("addi", "s8", "s9", -precision)
    b.li("t0", layout.etiny)
    b.emit("sub", "t0", "t0", "s2")
    b.branch("bge", "s8", "t0", f"{p}_m_drop1")
    b.mv("s8", "t0")
    b.label(f"{p}_m_drop1")
    b.bgtz("s8", f"{p}_m_need_round")
    b.li("s8", 0)
    b.emit("ld", "s5", "sp", prod_offset)
    b.emit("ld", "s6", "sp", prod_offset + 8)
    b.emit("ld", "s7", "sp", prod_offset + 16)
    b.j(f"{p}_m_after_round")

    b.label(f"{p}_m_need_round")
    b.branch("blt", "s8", "s9", f"{p}_m_general")
    b.j(f"{p}_m_all_dropped")

    # General case: 1 <= drop < D.  Build the quotient digit by digit from
    # nibble (drop + precision - 1) down to nibble (drop).
    b.label(f"{p}_m_general")
    b.li("s5", 0)
    b.li("s6", 0)
    b.li("s7", 0)
    b.emit("addi", "s0", "s8", precision - 1)
    b.li("s10", precision)
    b.label(f"{p}_mq_loop")
    b.mv("a2", "s0")
    b.jal("ra", f"{p}_nibble_at")
    b.emit("slli", "s7", "s7", 4)
    b.emit("srli", "t0", "s6", 60)
    b.emit("or", "s7", "s7", "t0")
    b.emit("slli", "s6", "s6", 4)
    b.emit("srli", "t0", "s5", 60)
    b.emit("or", "s6", "s6", "t0")
    b.emit("slli", "s5", "s5", 4)
    b.emit("or", "s5", "s5", "a2")
    b.emit("addi", "s0", "s0", -1)
    b.emit("addi", "s10", "s10", -1)
    b.bnez("s10", f"{p}_mq_loop")
    # Rounding digit (position drop-1) and sticky digits below it.
    b.emit("addi", "a2", "s8", -1)
    b.jal("ra", f"{p}_nibble_at")
    b.mv("a3", "a2")
    b.emit("addi", "t0", "s8", -1)
    b.emit("srli", "t1", "t0", 4)             # product word of the digit
    b.emit("andi", "t2", "t0", 15)
    b.emit("slli", "t2", "t2", 2)
    b.emit("slli", "t3", "t1", 3)
    b.emit("add", "t3", "t3", "sp")
    b.emit("ld", "t4", "t3", prod_offset)
    b.li("t5", 1)
    b.emit("sll", "t5", "t5", "t2")
    b.emit("addi", "t5", "t5", -1)
    b.emit("and", "a4", "t4", "t5")           # sticky within the word
    b.label(f"{p}_m_sticky_loop")
    b.beqz("t1", f"{p}_m_sticky_done")
    b.emit("addi", "t1", "t1", -1)
    b.emit("slli", "t3", "t1", 3)
    b.emit("add", "t3", "t3", "sp")
    b.emit("ld", "t4", "t3", prod_offset)
    b.emit("or", "a4", "a4", "t4")
    b.j(f"{p}_m_sticky_loop")
    b.label(f"{p}_m_sticky_done")
    # Round-half-even decision (a3 = digit, a4 = sticky).
    b.li("t0", 5)
    b.branch("blt", "t0", "a3", f"{p}_m_round_up")
    b.branch("bne", "a3", "t0", f"{p}_m_after_incr")
    b.bnez("a4", f"{p}_m_round_up")
    b.emit("andi", "t2", "s5", 1)
    b.bnez("t2", f"{p}_m_round_up")
    b.j(f"{p}_m_after_incr")
    b.label(f"{p}_m_round_up")
    hw_bcd_increment(("s5", "s6", "s7"))
    # All-nines quotient carried out to 10**precision: fold back to
    # 10**(precision-1), exponent + 1.  Nibble ``precision`` lands in the
    # high word at (precision % 16); nibble precision-1 one position lower.
    b.li("t0", 1 << (4 * (precision % 16)))
    b.branch("bne", "s7", "t0", f"{p}_m_after_incr")
    b.li("s5", 0)
    b.li("s6", 0)
    b.li("s7", 1 << (4 * ((precision - 1) % 16)))
    b.emit("addi", "s8", "s8", 1)
    b.label(f"{p}_m_after_incr")
    b.j(f"{p}_m_after_round")

    # Everything dropped (deep underflow): result is 0 or 1 ulp.
    b.label(f"{p}_m_all_dropped")
    b.li("s5", 0)
    b.li("s6", 0)
    b.li("s7", 0)
    b.branch("bne", "s8", "s9", f"{p}_m_after_round")
    b.emit("addi", "a2", "s9", -1)            # most significant digit
    b.jal("ra", f"{p}_nibble_at")
    b.mv("a3", "a2")
    b.emit("addi", "t0", "s9", -1)
    b.emit("srli", "t1", "t0", 4)
    b.emit("andi", "t2", "t0", 15)
    b.emit("slli", "t2", "t2", 2)
    b.emit("slli", "t3", "t1", 3)
    b.emit("add", "t3", "t3", "sp")
    b.emit("ld", "t4", "t3", prod_offset)
    b.li("t5", 1)
    b.emit("sll", "t5", "t5", "t2")
    b.emit("addi", "t5", "t5", -1)
    b.emit("and", "a4", "t4", "t5")
    b.label(f"{p}_m_ad_sticky_loop")
    b.beqz("t1", f"{p}_m_ad_sticky_done")
    b.emit("addi", "t1", "t1", -1)
    b.emit("slli", "t3", "t1", 3)
    b.emit("add", "t3", "t3", "sp")
    b.emit("ld", "t4", "t3", prod_offset)
    b.emit("or", "a4", "a4", "t4")
    b.j(f"{p}_m_ad_sticky_loop")
    b.label(f"{p}_m_ad_sticky_done")
    b.li("t0", 5)
    b.branch("blt", "t0", "a3", f"{p}_m_ad_one")
    b.branch("bne", "a3", "t0", f"{p}_m_after_round")
    b.beqz("a4", f"{p}_m_after_round")
    b.label(f"{p}_m_ad_one")
    b.li("s5", 1)
    b.label(f"{p}_m_after_round")

    # ----- exponent, overflow, clamp, re-encode --------------------------------
    b.emit("add", "s2", "s2", "s8")
    b.emit("or", "t0", "s5", "s6")
    b.emit("or", "t0", "t0", "s7")
    b.beqz("t0", f"{p}_zero_result")
    b.beqz("s7", f"{p}_mq_cnt_mid")
    b.mv("a2", "s7")
    b.jal("ra", f"{p}_nibcount")
    b.emit("addi", "a6", "a2", 32)
    b.j(f"{p}_mq_cnt_done")
    b.label(f"{p}_mq_cnt_mid")
    b.beqz("s6", f"{p}_mq_cnt_lo")
    b.mv("a2", "s6")
    b.jal("ra", f"{p}_nibcount")
    b.emit("addi", "a6", "a2", 16)
    b.j(f"{p}_mq_cnt_done")
    b.label(f"{p}_mq_cnt_lo")
    b.mv("a2", "s5")
    b.jal("ra", f"{p}_nibcount")
    b.mv("a6", "a2")
    b.label(f"{p}_mq_cnt_done")
    b.emit("add", "t0", "s2", "a6")
    b.emit("addi", "t0", "t0", -1)
    b.li("t1", layout.emax)
    b.branch("bge", "t1", "t0", f"{p}_m_no_ovf")
    b.j(f"{p}_m_overflow")
    b.label(f"{p}_m_no_ovf")
    b.li("t1", layout.etop)
    b.branch("bge", "t1", "s2", f"{p}_m_no_clamp")
    b.emit("sub", "t2", "s2", "t1")           # pad digits
    b.mv("s2", "t1")
    b.label(f"{p}_m_clamp_loop")
    b.beqz("t2", f"{p}_m_no_clamp")
    b.emit("slli", "s7", "s7", 4)
    b.emit("srli", "t3", "s6", 60)
    b.emit("or", "s7", "s7", "t3")
    b.emit("slli", "s6", "s6", 4)
    b.emit("srli", "t3", "s5", 60)
    b.emit("or", "s6", "s6", "t3")
    b.emit("slli", "s5", "s5", 4)
    b.emit("addi", "t2", "t2", -1)
    b.j(f"{p}_m_clamp_loop")
    b.label(f"{p}_m_no_clamp")
    # BCD -> DPD via the reverse table; 12-bit chunks at nibble offset 3d.
    b.la("t0", TABLE_SYMBOLS["bcd2dpd"])
    b.li("t5", 0xFFF)
    b.li("a2", 0)                             # continuation, low word
    b.li("a4", 0)                             # continuation, high word
    bcd_regs = ("s5", "s6", "s7")
    for declet in range(layout.declets):
        bit = 12 * declet
        word, word_bit = divmod(bit, 64)
        if word_bit + 12 <= 64:
            b.emit("srli", "t2", bcd_regs[word], word_bit)
        else:
            b.emit("srli", "t2", bcd_regs[word], word_bit)
            b.emit("slli", "t6", bcd_regs[word + 1], 64 - word_bit)
            b.emit("or", "t2", "t2", "t6")
        b.emit("and", "t2", "t2", "t5")
        b.emit("slli", "t2", "t2", 1)
        b.emit("add", "t2", "t2", "t0")
        b.emit("lhu", "t3", "t2", 0)
        emit_place_declet(b, layout, declet, src="t3",
                          lo_acc="a2", hi_acc="a4", tmp="t6")
    # Most significant digit: nibble precision-1 of the BCD value.
    b.emit("srli", "t6", bcd_regs[(precision - 1) // 16],
           4 * ((precision - 1) % 16))
    b.emit("andi", "t6", "t6", 0xF)
    b.li("t4", layout.bias)
    b.emit("add", "a3", "s2", "t4")
    emit_wide_encode_result(
        b, layout, f"{p}_fin", sign="s1", bexp="a3", msd="t6",
        cont_lo="a2", cont_hi="a4", out_lo="a0", out_hi="a1",
        tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_m_epilogue")

    # Zero result (either operand zero, or the product rounded to zero).
    b.label(f"{p}_zero_result")
    emit_wide_clamp_exponent(b, layout, f"{p}_z", "s2", "t0")
    b.li("t4", layout.bias)
    b.emit("add", "a3", "s2", "t4")
    emit_wide_encode_result(
        b, layout, f"{p}_zenc", sign="s1", bexp="a3", msd="zero",
        cont_lo="zero", cont_hi="zero", out_lo="a0", out_hi="a1",
        tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_m_epilogue")

    # Overflow to infinity.
    b.label(f"{p}_m_overflow")
    b.emit("slli", "t5", "s1", layout.sign_shift)
    b.li("t6", 0b11110)
    b.emit("slli", "t6", "t6", layout.comb_shift)
    b.emit("or", "a1", "t5", "t6")
    b.li("a0", 0)
    b.j(f"{p}_m_epilogue")

    b.label(f"{p}_m_epilogue")
    for index, reg in enumerate(_SAVED):
        b.emit("ld", reg, "sp", 8 * index)
    b.emit("addi", "sp", "sp", frame)
    b.ret()

    # ----- local subroutines, dummies, special path -----------------------------
    _emit_unpack_bcd_subroutine(b, layout, p)
    _emit_nibcount_subroutine(b, p)
    _emit_nibble_at_subroutine(b, p, prod_offset)
    if not use_accelerator:
        _emit_dummy_functions(b, p)
    emit_wide_special_path(b, layout, p)
    return p


def _emit_unpack_bcd_subroutine(b, layout: WideLayout, p: str) -> None:
    """Local subroutine: a2/a3 = wide word pair -> a2/a3/a6 = BCD coefficient
    words (low/mid/high), a4 = sign, a5 = biased exponent.  Clobbers t0-t6
    and a7."""
    b.label(f"{p}_unpack_bcd")
    emit_wide_unpack_fields(
        b, layout, f"{p}_ub", lo="a2", hi="a3", out_sign="a4", out_bexp="a5",
        out_cont_hi="t3", out_msd="t4", tmp1="t0", tmp2="t1",
    )
    b.la("t0", TABLE_SYMBOLS["dpd2bcd"])
    b.li("t6", 0)                    # BCD low word accumulator
    b.li("a6", 0)                    # BCD mid word accumulator
    b.li("a7", 0)                    # BCD high word accumulator
    accs = ("t6", "a6", "a7")
    for declet in range(layout.declets):
        emit_extract_declet(b, layout, declet, lo="a2", hi="t3", out="t1", tmp="t5")
        b.emit("slli", "t1", "t1", 1)
        b.emit("add", "t1", "t1", "t0")
        b.emit("lhu", "t1", "t1", 0)
        bit = 12 * declet
        word, word_bit = divmod(bit, 64)
        if word_bit + 12 <= 64:
            if word_bit:
                b.emit("slli", "t5", "t1", word_bit)
                b.emit("or", accs[word], accs[word], "t5")
            else:
                b.emit("or", accs[word], accs[word], "t1")
        else:
            lo_bits = 64 - word_bit
            b.emit("andi", "t5", "t1", (1 << lo_bits) - 1)
            b.emit("slli", "t5", "t5", word_bit)
            b.emit("or", accs[word], accs[word], "t5")
            b.emit("srli", "t5", "t1", lo_bits)
            b.emit("or", accs[word + 1], accs[word + 1], "t5")
    # The MSD occupies nibble precision-1.
    msd_word, msd_nibble = divmod(layout.precision - 1, 16)
    b.emit("slli", "t5", "t4", 4 * msd_nibble)
    b.emit("or", accs[msd_word], accs[msd_word], "t5")
    b.mv("a2", "t6")
    b.mv("a3", "a6")
    b.mv("a6", "a7")
    b.ret()


def _emit_nibcount_subroutine(b, p: str) -> None:
    """Local subroutine: a2 = packed BCD word -> a2 = significant nibbles.

    Clobbers t0.  Returns 0 for a zero input (callers exclude that case).
    """
    b.label(f"{p}_nibcount")
    b.li("t0", 0)
    b.label(f"{p}_nibcount_loop")
    b.beqz("a2", f"{p}_nibcount_done")
    b.emit("srli", "a2", "a2", 4)
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_nibcount_loop")
    b.label(f"{p}_nibcount_done")
    b.mv("a2", "t0")
    b.ret()


def _emit_nibble_at_subroutine(b, p: str, prod_offset: int) -> None:
    """Local subroutine: a2 = nibble index -> a2 = product nibble value.

    Indexes the product buffer in the caller's frame (sp-relative).
    Clobbers t0-t2.
    """
    b.label(f"{p}_nibble_at")
    b.emit("srli", "t0", "a2", 4)
    b.emit("slli", "t0", "t0", 3)
    b.emit("add", "t0", "t0", "sp")
    b.emit("ld", "t1", "t0", prod_offset)
    b.emit("andi", "t2", "a2", 15)
    b.emit("slli", "t2", "t2", 2)
    b.emit("srl", "t1", "t1", "t2")
    b.emit("andi", "a2", "t1", 0xF)
    b.ret()
