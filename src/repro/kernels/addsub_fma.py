"""Format-generic decimal add/sub/FMA kernels (software and Method-1).

These kernels extend the Fig. 1 software/co-design split from multiplication
to the other three operations of the operation axis:

* **add/subtract** — unpack both operands to packed-BCD stack buffers, apply
  the bounded-alignment technique of :func:`repro.decnumber.arith.add` (shift
  the larger-exponent operand down, replacing the other with a one-digit
  sticky proxy when it sits entirely below the observable digits), then run
  an effective add or subtract over the aligned multi-word buffers, round
  once (round-half-even) and re-encode.
* **fma** — form the exact double-length product first (software: Fig. 1's
  multiplicand-multiple table computed in memory; Method-1: the accelerator's
  multiples/accumulator datapath, read back through ``RD``), then feed it
  through the *same* aligned-add core as add/subtract so the result is
  rounded exactly once.

The software and Method-1 variants share every line of the flow except the
wide BCD add/sub primitives and the product stage: software uses the
word-parallel six-correction BCD trick on the scalar ALU, Method-1 streams
the buffers through ``DEC_ADDC``/``DEC_SUBB`` — one command per 16-digit
word, with the inter-word carry/borrow chained through the accelerator's
STATUS bit so no separate carry adds or readbacks are needed.  The
``method1_dummy`` variant replaces every accelerator
invocation with a static dummy-function call (the estimation methodology of
the paper's reference [9]); its results are garbage and are never verified,
only timed.

All loop bounds are static (buffer word counts are compile-time constants),
so the dummy variant's garbage data can never change the instruction count
unboundedly.  Results are bit-identical to ``arith.add``/``subtract``/``fma``
+ ``encode`` under the format's default round-half-even context.
"""

from __future__ import annotations

from repro.kernels.common import (
    emit_clamp_exponent,
    emit_encode_result,
    emit_unpack_fields,
)
from repro.kernels.tables import TABLE_SYMBOLS
from repro.kernels.wide import (
    WideLayout,
    emit_place_declet,
    emit_wide_clamp_exponent,
    emit_wide_encode_result,
    emit_wide_unpack_fields,
)
from repro.rocc.decimal_accel import ACC_WORD_SELECTORS

_SAVED = ("ra", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11")
_SAVE_BYTES = 8 * len(_SAVED)  # buffers start above the saved registers

_MULTIPLICAND_REG = 1
_MULTIPLE_COUNT = 9  # MM[1] .. MM[9]

#: Word-parallel BCD-add constants (one bit / digit 6 per nibble).
_ONES_NIBBLES = 0x1111111111111111
_SIXES_NIBBLES = 0x6666666666666666
_NINES_NIBBLES = 0x9999999999999999

_VARIANTS = ("software", "method1", "method1_dummy")


class _OpKernelEmitter:
    """Emits one add/sub/fma kernel for one format and one variant.

    Register contract of the shared core (everything callee-saved):

    ====  ========================================================
    s0    pointer to buffer A (the larger-exponent / product side)
    s1    pointer to buffer B (the other operand)
    s2    exponent of A        s3  exponent of B
    s4    sign of A            s5  sign of B
    s6    digit count of A     s7  digit count of B
    s8    result sign          s9  result exponent
    s10   result digit count   s11 scratch (drop / loop counters)
    ====  ========================================================

    Local subroutines preserve ``a4``/``a5`` (their pointer/count arguments)
    and every ``s`` register; they clobber ``t0-t6`` and ``a0-a3``/``a6-a7``.
    """

    def __init__(self, b, spec, label: str, operation: str, variant: str, fused: bool):
        if variant not in _VARIANTS:
            raise ValueError(f"unknown kernel variant: {variant!r}")
        self.b = b
        self.spec = spec
        self.p = label
        self.operation = operation
        self.variant = variant
        self.fused = fused
        self.soft = variant == "software"
        self.dummy = variant == "method1_dummy"

        self.W = spec.words_per_value
        self.prec = spec.precision
        cap = (3 if fused else 2) * self.prec + 2
        #: working-buffer words: the largest aligned sum plus one slack word
        #: (so the increment/shift helpers can never run off the end).
        self.NW = (cap + 15) // 16 + 1
        #: words holding one unpacked coefficient (what the encoder reads).
        self.K = (self.prec + 15) // 16
        #: words of the accelerator accumulator (the 2p-digit product).
        self.ACCW = (2 * self.prec + 15) // 16

        self.layout = WideLayout(spec) if self.W == 2 else None
        self.bias = spec.bias
        self.etiny = spec.etiny
        self.etop = spec.etop
        self.emax = spec.emax
        if self.W == 2:
            self.comb_shift = self.layout.comb_shift
            self.signal_shift = self.layout.signal_shift
            self.cont_clear = self.layout.cont_hi_clear
        else:
            self.comb_shift = 58
            self.signal_shift = 57
            self.cont_clear = 14

        nwb = 8 * self.NW
        self.OFF_A = _SAVE_BYTES
        self.OFF_B = self.OFF_A + nwb
        if fused:
            self.OFF_Y = self.OFF_B + nwb
            if self.soft:
                #: MM[d] lives at OFF_MM + (d-1)*nwb, d = 1..9; x unpacks
                #: straight into MM[1].
                self.OFF_MM = self.OFF_Y + nwb
                self.extra = (3 + _MULTIPLE_COUNT) * nwb
                self.OFF_X = self.OFF_MM
            else:
                self.extra = 3 * nwb
                self.OFF_X = self.OFF_A
        else:
            self.extra = 2 * nwb
        self.used_stubs = set()

    # ------------------------------------------------------------- utilities
    def L(self, suffix: str) -> str:
        return f"{self.p}_{suffix}"

    def _stub(self, name: str) -> str:
        self.used_stubs.add(name)
        return self.L(f"dummy_{name}")

    def _swap(self, pairs) -> None:
        b = self.b
        for lhs, rhs in pairs:
            b.mv("t0", lhs)
            b.mv(lhs, rhs)
            b.mv(rhs, "t0")

    def _zero_buffer(self, base_reg: str, first_word: int = 0) -> None:
        for w in range(first_word, self.NW):
            self.b.emit("sd", "zero", base_reg, 8 * w)

    def _canonical_inf(self, sign_reg) -> None:
        """a0[/a1] = canonical infinity with the sign (0/1) in ``sign_reg``."""
        b = self.b
        b.emit("slli", "t5", sign_reg, 63)
        b.li("t6", 0b11110)
        b.emit("slli", "t6", "t6", self.comb_shift)
        if self.W == 1:
            b.emit("or", "a0", "t5", "t6")
        else:
            b.emit("or", "a1", "t5", "t6")
            b.li("a0", 0)

    def _canonical_qnan(self) -> None:
        b = self.b
        b.li("t6", 0b11111)
        b.emit("slli", "t6", "t6", self.comb_shift)
        if self.W == 1:
            b.mv("a0", "t6")
        else:
            b.mv("a1", "t6")
            b.li("a0", 0)

    def _quiet_nan_from(self, lo_reg: str, hi_reg: str) -> None:
        """a0[/a1] = the NaN in (lo, hi) with the signalling bit cleared."""
        b = self.b
        b.li("t6", 1)
        b.emit("slli", "t6", "t6", self.signal_shift)
        b.not_("t6", "t6")
        if self.W == 1:
            b.emit("and", "a0", hi_reg, "t6")
        else:
            if lo_reg != "a0":
                b.mv("a0", lo_reg)
            b.emit("and", "a1", hi_reg, "t6")
        b.ret()

    def _nonzero_coefficient_branch(self, comb_reg, lo_reg, hi_reg, target, tmp) -> None:
        """Branch to ``target`` when the finite operand's coefficient != 0."""
        b = self.b
        b.li(tmp, 24)
        b.branch("bgeu", comb_reg, tmp, target)  # MSD 8/9 -> nonzero
        b.emit("andi", tmp, comb_reg, 7)
        b.bnez(tmp, target)
        b.emit("slli", tmp, hi_reg, self.cont_clear)
        b.bnez(tmp, target)
        if self.W == 2:
            b.bnez(lo_reg, target)

    # ---------------------------------------------------- RoCC / dummy hooks
    def _hw_read(self, selector, dest: str) -> None:
        """dest = accelerator read through ``selector``.

        ``selector`` is an int (< 32: encoded in the rs2 field) or a register
        name holding a wide selector passed by value.
        """
        b = self.b
        if self.dummy:
            b.call(self._stub("rd"))
            b.mv(dest, "a0")
        elif isinstance(selector, int):
            b.rocc("RD", rd=dest, rs1=0, rs2=selector, xd=True)
        else:
            b.rocc("RD", rd=dest, rs1=0, rs2=selector, xd=True, xs2=True)

    def _hw_dec_addc(self, src1: str, src2: str, dest: str) -> None:
        """dest = one 16-digit word of src1 + src2; carry chains via status."""
        b = self.b
        if self.dummy:
            b.mv("a0", src1)
            b.call(self._stub("dec_add"))
            b.mv(dest, "a0")
        else:
            b.rocc("DEC_ADDC", rd=dest, rs1=src1, rs2=src2,
                   xd=True, xs1=True, xs2=True)

    def _hw_dec_subb(self, src1: str, src2: str, dest: str) -> None:
        """dest = one 16-digit word of src1 - src2; borrow chains via status."""
        b = self.b
        if self.dummy:
            b.mv("a0", src1)
            b.call(self._stub("dec_addsub"))
            b.mv(dest, "a0")
        else:
            b.rocc("DEC_SUBB", rd=dest, rs1=src1, rs2=src2,
                   xd=True, xs1=True, xs2=True)

    def _hw_clear(self) -> None:
        if self.dummy:
            self.b.call(self._stub("clr"))
        else:
            self.b.rocc("CLR_ALL")

    def _hw_write_lane(self, lane: int, src: str, register: int) -> None:
        b = self.b
        if self.dummy:
            b.mv("a0", src)
            b.call(self._stub("wr"))
        else:
            b.rocc("WR", rd=lane, rs1=src, rs2=register, xs1=True)

    def _hw_generate_multiple(self, index: int) -> None:
        b = self.b
        if self.dummy:
            b.call(self._stub("dec_add"))
        else:
            b.rocc("DEC_ADD", rd=index + 1, rs1=index, rs2=_MULTIPLICAND_REG)

    def _hw_accumulate_digit(self, digit_reg: str) -> None:
        b = self.b
        if self.dummy:
            b.mv("a0", digit_reg)
            b.call(self._stub("dec_accum"))
        else:
            b.rocc("DEC_ACCUM", rd=0, rs1=digit_reg, xs1=True)

    # ------------------------------------------------------ local subroutines
    def _emit_unpack(self) -> None:
        """{p}_unpack: decode one finite operand into a packed-BCD buffer.

        In: a2 (W=1) or a2/a3 = lo/hi (W=2) = encoded value; a5 = buffer.
        Out: a3 = sign, a4 = biased exponent; buffer words 0..K-1 hold the
        coefficient (LSW first), K..NW-1 are zeroed.  Clobbers t0-t6, a0-a1,
        a6-a7; preserves a5.
        """
        b, p = self.b, self.p
        b.label(f"{p}_unpack")
        if self.W == 1:
            emit_unpack_fields(
                b, f"{p}_upk", src="a2", out_sign="a6", out_bexp="a7",
                out_cont="t3", out_msd="t4", tmp1="t0", tmp2="t1",
            )
            b.la("t5", TABLE_SYMBOLS["dpd2bcd"])
            b.emit("andi", "t1", "t3", 0x3FF)
            b.emit("slli", "t1", "t1", 1)
            b.emit("add", "t1", "t1", "t5")
            b.emit("lhu", "t6", "t1", 0)
            for declet in range(1, self.spec.declets):
                b.emit("srli", "t2", "t3", 10 * declet)
                b.emit("andi", "t2", "t2", 0x3FF)
                b.emit("slli", "t2", "t2", 1)
                b.emit("add", "t2", "t2", "t5")
                b.emit("lhu", "t0", "t2", 0)
                b.emit("slli", "t0", "t0", 12 * declet)
                b.emit("or", "t6", "t6", "t0")
            b.emit("slli", "t0", "t4", 12 * self.spec.declets)
            b.emit("or", "t6", "t6", "t0")
            b.emit("sd", "t6", "a5", 0)
            self._zero_buffer("a5", first_word=1)
        else:
            layout = self.layout
            emit_wide_unpack_fields(
                b, layout, f"{p}_upk", lo="a2", hi="a3",
                out_sign="a6", out_bexp="a7", out_cont_hi="t3", out_msd="t4",
                tmp1="t0", tmp2="t1",
            )
            # Packed-BCD words accumulate in t6 / a0 / a1 (34 digits -> 3).
            b.li("t6", 0)
            b.li("a0", 0)
            b.li("a1", 0)
            b.la("t5", TABLE_SYMBOLS["dpd2bcd"])
            words = ("t6", "a0", "a1")
            for declet in range(layout.declets):
                # Extract declet from (a2 = cont lo, t3 = cont hi).
                offset, lo_bits, hi_bits = layout.declet_bounds(declet)
                if hi_bits == 0:
                    b.emit("srli", "t0", "a2", offset)
                    b.emit("andi", "t0", "t0", 0x3FF)
                elif lo_bits == 0:
                    b.emit("srli", "t0", "t3", offset - 64)
                    b.emit("andi", "t0", "t0", 0x3FF)
                else:
                    b.emit("srli", "t0", "a2", offset)
                    b.emit("andi", "t1", "t3", (1 << hi_bits) - 1)
                    b.emit("slli", "t1", "t1", lo_bits)
                    b.emit("or", "t0", "t0", "t1")
                b.emit("slli", "t0", "t0", 1)
                b.emit("add", "t0", "t0", "t5")
                b.emit("lhu", "t0", "t0", 0)
                # Place the 12-bit BCD group at bit offset 12 * declet.
                bit = 12 * declet
                word, off = divmod(bit, 64)
                if off + 12 <= 64:
                    if off:
                        b.emit("slli", "t1", "t0", off)
                    else:
                        b.mv("t1", "t0")
                    b.emit("or", words[word], words[word], "t1")
                else:
                    b.emit("slli", "t1", "t0", off)  # low part (truncated)
                    b.emit("or", words[word], words[word], "t1")
                    b.emit("srli", "t0", "t0", 64 - off)
                    b.emit("or", words[word + 1], words[word + 1], "t0")
            msd_bit = 12 * layout.declets
            word, off = divmod(msd_bit, 64)
            b.emit("slli", "t0", "t4", off)
            b.emit("or", words[word], words[word], "t0")
            for w, reg in enumerate(words):
                b.emit("sd", reg, "a5", 8 * w)
            self._zero_buffer("a5", first_word=len(words))
        b.mv("a3", "a6")
        b.mv("a4", "a7")
        b.ret()

    def _emit_nibcount(self) -> None:
        """{p}_nibcount: a5 = buffer -> a2 = significant digits (0 if zero).

        Clobbers t0-t2.
        """
        b, p = self.b, self.p
        b.label(f"{p}_nibcount")
        b.li("t0", self.NW - 1)
        b.label(f"{p}_nc_scan")
        b.emit("slli", "t1", "t0", 3)
        b.emit("add", "t1", "t1", "a5")
        b.emit("ld", "t2", "t1", 0)
        b.bnez("t2", f"{p}_nc_found")
        b.emit("addi", "t0", "t0", -1)
        b.branch("bge", "t0", "zero", f"{p}_nc_scan")
        b.li("a2", 0)
        b.ret()
        b.label(f"{p}_nc_found")
        b.emit("slli", "a2", "t0", 4)
        b.label(f"{p}_nc_digits")
        b.beqz("t2", f"{p}_nc_done")
        b.emit("srli", "t2", "t2", 4)
        b.emit("addi", "a2", "a2", 1)
        b.j(f"{p}_nc_digits")
        b.label(f"{p}_nc_done")
        b.ret()

    def _emit_shl(self) -> None:
        """{p}_shl: shift buffer a5 left (toward high words) by a4 nibbles.

        In place; the caller guarantees the result fits.  Clobbers t0-t6,
        a6-a7; preserves a4/a5.
        """
        b, p = self.b, self.p
        b.label(f"{p}_shl")
        b.emit("srli", "t0", "a4", 4)        # word shift
        b.emit("andi", "t1", "a4", 15)
        b.emit("slli", "t1", "t1", 2)        # bit shift
        b.li("t2", self.NW - 1)              # destination word index
        b.label(f"{p}_shl_loop")
        b.emit("sub", "t3", "t2", "t0")      # source word index
        b.li("t5", 0)
        b.branch("blt", "t3", "zero", f"{p}_shl_store")
        b.emit("slli", "t4", "t3", 3)
        b.emit("add", "t4", "t4", "a5")
        b.emit("ld", "t5", "t4", 0)
        b.beqz("t1", f"{p}_shl_store")
        b.emit("sll", "t5", "t5", "t1")
        b.emit("addi", "t6", "t3", -1)
        b.branch("blt", "t6", "zero", f"{p}_shl_store")
        b.emit("slli", "t4", "t6", 3)
        b.emit("add", "t4", "t4", "a5")
        b.emit("ld", "a6", "t4", 0)
        b.li("a7", 64)
        b.emit("sub", "a7", "a7", "t1")
        b.emit("srl", "a6", "a6", "a7")
        b.emit("or", "t5", "t5", "a6")
        b.label(f"{p}_shl_store")
        b.emit("slli", "t4", "t2", 3)
        b.emit("add", "t4", "t4", "a5")
        b.emit("sd", "t5", "t4", 0)
        b.emit("addi", "t2", "t2", -1)
        b.branch("bge", "t2", "zero", f"{p}_shl_loop")
        b.ret()

    def _emit_shr(self) -> None:
        """{p}_shr: shift buffer a5 right by a4 nibbles (zero fill).

        Clobbers t0-t6, a6-a7; preserves a4/a5.
        """
        b, p = self.b, self.p
        b.label(f"{p}_shr")
        b.emit("srli", "t0", "a4", 4)
        b.emit("andi", "t1", "a4", 15)
        b.emit("slli", "t1", "t1", 2)
        b.li("t2", 0)
        b.label(f"{p}_shr_loop")
        b.emit("add", "t3", "t2", "t0")      # source word index
        b.li("t5", 0)
        b.li("t4", self.NW)
        b.branch("bge", "t3", "t4", f"{p}_shr_store")
        b.emit("slli", "t4", "t3", 3)
        b.emit("add", "t4", "t4", "a5")
        b.emit("ld", "t5", "t4", 0)
        b.beqz("t1", f"{p}_shr_store")
        b.emit("srl", "t5", "t5", "t1")
        b.emit("addi", "t6", "t3", 1)
        b.li("t4", self.NW)
        b.branch("bge", "t6", "t4", f"{p}_shr_store")
        b.emit("slli", "t4", "t6", 3)
        b.emit("add", "t4", "t4", "a5")
        b.emit("ld", "a6", "t4", 0)
        b.li("a7", 64)
        b.emit("sub", "a7", "a7", "t1")
        b.emit("sll", "a6", "a6", "a7")
        b.emit("or", "t5", "t5", "a6")
        b.label(f"{p}_shr_store")
        b.emit("slli", "t4", "t2", 3)
        b.emit("add", "t4", "t4", "a5")
        b.emit("sd", "t5", "t4", 0)
        b.emit("addi", "t2", "t2", 1)
        b.li("t4", self.NW)
        b.branch("blt", "t2", "t4", f"{p}_shr_loop")
        b.ret()

    def _emit_rinfo(self) -> None:
        """{p}_rinfo: a4 = drop (1 <= drop <= digits), a5 = buffer ->
        a2 = digit at position drop-1, a3 = nonzero iff any digit below it.

        Clobbers t0-t6.
        """
        b, p = self.b, self.p
        b.label(f"{p}_rinfo")
        b.emit("addi", "t0", "a4", -1)       # digit position
        b.emit("srli", "t1", "t0", 4)        # word
        b.emit("andi", "t2", "t0", 15)       # nibble
        b.emit("slli", "t3", "t1", 3)
        b.emit("add", "t3", "t3", "a5")
        b.emit("ld", "t4", "t3", 0)
        b.emit("slli", "t5", "t2", 2)
        b.emit("srl", "a2", "t4", "t5")
        b.emit("andi", "a2", "a2", 0xF)
        b.li("a3", 0)
        b.beqz("t5", f"{p}_ri_words")
        b.li("t6", 1)
        b.emit("sll", "t6", "t6", "t5")
        b.emit("addi", "t6", "t6", -1)
        b.emit("and", "a3", "t4", "t6")
        b.label(f"{p}_ri_words")
        b.li("t5", 0)
        b.label(f"{p}_ri_loop")
        b.branch("bge", "t5", "t1", f"{p}_ri_done")
        b.emit("slli", "t6", "t5", 3)
        b.emit("add", "t6", "t6", "a5")
        b.emit("ld", "t6", "t6", 0)
        b.emit("or", "a3", "a3", "t6")
        b.emit("addi", "t5", "t5", 1)
        b.j(f"{p}_ri_loop")
        b.label(f"{p}_ri_done")
        b.ret()

    def _emit_inc(self) -> None:
        """{p}_inc: add 1 to the packed-BCD buffer a5 (nibble ripple).

        The slack word guarantees a non-9 nibble in real runs; the static
        bound makes the dummy variant's garbage safe too.  Clobbers t0-t6.
        """
        b, p = self.b, self.p
        b.label(f"{p}_inc")
        b.li("t0", 0)                        # nibble index
        b.label(f"{p}_inc_loop")
        b.li("t6", 16 * self.NW)
        b.branch("bge", "t0", "t6", f"{p}_inc_done")
        b.emit("srli", "t1", "t0", 4)
        b.emit("slli", "t1", "t1", 3)
        b.emit("add", "t1", "t1", "a5")
        b.emit("ld", "t2", "t1", 0)
        b.emit("andi", "t3", "t0", 15)
        b.emit("slli", "t3", "t3", 2)
        b.emit("srl", "t4", "t2", "t3")
        b.emit("andi", "t4", "t4", 0xF)
        b.li("t5", 0xF)
        b.emit("sll", "t5", "t5", "t3")
        b.not_("t5", "t5")
        b.emit("and", "t2", "t2", "t5")      # clear the nibble
        b.li("t5", 9)
        b.branch("beq", "t4", "t5", f"{p}_inc_carry")
        b.emit("addi", "t4", "t4", 1)
        b.emit("sll", "t4", "t4", "t3")
        b.emit("or", "t2", "t2", "t4")
        b.emit("sd", "t2", "t1", 0)
        b.label(f"{p}_inc_done")
        b.ret()
        b.label(f"{p}_inc_carry")
        b.emit("sd", "t2", "t1", 0)          # nibble 9 -> 0, carry on
        b.emit("addi", "t0", "t0", 1)
        b.j(f"{p}_inc_loop")

    def _emit_wcmp(self) -> None:
        """{p}_wcmp: magnitude compare buffers a4 / a5 -> a2 in {-1, 0, 1}.

        Clobbers t0-t3.
        """
        b, p = self.b, self.p
        b.label(f"{p}_wcmp")
        b.li("t0", self.NW - 1)
        b.label(f"{p}_wc_loop")
        b.emit("slli", "t1", "t0", 3)
        b.emit("add", "t2", "t1", "a4")
        b.emit("ld", "t2", "t2", 0)
        b.emit("add", "t3", "t1", "a5")
        b.emit("ld", "t3", "t3", 0)
        b.branch("bltu", "t2", "t3", f"{p}_wc_lt")
        b.branch("bltu", "t3", "t2", f"{p}_wc_gt")
        b.emit("addi", "t0", "t0", -1)
        b.branch("bge", "t0", "zero", f"{p}_wc_loop")
        b.li("a2", 0)
        b.ret()
        b.label(f"{p}_wc_gt")
        b.li("a2", 1)
        b.ret()
        b.label(f"{p}_wc_lt")
        b.li("a2", -1)
        b.ret()

    def _emit_copy(self) -> None:
        """{p}_copy: copy NW words from buffer a5 to buffer a4 (clobbers t0)."""
        b, p = self.b, self.p
        b.label(f"{p}_copy")
        for w in range(self.NW):
            b.emit("ld", "t0", "a5", 8 * w)
            b.emit("sd", "t0", "a4", 8 * w)
        b.ret()

    # ------------------------------------------------- wide BCD add/subtract
    def _emit_wadd_wsub(self) -> None:
        """{p}_wadd / {p}_wsub: buffer a4 +=/-= buffer a5 (packed BCD).

        wsub requires |a4| >= |a5| (the caller compares first).  Software:
        word-parallel BCD via the +6/carry-extract trick.  Method-1: one
        DEC_ADDC / DEC_SUBB command per word, the carry/borrow chained
        through the accelerator STATUS bit (CLR_ALL first — nothing in the
        accelerator is live here).  Clobbers t0-t6, a2-a3, a6-a7 (software)
        or t2-t4 (method1); preserves a4/a5.
        """
        if self.soft:
            self._emit_soft_waddsub(sub=False)
            self._emit_soft_waddsub(sub=True)
        else:
            self._emit_hw_wadd()
            self._emit_hw_wsub()

    def _emit_soft_waddsub(self, sub: bool) -> None:
        b, p = self.b, self.p
        b.label(f"{p}_wsub" if sub else f"{p}_wadd")
        b.li("t0", _ONES_NIBBLES)
        b.li("a3", _SIXES_NIBBLES)
        if sub:
            b.li("a2", _NINES_NIBBLES)
            b.li("a6", 1)                    # nines complement + 1
        else:
            b.li("a6", 0)
        for w in range(self.NW):
            b.emit("ld", "t1", "a4", 8 * w)
            b.emit("ld", "t2", "a5", 8 * w)
            if sub:
                b.emit("sub", "t2", "a2", "t2")   # nines complement
            b.emit("add", "t2", "t2", "a6")       # + carry in
            b.emit("add", "t4", "t1", "a3")       # + sixes
            b.emit("add", "t5", "t4", "t2")       # binary sum
            b.emit("sltu", "a7", "t5", "t4")      # decimal carry out
            b.emit("xor", "t6", "t4", "t2")
            b.emit("xor", "t6", "t6", "t5")       # carry-in bit vector
            b.emit("srli", "t6", "t6", 4)
            b.emit("and", "t6", "t6", "t0")
            b.emit("slli", "t4", "a7", 60)
            b.emit("or", "t6", "t6", "t4")        # nibble-carry mask
            b.not_("t4", "t6")
            b.emit("and", "t4", "t4", "t0")       # nibbles with no carry
            b.emit("slli", "t1", "t4", 2)
            b.emit("slli", "t4", "t4", 1)
            b.emit("add", "t4", "t4", "t1")       # 6 per uncarried nibble
            b.emit("sub", "t5", "t5", "t4")
            b.emit("sd", "t5", "a4", 8 * w)
            b.mv("a6", "a7")
        b.ret()

    def _hw_sub_frame(self, enter: bool) -> None:
        """The dummy variant's calls clobber ra inside these subroutines."""
        b = self.b
        if not self.dummy:
            return
        if enter:
            b.emit("addi", "sp", "sp", -16)
            b.emit("sd", "ra", "sp", 0)
        else:
            b.emit("ld", "ra", "sp", 0)
            b.emit("addi", "sp", "sp", 16)

    def _emit_hw_wadd(self) -> None:
        b, p = self.b, self.p
        b.label(f"{p}_wadd")
        self._hw_sub_frame(enter=True)
        self._hw_clear()                     # status carry <- 0 (regfile is dead)
        for w in range(self.NW):
            b.emit("ld", "t2", "a4", 8 * w)
            b.emit("ld", "t3", "a5", 8 * w)
            self._hw_dec_addc("t2", "t3", "t4")
            b.emit("sd", "t4", "a4", 8 * w)
        self._hw_sub_frame(enter=False)
        b.ret()

    def _emit_hw_wsub(self) -> None:
        b, p = self.b, self.p
        b.label(f"{p}_wsub")
        self._hw_sub_frame(enter=True)
        self._hw_clear()                     # status borrow <- 0
        for w in range(self.NW):
            b.emit("ld", "t2", "a4", 8 * w)
            b.emit("ld", "t3", "a5", 8 * w)
            self._hw_dec_subb("t2", "t3", "t4")
            b.emit("sd", "t4", "a4", 8 * w)
        self._hw_sub_frame(enter=False)
        b.ret()

    def _emit_accrd(self) -> None:
        """{p}_accrd: read the 2p-digit accumulator into buffer a5.

        Clobbers t4 (plus ra-frame traffic in the dummy variant).
        """
        b, p = self.b, self.p
        b.label(f"{p}_accrd")
        self._hw_sub_frame(enter=True)
        for w in range(self.ACCW):
            self._hw_read(ACC_WORD_SELECTORS[w], "t4")
            b.emit("sd", "t4", "a5", 8 * w)
        self._hw_sub_frame(enter=False)
        for w in range(self.ACCW, self.NW):
            b.emit("sd", "zero", "a5", 8 * w)
        b.ret()

    def _emit_dummy_stubs(self) -> None:
        """Static dummy functions (estimation methodology, reference [9])."""
        b, p = self.b, self.p

        def frame_enter():
            b.emit("addi", "sp", "sp", -16)
            b.emit("sd", "s0", "sp", 0)
            b.emit("addi", "s0", "sp", 16)

        def frame_leave():
            b.emit("ld", "s0", "sp", 0)
            b.emit("addi", "sp", "sp", 16)
            b.ret()

        returns = {"clr": None, "wr": None, "dec_add": 0x1, "dec_addsub": 0x1,
                   "dec_accum": None, "rd": 0x123}
        for name in sorted(self.used_stubs):
            b.label(f"{p}_dummy_{name}")
            frame_enter()
            if returns[name] is not None:
                b.li("a0", returns[name])
            else:
                b.mv("a1", "a0")
            frame_leave()

    # ------------------------------------------------------------ entry layer
    def _call(self, name: str) -> None:
        self.b.jal("ra", self.L(name))

    def _unbias(self, dest: str, src: str) -> None:
        """dest = src - bias (the bias can exceed the 12-bit addi range)."""
        b = self.b
        if self.bias <= 2047:
            b.emit("addi", dest, src, -self.bias)
        else:
            b.li("t0", self.bias)
            b.emit("sub", dest, src, "t0")

    def _operand_regs(self):
        """(x, y[, z]) argument registers as (lo, hi) pairs (lo None if W=1)."""
        if self.W == 1:
            regs = [(None, "a0"), (None, "a1")]
            if self.fused:
                regs.append((None, "a2"))
        else:
            regs = [("a0", "a1"), ("a2", "a3")]
            if self.fused:
                regs.append(("a4", "a5"))
        return regs

    def _emit_entry(self) -> None:
        """Subtract sign flip, Inf/NaN screen, jump over the special path.

        The special path is emitted *before* the prologue-equipped main body
        so the conditional branches stay short; it returns without a frame.
        """
        b, p = self.b, self.p
        regs = self._operand_regs()
        if self.operation == "sub":
            # Negate Y up front: NaN sign/payload never reach the encoded
            # comparison, so flipping before the screen is safe and lets the
            # whole special path be shared with add.
            b.li("t3", 1)
            b.emit("slli", "t3", "t3", 63)
            y_hi = regs[1][1]
            b.emit("xor", y_hi, y_hi, "t3")
        combs = ("t0", "t1", "t2")
        for creg, (_, hi) in zip(combs, regs):
            b.emit("srli", creg, hi, self.comb_shift)
            b.emit("andi", creg, creg, 0x1F)
        b.li("t3", 0b11110)
        for creg, _ in zip(combs, regs):
            b.branch("bgeu", creg, "t3", self.L("special"))
        b.j(self.L("main"))
        if self.fused:
            self._emit_fma_special()
        else:
            self._emit_addsub_special()

    def _ret_operand(self, lo, hi) -> None:
        """Return operand (lo, hi) verbatim in a0[/a1]."""
        b = self.b
        if self.W == 1:
            if hi != "a0":
                b.mv("a0", hi)
        else:
            if lo != "a0":
                b.mv("a0", lo)
            if hi != "a1":
                b.mv("a1", hi)
        b.ret()

    def _emit_addsub_special(self) -> None:
        """Inf/NaN path for add/sub (Y's sign is already effective)."""
        b, p = self.b, self.p
        (x_lo, x_hi), (y_lo, y_hi) = self._operand_regs()
        b.label(self.L("special"))
        b.li("t3", 0b11111)
        b.branch("beq", "t0", "t3", self.L("sp_x_nan"))
        b.branch("beq", "t1", "t3", self.L("sp_y_nan"))
        # At least one infinity, no NaNs.
        b.li("t3", 0b11110)
        b.branch("bne", "t1", "t3", self.L("sp_x_inf"))   # Y finite -> X is Inf
        b.branch("bne", "t0", "t3", self.L("sp_y_inf"))   # X finite -> Y is Inf
        b.emit("xor", "t4", x_hi, y_hi)                   # both Inf: sign clash?
        b.emit("srli", "t4", "t4", 63)
        b.bnez("t4", self.L("sp_make_nan"))
        b.label(self.L("sp_x_inf"))
        self._ret_operand(x_lo, x_hi)
        b.label(self.L("sp_y_inf"))
        self._ret_operand(y_lo, y_hi)
        b.label(self.L("sp_x_nan"))
        self._quiet_nan_from(x_lo, x_hi)
        b.label(self.L("sp_y_nan"))
        self._quiet_nan_from(y_lo, y_hi)
        b.label(self.L("sp_make_nan"))
        self._canonical_qnan()
        b.ret()

    def _emit_fma_special(self) -> None:
        """Inf/NaN path for fma, in the specification's evaluation order."""
        b, p = self.b, self.p
        (x_lo, x_hi), (y_lo, y_hi), (z_lo, z_hi) = self._operand_regs()
        b.label(self.L("special"))
        b.li("t3", 0b11111)
        b.branch("beq", "t0", "t3", self.L("sp_x_nan"))
        b.branch("beq", "t1", "t3", self.L("sp_y_nan"))
        b.li("t4", 0b11110)
        b.branch("beq", "t0", "t4", self.L("sp_x_inf"))
        b.branch("beq", "t1", "t4", self.L("sp_y_inf"))
        # X and Y finite: Z is the special one.
        b.branch("beq", "t2", "t3", self.L("sp_z_nan"))
        self._ret_operand(z_lo, z_hi)                     # z infinite -> z
        b.label(self.L("sp_x_inf"))
        # Inf * 0 is invalid even when z is an sNaN (checked before z).
        self._nonzero_coefficient_branch("t1", y_lo, y_hi, self.L("sp_prod_inf"), "t5")
        b.j(self.L("sp_make_nan"))
        b.label(self.L("sp_y_inf"))
        self._nonzero_coefficient_branch("t0", x_lo, x_hi, self.L("sp_prod_inf"), "t5")
        b.j(self.L("sp_make_nan"))
        b.label(self.L("sp_prod_inf"))
        b.emit("xor", "t5", x_hi, y_hi)
        b.emit("srli", "t5", "t5", 63)                    # product sign
        b.branch("beq", "t2", "t3", self.L("sp_z_nan"))
        b.branch("beq", "t2", "t4", self.L("sp_z_inf"))
        b.label(self.L("sp_inf_res"))
        self._canonical_inf("t5")
        b.ret()
        b.label(self.L("sp_z_inf"))
        b.emit("srli", "t6", z_hi, 63)
        b.branch("beq", "t6", "t5", self.L("sp_inf_res"))
        b.label(self.L("sp_make_nan"))
        self._canonical_qnan()
        b.ret()
        b.label(self.L("sp_x_nan"))
        self._quiet_nan_from(x_lo, x_hi)
        b.label(self.L("sp_y_nan"))
        self._quiet_nan_from(y_lo, y_hi)
        b.label(self.L("sp_z_nan"))
        self._quiet_nan_from(z_lo, z_hi)

    # ------------------------------------------------------------- main body
    def _unpack_operand(self, lo, hi, dest_offset: int) -> None:
        """Call {p}_unpack on operand (lo, hi) into sp+dest_offset."""
        b = self.b
        if self.W == 1:
            if hi != "a2":
                b.mv("a2", hi)
        else:
            if lo != "a2":
                b.mv("a2", lo)
            if hi != "a3":
                b.mv("a3", hi)
        b.emit("addi", "a5", "sp", dest_offset)
        self._call("unpack")

    def _emit_addsub_main(self) -> None:
        b, p = self.b, self.p
        if self.W == 1:
            b.mv("s5", "a1")                       # park Y across the call
            self._unpack_operand(None, "a0", self.OFF_A)
            b.mv("s4", "a3")
            self._unbias("s2", "a4")
            self._unpack_operand(None, "s5", self.OFF_B)
            b.mv("s5", "a3")
            self._unbias("s3", "a4")
        else:
            b.mv("s5", "a2")
            b.mv("s6", "a3")
            self._unpack_operand("a0", "a1", self.OFF_A)
            b.mv("s4", "a3")
            self._unbias("s2", "a4")
            self._unpack_operand("s5", "s6", self.OFF_B)
            b.mv("s5", "a3")
            self._unbias("s3", "a4")
        b.emit("addi", "s0", "sp", self.OFF_A)
        b.emit("addi", "s1", "sp", self.OFF_B)
        b.mv("a5", "s0")
        self._call("nibcount")
        b.mv("s6", "a2")
        b.mv("a5", "s1")
        self._call("nibcount")
        b.mv("s7", "a2")
        # falls into the shared core

    def _emit_fma_main(self) -> None:
        b, p = self.b, self.p
        if self.W == 1:
            b.mv("s6", "a1")                       # park Y / Z
            b.mv("s7", "a2")
            self._unpack_operand(None, "a0", self.OFF_X)
            b.mv("s4", "a3")
            self._unbias("s2", "a4")
            self._unpack_operand(None, "s6", self.OFF_Y)
        else:
            b.mv("s6", "a2")
            b.mv("s7", "a3")
            b.mv("s8", "a4")
            b.mv("s9", "a5")
            self._unpack_operand("a0", "a1", self.OFF_X)
            b.mv("s4", "a3")
            self._unbias("s2", "a4")
            self._unpack_operand("s6", "s7", self.OFF_Y)
        b.emit("xor", "s4", "s4", "a3")            # product sign
        self._unbias("t1", "a4")
        b.emit("add", "s2", "s2", "t1")            # product exponent
        if self.W == 1:
            self._unpack_operand(None, "s7", self.OFF_B)
        else:
            self._unpack_operand("s8", "s9", self.OFF_B)
        b.mv("s5", "a3")
        self._unbias("s3", "a4")
        b.emit("addi", "s0", "sp", self.OFF_A)
        b.emit("addi", "s1", "sp", self.OFF_B)
        b.mv("a5", "s1")
        self._call("nibcount")
        b.mv("s7", "a2")                           # digits of Z
        b.emit("addi", "a5", "sp", self.OFF_X)
        self._call("nibcount")
        b.mv("s6", "a2")
        b.beqz("s6", self.L("prod_zero"))
        b.emit("addi", "a5", "sp", self.OFF_Y)
        self._call("nibcount")
        b.mv("s10", "a2")                          # digits of Y
        b.beqz("s10", self.L("prod_zero"))
        if self.soft:
            self._emit_soft_product()
        else:
            self._emit_m1_product()
        b.mv("a5", "s0")
        self._call("nibcount")
        b.mv("s6", "a2")
        b.j(self.L("core"))
        b.label(self.L("prod_zero"))
        b.li("s6", 0)                              # exact zero product at s2
        # falls into the shared core

    def _extract_y_digit(self) -> None:
        """t2 = BCD digit ``s11`` of the Y coefficient buffer."""
        b = self.b
        b.emit("srli", "t0", "s11", 4)
        b.emit("slli", "t0", "t0", 3)
        b.emit("addi", "t1", "sp", self.OFF_Y)
        b.emit("add", "t1", "t1", "t0")
        b.emit("ld", "t2", "t1", 0)
        b.emit("andi", "t3", "s11", 15)
        b.emit("slli", "t3", "t3", 2)
        b.emit("srl", "t2", "t2", "t3")
        b.emit("andi", "t2", "t2", 0xF)

    def _emit_soft_product(self) -> None:
        """Exact 2p-digit product via the Fig. 1 multiplicand-multiple table."""
        b, p = self.b, self.p
        nwb = 8 * self.NW
        # MM[d+1] = MM[d] + MM[1]  (MM[1] holds X already).
        b.emit("addi", "s11", "sp", self.OFF_MM)
        b.li("s8", _MULTIPLE_COUNT - 1)
        b.label(self.L("mm_loop"))
        b.emit("addi", "a4", "s11", nwb)
        b.mv("a5", "s11")
        self._call("copy")
        b.emit("addi", "a5", "sp", self.OFF_MM)
        self._call("wadd")
        b.emit("addi", "s11", "s11", nwb)
        b.emit("addi", "s8", "s8", -1)
        b.bnez("s8", self.L("mm_loop"))
        self._zero_buffer("s0")
        # Horner: A = A*10 + MM[digit], most significant Y digit first.
        b.emit("addi", "s11", "s10", -1)
        b.label(self.L("dig_loop"))
        b.li("a4", 1)
        b.mv("a5", "s0")
        self._call("shl")
        self._extract_y_digit()
        b.beqz("t2", self.L("dig_next"))
        b.emit("addi", "t2", "t2", -1)
        b.li("t3", nwb)
        b.emit("mul", "t2", "t2", "t3")
        b.emit("addi", "t4", "sp", self.OFF_MM)
        b.emit("add", "a5", "t4", "t2")
        b.mv("a4", "s0")
        self._call("wadd")
        b.label(self.L("dig_next"))
        b.emit("addi", "s11", "s11", -1)
        b.branch("bge", "s11", "zero", self.L("dig_loop"))

    def _emit_m1_product(self) -> None:
        """Exact product through the accelerator multiples + accumulator."""
        b, p = self.b, self.p
        self._hw_clear()
        for k in range(self.K):                    # lane 0 first (full write)
            b.emit("ld", "t2", "sp", self.OFF_X + 8 * k)
            self._hw_write_lane(k, "t2", _MULTIPLICAND_REG)
        for index in range(1, _MULTIPLE_COUNT):
            self._hw_generate_multiple(index)
        b.emit("addi", "s11", "s10", -1)
        b.label(self.L("dig_loop"))
        self._extract_y_digit()
        self._hw_accumulate_digit("t2")            # acc = acc*10 + reg[digit]
        b.emit("addi", "s11", "s11", -1)
        b.branch("bge", "s11", "zero", self.L("dig_loop"))
        b.mv("a5", "s0")
        self._call("accrd")

    # ------------------------------------------------------------ shared core
    def _emit_core(self) -> None:
        """Bounded alignment + effective add/sub of (A: s0..) and (B: s1..).

        Mirrors :func:`repro.decnumber.arith.add` exactly, including the
        one-digit sticky proxy and the exact-cancellation sign rule.
        """
        b, p = self.b, self.p
        prec = self.prec
        b.label(self.L("core"))
        b.bnez("s6", self.L("co_a_nonzero"))
        b.bnez("s7", self.L("co_b_only"))
        # Both zero: RHE sign is negative only when both inputs are.
        b.emit("and", "s8", "s4", "s5")
        b.mv("s9", "s2")
        b.branch("bge", "s3", "s2", self.L("co_zz"))
        b.mv("s9", "s3")
        b.label(self.L("co_zz"))
        b.j(self.L("zero_out"))
        b.label(self.L("co_b_only"))
        self._swap((("s0", "s1"), ("s2", "s3"), ("s4", "s5"), ("s6", "s7")))
        b.j(self.L("co_one_zero"))
        b.label(self.L("co_a_nonzero"))
        b.bnez("s7", self.L("co_both"))
        b.label(self.L("co_one_zero"))
        # Result = A, padded toward min(eA, eB) but never past eA - (p+1).
        b.mv("t0", "s2")
        b.branch("bge", "s3", "s2", self.L("co_oz1"))
        b.mv("t0", "s3")
        b.label(self.L("co_oz1"))
        b.emit("addi", "t1", "s2", -(prec + 1))
        b.branch("bge", "t0", "t1", self.L("co_oz2"))
        b.mv("t0", "t1")
        b.label(self.L("co_oz2"))
        b.emit("sub", "s10", "s2", "t0")
        b.mv("s9", "t0")
        b.mv("a4", "s10")
        b.mv("a5", "s0")
        self._call("shl")
        b.emit("add", "s6", "s6", "s10")
        b.mv("s8", "s4")
        b.mv("s10", "s6")
        b.j(self.L("round"))
        b.label(self.L("co_both"))
        b.branch("bge", "s2", "s3", self.L("co_noswap"))
        self._swap((("s0", "s1"), ("s2", "s3"), ("s4", "s5"), ("s6", "s7")))
        b.label(self.L("co_noswap"))
        # bound = eA + min(-1, LA - p - 2): below it B is unobservable.
        b.emit("addi", "t0", "s6", -(prec + 2))
        b.li("t1", -1)
        b.branch("blt", "t0", "t1", self.L("co_b1"))
        b.mv("t0", "t1")
        b.label(self.L("co_b1"))
        b.emit("add", "t1", "s2", "t0")
        b.emit("add", "t2", "s7", "s3")
        b.emit("addi", "t2", "t2", -1)
        b.branch("bge", "t2", "t1", self.L("co_noproxy"))
        b.li("t3", 1)                              # sticky proxy (1, bound)
        b.emit("sd", "t3", "s1", 0)
        self._zero_buffer("s1", first_word=1)
        b.mv("s3", "t1")
        b.li("s7", 1)
        b.label(self.L("co_noproxy"))
        b.emit("sub", "s10", "s2", "s3")
        b.mv("a4", "s10")
        b.mv("a5", "s0")
        self._call("shl")
        b.emit("add", "s6", "s6", "s10")
        b.mv("s2", "s3")
        b.branch("beq", "s4", "s5", self.L("co_eff_add"))
        b.mv("a4", "s0")
        b.mv("a5", "s1")
        self._call("wcmp")
        b.bnez("a2", self.L("co_ne"))
        b.li("s8", 0)                              # exact cancellation: +0 (RHE)
        b.mv("s9", "s2")
        b.j(self.L("zero_out"))
        b.label(self.L("co_ne"))
        b.bgtz("a2", self.L("co_a_larger"))
        self._swap((("s0", "s1"),))
        b.mv("s8", "s5")
        b.j(self.L("co_do_sub"))
        b.label(self.L("co_a_larger"))
        b.mv("s8", "s4")
        b.label(self.L("co_do_sub"))
        b.mv("a4", "s0")
        b.mv("a5", "s1")
        self._call("wsub")
        b.j(self.L("co_post"))
        b.label(self.L("co_eff_add"))
        b.mv("s8", "s4")
        b.mv("a4", "s0")
        b.mv("a5", "s1")
        self._call("wadd")
        b.label(self.L("co_post"))
        b.mv("a5", "s0")
        self._call("nibcount")
        b.mv("s10", "a2")
        b.mv("s9", "s2")
        # falls into round

    def _emit_round(self) -> None:
        """One-shot drop: max of the precision and etiny requirements (RHE)."""
        b, p = self.b, self.p
        b.label(self.L("round"))
        b.emit("addi", "t0", "s10", -self.prec)
        b.li("t1", self.etiny)
        b.emit("sub", "t1", "t1", "s9")
        b.branch("bge", "t0", "t1", self.L("rd1"))
        b.mv("t0", "t1")
        b.label(self.L("rd1"))
        b.bgtz("t0", self.L("rd_need"))
        b.j(self.L("finalize"))
        b.label(self.L("rd_need"))
        b.mv("s11", "t0")
        b.branch("bge", "s10", "s11", self.L("rd_not_all"))
        # Every digit is below the round position: the value is under half an
        # ulp of 10^etiny, so it rounds to a signed zero at etiny.
        b.emit("add", "s9", "s9", "s11")
        b.j(self.L("zero_out"))
        b.label(self.L("rd_not_all"))
        b.mv("a4", "s11")
        b.mv("a5", "s0")
        self._call("rinfo")
        b.mv("s6", "a2")                           # round digit
        b.mv("s7", "a3")                           # sticky residue
        b.mv("a4", "s11")
        b.mv("a5", "s0")
        self._call("shr")
        b.emit("add", "s9", "s9", "s11")
        b.li("t0", 5)
        b.branch("blt", "t0", "s6", self.L("rd_up"))
        b.branch("bne", "s6", "t0", self.L("rd_after"))
        b.bnez("s7", self.L("rd_up"))
        b.emit("ld", "t1", "s0", 0)                # exact tie: round to even
        b.emit("andi", "t1", "t1", 1)
        b.bnez("t1", self.L("rd_up"))
        b.j(self.L("rd_after"))
        b.label(self.L("rd_up"))
        b.mv("a5", "s0")
        self._call("inc")
        b.label(self.L("rd_after"))
        b.mv("a5", "s0")
        self._call("nibcount")
        b.mv("s10", "a2")
        b.beqz("s10", self.L("zero_out"))
        b.li("t0", self.prec)
        b.branch("bge", "t0", "s10", self.L("finalize"))
        b.li("a4", 1)                              # 999.. -> 1000..: exact /10
        b.mv("a5", "s0")
        self._call("shr")
        b.emit("addi", "s9", "s9", 1)
        b.emit("addi", "s10", "s10", -1)
        # falls into finalize

    def _emit_finalize(self) -> None:
        b, p = self.b, self.p
        b.label(self.L("finalize"))
        b.emit("add", "t0", "s9", "s10")
        b.emit("addi", "t0", "t0", -1)             # adjusted exponent
        b.li("t1", self.emax)
        b.branch("blt", "t1", "t0", self.L("inf_res"))
        b.li("t1", self.etop)
        b.branch("bge", "t1", "s9", self.L("encode"))
        # Fold-down clamp: pad with zeros down to etop (always fits: the
        # clamp only fires on exact paths where digits + pad <= p).
        b.emit("sub", "a4", "s9", "t1")
        b.mv("a5", "s0")
        self._call("shl")
        b.li("s9", self.etop)
        b.j(self.L("encode"))
        b.label(self.L("zero_out"))
        if self.W == 1:
            emit_clamp_exponent(b, self.L("zc"), "s9", "t0")
        else:
            emit_wide_clamp_exponent(b, self.layout, self.L("zc"), "s9", "t0")
        for w in range(self.K):
            b.emit("sd", "zero", "s0", 8 * w)
        b.j(self.L("encode"))
        b.label(self.L("inf_res"))
        self._canonical_inf("s8")
        b.j(self.L("epilogue"))

    def _emit_encode(self) -> None:
        """Re-encode (s8, buffer at s0, s9) into a0[/a1] and return."""
        b, p = self.b, self.p
        b.label(self.L("encode"))
        if self.W == 1:
            b.emit("ld", "t3", "s0", 0)
            b.la("t0", TABLE_SYMBOLS["bcd2dpd"])
            b.li("t4", 0xFFF)
            b.emit("and", "t2", "t3", "t4")
            b.emit("slli", "t2", "t2", 1)
            b.emit("add", "t2", "t2", "t0")
            b.emit("lhu", "a2", "t2", 0)
            for declet in range(1, self.spec.declets):
                b.emit("srli", "t3", "t3", 12)
                b.emit("and", "t2", "t3", "t4")
                b.emit("slli", "t2", "t2", 1)
                b.emit("add", "t2", "t2", "t0")
                b.emit("lhu", "t6", "t2", 0)
                b.emit("slli", "t6", "t6", 10 * declet)
                b.emit("or", "a2", "a2", "t6")
            b.emit("srli", "t3", "t3", 12)         # MSD
            b.emit("addi", "a3", "s9", self.bias)
            emit_encode_result(
                b, self.L("res"), sign="s8", bexp="a3", msd="t3",
                cont="a2", out="a0", tmp1="t1", tmp2="t2",
            )
        else:
            layout = self.layout
            b.emit("ld", "a2", "s0", 0)
            b.emit("ld", "a3", "s0", 8)
            b.emit("ld", "a4", "s0", 16)
            b.la("t0", TABLE_SYMBOLS["bcd2dpd"])
            b.li("t5", 0xFFF)
            b.li("a6", 0)
            b.li("a7", 0)
            words = ("a2", "a3", "a4")
            for declet in range(layout.declets):
                bit = 12 * declet
                word, off = divmod(bit, 64)
                if off + 12 <= 64:
                    if off:
                        b.emit("srli", "t1", words[word], off)
                    else:
                        b.mv("t1", words[word])
                else:
                    b.emit("srli", "t1", words[word], off)
                    b.emit("slli", "t2", words[word + 1], 64 - off)
                    b.emit("or", "t1", "t1", "t2")
                b.emit("and", "t1", "t1", "t5")
                b.emit("slli", "t1", "t1", 1)
                b.emit("add", "t1", "t1", "t0")
                b.emit("lhu", "t1", "t1", 0)
                emit_place_declet(b, layout, declet, src="t1",
                                  lo_acc="a6", hi_acc="a7", tmp="t2")
            b.emit("srli", "t6", "a4", 4)          # MSD (digit p-1)
            b.emit("andi", "t6", "t6", 0xF)
            b.li("t3", self.bias)
            b.emit("add", "t3", "t3", "s9")
            emit_wide_encode_result(
                b, layout, self.L("res"), sign="s8", bexp="t3", msd="t6",
                cont_lo="a6", cont_hi="a7", out_lo="a0", out_hi="a1",
                tmp1="t1", tmp2="t2",
            )
        b.label(self.L("epilogue"))
        b.epilogue(_SAVED, self.extra)

    # ---------------------------------------------------------- orchestration
    def emit(self) -> str:
        b, p = self.b, self.p
        b.text()
        b.label(p)
        self._emit_entry()
        b.label(self.L("main"))
        b.prologue(_SAVED, self.extra)
        if self.fused:
            self._emit_fma_main()
        else:
            self._emit_addsub_main()
        self._emit_core()
        self._emit_round()
        self._emit_finalize()
        self._emit_encode()
        self._emit_unpack()
        self._emit_nibcount()
        self._emit_shl()
        self._emit_shr()
        self._emit_rinfo()
        self._emit_inc()
        self._emit_wcmp()
        if self.fused and self.soft:
            self._emit_copy()
        self._emit_wadd_wsub()
        if self.fused and not self.soft:
            self._emit_accrd()
        if self.dummy:
            self._emit_dummy_stubs()
        return p


_VARIANT_SUFFIX = {"software": "sw", "method1": "m1", "method1_dummy": "m1d"}


def emit_addsub_kernel(
    b, spec, label: str = None, operation: str = "add", variant: str = "software"
) -> str:
    """Emit an add or subtract kernel for ``spec``; returns its entry label.

    Calling convention matches the multiply kernels: one-word formats take
    X in ``a0`` and Y in ``a1`` and return in ``a0``; two-word formats take
    X in ``a0``/``a1`` and Y in ``a2``/``a3`` and return in ``a0``/``a1``.
    """
    if operation not in ("add", "sub"):
        raise ValueError(f"emit_addsub_kernel handles add/sub, not {operation!r}")
    if label is None:
        label = f"dec{spec.total_bits}_{operation}_{_VARIANT_SUFFIX[variant]}"
    return _OpKernelEmitter(b, spec, label, operation, variant, fused=False).emit()


def emit_fma_kernel(b, spec, label: str = None, variant: str = "software") -> str:
    """Emit a fused multiply-add kernel for ``spec``; returns its entry label.

    One-word formats take X/Y/Z in ``a0``/``a1``/``a2``; two-word formats in
    ``a0``/``a1``, ``a2``/``a3``, ``a4``/``a5``.  The product is exact and the
    single rounding happens in the shared aligned-add core.
    """
    if label is None:
        label = f"dec{spec.total_bits}_fma_{_VARIANT_SUFFIX[variant]}"
    return _OpKernelEmitter(b, spec, label, "fma", variant, fused=True).emit()
