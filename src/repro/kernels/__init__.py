"""RISC-V assembly kernels for the evaluated decimal-multiplication solutions.

Three kernels implement the three rows of the paper's Table IV:

* :mod:`repro.kernels.software_mul` — the pure-software baseline in the style
  of the decNumber library: base-billion limb arithmetic on the binary ALU,
  division-heavy rounding and DPD re-encoding, no accelerator.
* :mod:`repro.kernels.method1` with ``use_accelerator=True`` — Method-1 of the
  paper's reference [9]: the software part orchestrates DPD<->BCD conversion,
  digit extraction and rounding while multiplicand multiples and partial
  products are generated/accumulated by the RoCC decimal accelerator.
* :mod:`repro.kernels.method1` with ``use_accelerator=False`` — the same
  software flow but with every accelerator invocation replaced by a *dummy
  function* with a fixed return value, reproducing the estimation methodology
  the paper compares against.

All kernels implement the full IEEE 754-2008 decimal64 multiplication flow of
Fig. 1 (special values, zero handling, rounding, overflow/underflow/clamping)
so their results can be checked against the golden library.
"""

from repro.kernels.tables import emit_tables, TABLE_SYMBOLS
from repro.kernels.software_mul import emit_software_mul_kernel
from repro.kernels.method1 import emit_method1_kernel

__all__ = [
    "emit_tables",
    "TABLE_SYMBOLS",
    "emit_software_mul_kernel",
    "emit_method1_kernel",
]
