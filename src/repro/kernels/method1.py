"""Method-1 decimal64 multiplication kernel (software-hardware co-design).

Implements the flow of the paper's Fig. 1: the *software part* (white blocks)
handles special values, sign/exponent arithmetic, DPD->BCD conversion, digit
extraction, rounding and re-encoding; the *hardware part* (grey blocks) —
multiplicand-multiple generation and partial-product accumulation — runs on
the RoCC decimal accelerator through the Table II instructions.

``emit_method1_kernel(..., use_accelerator=True)`` emits the co-design kernel
with real custom instructions.  ``use_accelerator=False`` emits the *dummy
function* variant the paper compares against: the identical software flow, but
every accelerator invocation is replaced by a call to a static function with a
fixed return value (so the results are meaningless — only the timing is used,
exactly as in the estimation methodology of reference [9]).

Register allocation (callee-saved so the dummy variant's calls are safe):

====  =====================================================
s1    result sign
s2    true exponent (e0, later the result exponent)
s3    X coefficient, packed BCD (16 digits)
s4    Y coefficient, packed BCD (shifted away during the digit loop)
s5    product low 16 digits  (read back from the accelerator)
s6    product high 16 digits (read back from the accelerator)
s7    rounded coefficient (packed BCD, <= 16 digits)
s8    digits dropped by rounding
s9    significant digit count of the product
s10   digit-loop counter
====  =====================================================
"""

from __future__ import annotations

from repro.kernels.common import (
    emit_clamp_exponent,
    emit_encode_result,
    emit_entry_special_check,
    emit_special_path,
    emit_unpack_fields,
)
from repro.kernels.tables import TABLE_SYMBOLS
from repro.rocc.decimal_accel import ACC_HI_SELECTOR, ACC_LO_SELECTOR

_FRAME = 112
_SAVED = ("ra", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11")

#: Accelerator register that holds the multiplicand (MM[1]); MM[i] lives in
#: register i, and register 0 stays zero so a zero multiplier digit adds 0.
_MULTIPLICAND_REG = 1
_MULTIPLE_COUNT = 9  # MM[1] .. MM[9]


def _emit_prologue(b) -> None:
    b.emit("addi", "sp", "sp", -_FRAME)
    for index, reg in enumerate(_SAVED):
        b.emit("sd", reg, "sp", 8 * index)


def _emit_epilogue(b) -> None:
    for index, reg in enumerate(_SAVED):
        b.emit("ld", reg, "sp", 8 * index)
    b.emit("addi", "sp", "sp", _FRAME)
    b.ret()


def _emit_unpack_bcd_subroutine(b, p: str) -> None:
    """Local subroutine: a2 = decimal64 word -> a2 = BCD coefficient,
    a3 = sign, a4 = biased exponent.  Clobbers t0-t6."""
    b.label(f"{p}_unpack_bcd")
    emit_unpack_fields(
        b, f"{p}_ub", src="a2", out_sign="a3", out_bexp="a4",
        out_cont="t3", out_msd="t4", tmp1="t0", tmp2="t1",
    )
    b.la("t0", TABLE_SYMBOLS["dpd2bcd"])
    # declet 0 (least significant three digits)
    b.emit("andi", "t1", "t3", 0x3FF)
    b.emit("slli", "t1", "t1", 1)
    b.emit("add", "t1", "t1", "t0")
    b.emit("lhu", "a2", "t1", 0)
    for declet_index, bcd_shift in ((1, 12), (2, 24), (3, 36), (4, 48)):
        b.emit("srli", "t2", "t3", 10 * declet_index)
        b.emit("andi", "t2", "t2", 0x3FF)
        b.emit("slli", "t2", "t2", 1)
        b.emit("add", "t2", "t2", "t0")
        b.emit("lhu", "t5", "t2", 0)
        b.emit("slli", "t5", "t5", bcd_shift)
        b.emit("or", "a2", "a2", "t5")
    b.emit("slli", "t5", "t4", 60)
    b.emit("or", "a2", "a2", "t5")
    b.ret()


def _emit_nibcount_subroutine(b, p: str) -> None:
    """Local subroutine: a2 = packed BCD value -> a2 = significant digit count.

    Clobbers t0.  Returns 0 for a zero input (callers exclude that case).
    """
    b.label(f"{p}_nibcount")
    b.li("t0", 0)
    b.label(f"{p}_nibcount_loop")
    b.beqz("a2", f"{p}_nibcount_done")
    b.emit("srli", "a2", "a2", 4)
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_nibcount_loop")
    b.label(f"{p}_nibcount_done")
    b.mv("a2", "t0")
    b.ret()


def _emit_dummy_functions(b, p: str) -> None:
    """The static dummy functions of the estimation methodology.

    Each is shaped like a small compiled C function ("designed according to
    the method's algorithm": a stack frame, a couple of data moves and a fixed
    return value), so the caller's control flow keeps going but computes
    nothing meaningful — only the call/return cost is representative.
    """

    def frame_enter():
        b.emit("addi", "sp", "sp", -16)
        b.emit("sd", "s0", "sp", 0)
        b.emit("addi", "s0", "sp", 16)

    def frame_leave():
        b.emit("ld", "s0", "sp", 0)
        b.emit("addi", "sp", "sp", 16)
        b.ret()

    b.label(f"{p}_dummy_clr")
    frame_enter()
    frame_leave()
    b.label(f"{p}_dummy_wr")
    frame_enter()
    b.mv("a1", "a0")
    frame_leave()
    b.label(f"{p}_dummy_dec_add")
    frame_enter()
    b.mv("a2", "a0")
    b.li("a0", 0x1)
    frame_leave()
    b.label(f"{p}_dummy_dec_accum")
    frame_enter()
    b.mv("a1", "a0")
    frame_leave()
    b.label(f"{p}_dummy_rd")
    frame_enter()
    b.li("a0", 0x123)
    frame_leave()


def emit_method1_kernel(
    b, label: str = "dec64_mul_m1", use_accelerator: bool = True
) -> str:
    """Emit the Method-1 kernel; returns its entry label.

    Calling convention: ``a0`` = X (decimal64 bits), ``a1`` = Y; returns the
    product's decimal64 bits in ``a0``.  With ``use_accelerator=False`` the
    accelerator invocations become dummy-function calls (timing-only variant).
    """
    p = label

    # ----- hardware-invocation helpers (the only part that differs) ----------
    def hw_clear():
        if use_accelerator:
            b.rocc("CLR_ALL")
        else:
            b.call(f"{p}_dummy_clr")

    def hw_write_multiplicand():
        if use_accelerator:
            b.rocc("WR", rd=0, rs1="s3", rs2=_MULTIPLICAND_REG,
                   xd=False, xs1=True, xs2=False)
        else:
            b.mv("a0", "s3")
            b.call(f"{p}_dummy_wr")

    def hw_generate_multiple(index):
        if use_accelerator:
            # regfile[index + 1] = regfile[index] + regfile[1]
            b.rocc("DEC_ADD", rd=index + 1, rs1=index, rs2=_MULTIPLICAND_REG,
                   xd=False, xs1=False, xs2=False)
        else:
            b.call(f"{p}_dummy_dec_add")

    def hw_accumulate_digit(digit_reg):
        if use_accelerator:
            # accumulator = accumulator * 10 + regfile[digit]
            b.rocc("DEC_ACCUM", rd=0, rs1=digit_reg, rs2=0,
                   xd=False, xs1=True, xs2=False)
        else:
            b.mv("a0", digit_reg)
            b.call(f"{p}_dummy_dec_accum")

    def hw_read(selector, dest_reg):
        if use_accelerator:
            b.rocc("RD", rd=dest_reg, rs1=0, rs2=selector,
                   xd=True, xs1=False, xs2=False)
        else:
            b.call(f"{p}_dummy_rd")
            b.mv(dest_reg, "a0")

    def hw_bcd_increment(reg):
        if use_accelerator:
            b.li("t2", 1)
            b.rocc("DEC_ADD", rd=reg, rs1=reg, rs2="t2",
                   xd=True, xs1=True, xs2=True)
        else:
            b.mv("a0", reg)
            b.li("a1", 1)
            b.call(f"{p}_dummy_dec_add")
            b.mv(reg, "a0")

    # ----- kernel entry --------------------------------------------------------
    b.text()
    b.label(p)
    emit_entry_special_check(b, p)
    _emit_prologue(b)

    # Unpack both operands (software, table-driven DPD -> BCD).
    b.mv("a2", "a0")
    b.jal("ra", f"{p}_unpack_bcd")
    b.mv("s3", "a2")
    b.mv("s1", "a3")
    b.mv("s2", "a4")
    b.mv("a2", "a1")
    b.jal("ra", f"{p}_unpack_bcd")
    b.mv("s4", "a2")
    b.emit("xor", "s1", "s1", "a3")
    b.emit("add", "s2", "s2", "a4")
    b.emit("addi", "s2", "s2", -796)

    # Zero operands short-circuit the whole hardware section.
    b.beqz("s3", f"{p}_zero_result")
    b.beqz("s4", f"{p}_zero_result")

    # ----- hardware part: multiples generation --------------------------------
    hw_clear()
    hw_write_multiplicand()
    for index in range(1, _MULTIPLE_COUNT):
        hw_generate_multiple(index)

    # ----- digit loop: software extracts, hardware accumulates ----------------
    b.li("s10", 16)
    b.label(f"{p}_digit_loop")
    b.emit("srli", "t0", "s4", 60)
    hw_accumulate_digit("t0")
    b.emit("slli", "s4", "s4", 4)
    b.emit("addi", "s10", "s10", -1)
    b.bnez("s10", f"{p}_digit_loop")

    # ----- read the 32-digit product back --------------------------------------
    hw_read(ACC_LO_SELECTOR, "s5")
    hw_read(ACC_HI_SELECTOR, "s6")

    # ----- software part: rounding ---------------------------------------------
    b.beqz("s6", f"{p}_d_lo_only")
    b.mv("a2", "s6")
    b.jal("ra", f"{p}_nibcount")
    b.emit("addi", "s9", "a2", 16)
    b.j(f"{p}_d_done")
    b.label(f"{p}_d_lo_only")
    b.mv("a2", "s5")
    b.jal("ra", f"{p}_nibcount")
    b.mv("s9", "a2")
    b.label(f"{p}_d_done")

    # drop = max(0, D - 16, etiny - e0)
    b.emit("addi", "s8", "s9", -16)
    b.li("t0", -398)
    b.emit("sub", "t0", "t0", "s2")
    b.branch("bge", "s8", "t0", f"{p}_m_drop1")
    b.mv("s8", "t0")
    b.label(f"{p}_m_drop1")
    b.bgtz("s8", f"{p}_m_need_round")
    b.li("s8", 0)
    b.mv("s7", "s5")
    b.j(f"{p}_m_after_round")

    b.label(f"{p}_m_need_round")
    b.branch("blt", "s8", "s9", f"{p}_m_general")
    b.j(f"{p}_m_all_dropped")

    # General case: 1 <= drop < D.  Work directly on the 128-bit BCD pair.
    b.label(f"{p}_m_general")
    b.emit("addi", "t0", "s8", -1)            # rounding-digit position
    b.li("t1", 16)
    b.branch("blt", "t0", "t1", f"{p}_m_rd_in_lo")
    b.emit("addi", "t2", "t0", -16)
    b.emit("slli", "t2", "t2", 2)
    b.emit("srl", "t3", "s6", "t2")
    b.emit("andi", "t3", "t3", 0xF)           # rounding digit
    b.li("t4", 1)
    b.emit("sll", "t4", "t4", "t2")
    b.emit("addi", "t4", "t4", -1)
    b.emit("and", "t4", "t4", "s6")
    b.emit("or", "t4", "t4", "s5")            # sticky
    b.j(f"{p}_m_rd_done")
    b.label(f"{p}_m_rd_in_lo")
    b.emit("slli", "t2", "t0", 2)
    b.emit("srl", "t3", "s5", "t2")
    b.emit("andi", "t3", "t3", 0xF)
    b.li("t4", 1)
    b.emit("sll", "t4", "t4", "t2")
    b.emit("addi", "t4", "t4", -1)
    b.emit("and", "t4", "t4", "s5")
    b.label(f"{p}_m_rd_done")
    # Quotient: the product shifted right by `drop` digits.
    b.li("t1", 16)
    b.branch("blt", "s8", "t1", f"{p}_m_q_small")
    b.emit("addi", "t2", "s8", -16)
    b.emit("slli", "t2", "t2", 2)
    b.emit("srl", "s7", "s6", "t2")
    b.j(f"{p}_m_q_done")
    b.label(f"{p}_m_q_small")
    b.emit("slli", "t2", "s8", 2)
    b.emit("srl", "s7", "s5", "t2")
    b.li("t5", 64)
    b.emit("sub", "t5", "t5", "t2")
    b.emit("sll", "t6", "s6", "t5")
    b.emit("or", "s7", "s7", "t6")
    b.label(f"{p}_m_q_done")
    # Round-half-even decision (t3 = digit, t4 = sticky).
    b.li("t0", 5)
    b.branch("blt", "t0", "t3", f"{p}_m_round_up")
    b.branch("bne", "t3", "t0", f"{p}_m_after_incr")
    b.bnez("t4", f"{p}_m_round_up")
    b.emit("andi", "t2", "s7", 1)
    b.bnez("t2", f"{p}_m_round_up")
    b.j(f"{p}_m_after_incr")
    b.label(f"{p}_m_round_up")
    hw_bcd_increment("s7")
    b.bnez("s7", f"{p}_m_after_incr")
    # 9999999999999999 + 1: coefficient becomes 10**15, exponent + 1.
    b.li("t0", 1)
    b.emit("slli", "t0", "t0", 60)
    b.mv("s7", "t0")
    b.emit("addi", "s8", "s8", 1)
    b.label(f"{p}_m_after_incr")
    b.j(f"{p}_m_after_round")

    # Everything dropped (deep underflow): result is 0 or 1 ulp.
    b.label(f"{p}_m_all_dropped")
    b.li("s7", 0)
    b.branch("bne", "s8", "s9", f"{p}_m_after_round")
    b.emit("addi", "t0", "s9", -1)            # most significant digit position
    b.li("t1", 16)
    b.branch("blt", "t0", "t1", f"{p}_m_ad_lo")
    b.emit("addi", "t2", "t0", -16)
    b.emit("slli", "t2", "t2", 2)
    b.emit("srl", "t3", "s6", "t2")
    b.emit("andi", "t3", "t3", 0xF)
    b.li("t4", 1)
    b.emit("sll", "t4", "t4", "t2")
    b.emit("addi", "t4", "t4", -1)
    b.emit("and", "t4", "t4", "s6")
    b.emit("or", "t4", "t4", "s5")
    b.j(f"{p}_m_ad_check")
    b.label(f"{p}_m_ad_lo")
    b.emit("slli", "t2", "t0", 2)
    b.emit("srl", "t3", "s5", "t2")
    b.emit("andi", "t3", "t3", 0xF)
    b.li("t4", 1)
    b.emit("sll", "t4", "t4", "t2")
    b.emit("addi", "t4", "t4", -1)
    b.emit("and", "t4", "t4", "s5")
    b.label(f"{p}_m_ad_check")
    b.li("t0", 5)
    b.branch("blt", "t0", "t3", f"{p}_m_ad_one")
    b.branch("bne", "t3", "t0", f"{p}_m_after_round")
    b.beqz("t4", f"{p}_m_after_round")
    b.label(f"{p}_m_ad_one")
    b.li("s7", 1)
    b.label(f"{p}_m_after_round")

    # ----- exponent, overflow, clamp, re-encode --------------------------------
    b.emit("add", "s2", "s2", "s8")
    b.beqz("s7", f"{p}_zero_result")
    b.mv("a2", "s7")
    b.jal("ra", f"{p}_nibcount")
    b.emit("add", "t0", "s2", "a2")
    b.emit("addi", "t0", "t0", -1)
    b.li("t1", 384)
    b.branch("bge", "t1", "t0", f"{p}_m_no_ovf")
    b.j(f"{p}_m_overflow")
    b.label(f"{p}_m_no_ovf")
    b.li("t1", 369)
    b.branch("bge", "t1", "s2", f"{p}_m_no_clamp")
    b.emit("sub", "t2", "s2", "t1")
    b.emit("slli", "t2", "t2", 2)
    b.emit("sll", "s7", "s7", "t2")
    b.mv("s2", "t1")
    b.label(f"{p}_m_no_clamp")
    # BCD -> DPD via the reverse table; cont accumulates in a2.
    b.la("t0", TABLE_SYMBOLS["bcd2dpd"])
    b.li("t5", 0xFFF)
    b.mv("t6", "s7")
    b.emit("and", "t2", "t6", "t5")
    b.emit("slli", "t2", "t2", 1)
    b.emit("add", "t2", "t2", "t0")
    b.emit("lhu", "a2", "t2", 0)
    for shift in (10, 20, 30, 40):
        b.emit("srli", "t6", "t6", 12)
        b.emit("and", "t2", "t6", "t5")
        b.emit("slli", "t2", "t2", 1)
        b.emit("add", "t2", "t2", "t0")
        b.emit("lhu", "t3", "t2", 0)
        b.emit("slli", "t3", "t3", shift)
        b.emit("or", "a2", "a2", "t3")
    b.emit("srli", "t6", "t6", 12)             # most significant digit
    b.emit("addi", "a3", "s2", 398)
    emit_encode_result(
        b, f"{p}_fin", sign="s1", bexp="a3", msd="t6", cont="a2",
        out="a0", tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_m_epilogue")

    # Zero result (either operand zero, or the product rounded to zero).
    b.label(f"{p}_zero_result")
    emit_clamp_exponent(b, f"{p}_z", "s2", "t0")
    b.emit("addi", "a3", "s2", 398)
    emit_encode_result(
        b, f"{p}_zenc", sign="s1", bexp="a3", msd="zero", cont="zero",
        out="a0", tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_m_epilogue")

    # Overflow to infinity.
    b.label(f"{p}_m_overflow")
    b.emit("slli", "t5", "s1", 63)
    b.li("t6", 0b11110)
    b.emit("slli", "t6", "t6", 58)
    b.emit("or", "a0", "t5", "t6")
    b.j(f"{p}_m_epilogue")

    b.label(f"{p}_m_epilogue")
    _emit_epilogue(b)

    # ----- local subroutines, dummies, special path -----------------------------
    _emit_unpack_bcd_subroutine(b, p)
    _emit_nibcount_subroutine(b, p)
    if not use_accelerator:
        _emit_dummy_functions(b, p)
    emit_special_path(b, p)
    return p
