"""Pure-software multiplication kernel for multi-word decimal formats.

The format-generic counterpart of :mod:`repro.kernels.software_mul`: the same
decNumber-style flow — DPD decoded into 3-digit *units* held in memory,
unit-by-unit schoolbook multiplication into a memory accumulator, carry
normalisation, base-1e9 limb rounding with round-half-even, fold-down clamp
and DPD re-encode — but every buffer size, loop bound and bit position is
derived from the :class:`~repro.decnumber.formats.FormatSpec`.  For
decimal128 that means 12 units per operand, a 24-unit accumulator, 8 product
limbs and a 4-limb quotient.

The decimal64 kernel keeps its own hand-tuned single-word emitter (register
-resident limbs, pinned cycle counts); this module covers the two-word
formats where coefficients no longer fit a register and the limb machinery
moves to the stack frame.

Calling convention: X in ``a0``/``a1`` (low/high), Y in ``a2``/``a3``;
returns the product in ``a0``/``a1``.  Results are bit-for-bit the same as
:func:`repro.decnumber.arith.multiply` + the format's ``encode``.
"""

from __future__ import annotations

from repro.decnumber.formats import FormatSpec
from repro.kernels.tables import TABLE_SYMBOLS
from repro.kernels.wide import (
    WideLayout,
    emit_extract_declet,
    emit_place_declet,
    emit_wide_clamp_exponent,
    emit_wide_encode_result,
    emit_wide_entry_special_check,
    emit_wide_special_path,
    emit_wide_unpack_fields,
)

_SAVED = ("ra", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
          "s10", "s11")


class _Frame:
    """Stack-frame layout derived from the format spec."""

    def __init__(self, spec: FormatSpec) -> None:
        self.units = spec.declets + 1            # 3-digit units per operand
        self.acc_units = 2 * self.units          # product unit accumulator
        self.limbs = -(-(3 * self.acc_units) // 9)   # base-1e9 product limbs
        self.q_limbs = -(-spec.precision // 9)       # quotient limbs
        self.x_units = 0
        self.y_units = self.x_units + 8 * self.units
        self.acc = self.y_units + 8 * self.units
        # The rounder over-reads v[w + q_limbs]; pad with zero slots.
        self.v = self.acc + 8 * self.acc_units
        self.v_slots = self.limbs + self.q_limbs
        self.q = self.v + 8 * self.v_slots
        self.save = self.q + 8 * self.q_limbs
        total = self.save + 8 * len(_SAVED)
        self.size = (total + 15) // 16 * 16


def _emit_prologue(b, frame: _Frame) -> None:
    b.emit("addi", "sp", "sp", -frame.size)
    for index, reg in enumerate(_SAVED):
        b.emit("sd", reg, "sp", frame.save + 8 * index)


def _emit_epilogue(b, frame: _Frame) -> None:
    for index, reg in enumerate(_SAVED):
        b.emit("ld", reg, "sp", frame.save + 8 * index)
    b.emit("addi", "sp", "sp", frame.size)
    b.ret()


def _emit_unpack_units_subroutine(b, layout: WideLayout, p: str) -> None:
    """Local subroutine: decode one operand into its 3-digit units.

    ``a2``/``a3`` = the operand's low/high words, ``a6`` = pointer to the
    unit buffer.  Returns ``a3`` = OR of all units (zero-coefficient
    indicator), ``a4`` = sign, ``a5`` = biased exponent.  Clobbers t0-t6
    and ``a2``.
    """
    b.label(f"{p}_unpack_units")
    emit_wide_unpack_fields(
        b, layout, f"{p}_upk", lo="a2", hi="a3", out_sign="a4", out_bexp="a5",
        out_cont_hi="t3", out_msd="t4", tmp1="t0", tmp2="t1",
    )
    b.la("t0", TABLE_SYMBOLS["dpd2bin"])
    # a3 (the high source word) is consumed; reuse it as the OR accumulator.
    b.li("a3", 0)
    for declet in range(layout.declets):
        emit_extract_declet(b, layout, declet, lo="a2", hi="t3", out="t2", tmp="t5")
        b.emit("slli", "t2", "t2", 1)
        b.emit("add", "t2", "t2", "t0")
        b.emit("lhu", "t2", "t2", 0)
        b.emit("sd", "t2", "a6", 8 * declet)
        b.emit("or", "a3", "a3", "t2")
    b.emit("sd", "t4", "a6", 8 * layout.declets)
    b.emit("or", "a3", "a3", "t4")
    b.ret()


def _emit_count9_subroutine(b, p: str) -> None:
    """Local subroutine: a2 = limb (< 1e9) -> a2 = decimal digit count (>= 1).

    Uses the pow10 table via s7.  Clobbers t0, t1.
    """
    b.label(f"{p}_count9")
    b.li("t0", 1)
    b.label(f"{p}_count9_loop")
    b.emit("slli", "t1", "t0", 3)
    b.emit("add", "t1", "t1", "s7")
    b.emit("ld", "t1", "t1", 0)
    b.branch("bltu", "a2", "t1", f"{p}_count9_done")
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_count9_loop")
    b.label(f"{p}_count9_done")
    b.mv("a2", "t0")
    b.ret()


def _emit_sticky_loop(b, p: str, tag: str, bound_reg: str, v_offset: int) -> None:
    """OR product limbs v[0 .. bound_reg-1] into a4 (t0/t5/t6 clobbered)."""
    b.li("t0", 0)
    b.label(f"{p}_{tag}_loop")
    b.branch("bge", "t0", bound_reg, f"{p}_{tag}_done")
    b.emit("slli", "t5", "t0", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "t6", "t5", v_offset)
    b.emit("or", "a4", "a4", "t6")
    b.emit("addi", "t0", "t0", 1)
    b.j(f"{p}_{tag}_loop")
    b.label(f"{p}_{tag}_done")


def emit_wide_software_mul_kernel(
    b, spec: FormatSpec, label: str = None
) -> str:
    """Emit the pure-software wide multiplication kernel; returns its label."""
    layout = WideLayout(spec)
    frame = _Frame(spec)
    p = label if label is not None else f"dec{spec.total_bits}_mul_sw"
    precision = layout.precision
    q_limbs = frame.q_limbs
    top_limb_pow = 10 ** (precision - 9 * (q_limbs - 1))

    b.text()
    b.label(p)

    # ---- special values: handled before any stack frame exists -------------
    emit_wide_entry_special_check(b, layout, p)

    # ---- prologue, constants ------------------------------------------------
    _emit_prologue(b, frame)
    b.la("s7", TABLE_SYMBOLS["pow10"])
    b.li("s8", 1_000_000_000)

    # ---- unpack both operands into 3-digit unit arrays ----------------------
    b.mv("s10", "a2")                 # stash Y before clobbering a-regs
    b.mv("s11", "a3")
    b.mv("a2", "a0")
    b.mv("a3", "a1")
    b.emit("addi", "a6", "sp", frame.x_units)
    b.jal("ra", f"{p}_unpack_units")
    b.mv("s3", "a3")                  # X zero indicator
    b.mv("s1", "a4")
    b.mv("s2", "a5")
    b.mv("a2", "s10")
    b.mv("a3", "s11")
    b.emit("addi", "a6", "sp", frame.y_units)
    b.jal("ra", f"{p}_unpack_units")
    b.emit("xor", "s1", "s1", "a4")
    b.emit("add", "s2", "s2", "a5")
    b.li("t0", -2 * layout.bias)      # e0 = (bx - bias) + (by - bias)
    b.emit("add", "s2", "s2", "t0")

    # ---- zero operands ------------------------------------------------------
    b.beqz("s3", f"{p}_zero_result")
    b.beqz("a3", f"{p}_zero_result")

    # ---- coefficient multiplication: unit-by-unit schoolbook loop -----------
    # Clear the accumulator.
    b.li("t0", 0)
    b.label(f"{p}_acc_clear")
    b.emit("slli", "t1", "t0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("sd", "zero", "t1", frame.acc)
    b.emit("addi", "t0", "t0", 1)
    b.li("t2", frame.acc_units)
    b.branch("bne", "t0", "t2", f"{p}_acc_clear")
    # for j in units: for i in units: acc[i+j] += xu[i] * yu[j]
    b.li("s0", 0)
    b.label(f"{p}_mac_outer")
    b.emit("slli", "t1", "s0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "a4", "t1", frame.y_units)
    b.li("t3", 0)
    b.label(f"{p}_mac_inner")
    b.emit("slli", "t1", "t3", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "t4", "t1", frame.x_units)
    b.emit("mul", "t4", "t4", "a4")
    b.emit("add", "t5", "t3", "s0")
    b.emit("slli", "t5", "t5", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "t6", "t5", frame.acc)
    b.emit("add", "t6", "t6", "t4")
    b.emit("sd", "t6", "t5", frame.acc)
    b.emit("addi", "t3", "t3", 1)
    b.li("t1", frame.units)
    b.branch("bne", "t3", "t1", f"{p}_mac_inner")
    b.emit("addi", "s0", "s0", 1)
    b.li("t1", frame.units)
    b.branch("bne", "s0", "t1", f"{p}_mac_outer")
    # Carry normalisation: every accumulator unit back to 0..999.
    b.li("a7", 1000)
    b.li("t2", 0)                      # running carry
    b.li("t0", 0)
    b.label(f"{p}_carry_loop")
    b.emit("slli", "t1", "t0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "t4", "t1", frame.acc)
    b.emit("add", "t4", "t4", "t2")
    b.emit("divu", "t2", "t4", "a7")   # carry out
    b.emit("mul", "t5", "t2", "a7")
    b.emit("sub", "t5", "t4", "t5")    # unit value
    b.emit("sd", "t5", "t1", frame.acc)
    b.emit("addi", "t0", "t0", 1)
    b.li("t1", frame.acc_units)
    b.branch("bne", "t0", "t1", f"{p}_carry_loop")
    # Combine units into base-1e9 product limbs v[0..limbs-1] (in memory),
    # and zero the over-read padding slots.
    b.li("a7", 1000)
    b.li("a6", 1_000_000)
    for limb_index in range(frame.limbs):
        base = frame.acc + 24 * limb_index
        b.emit("ld", "t0", "sp", base)
        b.emit("ld", "t1", "sp", base + 8)
        b.emit("ld", "t2", "sp", base + 16)
        b.emit("mul", "t1", "t1", "a7")
        b.emit("add", "t0", "t0", "t1")
        b.emit("mul", "t2", "t2", "a6")
        b.emit("add", "t0", "t0", "t2")
        b.emit("sd", "t0", "sp", frame.v + 8 * limb_index)
    for pad_index in range(frame.limbs, frame.v_slots):
        b.emit("sd", "zero", "sp", frame.v + 8 * pad_index)

    # ---- significant digit count D -> a6 ------------------------------------
    b.li("s0", frame.limbs - 1)
    b.label(f"{p}_top_loop")
    b.beqz("s0", f"{p}_top_zero")
    b.emit("slli", "t1", "s0", 3)
    b.emit("add", "t1", "t1", "sp")
    b.emit("ld", "a2", "t1", frame.v)
    b.bnez("a2", f"{p}_top_found")
    b.emit("addi", "s0", "s0", -1)
    b.j(f"{p}_top_loop")
    b.label(f"{p}_top_zero")
    b.emit("ld", "a2", "sp", frame.v)
    b.label(f"{p}_top_found")
    b.emit("slli", "a6", "s0", 3)
    b.emit("add", "a6", "a6", "s0")    # 9 * top limb index
    b.jal("ra", f"{p}_count9")
    b.emit("add", "a6", "a6", "a2")

    # ---- digits to drop: max(0, D - precision, etiny - e0) -------------------
    b.emit("addi", "s9", "a6", -precision)
    b.li("t0", layout.etiny)
    b.emit("sub", "t0", "t0", "s2")
    b.branch("bge", "s9", "t0", f"{p}_drop1")
    b.mv("s9", "t0")
    b.label(f"{p}_drop1")
    b.bgtz("s9", f"{p}_need_round")
    b.li("s9", 0)
    for j in range(q_limbs):
        b.emit("ld", "t0", "sp", frame.v + 8 * j)
        b.emit("sd", "t0", "sp", frame.q + 8 * j)
    b.j(f"{p}_after_round")

    b.label(f"{p}_need_round")
    b.branch("blt", "s9", "a6", f"{p}_general_round")
    b.j(f"{p}_all_dropped")

    # ---- general rounding: 1 <= drop < D ------------------------------------
    b.label(f"{p}_general_round")
    b.li("t0", 9)
    b.emit("divu", "t1", "s9", "t0")    # w = drop // 9
    b.emit("remu", "t2", "s9", "t0")    # s = drop % 9
    b.emit("slli", "t3", "t2", 3)       # 10**s
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)
    b.li("t5", 9)
    b.emit("sub", "t5", "t5", "t2")     # 10**(9-s)
    b.emit("slli", "t5", "t5", 3)
    b.emit("add", "t5", "t5", "s7")
    b.emit("ld", "t4", "t5", 0)
    b.emit("slli", "t5", "t1", 3)       # &v[w]
    b.emit("add", "t5", "t5", "sp")
    # q[j] = v[w+j] / 10**s + (v[w+j+1] % 10**s) * 10**(9-s)
    for j in range(q_limbs):
        b.emit("ld", "a2", "t5", frame.v + 8 * j)
        b.emit("ld", "a3", "t5", frame.v + 8 * j + 8)
        b.emit("divu", "a4", "a2", "t3")
        b.emit("remu", "t6", "a3", "t3")
        b.emit("mul", "t6", "t6", "t4")
        b.emit("add", "a4", "a4", "t6")
        b.emit("sd", "a4", "sp", frame.q + 8 * j)
    # Rounding digit (position drop-1) and sticky digits below it.
    b.emit("addi", "t5", "s9", -1)
    b.li("t0", 9)
    b.emit("divu", "t1", "t5", "t0")    # limb holding the rounding digit
    b.emit("remu", "t2", "t5", "t0")    # its position inside that limb
    b.emit("slli", "t3", "t2", 3)       # 10**di
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)
    b.emit("slli", "t5", "t1", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "a2", "t5", frame.v)
    b.emit("divu", "a3", "a2", "t3")
    b.li("t0", 10)
    b.emit("remu", "a3", "a3", "t0")    # rounding digit
    b.emit("remu", "a4", "a2", "t3")    # sticky (within the limb)
    _emit_sticky_loop(b, p, "sticky", "t1", frame.v)
    # Round-half-even decision.
    b.li("t0", 5)
    b.branch("blt", "t0", "a3", f"{p}_round_up")     # digit > 5
    b.branch("bne", "a3", "t0", f"{p}_after_incr")   # digit < 5
    b.bnez("a4", f"{p}_round_up")                    # == 5 with sticky
    b.emit("ld", "t2", "sp", frame.q)
    b.emit("andi", "t2", "t2", 1)
    b.bnez("t2", f"{p}_round_up")                    # tie, odd quotient
    b.j(f"{p}_after_incr")
    b.label(f"{p}_round_up")
    # Increment with carry across the quotient limbs; only the non-top
    # limbs can carry out at 1e9 (the top limb is at most 10**top-1).
    for j in range(q_limbs):
        b.emit("ld", "t0", "sp", frame.q + 8 * j)
        b.emit("addi", "t0", "t0", 1)
        if j < q_limbs - 1:
            b.branch("beq", "t0", "s8", f"{p}_incr_carry{j}")
            b.emit("sd", "t0", "sp", frame.q + 8 * j)
            b.j(f"{p}_incr_done")
            b.label(f"{p}_incr_carry{j}")
            b.emit("sd", "zero", "sp", frame.q + 8 * j)
        else:
            b.emit("sd", "t0", "sp", frame.q + 8 * j)
    b.label(f"{p}_incr_done")
    # 10**precision after the carry: fold back to 10**(precision-1).
    b.emit("ld", "t0", "sp", frame.q + 8 * (q_limbs - 1))
    b.li("t1", top_limb_pow)
    b.branch("bne", "t0", "t1", f"{p}_after_incr")
    b.li("t1", top_limb_pow // 10)
    b.emit("sd", "t1", "sp", frame.q + 8 * (q_limbs - 1))
    b.emit("addi", "s9", "s9", 1)                    # exponent + 1
    b.label(f"{p}_after_incr")
    b.j(f"{p}_after_round")

    # ---- everything dropped: drop >= D --------------------------------------
    b.label(f"{p}_all_dropped")
    for j in range(q_limbs):
        b.emit("sd", "zero", "sp", frame.q + 8 * j)
    b.branch("bne", "s9", "a6", f"{p}_after_round")  # drop > D: rounds to zero
    # drop == D: result is 1 ulp iff the value exceeds half of 10**D.
    b.emit("addi", "t5", "a6", -1)
    b.li("t0", 9)
    b.emit("divu", "t1", "t5", "t0")
    b.emit("remu", "t2", "t5", "t0")
    b.emit("slli", "t5", "t1", 3)
    b.emit("add", "t5", "t5", "sp")
    b.emit("ld", "a2", "t5", frame.v)                # top limb
    b.emit("slli", "t3", "t2", 3)
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)                      # 10**(digits_in_top-1)
    b.emit("divu", "a3", "a2", "t3")                 # most significant digit
    b.emit("remu", "a4", "a2", "t3")
    _emit_sticky_loop(b, p, "ad_sticky", "t1", frame.v)
    b.li("t0", 5)
    b.branch("blt", "t0", "a3", f"{p}_ad_one")
    b.branch("bne", "a3", "t0", f"{p}_after_round")
    b.beqz("a4", f"{p}_after_round")                 # exactly half: ties to even
    b.label(f"{p}_ad_one")
    b.li("t0", 1)
    b.emit("sd", "t0", "sp", frame.q)
    b.label(f"{p}_after_round")

    # ---- exponent, overflow, clamping ----------------------------------------
    b.emit("add", "s2", "s2", "s9")                   # e_r = e0 + drop
    b.emit("ld", "t0", "sp", frame.q)
    for j in range(1, q_limbs):
        b.emit("ld", "t1", "sp", frame.q + 8 * j)
        b.emit("or", "t0", "t0", "t1")
    b.beqz("t0", f"{p}_zero_result")
    for j in range(q_limbs - 1, 0, -1):
        b.emit("ld", "a2", "sp", frame.q + 8 * j)
        b.li("a6", 9 * j)
        b.bnez("a2", f"{p}_qcnt")
    b.emit("ld", "a2", "sp", frame.q)
    b.li("a6", 0)
    b.label(f"{p}_qcnt")
    b.jal("ra", f"{p}_count9")
    b.emit("add", "a6", "a6", "a2")
    b.emit("add", "t0", "s2", "a6")
    b.emit("addi", "t0", "t0", -1)                    # adjusted exponent
    b.li("t1", layout.emax)
    b.branch("bge", "t1", "t0", f"{p}_no_ovf")
    b.j(f"{p}_overflow_inf")
    b.label(f"{p}_no_ovf")
    b.li("t1", layout.etop)
    b.branch("bge", "t1", "s2", f"{p}_no_clamp")
    b.emit("sub", "t2", "s2", "t1")                   # pad
    b.mv("s2", "t1")
    b.label(f"{p}_clamp_limbshift")
    b.li("t3", 9)
    b.branch("blt", "t2", "t3", f"{p}_clamp_sub")
    for j in range(q_limbs - 1, 0, -1):
        b.emit("ld", "t4", "sp", frame.q + 8 * (j - 1))
        b.emit("sd", "t4", "sp", frame.q + 8 * j)
    b.emit("sd", "zero", "sp", frame.q)
    b.emit("addi", "t2", "t2", -9)
    b.j(f"{p}_clamp_limbshift")
    b.label(f"{p}_clamp_sub")
    b.beqz("t2", f"{p}_no_clamp")
    b.emit("slli", "t3", "t2", 3)                     # 10**pad
    b.emit("add", "t3", "t3", "s7")
    b.emit("ld", "t3", "t3", 0)
    b.li("t4", 0)                                    # carry
    for j in range(q_limbs):
        b.emit("ld", "t5", "sp", frame.q + 8 * j)
        b.emit("mul", "t5", "t5", "t3")
        b.emit("add", "t5", "t5", "t4")
        b.emit("remu", "t6", "t5", "s8")
        b.emit("sd", "t6", "sp", frame.q + 8 * j)
        b.emit("divu", "t4", "t5", "s8")
    b.label(f"{p}_no_clamp")

    # ---- re-encode to DPD -----------------------------------------------------
    b.la("t0", TABLE_SYMBOLS["bin2dpd"])
    b.li("t1", 1000)
    b.li("a2", 0)                                    # continuation, low word
    b.li("a4", 0)                                    # continuation, high word
    declet_index = 0
    for j in range(q_limbs):
        b.emit("ld", "t6", "sp", frame.q + 8 * j)
        limb_declets = (
            3 if j < q_limbs - 1 else layout.declets - 3 * (q_limbs - 1)
        )
        for _ in range(limb_declets):
            b.emit("remu", "t2", "t6", "t1")
            b.emit("divu", "t6", "t6", "t1")
            b.emit("slli", "t2", "t2", 1)
            b.emit("add", "t2", "t2", "t0")
            b.emit("lhu", "t3", "t2", 0)
            emit_place_declet(b, layout, declet_index, src="t3",
                              lo_acc="a2", hi_acc="a4", tmp="t5")
            declet_index += 1
    # t6 now holds the most significant digit; biased exponent -> a3.
    b.li("t4", layout.bias)
    b.emit("add", "a3", "s2", "t4")
    emit_wide_encode_result(
        b, layout, f"{p}_fin", sign="s1", bexp="a3", msd="t6",
        cont_lo="a2", cont_hi="a4", out_lo="a0", out_hi="a1",
        tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_epilogue")

    # ---- zero result -----------------------------------------------------------
    b.label(f"{p}_zero_result")
    emit_wide_clamp_exponent(b, layout, f"{p}_z", "s2", "t0")
    b.li("t4", layout.bias)
    b.emit("add", "a3", "s2", "t4")
    emit_wide_encode_result(
        b, layout, f"{p}_zenc", sign="s1", bexp="a3", msd="zero",
        cont_lo="zero", cont_hi="zero", out_lo="a0", out_hi="a1",
        tmp1="t1", tmp2="t2",
    )
    b.j(f"{p}_epilogue")

    # ---- overflow to infinity ---------------------------------------------------
    b.label(f"{p}_overflow_inf")
    b.emit("slli", "t5", "s1", layout.sign_shift)
    b.li("t6", 0b11110)
    b.emit("slli", "t6", "t6", layout.comb_shift)
    b.emit("or", "a1", "t5", "t6")
    b.li("a0", 0)
    b.j(f"{p}_epilogue")

    # ---- epilogue ----------------------------------------------------------------
    b.label(f"{p}_epilogue")
    _emit_epilogue(b, frame)

    # ---- local subroutines and the special path ----------------------------------
    _emit_unpack_units_subroutine(b, layout, p)
    _emit_count9_subroutine(b, p)
    emit_wide_special_path(b, layout, p)
    return p
