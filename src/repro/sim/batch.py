"""Batch-vector execution: one warm simulator amortized over many vector sets.

Building a test program (assemble + link), constructing a ``SpikeSimulator``
and re-decoding/re-promoting its hot loops costs far more than actually
running a small vector shard — at campaign scale most host time used to go
to this per-shard cold start.  ``BatchRunner`` keeps one live simulator per
*program shape* (solution x format x sample count x repetitions: everything
that determines the generated text) and runs each new vector set through it:

* the operand words are re-encoded and patched into the cached program's
  image (:meth:`~repro.testgen.generator.GeneratedProgram.rebind`) **and**
  written into the warm simulator's memory — page-view aliasing keeps the
  tier-2 compiled memory lanes coherent, since pages are mutated in place,
  never replaced;
* the result / cycle-sample / total-cycles buffers are zeroed, restoring
  exactly the freshly-loaded data segment;
* :meth:`~repro.sim.spike.SpikeSimulator.reset` rewinds registers (in
  place — compiled code binds the register list), pc, HTIF and accelerator
  state while keeping everything the executor learned: decoded
  instructions, tier-1 superblocks, tier-2 compiled code, promotion heat
  and speculation bans.

Bit-identity with the cold path is a hard invariant, not a best effort: the
patched image is byte-identical to a fresh build over the same vectors, the
warm memory matches a fresh load of that image, and the tier-2 engine's
correctness protocol (entry guards + deopt) makes compiled-state reuse
architecturally invisible.  ``tests/test_tier2.py`` locks this down against
the cold path sample by sample.

The runner is deliberately executor-level machinery: the cycle-accurate
Rocket measurement must start cold (cold caches are part of the paper's
measurement), so callers hand Rocket the *rebound image* — amortizing only
the build/link — and keep the warm executor for the functional runs.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.spike import SpikeSimulator

#: Default cap on live cached simulators; beyond it the least recently used
#: entry (and its memory image) is dropped.  A Table IV campaign needs three
#: (one per solution kind); format/workload sweeps need one per (kind x
#: format x shard shape).
DEFAULT_MAX_ENTRIES = 8


class BatchRunner:
    """Warm-simulator cache keyed by program shape (see module docs)."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        # A cap below one would evict every entry right after inserting it:
        # each acquire would rebuild cold while hits/misses still report a
        # functioning cache.  Reject it up front.
        if max_entries < 1:
            raise ConfigurationError(
                f"BatchRunner max_entries must be at least 1, got {max_entries}"
            )
        self._entries = {}
        # Warm cycle-accurate emulators, cached separately: the Rocket
        # measurement must start from cold caches, which
        # RocketEmulator.reset() restores exactly, so only the *timing
        # compiler* (decoded instructions, compiled timing spans, span
        # heat) stays warm between runs of one program shape.
        self._timed_entries = {}
        # Promoted tier-2 heads of evicted entries, by key: a later rebuild
        # of the same shape seeds promotion from them (Executor.preheat)
        # instead of re-earning every head's heat organically.
        self._promoted = {}
        self.max_entries = max_entries
        #: Cache statistics (exposed for benchmarks and tests).
        self.hits = 0
        self.misses = 0
        self.timed_hits = 0
        self.timed_misses = 0

    @staticmethod
    def _key(solution, config) -> tuple:
        # Everything that determines the generated text + the simulator
        # construction.  ``config.workload``, ``config.operand_classes`` and
        # ``config.seed`` are deliberately absent: they only select *which
        # vectors are drawn*, never the emitted kernel/harness, and vectors
        # are always rebound on a hit — tests/test_tier2.py
        # (``test_key_omits_vector_provenance_safely``) pins that a warm hit
        # across different workloads/seeds still yields an image
        # byte-identical to a cold build.  Anything persisted across
        # processes must not inherit this shape-only key: the service's
        # ``repro.service.cache.cell_key`` hashes the full provenance.
        return (
            solution.name,
            solution.kind,
            config.fmt,
            config.operation,
            config.num_samples,
            config.repetitions,
        )

    def acquire(self, solution, config, vectors) -> tuple:
        """``(program, simulator)`` ready to run ``vectors``.

        On a cache miss the program is built and linked and a fresh
        simulator constructed (exactly the cold path).  On a hit, the cached
        template is rebound to the new vectors and the warm simulator's
        memory and architectural state are restored; the returned program's
        image is byte-identical to a cold build over ``vectors``.
        """
        from repro.testgen.generator import build_test_program

        key = self._key(solution, config)
        entry = self._entries.pop(key, None)
        if entry is None:
            self.misses += 1
            program = build_test_program(config, vectors=vectors)
            simulator = SpikeSimulator(
                program.image, accelerator=solution.make_accelerator(config.fmt)
            )
            # Rebuild of a previously evicted shape: arm the known-hot
            # heads so the first execution of each promotes immediately
            # (with live-register speculation) instead of re-earning
            # thousands of instructions of heat.
            heads = self._promoted.get(key)
            if heads:
                simulator.executor.preheat(heads)
            entry = (program, simulator)
        else:
            self.hits += 1
            template, simulator = entry
            encoded = template.encode_operands(vectors)
            program = template.rebind(vectors, encoded=encoded)
            memory = simulator.memory
            memory.write_bytes(
                program.image.symbol("operands"), encoded[1]
            )
            start, size = template.scratch_span()
            memory.write_bytes(start, b"\x00" * size)
            simulator.reset()
            entry = (template, simulator)
        # Reinsert (LRU: dicts iterate in insertion order) and evict,
        # remembering each victim's promoted heads for a future rebuild.
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            victim_key = next(iter(self._entries))
            _, victim_sim = self._entries.pop(victim_key)
            self._promoted[victim_key] = frozenset(victim_sim.executor._tier2)
        return program, simulator

    def acquire_timed(self, solution, config, vectors, rocket_config=None) -> tuple:
        """``(program, RocketEmulator)`` ready for a timed run of ``vectors``.

        The cycle-accurate counterpart of :meth:`acquire`.  A hit rebinds
        the cached template, patches the warm emulator's memory (operands
        rewritten, scratch/result buffers zeroed — restoring exactly the
        freshly-loaded data segment) and calls
        :meth:`~repro.rocket.core.RocketEmulator.reset`, which rewinds
        *microarchitectural* state too: cold caches, reseeded replacement
        PRNGs, zeroed cycle/ready state.  What stays warm is the timing
        compiler — decoded instructions and compiled timing spans — so the
        returned emulator's cycle counts are bit-identical to a cold
        construction over the same image while skipping the decode and
        span-compile work.  Keyed by program shape plus the Rocket
        configuration (different cache geometries compile different spans).
        """
        from repro.rocket.config import RocketConfig
        from repro.rocket.core import RocketEmulator
        from repro.testgen.generator import build_test_program

        if rocket_config is None:
            rocket_config = RocketConfig()
        key = self._key(solution, config) + (repr(rocket_config),)
        entry = self._timed_entries.pop(key, None)
        if entry is None:
            self.timed_misses += 1
            program = build_test_program(config, vectors=vectors)
            emulator = RocketEmulator(
                program.image,
                accelerator=solution.make_accelerator(config.fmt),
                config=rocket_config,
            )
            entry = (program, emulator)
        else:
            self.timed_hits += 1
            template, emulator = entry
            encoded = template.encode_operands(vectors)
            program = template.rebind(vectors, encoded=encoded)
            memory = emulator.memory
            memory.write_bytes(program.image.symbol("operands"), encoded[1])
            start, size = template.scratch_span()
            memory.write_bytes(start, b"\x00" * size)
            emulator.reset()
            entry = (template, emulator)
        self._timed_entries[key] = entry
        while len(self._timed_entries) > self.max_entries:
            self._timed_entries.pop(next(iter(self._timed_entries)))
        return program, emulator

    def run_functional(self, solution, config, vectors) -> tuple:
        """``(program, SimulationResult)`` for one batch of vectors.

        Convenience wrapper over :meth:`acquire` + ``simulator.run()`` for
        callers that only need the functional result (benchmarks, tests).
        """
        program, simulator = self.acquire(solution, config, vectors)
        return program, simulator.run()

    def clear(self) -> None:
        """Drop every cached simulator and reset the hit/miss statistics.

        Benchmarks reuse one runner across phases; stale counters from a
        previous phase would otherwise leak into the next phase's hit-rate
        arithmetic.  Use :meth:`reset_stats` to zero the counters without
        dropping the warm simulators.
        """
        self._entries.clear()
        self._timed_entries.clear()
        self._promoted.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero ``hits``/``misses`` while keeping the cached simulators."""
        self.hits = 0
        self.misses = 0
        self.timed_hits = 0
        self.timed_misses = 0
