"""Sparse little-endian memory with MMIO hooks.

The simulated machine has a flat physical address space.  Pages are allocated
lazily so that placing the text segment at 256 MiB and the stack at 768 MiB
costs nothing.  A small MMIO mechanism lets the HTIF host interface intercept
writes to its ``tohost`` register.

The scalar :meth:`SparseMemory.read`/:meth:`SparseMemory.write` pair sits on
the fetch/load/store inner loop of every simulator, so it has a dedicated
fast path: a last-page cache (one for loads, one for stores, since fetches
hit text while stores hit the stack) avoids the page-dictionary lookup for
consecutive same-page accesses, and page bytes are converted with
preconverted :mod:`struct` codecs instead of slice-allocating
``int.from_bytes`` / ``int.to_bytes`` round trips.

For the tier-2 compiled superblocks there is a still faster lane:
:attr:`SparseMemory.u64_views` caches a ``memoryview(page).cast("Q")`` per
page, turning an aligned 64-bit access into a single C-level index.  The
views alias the page bytearrays, so scalar writes, ``write_bytes`` and
image loads stay coherent with view reads (and vice versa) without any
invalidation protocol; pages are never resized or replaced, so a view can
never go stale.  The cast is only byte-order-correct on little-endian
hosts — callers must gate on :data:`HOST_IS_LITTLE_ENDIAN`.
"""

from __future__ import annotations

import struct
import sys

from repro.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

#: Cast-'Q' page views read the host's native byte order; the simulated
#: machine is little-endian, so the view fast lane is only sound here.
HOST_IS_LITTLE_ENDIAN = sys.byteorder == "little"

# Preconverted little-endian scalar codecs for the hot path.
_U16_FROM = struct.Struct("<H").unpack_from
_U32_FROM = struct.Struct("<I").unpack_from
_U64_FROM = struct.Struct("<Q").unpack_from
_U16_INTO = struct.Struct("<H").pack_into
_U32_INTO = struct.Struct("<I").pack_into
_U64_INTO = struct.Struct("<Q").pack_into


class SparseMemory:
    """Byte-addressable sparse memory."""

    __slots__ = (
        "_pages",
        "_write_hooks",
        "_read_hooks",
        "_read_page_number",
        "_read_page",
        "_write_page_number",
        "_write_page",
        "u64_views",
        "u32_views",
        "u16_views",
        "hook_gen",
    )

    def __init__(self) -> None:
        self._pages = {}
        self._write_hooks = {}
        self._read_hooks = {}
        #: Bumped on every hook registration.  Compiled code that folded a
        #: "no hook at this address" check at compile time guards on this
        #: generation and deoptimizes if the hook set changed since.
        self.hook_gen = 0
        # Last-page caches (page number -> page bytes); pages are never
        # deleted, and only existing pages are cached, so entries can't go
        # stale.
        self._read_page_number = None
        self._read_page = None
        self._write_page_number = None
        self._write_page = None
        #: page number -> ``memoryview(page).cast("Q")``; see module docs.
        self.u64_views = {}
        #: narrower cast lanes for the compiled loads of lwu/lw and lhu/lh
        #: (same aliasing/coherence argument as :attr:`u64_views`).
        self.u32_views = {}
        self.u16_views = {}

    # ------------------------------------------------------------------- MMIO
    def add_write_hook(self, address: int, callback) -> None:
        """Call ``callback(value, size)`` instead of storing at ``address``."""
        self._write_hooks[address] = callback
        self.hook_gen += 1

    def add_read_hook(self, address: int, callback) -> None:
        """Call ``callback(size) -> int`` instead of loading from ``address``."""
        self._read_hooks[address] = callback
        self.hook_gen += 1

    # ------------------------------------------------------------------ pages
    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def u64_view(self, page_number: int):
        """Cast-'Q' view of an existing page, or ``None`` (never allocates).

        The load fast lane: a missing page reads as zero, so callers fall
        back to 0 (or :meth:`read`) on ``None`` instead of allocating.
        """
        view = self.u64_views.get(page_number)
        if view is None:
            page = self._pages.get(page_number)
            if page is None:
                return None
            view = memoryview(page).cast("Q")
            self.u64_views[page_number] = view
        return view

    def u32_view(self, page_number: int):
        """Cast-'I' view of an existing page, or ``None`` (never allocates)."""
        view = self.u32_views.get(page_number)
        if view is None:
            page = self._pages.get(page_number)
            if page is None:
                return None
            view = memoryview(page).cast("I")
            self.u32_views[page_number] = view
        return view

    def u16_view(self, page_number: int):
        """Cast-'H' view of an existing page, or ``None`` (never allocates)."""
        view = self.u16_views.get(page_number)
        if view is None:
            page = self._pages.get(page_number)
            if page is None:
                return None
            view = memoryview(page).cast("H")
            self.u16_views[page_number] = view
        return view

    def u64_view_create(self, page_number: int):
        """Cast-'Q' view of a page, allocating the page if needed (stores)."""
        view = self.u64_views.get(page_number)
        if view is None:
            view = memoryview(self._page(page_number)).cast("Q")
            self.u64_views[page_number] = view
        return view

    def u32_view_create(self, page_number: int):
        """Cast-'I' view of a page, allocating the page if needed (stores)."""
        view = self.u32_views.get(page_number)
        if view is None:
            view = memoryview(self._page(page_number)).cast("I")
            self.u32_views[page_number] = view
        return view

    def u16_view_create(self, page_number: int):
        """Cast-'H' view of a page, allocating the page if needed (stores)."""
        view = self.u16_views.get(page_number)
        if view is None:
            view = memoryview(self._page(page_number)).cast("H")
            self.u16_views[page_number] = view
        return view

    def page_create(self, page_number: int):
        """The raw page bytearray, allocating if needed (byte-lane access)."""
        return self._page(page_number)

    # ------------------------------------------------------------------ bytes
    def write_bytes(self, address: int, data: bytes) -> None:
        if address < 0:
            raise MemoryError_(f"negative address: {address:#x}")
        offset = 0
        remaining = len(data)
        while remaining:
            page_number = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - page_offset, remaining)
            self._page(page_number)[page_offset:page_offset + chunk] = data[
                offset:offset + chunk
            ]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        if address < 0:
            raise MemoryError_(f"negative address: {address:#x}")
        # Preallocate: unbacked ranges stay zero and backed chunks are copied
        # into place, instead of growing a bytearray chunk by chunk.
        result = bytearray(length)
        offset = 0
        while offset < length:
            page_number = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - page_offset, length - offset)
            page = self._pages.get(page_number)
            if page is not None:
                result[offset:offset + chunk] = page[page_offset:page_offset + chunk]
            offset += chunk
        return bytes(result)

    # ----------------------------------------------------------------- scalar
    def read(self, address: int, size: int) -> int:
        """Load ``size`` bytes (1/2/4/8) little-endian, returning an unsigned int."""
        if self._read_hooks:
            hook = self._read_hooks.get(address)
            if hook is not None:
                return hook(size)
        page_offset = address & PAGE_MASK
        if page_offset + size <= PAGE_SIZE:
            page_number = address >> PAGE_SHIFT
            if page_number == self._read_page_number:
                page = self._read_page
            else:
                page = self._pages.get(page_number)
                if page is None:
                    return 0
                self._read_page_number = page_number
                self._read_page = page
            if size == 8:
                return _U64_FROM(page, page_offset)[0]
            if size == 4:
                return _U32_FROM(page, page_offset)[0]
            if size == 2:
                return _U16_FROM(page, page_offset)[0]
            if size == 1:
                return page[page_offset]
            return int.from_bytes(page[page_offset:page_offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Store ``size`` bytes (1/2/4/8) little-endian."""
        hook = self._write_hooks.get(address)
        if hook is not None:
            hook(value & ((1 << (8 * size)) - 1), size)
            return
        page_offset = address & PAGE_MASK
        if page_offset + size <= PAGE_SIZE:
            page_number = address >> PAGE_SHIFT
            if page_number == self._write_page_number:
                page = self._write_page
            else:
                page = self._pages.get(page_number)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self._pages[page_number] = page
                self._write_page_number = page_number
                self._write_page = page
            if size == 8:
                _U64_INTO(page, page_offset, value & 0xFFFFFFFFFFFFFFFF)
            elif size == 4:
                _U32_INTO(page, page_offset, value & 0xFFFFFFFF)
            elif size == 2:
                _U16_INTO(page, page_offset, value & 0xFFFF)
            elif size == 1:
                page[page_offset] = value & 0xFF
            else:
                page[page_offset:page_offset + size] = (
                    value & ((1 << (8 * size)) - 1)
                ).to_bytes(size, "little")
        else:
            self.write_bytes(
                address, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            )

    # ------------------------------------------------------------ convenience
    def read_dword(self, address: int) -> int:
        return self.read(address, 8)

    def write_dword(self, address: int, value: int) -> None:
        self.write(address, 8, value)

    def read_word(self, address: int) -> int:
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        self.write(address, 4, value)

    def load_image(self, image) -> None:
        """Copy every segment of a linked :class:`~repro.asm.program.Image`."""
        for base, data in image.iter_bytes():
            self.write_bytes(base, data)

    def allocated_bytes(self) -> int:
        """Number of bytes currently backed by real pages (for tests)."""
        return len(self._pages) * PAGE_SIZE
