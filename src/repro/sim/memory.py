"""Sparse little-endian memory with MMIO hooks.

The simulated machine has a flat physical address space.  Pages are allocated
lazily so that placing the text segment at 256 MiB and the stack at 768 MiB
costs nothing.  A small MMIO mechanism lets the HTIF host interface intercept
writes to its ``tohost`` register.
"""

from __future__ import annotations

from repro.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class SparseMemory:
    """Byte-addressable sparse memory."""

    def __init__(self) -> None:
        self._pages = {}
        self._write_hooks = {}
        self._read_hooks = {}

    # ------------------------------------------------------------------- MMIO
    def add_write_hook(self, address: int, callback) -> None:
        """Call ``callback(value, size)`` instead of storing at ``address``."""
        self._write_hooks[address] = callback

    def add_read_hook(self, address: int, callback) -> None:
        """Call ``callback(size) -> int`` instead of loading from ``address``."""
        self._read_hooks[address] = callback

    # ------------------------------------------------------------------ pages
    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    # ------------------------------------------------------------------ bytes
    def write_bytes(self, address: int, data: bytes) -> None:
        if address < 0:
            raise MemoryError_(f"negative address: {address:#x}")
        offset = 0
        remaining = len(data)
        while remaining:
            page_number = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - page_offset, remaining)
            self._page(page_number)[page_offset:page_offset + chunk] = data[
                offset:offset + chunk
            ]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        if address < 0:
            raise MemoryError_(f"negative address: {address:#x}")
        result = bytearray()
        offset = 0
        while offset < length:
            page_number = (address + offset) >> PAGE_SHIFT
            page_offset = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - page_offset, length - offset)
            page = self._pages.get(page_number)
            if page is None:
                result.extend(b"\x00" * chunk)
            else:
                result.extend(page[page_offset:page_offset + chunk])
            offset += chunk
        return bytes(result)

    # ----------------------------------------------------------------- scalar
    def read(self, address: int, size: int) -> int:
        """Load ``size`` bytes (1/2/4/8) little-endian, returning an unsigned int."""
        hook = self._read_hooks.get(address)
        if hook is not None:
            return hook(size)
        page_offset = address & PAGE_MASK
        if page_offset + size <= PAGE_SIZE:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[page_offset:page_offset + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write(self, address: int, size: int, value: int) -> None:
        """Store ``size`` bytes (1/2/4/8) little-endian."""
        hook = self._write_hooks.get(address)
        if hook is not None:
            hook(value & ((1 << (8 * size)) - 1), size)
            return
        page_offset = address & PAGE_MASK
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if page_offset + size <= PAGE_SIZE:
            page = self._page(address >> PAGE_SHIFT)
            page[page_offset:page_offset + size] = data
        else:
            self.write_bytes(address, data)

    # ------------------------------------------------------------ convenience
    def read_dword(self, address: int) -> int:
        return self.read(address, 8)

    def write_dword(self, address: int, value: int) -> None:
        self.write(address, 8, value)

    def read_word(self, address: int) -> int:
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        self.write(address, 4, value)

    def load_image(self, image) -> None:
        """Copy every segment of a linked :class:`~repro.asm.program.Image`."""
        for base, data in image.iter_bytes():
            self.write_bytes(base, data)

    def allocated_bytes(self) -> int:
        """Number of bytes currently backed by real pages (for tests)."""
        return len(self._pages) * PAGE_SIZE
