"""Threaded-code execution engine for decoded RV64 instructions.

One :class:`Executor` instance drives one hart against one memory.  The same
executor is reused by every simulator in the repository:

* :class:`repro.sim.spike.SpikeSimulator` — functional, batched execution via
  :meth:`Executor.run`, no timing;
* :class:`repro.rocket.core.RocketEmulator` — wraps each :meth:`Executor.step`
  with the pipeline/cache timing model;
* :class:`repro.gem5.atomic_cpu.AtomicSimpleCPU` — batched when no memory
  penalty is configured, per-step otherwise.

Architecture (decode-once threaded code)
----------------------------------------

Instead of re-decoding and re-dispatching on a mnemonic string for every
retired instruction, the engine *compiles* each static instruction the first
time it is executed:

* :meth:`Executor._compile` decodes the word at ``pc`` once and builds a
  **specialized closure** with every operand pre-bound — register indices,
  sign-extended and pre-masked immediates, branch targets, ``pc + 4`` — so
  executing the instruction is a single closure call with no decode, no
  dispatch and no dead work.
* Closures are stored in a **PC-indexed dispatch table** (``_ops``), so the
  hot loop never even re-fetches the instruction word from memory.
* Every instruction gets *two* closures: a **fast op** used by
  :meth:`run` that returns only the next PC, and an **info op** used by
  :meth:`step` that additionally maintains an :class:`ExecInfo` record for
  the timing models.  ``ExecInfo`` materialization is therefore *opt-in*:
  the functional path never allocates or fills one.
* The per-PC ``ExecInfo`` object is created at compile time and **reused**
  across executions of that instruction; only the dynamic fields (memory
  address, branch outcome, RoCC response) are rewritten per step.  Timing
  models must consume the record before their next ``step()`` call (all
  in-tree models do).

Correctness safeguards:

* Stores into the compiled-code address range invalidate the affected table
  entries, so self-modifying code behaves exactly as under the old
  fetch-every-step interpreter; ``fence.i`` flushes the whole table.
* Rare instructions that need up-to-date counter state (CSR reads, ``ecall``,
  ``ebreak``) compile to a closure that raises the :data:`_SLOW` sentinel;
  :meth:`run` catches it, synchronizes ``retired``/``hart.pc`` and executes
  the instruction through the exact info-op path.
* The HTIF host interface requests a halt through :meth:`request_halt`
  (wired by the simulators); store closures observe the flag immediately so
  a batched run stops on the exact instruction that wrote ``tohost``.

Tier-2: compiled superblocks
----------------------------

The closure tables above are *tier 1*.  Superblocks that :meth:`run` executes
more than :attr:`Executor.promote_threshold` times are **promoted**:
:meth:`Executor._promote` walks the trace starting at the block head —
through conditional branches (fall-through) and ``jal`` targets, stopping at
``jalr``, CSR/``ecall``/``ebreak``/``fence.i``/RoCC boundaries, undecodable
words, revisited PCs and a length cap — and generates straight-line Python
source with the touched registers held in **locals**, every immediate and
branch target folded to a constant, and no per-instruction dispatch at all.
Back-edges to the block head become a native ``while`` loop, so a hot inner
loop runs entirely inside one compiled function with the register file
loaded once.  The source is ``exec``-compiled into a single function per
superblock: ``fn(fuel) -> (next_pc, instructions_retired)``.

Tier-2 correctness mirrors tier 1 exactly:

* mid-trace exits (taken branches, ``jalr``) write the dirty locals back to
  the register file and return the precise retire count;
* stores perform the same compiled-range overlap test and raise
  :class:`_BlockExit` / :class:`_Stopped` — with an explicit retire count,
  since a trace may be non-contiguous — after writing registers back;
* loop back-edges check a ``fuel`` budget so a batched :meth:`run` cannot
  overshoot ``max_instructions`` by more than one superblock;
* any store into compiled code (and ``fence.i``) drops every tier-2
  function along with the tier-1 tables, *de-promoting* the block: it is
  recompiled from the freshly fetched words and must re-earn promotion.
* blocks whose head is a slow/RoCC/undecodable instruction are marked
  ineligible and stay on the tier-1 closures forever.

Per-superblock retire/compile counters are available opt-in through
:meth:`Executor.enable_profiling` (see :class:`ExecProfile`); the
always-cheap aggregate compile counters (``tier2_blocks``,
``tier2_compile_seconds``) are maintained unconditionally.

See ``docs/simulator.md`` for an extension guide (tier hierarchy, batching,
multi-hart) and the protocol the timing models rely on.
"""

from __future__ import annotations

from time import perf_counter

from repro.errors import DecodingError, SimulationError, TrapError
from repro.isa import csr as csrdefs
from repro.isa.decoder import decode_cached
from repro.sim.memory import HOST_IS_LITTLE_ENDIAN, SparseMemory

MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN64 = 1 << 63
_INT64_MIN = -(1 << 63)
_INT32_MIN = -(1 << 31)

#: Static timing classes, assigned to :attr:`ExecInfo.timing_class` at compile
#: time so the cycle-accurate models never need to classify mnemonics per step.
TC_OTHER = 0
TC_MEM = 1
TC_MUL = 2
TC_DIV = 3
TC_ROCC = 4
TC_JUMP = 5
TC_BRANCH = 6


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return (value ^ 0x80000000) - 0x80000000


class _SlowPath(Exception):
    """Internal: the fast table defers this PC to the info-op path."""


#: Preallocated sentinel raised by slow fast-ops (CSR/ecall/ebreak).
_SLOW = _SlowPath()


def _raise_slow():
    raise _SLOW


class _Stopped(Exception):
    """Internal: a store triggered an HTIF exit mid-batch.

    ``count`` is ``None`` when raised from a tier-1 block (the retire count
    is recovered from how far ``pc`` advanced through the contiguous block)
    and an explicit instruction count when raised from a tier-2 superblock,
    whose trace may be non-contiguous.
    """

    def __init__(self, next_pc: int, count: int = None) -> None:
        self.next_pc = next_pc
        self.count = count


class _BlockExit(Exception):
    """Internal: a store invalidated compiled code; abandon the running block.

    ``count`` follows the same tier-1/tier-2 convention as :class:`_Stopped`.
    """

    def __init__(self, next_pc: int, count: int = None) -> None:
        self.next_pc = next_pc
        self.count = count


class _Deopt(Exception):
    """Internal: a tier-2 entry guard failed — the value-range speculation
    baked into the compiled superblock does not hold for this call.

    Raised before any architectural state changes, so the dispatcher simply
    drops the function and falls back to the tier-1 closures; re-promotion
    re-speculates against the registers as they stand then.
    """


#: Preallocated: the guard raises before any state change, so no payload.
_DEOPT = _Deopt()


class _Rewalk(Exception):
    """Internal: restart a tier-2 trace walk with extra fold bans.

    Raised when a back-edge could close a native loop except that folded
    constants defined by the peeled first iteration would go stale across
    the edge.  ``pcs`` are the offending fold use-sites; re-walking with
    them banned emits dynamic code there so the loop can wrap.
    """

    def __init__(self, pcs) -> None:
        self.pcs = pcs


#: Superblock op-kind classification (how :meth:`Executor._compile_block`
#: threads closures together).
_KIND_SEQ = 0    # falls through to pc + 4: may appear mid-block
_KIND_TERM = 1   # control transfer (or table flush): always ends a block
_KIND_SLOW = 2   # needs synchronized counters: always a single-op block


class ExecInfo:
    """What a single instruction did (consumed by the timing models).

    Instances are created once per static instruction and *reused*: a timing
    model must read the record before its next ``step()`` call.
    """

    __slots__ = (
        "decoded",
        "pc",
        "next_pc",
        "branch_taken",
        "mem_addr",
        "mem_size",
        "mem_is_store",
        "is_rocc",
        "rocc_busy_cycles",
        "rocc_has_response",
        "rocc_funct7",
        "timing_class",
    )

    def __init__(self, decoded, pc, next_pc):
        self.decoded = decoded
        self.pc = pc
        self.next_pc = next_pc
        self.branch_taken = False
        self.mem_addr = None
        self.mem_size = 0
        self.mem_is_store = False
        self.is_rocc = False
        self.rocc_busy_cycles = 0
        self.rocc_has_response = False
        self.rocc_funct7 = 0
        self.timing_class = TC_OTHER


class ExecProfile:
    """Opt-in per-superblock execution/compile counters.

    Enabled through :meth:`Executor.enable_profiling`; the default execution
    path never touches an instance (one ``is None`` test per block).  All
    dictionaries are keyed by superblock head PC.
    """

    __slots__ = (
        "tier1_execs",
        "tier1_instrs",
        "tier2_execs",
        "tier2_instrs",
        "compiled",
        "side_exits",
    )

    def __init__(self) -> None:
        #: Completed tier-1 block executions / instructions retired, per head.
        self.tier1_execs = {}
        self.tier1_instrs = {}
        #: Tier-2 superblock calls / instructions retired, per head.
        self.tier2_execs = {}
        self.tier2_instrs = {}
        #: head -> (static trace length, compile seconds) for promoted blocks.
        self.compiled = {}
        #: (trace head, exit pc) -> count of tier-2 exits that fell back to
        #: tier 1 there (no compiled continuation was installed yet).  This
        #: is the trace-tree worklist: the hottest entries are exactly the
        #: side exits most worth extending with a compiled continuation.
        self.side_exits = {}

    def _t1(self, pc: int, count: int) -> None:
        self.tier1_execs[pc] = self.tier1_execs.get(pc, 0) + 1
        self.tier1_instrs[pc] = self.tier1_instrs.get(pc, 0) + count

    def _t2(self, pc: int, count: int) -> None:
        self.tier2_execs[pc] = self.tier2_execs.get(pc, 0) + 1
        self.tier2_instrs[pc] = self.tier2_instrs.get(pc, 0) + count

    def _exit(self, head: int, exit_pc: int) -> None:
        key = (head, exit_pc)
        self.side_exits[key] = self.side_exits.get(key, 0) + 1

    @property
    def tier1_instructions(self) -> int:
        return sum(self.tier1_instrs.values())

    @property
    def tier2_instructions(self) -> int:
        return sum(self.tier2_instrs.values())

    @property
    def compile_seconds(self) -> float:
        return sum(seconds for _, seconds in self.compiled.values())

    def snapshot(self) -> dict:
        """Aggregate view used by the throughput benchmark and docs examples."""
        return {
            "tier1_instructions": self.tier1_instructions,
            "tier2_instructions": self.tier2_instructions,
            "tier2_blocks": len(self.compiled),
            "tier2_compile_seconds": self.compile_seconds,
            "hottest_tier2": sorted(
                self.tier2_instrs.items(), key=lambda item: -item[1]
            )[:8],
            "hot_side_exits": [
                {"head": head, "exit": exit_pc, "count": count}
                for (head, exit_pc), count in sorted(
                    self.side_exits.items(), key=lambda item: -item[1]
                )[:8]
            ],
        }

    def summary(self, limit: int = 10) -> str:
        """Human-readable per-tier totals plus the hot side-exit ranking.

        The side-exit table ranks ``(trace head, exit pc)`` pairs by how
        often a tier-2 trace left compiled code there without a compiled
        continuation — i.e. the fall-back-to-tier-1 transitions that the
        trace-tree extender targets.  In steady state the table should be
        (close to) empty: every hot exit earns its own continuation after a
        couple of arrivals.
        """
        lines = [
            "execution profile:",
            f"  tier-2: {self.tier2_instructions:>12,} instructions across "
            f"{len(self.compiled)} compiled traces "
            f"({self.compile_seconds:.4f}s compiling)",
            f"  tier-1: {self.tier1_instructions:>12,} instructions across "
            f"{len(self.tier1_instrs)} interpreted blocks",
        ]
        exits = sorted(self.side_exits.items(), key=lambda item: -item[1])
        if exits:
            lines.append(f"  hot side exits (top {min(limit, len(exits))} "
                         f"of {len(exits)}; trace-tree continuation targets):")
            lines.append("    head        exit        arrivals")
            for (head, exit_pc), count in exits[:limit]:
                lines.append(f"    {head:#010x}  {exit_pc:#010x}  {count:>8,}")
        else:
            lines.append("  hot side exits: none (every exit has a compiled "
                         "continuation)")
        return "\n".join(lines)


# --------------------------------------------------------------------- helpers
def _div64(a: int, b: int) -> int:
    """RV64 ``div``: C-style truncation, -1 on /0, INT_MIN on overflow."""
    sa = (a ^ _SIGN64) - _SIGN64
    sb = (b ^ _SIGN64) - _SIGN64
    if sb == 0:
        return MASK64
    if sa == _INT64_MIN and sb == -1:
        return a
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & MASK64


def _rem64(a: int, b: int) -> int:
    sa = (a ^ _SIGN64) - _SIGN64
    sb = (b ^ _SIGN64) - _SIGN64
    if sb == 0:
        return sa & MASK64
    if sa == _INT64_MIN and sb == -1:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return (sa - sb * quotient) & MASK64


def _div32(a: int, b: int) -> int:
    sa = _signed32(a)
    sb = _signed32(b)
    if sb == 0:
        return MASK64
    if sa == _INT32_MIN and sb == -1:
        return _INT32_MIN & MASK64
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _signed32(quotient) & MASK64


def _rem32(a: int, b: int) -> int:
    sa = _signed32(a)
    sb = _signed32(b)
    if sb == 0:
        return _signed32(sa) & MASK64
    if sa == _INT32_MIN and sb == -1:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _signed32(sa - sb * quotient) & MASK64


def _s32expr(expr: str) -> str:
    """Source text computing ``_signed32(expr)`` inline (a Python int)."""
    return f"(({expr} & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000"


_LOAD_SIZES = {"ld": 8, "lw": 4, "lwu": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}
_STORE_SIZES = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}
_MUL_MNEMONICS = frozenset({"mul", "mulh", "mulhu", "mulhsu", "mulw"})
_DIV_MNEMONICS = frozenset({"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"})

#: Instructions that end a tier-2 trace *before* being included: they need
#: synchronized architectural state (CSR reads, traps), flush the compiled
#: tables (``fence.i``) or have accelerator side effects (RoCC) that the
#: folded straight-line code cannot express.  Execution falls back to the
#: tier-1 closures at the returned PC.
_T2_STOPPERS = frozenset({
    "csrrs", "csrrw", "csrrc", "csrrsi", "csrrwi", "csrrci",
    "ecall", "ebreak", "fence.i",
})

_T2_BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})

#: Instructions that may be folded under a skip-diamond guard (no control
#: transfer, no table flush, no synchronized-state requirement).
#: Longest forward skip (instructions) folded into an if/else diamond.
_T2_MAX_SKIP = 8


class Executor:
    """Threaded-code fetch/decode/execute engine with PC-indexed dispatch."""

    #: Default tier-2 promotion threshold, in *instructions retired* at a
    #: superblock head (not executions): a head is promoted once its tier-1
    #: volume crosses this.  Volume-based heat auto-scales — a 2-instruction
    #: loop-control block needs thousands of trips before compiling pays,
    #: while a 100-instruction kernel body promotes after a few dozen — and
    #: roughly matches the ~1 ms ``compile()`` cost against the tier-1 time
    #: the block would otherwise keep burning.
    PROMOTE_THRESHOLD = 4096

    def __init__(self, hart, memory, csr_provider=None, rocc=None, *,
                 tier2: bool = True, promote_threshold: int = None,
                 counter_csrs=None):
        self.hart = hart
        self.memory = memory
        # Tier-2's page-view memory lanes index the page bytearrays
        # directly, which is only sound when the memory object's
        # read/write are the stock SparseMemory methods: a subclass that
        # overrides them (fault injectors, tracing wrappers) must see
        # every access, so the lanes are disabled and compiled code goes
        # through the bound rd_/wr_ methods instead.
        mem_cls = type(memory)
        self._direct_memory = (
            getattr(mem_cls, "read", None) is SparseMemory.read
            and getattr(mem_cls, "write", None) is SparseMemory.write
        )
        self.csr_provider = csr_provider if csr_provider is not None else (lambda addr: 0)
        self.rocc = rocc
        #: CSR addresses whose read is *exactly* the current retired-
        #: instruction count (a contract the owner of ``csr_provider`` opts
        #: into).  Tier-2 inlines pure reads of these (``csrrs rd, csr, x0``
        #: — the ``rdcycle``/``rdinstret`` idiom) as arithmetic on the retire
        #: counter instead of breaking the trace, which lets timing-bracket
        #: loops fuse.  ``None`` keeps every CSR a trace stopper.
        self.counter_csrs = frozenset(counter_csrs) if counter_csrs else None
        self.exit_requested = False
        self.exit_code = 0
        #: Set when any exit condition fires (HTIF halt or exit ecall).
        self.stop = False
        #: Total instructions retired by this executor (run() and step()).
        self.retired = 0
        # PC-indexed dispatch tables.
        self._ops = {}
        self._info_ops = {}
        self._decoded_at = {}
        self._kinds = {}
        # PC-indexed (info_op, info) pairs: lets a timing model fetch the
        # static ExecInfo (for pre-issue hazard checks) and execute with a
        # single table lookup.
        self._timed = {}
        # PC-indexed superblocks: straight-line runs of fast ops threaded into
        # a list so the dispatch loop pays one table lookup per block.
        self._blocks = {}
        # PC-indexed *timing* superblocks, owned by the cycle-accurate Rocket
        # front end (see repro.rocket.timing): head pc -> (fn, min_fuel).
        # They live on the executor because the executor owns code-change
        # visibility — fence.i and self-modifying stores must drop compiled
        # timing spans exactly like every other compiled artifact.
        self._tblocks = {}
        # [lo, hi) byte range covered by compiled instructions; shared with
        # store closures so writes into code invalidate stale table entries.
        self._code_bounds = [1 << 62, 0]
        # Tier-2: head pc -> compiled superblock function fn(fuel) -> (pc, n),
        # plus per-head execution heat driving promotion.  A head that cannot
        # be promoted (slow/RoCC/undecodable first instruction) gets a large
        # negative heat so it is never retried.
        self._tier2 = {}
        self._heat = {}
        #: Promote after this many instructions retired at a head via tier 1;
        #: ``0`` disables tier 2 entirely (pure tier-1 engine).
        self.promote_threshold = (
            (self.PROMOTE_THRESHOLD if promote_threshold is None else promote_threshold)
            if tier2 else 0
        )
        #: Always-on aggregate tier-2 counters (cheap: updated at compile time
        #: only).  Per-block detail is opt-in via :meth:`enable_profiling`.
        self.tier2_blocks = 0
        self.tier2_compile_seconds = 0.0
        self.tier2_ineligible = 0
        self.tier2_deopts = 0
        # head -> entry-guard failures; past _T2_MAX_DEOPTS the head is
        # recompiled without any entry-value speculation.
        self._t2_deopts = {}
        # head -> (exact {reg: value}, range frozenset) speculated by the
        # installed compile; the deopt handler compares it against the live
        # registers to prune exactly the registers that went stale.
        self._t2_spec = {}
        # head -> registers banned from exact-value / range / pinned-base
        # speculation (learned from deopts, so re-promotion converges).
        self._t2_nospec = {}
        self._t2_norange = {}
        self._t2_nobase = {}
        #: Opt-in :class:`ExecProfile`; ``None`` keeps the hot loop lean.
        self.profile = None

    def enable_profiling(self) -> ExecProfile:
        """Attach (or return the existing) :class:`ExecProfile` to this executor."""
        if self.profile is None:
            self.profile = ExecProfile()
        return self.profile

    # ------------------------------------------------------------------ control
    def request_halt(self) -> None:
        """Stop a batched :meth:`run` after the current instruction (HTIF)."""
        self.stop = True

    def flush(self) -> None:
        """Drop every compiled instruction (``fence.i``, external cache control)."""
        self._ops.clear()
        self._info_ops.clear()
        self._decoded_at.clear()
        self._kinds.clear()
        self._timed.clear()
        self._blocks.clear()
        self._tblocks.clear()
        # De-promote: compiled superblocks embed stale decoded semantics, and
        # heat must restart so the block re-earns promotion from fresh code.
        self._tier2.clear()
        self._heat.clear()

    def _invalidate(self, address: int, size: int) -> None:
        """A store hit the compiled range: drop any overlapping instructions."""
        ops = self._ops
        info_ops = self._info_ops
        decoded_at = self._decoded_at
        kinds = self._kinds
        timed = self._timed
        for pc in range(address - 3, address + size):
            ops.pop(pc, None)
            info_ops.pop(pc, None)
            decoded_at.pop(pc, None)
            kinds.pop(pc, None)
            timed.pop(pc, None)
        # Superblocks embed closure references (tier 1) and folded decoded
        # semantics spanning many PCs (tier 2), so any code write drops them
        # all (rare: only stores into the compiled range get here).  Clearing
        # ``_heat`` de-promotes: the rewritten block must re-earn promotion.
        self._blocks.clear()
        self._tblocks.clear()
        self._tier2.clear()
        self._heat.clear()

    # ------------------------------------------------------------------ fetch
    def fetch_decode(self, pc: int):
        """Return the decoded instruction at ``pc`` (PC-indexed, decode-once)."""
        decoded = self._decoded_at.get(pc)
        if decoded is None:
            decoded = decode_cached(self.memory.read(pc, 4))
            self._decoded_at[pc] = decoded
        return decoded

    # -------------------------------------------------------------------- run
    def run(self, max_instructions: int) -> int:
        """Execute up to the ``max_instructions`` budget in a tight loop.

        Stops early when the program exits (HTIF halt or exit ``ecall``);
        may overshoot the budget by up to one superblock (callers use the
        budget as a runaway guard, not an exact stopping point).  Returns the
        number of instructions retired by this call; the running total is
        kept in :attr:`retired`.
        """
        if self.stop:
            return 0
        hart = self.hart
        blocks_get = self._blocks.get
        compile_block = self._compile_block
        tier2_get = self._tier2.get
        heat = self._heat
        threshold = self.promote_threshold
        profile = self.profile
        pc = hart.pc
        retired = self.retired
        start = retired
        end = retired + max_instructions
        try:
            while retired < end:
                # Tier 2: one call executes the whole (possibly looping)
                # superblock with registers in locals; ``fuel`` bounds budget
                # overshoot at loop back-edges.
                fn = tier2_get(pc)
                if fn is not None:
                    block_pc = pc
                    # Keep the public counter exact at call entry: compiled
                    # bodies reconstruct mid-trace retire counts (inlined
                    # rdcycle/rdinstret) as ``E.retired + n + position``.
                    self.retired = retired
                    try:
                        pc, count = fn(end - retired)
                    except _BlockExit as exited:
                        pc = exited.next_pc
                        retired += exited.count
                        continue
                    except _Stopped as stopped:
                        pc = stopped.next_pc
                        retired += stopped.count
                        break
                    except _Deopt:
                        # Entry guard failed before any state change: drop
                        # the speculative compile, ban exactly the registers
                        # whose speculation went stale, and let tier-1 heat
                        # drive a re-promotion against the current values.
                        del self._tier2[block_pc]
                        spec = self._t2_spec.pop(block_pc, None)
                        pruned = False
                        if spec is not None:
                            exact, ranged, based = spec
                            live = self.hart.regs
                            for r, v in exact.items():
                                if live[r] != v:
                                    self._t2_nospec.setdefault(
                                        block_pc, set()
                                    ).add(r)
                                    pruned = True
                            for r in ranged:
                                if live[r] > self._T2_SPEC_BOUND:
                                    self._t2_norange.setdefault(
                                        block_pc, set()
                                    ).add(r)
                                    pruned = True
                            hooks = list(self.memory._read_hooks) + list(
                                self.memory._write_hooks
                            )
                            for r, (align, span) in based.items():
                                v = live[r]
                                if v & (align - 1) or any(
                                    h - span < v <= h for h in hooks
                                ):
                                    self._t2_nobase.setdefault(
                                        block_pc, set()
                                    ).add(r)
                                    pruned = True
                        self._t2_deopts[block_pc] = (
                            self._t2_deopts.get(block_pc, 0) + 1
                        )
                        if not pruned:
                            # An environment assumption (hook set) failed,
                            # not a register guess: register pruning can't
                            # converge, so disable speculation outright.
                            self._t2_deopts[block_pc] = self._T2_MAX_DEOPTS
                        self.tier2_deopts += 1
                        continue
                    retired += count
                    if profile is not None:
                        profile._t2(block_pc, count)
                    # Trace trees: a tier-2 exit that lands on an uncompiled
                    # head is a side exit falling back to tier 1.  Reheat the
                    # target so a recurring exit promotes into its own
                    # compiled continuation after a second arrival — the
                    # dispatcher then chains trace to trace and the tier-1
                    # residue shrinks toward the genuinely-uncompilable rest.
                    if threshold and tier2_get(pc) is None:
                        self._reheat(block_pc, pc, profile)
                    continue
                ops = blocks_get(pc)
                if ops is None:
                    ops = compile_block(pc)
                block_pc = pc
                try:
                    for op in ops:
                        pc = op()
                except _SlowPath:
                    # CSR / ecall / ebreak: needs exact architectural state.
                    # Sequential blocks make the partial count recoverable
                    # from how far pc advanced.
                    retired += (pc - block_pc) >> 2
                    self.retired = retired
                    hart.pc = pc
                    self.step()
                    retired = self.retired
                    pc = hart.pc
                    if self.stop:
                        break
                    # Slow-instruction resume points (rdcycle brackets and
                    # the like) are the other recurring fall-back-to-tier-1
                    # edge; reheat them like tier-2 side exits so the block
                    # after a counter read compiles too.
                    if threshold and tier2_get(pc) is None:
                        self._reheat(None, pc, None)
                    continue
                except _BlockExit as exited:
                    pc = exited.next_pc
                    retired += (pc - block_pc) >> 2
                    continue
                except _Stopped as stopped:
                    pc = stopped.next_pc
                    retired += (pc - block_pc) >> 2
                    break
                except BaseException:
                    retired += (pc - block_pc) >> 2
                    raise
                count = len(ops)
                retired += count
                if threshold:
                    hot = heat.get(block_pc, 0) + count
                    if hot >= threshold:
                        self._promote(block_pc)
                    else:
                        heat[block_pc] = hot
                if profile is not None:
                    profile._t1(block_pc, count)
        finally:
            self.retired = retired
            hart.pc = pc
        return retired - start

    # ------------------------------------------------------------------- step
    def step(self) -> ExecInfo:
        """Execute one instruction and return what it did (timing-model path)."""
        pc = self.hart.pc
        op = self._info_ops.get(pc)
        if op is None:
            self._compile(pc)
            op = self._info_ops[pc]
        info = op()
        self.retired += 1
        return info

    # ------------------------------------------------------------------- CSRs
    def _read_csr(self, address: int) -> int:
        if address in csrdefs.IMPLEMENTED:
            return self.csr_provider(address)
        raise TrapError(f"access to unimplemented CSR {address:#x}")

    # --------------------------------------------------------------- compiler
    def _compile(self, pc: int):
        """Decode the instruction at ``pc`` into its two specialized closures."""
        decoded = self.fetch_decode(pc)
        info = ExecInfo(decoded, pc, pc + 4)
        fast, info_op, kind = self._build(pc, decoded, info)
        self._ops[pc] = fast
        self._info_ops[pc] = info_op
        self._kinds[pc] = kind
        # An op is "direct" when its fast closure already provides everything
        # a timing model needs (no dynamic ExecInfo fields): plain ALU /
        # mul / div ops, fences and unconditional jumps.  Loads/stores
        # (dynamic mem_addr), conditional branches (dynamic branch_taken),
        # RoCC (dynamic busy cycles) and the slow class must go through the
        # info op.
        timing_class = info.timing_class
        direct = (
            kind == _KIND_SEQ and timing_class in (TC_OTHER, TC_MUL, TC_DIV)
        ) or (kind == _KIND_TERM and timing_class in (TC_JUMP, TC_OTHER))
        self._timed[pc] = (fast if direct else info_op, info, direct)
        bounds = self._code_bounds
        if pc < bounds[0]:
            bounds[0] = pc
        if pc + 4 > bounds[1]:
            bounds[1] = pc + 4
        return fast

    #: Upper bound on superblock length; bounds both compile-ahead work and
    #: how far a batch may overshoot its instruction budget.
    _MAX_BLOCK = 512

    def _compile_block(self, pc: int):
        """Thread the straight-line run starting at ``pc`` into one op list."""
        ops = []
        kinds = self._kinds
        table = self._ops
        p = pc
        while len(ops) < self._MAX_BLOCK:
            op = table.get(p)
            if op is None:
                try:
                    op = self._compile(p)
                except (DecodingError, SimulationError) as error:
                    # Block building decodes ahead of execution; a bad word
                    # must only raise if control actually reaches it.
                    if not ops:
                        def op(error=error):
                            raise error
                        ops.append(op)
                    break
            kind = kinds[p]
            if kind == _KIND_SLOW:
                if not ops:
                    ops.append(op)
                break
            ops.append(op)
            if kind == _KIND_TERM:
                break
            p += 4
        self._blocks[pc] = ops
        return ops

    def _build(self, pc: int, decoded, info):  # noqa: C901 - one arm per instruction
        hart = self.hart
        regs = hart.regs
        memory = self.memory
        mnemonic = decoded.mnemonic
        rd = decoded.rd
        rs1 = decoded.rs1
        rs2 = decoded.rs2
        imm = decoded.imm
        next_pc = pc + 4

        def alu_info(fast_op, result_info=info):
            def op():
                fast_op()
                hart.pc = next_pc
                return result_info
            return op

        fast = None

        # --- integer register-register / register-immediate -----------------
        if rd == 0 and mnemonic in _ALU_MNEMONICS:
            # Writes to x0 are discarded; the whole instruction is a no-op.
            def fast():
                return next_pc
        elif mnemonic == "add":
            def fast():
                regs[rd] = (regs[rs1] + regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "addi":
            def fast():
                regs[rd] = (regs[rs1] + imm) & MASK64
                return next_pc
        elif mnemonic == "sub":
            def fast():
                regs[rd] = (regs[rs1] - regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "and":
            def fast():
                regs[rd] = regs[rs1] & regs[rs2]
                return next_pc
        elif mnemonic == "andi":
            masked = imm & MASK64
            def fast():
                regs[rd] = regs[rs1] & masked
                return next_pc
        elif mnemonic == "or":
            def fast():
                regs[rd] = regs[rs1] | regs[rs2]
                return next_pc
        elif mnemonic == "ori":
            masked = imm & MASK64
            def fast():
                regs[rd] = regs[rs1] | masked
                return next_pc
        elif mnemonic == "xor":
            def fast():
                regs[rd] = regs[rs1] ^ regs[rs2]
                return next_pc
        elif mnemonic == "xori":
            masked = imm & MASK64
            def fast():
                regs[rd] = regs[rs1] ^ masked
                return next_pc
        elif mnemonic == "sll":
            def fast():
                regs[rd] = (regs[rs1] << (regs[rs2] & 0x3F)) & MASK64
                return next_pc
        elif mnemonic == "slli":
            def fast():
                regs[rd] = (regs[rs1] << imm) & MASK64
                return next_pc
        elif mnemonic == "srl":
            def fast():
                regs[rd] = regs[rs1] >> (regs[rs2] & 0x3F)
                return next_pc
        elif mnemonic == "srli":
            def fast():
                regs[rd] = regs[rs1] >> imm
                return next_pc
        elif mnemonic == "sra":
            def fast():
                regs[rd] = (((regs[rs1] ^ _SIGN64) - _SIGN64) >> (regs[rs2] & 0x3F)) & MASK64
                return next_pc
        elif mnemonic == "srai":
            def fast():
                regs[rd] = (((regs[rs1] ^ _SIGN64) - _SIGN64) >> imm) & MASK64
                return next_pc
        elif mnemonic == "slt":
            def fast():
                regs[rd] = 1 if ((regs[rs1] ^ _SIGN64) - _SIGN64) < ((regs[rs2] ^ _SIGN64) - _SIGN64) else 0
                return next_pc
        elif mnemonic == "slti":
            def fast():
                regs[rd] = 1 if ((regs[rs1] ^ _SIGN64) - _SIGN64) < imm else 0
                return next_pc
        elif mnemonic == "sltu":
            def fast():
                regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
                return next_pc
        elif mnemonic == "sltiu":
            masked = imm & MASK64
            def fast():
                regs[rd] = 1 if regs[rs1] < masked else 0
                return next_pc
        # --- RV64 word ops ---------------------------------------------------
        elif mnemonic == "addw":
            def fast():
                regs[rd] = _signed32(regs[rs1] + regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "addiw":
            def fast():
                regs[rd] = _signed32(regs[rs1] + imm) & MASK64
                return next_pc
        elif mnemonic == "subw":
            def fast():
                regs[rd] = _signed32(regs[rs1] - regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "sllw":
            def fast():
                regs[rd] = _signed32(regs[rs1] << (regs[rs2] & 0x1F)) & MASK64
                return next_pc
        elif mnemonic == "slliw":
            def fast():
                regs[rd] = _signed32(regs[rs1] << imm) & MASK64
                return next_pc
        elif mnemonic == "srlw":
            def fast():
                regs[rd] = _signed32((regs[rs1] & 0xFFFFFFFF) >> (regs[rs2] & 0x1F)) & MASK64
                return next_pc
        elif mnemonic == "srliw":
            def fast():
                regs[rd] = _signed32((regs[rs1] & 0xFFFFFFFF) >> imm) & MASK64
                return next_pc
        elif mnemonic == "sraw":
            def fast():
                regs[rd] = (_signed32(regs[rs1]) >> (regs[rs2] & 0x1F)) & MASK64
                return next_pc
        elif mnemonic == "sraiw":
            def fast():
                regs[rd] = (_signed32(regs[rs1]) >> imm) & MASK64
                return next_pc
        # --- M extension ------------------------------------------------------
        elif mnemonic == "mul":
            def fast():
                regs[rd] = (regs[rs1] * regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "mulh":
            def fast():
                regs[rd] = ((((regs[rs1] ^ _SIGN64) - _SIGN64) * ((regs[rs2] ^ _SIGN64) - _SIGN64)) >> 64) & MASK64
                return next_pc
        elif mnemonic == "mulhu":
            def fast():
                regs[rd] = (regs[rs1] * regs[rs2]) >> 64
                return next_pc
        elif mnemonic == "mulhsu":
            def fast():
                regs[rd] = ((((regs[rs1] ^ _SIGN64) - _SIGN64) * regs[rs2]) >> 64) & MASK64
                return next_pc
        elif mnemonic == "mulw":
            def fast():
                regs[rd] = _signed32(regs[rs1] * regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "div":
            def fast():
                regs[rd] = _div64(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "divu":
            def fast():
                b = regs[rs2]
                regs[rd] = MASK64 if b == 0 else regs[rs1] // b
                return next_pc
        elif mnemonic == "rem":
            def fast():
                regs[rd] = _rem64(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "remu":
            def fast():
                b = regs[rs2]
                regs[rd] = regs[rs1] if b == 0 else regs[rs1] % b
                return next_pc
        elif mnemonic == "divw":
            def fast():
                regs[rd] = _div32(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "divuw":
            def fast():
                b32 = regs[rs2] & 0xFFFFFFFF
                regs[rd] = MASK64 if b32 == 0 else _signed32((regs[rs1] & 0xFFFFFFFF) // b32) & MASK64
                return next_pc
        elif mnemonic == "remw":
            def fast():
                regs[rd] = _rem32(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "remuw":
            def fast():
                a32 = regs[rs1] & 0xFFFFFFFF
                b32 = regs[rs2] & 0xFFFFFFFF
                regs[rd] = _signed32(a32) & MASK64 if b32 == 0 else _signed32(a32 % b32) & MASK64
                return next_pc
        # --- upper immediates -------------------------------------------------
        elif mnemonic == "lui":
            constant = imm & MASK64
            def fast():
                regs[rd] = constant
                return next_pc
        elif mnemonic == "auipc":
            constant = (pc + imm) & MASK64
            def fast():
                regs[rd] = constant
                return next_pc

        if fast is not None and mnemonic in _ALU_MNEMONICS:
            if mnemonic in _MUL_MNEMONICS:
                info.timing_class = TC_MUL
            elif mnemonic in _DIV_MNEMONICS:
                info.timing_class = TC_DIV
            return fast, alu_info(fast), _KIND_SEQ

        # --- loads ------------------------------------------------------------
        if mnemonic in _LOAD_SIZES:
            size = _LOAD_SIZES[mnemonic]
            read = memory.read
            info.mem_size = size
            info.timing_class = TC_MEM
            if mnemonic == "ld":
                if rd:
                    def fast():
                        regs[rd] = read((regs[rs1] + imm) & MASK64, 8)
                        return next_pc
                else:
                    def fast():
                        read((regs[rs1] + imm) & MASK64, 8)
                        return next_pc
                fix = None
            elif mnemonic == "lw":
                def fast():
                    value = read((regs[rs1] + imm) & MASK64, 4)
                    if rd:
                        regs[rd] = ((value ^ 0x80000000) - 0x80000000) & MASK64
                    return next_pc
                fix = lambda value: ((value ^ 0x80000000) - 0x80000000) & MASK64  # noqa: E731
            elif mnemonic == "lh":
                def fast():
                    value = read((regs[rs1] + imm) & MASK64, 2)
                    if rd:
                        regs[rd] = ((value ^ 0x8000) - 0x8000) & MASK64
                    return next_pc
                fix = lambda value: ((value ^ 0x8000) - 0x8000) & MASK64  # noqa: E731
            elif mnemonic == "lb":
                def fast():
                    value = read((regs[rs1] + imm) & MASK64, 1)
                    if rd:
                        regs[rd] = ((value ^ 0x80) - 0x80) & MASK64
                    return next_pc
                fix = lambda value: ((value ^ 0x80) - 0x80) & MASK64  # noqa: E731
            else:  # lwu / lhu / lbu
                if rd:
                    def fast():
                        regs[rd] = read((regs[rs1] + imm) & MASK64, size)
                        return next_pc
                else:
                    def fast():
                        read((regs[rs1] + imm) & MASK64, size)
                        return next_pc
                fix = None

            def info_op():
                address = (regs[rs1] + imm) & MASK64
                value = read(address, size)
                info.mem_addr = address
                if rd:
                    regs[rd] = fix(value) if fix is not None else value
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        # --- stores -----------------------------------------------------------
        if mnemonic in _STORE_SIZES:
            size = _STORE_SIZES[mnemonic]
            write = memory.write
            bounds = self._code_bounds
            executor = self
            info.mem_size = size
            info.mem_is_store = True
            info.timing_class = TC_MEM

            def fast():
                address = (regs[rs1] + imm) & MASK64
                write(address, size, regs[rs2])
                # Overlap test against [lo, hi): the store's byte range is
                # [address, address + size), so a store that merely straddles
                # the start of the compiled region must invalidate too.
                if address < bounds[1] and address + size > bounds[0]:
                    executor._invalidate(address, size)
                    raise _BlockExit(next_pc)
                if executor.stop:
                    raise _Stopped(next_pc)
                return next_pc

            def info_op():
                address = (regs[rs1] + imm) & MASK64
                write(address, size, regs[rs2])
                if address < bounds[1] and address + size > bounds[0]:
                    executor._invalidate(address, size)
                info.mem_addr = address
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        # --- control transfer -------------------------------------------------
        if mnemonic == "jal":
            target = (pc + imm) & MASK64
            info.next_pc = target
            info.branch_taken = True
            info.timing_class = TC_JUMP
            if rd:
                def fast():
                    regs[rd] = next_pc
                    return target
            else:
                def fast():
                    return target

            def info_op():
                if rd:
                    regs[rd] = next_pc
                hart.pc = target
                return info
            return fast, info_op, _KIND_TERM

        if mnemonic == "jalr":
            target_mask = MASK64 & ~1
            info.branch_taken = True
            info.timing_class = TC_JUMP
            if rd:
                def fast():
                    target = (regs[rs1] + imm) & target_mask
                    regs[rd] = next_pc
                    return target
            else:
                def fast():
                    return (regs[rs1] + imm) & target_mask

            def info_op():
                target = (regs[rs1] + imm) & target_mask
                if rd:
                    regs[rd] = next_pc
                info.next_pc = target
                hart.pc = target
                return info
            return fast, info_op, _KIND_TERM

        if mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken_pc = (pc + imm) & MASK64
            info.timing_class = TC_BRANCH
            if mnemonic == "beq":
                def fast():
                    return taken_pc if regs[rs1] == regs[rs2] else next_pc
                def cond():
                    return regs[rs1] == regs[rs2]
            elif mnemonic == "bne":
                def fast():
                    return taken_pc if regs[rs1] != regs[rs2] else next_pc
                def cond():
                    return regs[rs1] != regs[rs2]
            elif mnemonic == "blt":
                def fast():
                    return taken_pc if ((regs[rs1] ^ _SIGN64) - _SIGN64) < ((regs[rs2] ^ _SIGN64) - _SIGN64) else next_pc
                def cond():
                    return ((regs[rs1] ^ _SIGN64) - _SIGN64) < ((regs[rs2] ^ _SIGN64) - _SIGN64)
            elif mnemonic == "bge":
                def fast():
                    return taken_pc if ((regs[rs1] ^ _SIGN64) - _SIGN64) >= ((regs[rs2] ^ _SIGN64) - _SIGN64) else next_pc
                def cond():
                    return ((regs[rs1] ^ _SIGN64) - _SIGN64) >= ((regs[rs2] ^ _SIGN64) - _SIGN64)
            elif mnemonic == "bltu":
                def fast():
                    return taken_pc if regs[rs1] < regs[rs2] else next_pc
                def cond():
                    return regs[rs1] < regs[rs2]
            else:  # bgeu
                def fast():
                    return taken_pc if regs[rs1] >= regs[rs2] else next_pc
                def cond():
                    return regs[rs1] >= regs[rs2]

            def info_op():
                if cond():
                    info.branch_taken = True
                    info.next_pc = taken_pc
                    hart.pc = taken_pc
                else:
                    info.branch_taken = False
                    info.next_pc = next_pc
                    hart.pc = next_pc
                return info
            return fast, info_op, _KIND_TERM

        # --- system -----------------------------------------------------------
        if mnemonic in ("csrrs", "csrrw", "csrrc", "csrrsi", "csrrwi", "csrrci"):
            executor = self
            csr_address = decoded.csr

            def info_op():
                value = executor._read_csr(csr_address)
                if rd:
                    regs[rd] = value & MASK64
                hart.pc = next_pc
                return info
            return _raise_slow, info_op, _KIND_SLOW

        if mnemonic == "ecall":
            executor = self

            def info_op():
                # Bare-metal convention: a7 holds the syscall number; 93 is
                # exit with the code in a0.  Anything else is "unhandled".
                if regs[17] == 93:
                    executor.exit_requested = True
                    executor.exit_code = regs[10] & 0xFF
                    executor.stop = True
                else:
                    raise TrapError(f"unhandled ecall (a7={regs[17]}) at pc={pc:#x}")
                hart.pc = next_pc
                return info
            return _raise_slow, info_op, _KIND_SLOW

        if mnemonic == "ebreak":
            def info_op():
                raise TrapError(f"ebreak at pc={pc:#x}")
            return _raise_slow, info_op, _KIND_SLOW

        if mnemonic == "fence":
            def fast():
                return next_pc

            def info_op():
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        if mnemonic == "fence.i":
            executor = self

            def fast():
                executor.flush()
                return next_pc

            def info_op():
                executor.flush()
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_TERM

        # --- RoCC custom instructions ------------------------------------------
        if mnemonic == "rocc":
            rocc = self.rocc
            if rocc is None:
                def fast():
                    raise SimulationError(
                        f"RoCC instruction at pc={pc:#x} but no accelerator attached"
                    )
                return fast, fast, _KIND_SEQ
            execute = rocc.execute
            funct7 = decoded.funct7
            xd = bool(decoded.xd)
            xs1 = bool(decoded.xs1)
            xs2 = bool(decoded.xs2)
            info.is_rocc = True
            info.rocc_funct7 = funct7
            info.timing_class = TC_ROCC

            def fast():
                response = execute(
                    funct7=funct7, rd=rd, rs1=rs1, rs2=rs2,
                    rs1_value=regs[rs1], rs2_value=regs[rs2],
                    xd=xd, xs1=xs1, xs2=xs2, memory=memory,
                )
                if response.has_response and rd:
                    regs[rd] = response.value & MASK64
                return next_pc

            def info_op():
                response = execute(
                    funct7=funct7, rd=rd, rs1=rs1, rs2=rs2,
                    rs1_value=regs[rs1], rs2_value=regs[rs2],
                    xd=xd, xs1=xs1, xs2=xs2, memory=memory,
                )
                info.rocc_busy_cycles = response.busy_cycles
                info.rocc_has_response = response.has_response
                if response.has_response and rd:
                    regs[rd] = response.value & MASK64
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        raise SimulationError(  # pragma: no cover - decoder and builder in sync
            f"unimplemented instruction {mnemonic!r} at {pc:#x}"
        )

    # ------------------------------------------------- tier-2 superblock JIT
    #: Upper bound on a tier-2 trace length (instructions).  Traces may be
    #: longer than :attr:`_MAX_BLOCK`: the walker plants a mid-trace fuel
    #: check every :attr:`_T2_CHECK` static positions, so the documented
    #: budget-overshoot bound (< ``_MAX_BLOCK``) still holds for both tiers.
    _MAX_T2 = 4096

    #: Static-position interval between mid-trace fuel checks.  Must stay
    #: below ``_MAX_BLOCK - _T2_MAX_SKIP - 1``: a check is only planted at
    #: the top of a walk step, and one step can consume up to
    #: ``1 + _T2_MAX_SKIP`` positions (a guarded skip diamond).
    _T2_CHECK = 500

    #: Largest loop body (in instructions) that const-guided unrolling will
    #: re-trace per iteration instead of wrapping in a ``while 1:``.
    _T2_UNROLL_BODY = 96

    #: Value-range speculation: a register whose live value at promotion
    #: time is at most this is presumed to stay so on every later entry
    #: (addresses, counters, loop limits), letting range analysis elide
    #: 64-bit masks on arithmetic derived from it.  A one-time entry guard
    #: enforces the presumption; see :class:`_Deopt`.
    _T2_SPEC_BOUND = (1 << 44) - 1

    #: Entry-guard failures per head before speculation is given up.  Each
    #: failure prunes the specific stale registers from future compiles
    #: (see ``_t2_nospec``), so this is a backstop, not the usual path.
    _T2_MAX_DEOPTS = 8

    #: Sentinel heat marking a head that can never be promoted.
    _T2_INELIGIBLE = -(1 << 60)

    def _reheat(self, head, exit_pc: int, profile) -> None:
        """Trace-tree continuation heat for a fall-back-to-tier-1 edge.

        Called when compiled code hands control to an uncompiled head:
        either a tier-2 trace side exit (``head`` is the trace head, recorded
        in the profile's hot-exit table) or a slow-instruction resume
        (``head is None``).  Each arrival adds half the promotion threshold,
        so a recurring edge promotes into a compiled continuation on its
        second arrival while genuinely-one-shot exits never pay a compile.
        Promotion right at the edge speculates on the live registers — which
        are exactly the continuation's entry values, the best speculation
        source there is.
        """
        heat = self._heat
        hot = heat.get(exit_pc, 0)
        if hot < 0:  # permanently ineligible head
            return
        if profile is not None and head is not None:
            profile._exit(head, exit_pc)
        hot += max(1, (self.promote_threshold + 1) >> 1)
        if hot >= self.promote_threshold:
            heat.pop(exit_pc, None)
            try:
                self._promote(exit_pc)
            except (DecodingError, SimulationError):
                # The continuation target is not (yet) valid code; execution
                # will raise properly if control really stays there.
                heat[exit_pc] = self._T2_INELIGIBLE
                self.tier2_ineligible += 1
        else:
            heat[exit_pc] = hot

    def preheat(self, heads) -> int:
        """Seed promotion from a prior run: arm ``heads`` for instant tier 2.

        ``heads`` may be an :class:`ExecProfile` (every head it saw promoted
        or executing in tier 2) or an iterable of head pcs.  Each armed head
        gets its heat set to the promotion threshold, so its *first* tier-1
        execution promotes it — skipping the organic warm-up volume — while
        speculation still happens against live register state at that first
        execution, exactly like an organic promotion.  Heads already
        promoted or marked ineligible are skipped.  Returns the number of
        heads armed.

        This is the batch-rerun warm-start knob: a
        :class:`~repro.sim.batch.BatchRunner` that had to rebuild a
        simulator re-arms the heads its evicted predecessor had promoted,
        collapsing ``promotion_rounds_to_steady`` to ~1 round.
        """
        if isinstance(heads, ExecProfile):
            heads = set(heads.compiled) | set(heads.tier2_execs)
        threshold = self.promote_threshold
        if not threshold:
            return 0
        armed = 0
        for pc in heads:
            if pc in self._tier2:
                continue
            hot = self._heat.get(pc, 0)
            if hot < 0:
                continue
            if hot < threshold:
                self._heat[pc] = threshold
            armed += 1
        return armed

    def _promote(self, head: int) -> None:
        """Compile the superblock at ``head`` to a single Python function.

        On success the function is installed in ``_tier2`` and the head's
        heat entry dropped; heads whose first instruction already stops the
        trace (CSR/ecall/ebreak/fence.i/RoCC/undecodable) are marked
        permanently ineligible and stay on their tier-1 closures.
        """
        started = perf_counter()
        built = self._tier2_source(head)
        if built is None:
            self._heat[head] = self._T2_INELIGIBLE
            self.tier2_ineligible += 1
            return
        source, length, covered, spec_exact, spec_range, spec_based = built
        memory = self.memory
        namespace = {
            "R": self.hart.regs,
            "rd_": memory.read,
            "wr_": memory.write,
            "qv": memory.u64_views.get,
            "ql": memory.u64_view,
            "qc": memory.u64_view_create,
            "qw": memory.u32_views.get,
            "qwl": memory.u32_view,
            "qh": memory.u16_views.get,
            "qhl": memory.u16_view,
            "qb": memory._pages.get,
            "qwc": memory.u32_view_create,
            "qhc": memory.u16_view_create,
            "qbc": memory.page_create,
            "rh": memory._read_hooks,
            "wh": memory._write_hooks,
            "mem": memory,
            "E": self,
            "cb": self._code_bounds,
            "d64": _div64,
            "r64": _rem64,
            "d32": _div32,
            "r32": _rem32,
            "_bx": _BlockExit,
            "_st": _Stopped,
            "_dg": _DEOPT,
        }
        exec(compile(source, f"<tier2@{head:#x}>", "exec"), namespace)
        self._tier2[head] = namespace["_t2"]
        if spec_exact or spec_range or spec_based:
            self._t2_spec[head] = (spec_exact, spec_range, spec_based)
        else:
            self._t2_spec.pop(head, None)
        self._heat.pop(head, None)
        # The trace may span PCs the tier-1 tables never compiled (inlined
        # jal targets); the store-invalidation range must cover all of them.
        bounds = self._code_bounds
        lo = min(covered)
        hi = max(covered) + 4
        if lo < bounds[0]:
            bounds[0] = lo
        if hi > bounds[1]:
            bounds[1] = hi
        seconds = perf_counter() - started
        self.tier2_blocks += 1
        self.tier2_compile_seconds += seconds
        if self.profile is not None:
            self.profile.compiled[head] = (length, seconds)

    def _tier2_source(self, head: int):  # noqa: C901 - one arm per instruction
        """Generate straight-line Python source for the trace at ``head``.

        Returns ``(source, trace_length, covered_pcs)`` or ``None`` when the
        head instruction itself ends the trace.  The emitted function has the
        signature ``_t2(fuel) -> (next_pc, instructions_retired)`` and is
        bound (via default-argument injection at exec time) to this
        executor's register file, memory accessors and code bounds.

        Beyond plain straight-line folding, the walker applies four
        fragmentation-killing transforms:

        * **Constant link propagation** — ``lui``/``auipc``/``jal`` (and
          ``addi`` chains over them) record statically-known register values;
          a ``jalr`` whose base register is known (the ``ret`` of a callee
          entered via an inlined ``jal``) *continues* the trace at the folded
          target instead of exiting, fusing call + body + return.
        * **Constant branch folding** — a branch whose operands are both
          statically known is decided at compile time; the walker keeps
          tracing along the taken side and emits no test at all.
        * **Loop nests** — any backward edge to a position already in the
          trace (a closing branch, an inlined ``jal``/``ret``, or falling
          into the top of a walked span) wraps that span in a native
          ``while 1:``, so loops discovered mid-trace run without leaving
          the compiled function.  A conditional edge closes its loop with a
          ``break`` so the walk continues on the fall-through path outside
          it — which lets a later *outer* back-edge wrap the entire nest
          (the common case: an inner digit loop inside an outer word loop).
          ``backedge`` refuses a wrap that would cross a closed loop's
          boundary, break open-loop nesting, or re-use a constant that goes
          stale across iterations, and the edge degrades to a trace exit.
        * **If-guarded skip diamonds** — a short forward branch over
          straight-line instructions compiles to a native ``if``/``else``
          inside the trace (with an ``n -= k`` retire-count compensation on
          the taken path) instead of ending it.

        The retire-count model: ``n`` accumulates completed loop iterations
        and skip compensations; every exit returns ``n`` plus the exiting
        instruction's static 1-based trace position, which equals the exact
        number of instructions retired by this call.

        Folding and looping interact through a restart protocol: when a
        back-edge fails *only* because a peeled-first-iteration constant
        (e.g. the ``li`` that zeroes a loop counter) was folded into the
        loop body, the walk restarts with those fold sites banned so they
        emit dynamic code instead, letting the loop wrap.  Each restart
        bans at least one new site, so the driver terminates; the final
        attempt demotes any remaining stale edges to plain exits.
        """
        banned = set()
        for _ in range(10):
            try:
                return self._tier2_walk(head, banned, final=False)
            except _Rewalk as retry:
                banned.update(retry.pcs)
        return self._tier2_walk(head, banned, final=True)

    def _tier2_walk(self, head: int, banned, final):  # noqa: C901
        """One trace-walk attempt for :meth:`_tier2_source`.

        ``banned`` pcs never consult the constant tracker; a stale-fold
        back-edge raises :class:`_Rewalk` unless ``final`` is set.
        """
        touched = set()   # registers held as locals (loaded in the prologue)
        written = set()   # registers ever written (superset of any WB set)
        body = []         # (indent, text[, wb_regs]) entries; "§WB§" = writeback
        covered = []      # every pc folded into this function
        visited = set()
        consts = {}       # reg -> statically-known value along the trace
        ubound = {}       # reg -> proven upper bound of its current value
        # Entry-value speculation source (None once the head has deopted
        # too often) and the registers actually speculated on this walk.
        spec_vals = (
            self.hart.regs
            if self._t2_deopts.get(head, 0) < self._T2_MAX_DEOPTS
            else None
        )
        spec_used = set()   # range-speculated registers (bound guard)
        spec_exact = {}     # exactly-speculated registers -> pinned value
        nox = self._t2_nospec.get(head, ())
        nor = self._t2_norange.get(head, ())
        nobase = self._t2_nobase.get(head, ())
        kpages = {}         # (lane, page) -> prologue-bound view local
        kbases = {}         # base reg -> pinned-base lane bookkeeping
        need_hookgen = [False]  # a compile folded a "no hook here" check
        hook_gen0 = self.memory.hook_gen
        posbox = [0]      # 1-based position of the instruction being emitted
        # Liveness bookkeeping for prologue/writeback trimming: a register
        # whose first event is an *unconditional* write emitted before any
        # writeback slot never needs its prologue load (execution reaches
        # the write before any exit could read the local), and each exit
        # only writes back the registers written before it in trace order.
        first_event = {}  # reg -> ("r" | "w" | "c", emission seq of the event)
        ev = [0]          # emission sequence counter (writes + WB slots)
        first_wb = [None]  # emission seq of the first writeback slot

        def reg(r):
            if r == 0:
                return "0"
            touched.add(r)
            if r not in first_event:
                first_event[r] = ("r", None)
            return f"x{r}"

        def wb(ind):
            """Append a writeback slot covering the registers written so far."""
            if first_wb[0] is None:
                first_wb[0] = ev[0]
            ev[0] += 1
            body.append((ind, "§WB§", tuple(sorted(written))))

        def ubget(r):
            """Peek ``r``'s proven upper bound (no commitment), or None.

            A register that still holds its function-entry value (never
            written in the trace so far) may get a *speculated* bound when
            its live value at promotion time is small: the render step emits
            a one-time entry guard over every register speculated this way,
            so a bound consulted here is genuinely true on every call that
            gets past the guard (violations deoptimize before any state
            change).
            """
            if r == 0:
                return 0
            ub = ubound.get(r)
            if (
                ub is None
                and spec_vals is not None
                and r not in last_write
                and r not in nor
                and spec_vals[r] <= self._T2_SPEC_BOUND
            ):
                spec_used.add(r)
                reg(r)  # guard reads the local: force the prologue load
                ub = self._T2_SPEC_BOUND
                ubound[r] = ub
            return ub

        def kreg(r):
            """True when ``r``'s value is statically known, speculating the
            entry value if needed.

            The strongest speculation tier: a register never written in the
            trace so far is pinned to its live value at promotion time and
            becomes a compile-time constant (folding addresses, branches and
            arithmetic derived from it).  The entry guard checks the exact
            value; a miss deoptimizes and the dispatch loop bans the stale
            register from future compiles of this head, so re-promotion
            converges on the genuinely loop-invariant set.
            """
            if r in consts:
                return True
            if (
                spec_vals is not None
                and r != 0
                and r not in last_write
                and r not in nox
            ):
                v = spec_vals[r]
                spec_exact[r] = v
                consts[r] = v
                const_def[r] = 0
                ubound[r] = v
                return True
            return False

        def kbase(rs1, imm, size, pc, store):
            """Pinned-base lane admission for a load/store off ``rs1``.

            For a base register never written in the trace (typically a
            buffer pointer that *varies* across calls, so exact pinning was
            deopt-banned), the prologue binds its page view and element
            index once per call; every access off it becomes a single
            indexed view access plus, for nonzero offsets, one page-crossing
            compare with a scalar fallback.  Entry-guard terms (emitted at
            render time from the recorded bookkeeping) enforce base
            alignment and that no MMIO hook lies inside the accessed window,
            so the per-access alignment and hook checks fold away; the
            compile-time hook set itself is pinned by the hook-generation
            guard.  Returns ``(view, index, element_offset, limit)`` names
            for the emitter, or None when the access does not qualify.
            """
            if (
                not HOST_IS_LITTLE_ENDIAN
                or not self._direct_memory
                or spec_vals is None
                or rs1 == 0
                or imm < 0
                or imm % size
                or pc in banned
                or rs1 in last_write
                or rs1 in nobase
                or spec_vals[rs1] & (size - 1)
            ):
                return None
            info = kbases.get(rs1)
            if info is None:
                info = kbases[rs1] = {
                    "align": 1, "span": 0, "sspan": 0, "lanes": set(),
                }
            lane, shift = _T2_LANES[size]
            info["align"] = max(info["align"], size)
            info["span"] = max(info["span"], imm + size)
            if store:
                info["sspan"] = max(info["sspan"], imm + size)
            info["lanes"].add(lane)
            need_hookgen[0] = True
            ubuse(pc, rs1)
            reg(rs1)  # the prologue bindings read the local
            kk = imm >> shift
            limit = (4096 >> shift) - kk if kk else None
            return f"p{lane}{rs1}", f"i{lane}{rs1}", kk, limit

        def ubuse(pc, *regs):
            """Commit to the peeked bounds of ``regs``.

            Appends a fold entry per register so a later back-edge wrap
            re-checks that each bound's defining write still dominates this
            use — the same staleness protocol as constant folding.  A bound
            defined before a loop head and consumed inside the loop is
            invalid when the register is rewritten in the loop body; the
            wrap then bans this pc and rewalks, and the banned pc skips
            bound consultation entirely, so the refusal self-heals.
            """
            for r in regs:
                if r:
                    folds.append((posbox[0], r, last_write.get(r, 0), pc))

        def sreg(r, pc=None):
            if r == 0:
                return "0"
            if pc is not None and pc not in banned:
                ub = ubget(r)
                if ub is not None and ub < 0x8000000000000000:
                    # Proven < 2**63: non-negative as a two's-complement
                    # value, so the signed view is the value itself.
                    ubuse(pc, r)
                    return reg(r)
            return f"(({reg(r)} ^ 0x8000000000000000) - 0x8000000000000000)"

        def w32(expr):
            return (
                f"(((({expr}) & 0xFFFFFFFF) ^ 0x80000000) - 0x80000000)"
                " & 0xFFFFFFFFFFFFFFFF"
            )

        M = "0xFFFFFFFFFFFFFFFF"

        def setreg(r, expr, ind=0, known=None, record=True, ub=None):
            touched.add(r)
            written.add(r)
            # record=False marks guard-diamond emission: the write is
            # conditional, so the prologue load stays required.
            if r not in first_event:
                first_event[r] = ("w" if record else "c", ev[0])
            ev[0] += 1
            prefix = f"x{r} = "
            if (
                record
                and known is not None
                and body
                and len(body[-1]) == 2
                and body[-1][0] == ind
                and body[-1][1].startswith(prefix)
                and body[-1][1][len(prefix):].isdigit()
            ):
                # The lui+addi idiom: the previous line is an unconditional
                # constant write to the same register with no line (and no
                # exit slot) in between, so it is dead — replace it instead
                # of executing both.  The fused-away instruction's position
                # can no longer become a loop head (its own line is gone),
                # which ``backedge`` enforces via ``fused_pos``.
                body[-1] = (ind, prefix + expr)
                fused_pos.add(posbox[0])
            else:
                body.append((ind, prefix + expr))
            last_write[r] = posbox[0]
            if record and known is not None:
                consts[r] = known
                const_def[r] = posbox[0]
                ubound[r] = known
            else:
                consts.pop(r, None)
                # A full-width bound proves nothing; conditional writes
                # (record=False) invalidate any bound but establish none.
                if record and ub is not None and ub < MASK64:
                    ubound[r] = ub
                else:
                    ubound.pop(r, None)

        def fold(rs, pc):
            """Record a constant consumption for the loop-staleness check."""
            folds.append((posbox[0], rs, const_def[rs], pc))
            return consts[rs]

        def emit_plain(decoded, pc, ind, pos, record):
            """Emit one guardable instruction (ALU/load/store/fence).

            ``pos`` is the instruction's static 1-based trace position (used
            by store exits); returns False if the mnemonic is not guardable.
            """
            posbox[0] = pos
            mnemonic = decoded.mnemonic
            rd = decoded.rd
            rs1 = decoded.rs1
            rs2 = decoded.rs2
            imm = decoded.imm
            if mnemonic in _ALU_MNEMONICS and rd == 0:
                return True  # writes to x0 are discarded; pure no-op
            if mnemonic == "add":
                if (
                    pc not in banned
                    and (rs1 == 0 or kreg(rs1))
                    and (rs2 == 0 or kreg(rs2))
                ):
                    # Both operands statically known (possibly by pinning
                    # entry values): the sum is a constant, which keeps
                    # address chains like ``base + scaled-index`` foldable
                    # through register-register arithmetic.
                    v1 = 0 if rs1 == 0 else fold(rs1, pc)
                    v2 = 0 if rs2 == 0 else fold(rs2, pc)
                    known = (v1 + v2) & MASK64
                    setreg(rd, f"{known}", ind, known=known, record=record)
                    return True
                u1 = ubget(rs1)
                u2 = ubget(rs2)
                if (
                    u1 is not None and u2 is not None
                    and u1 + u2 <= MASK64 and pc not in banned
                ):
                    # Range analysis proves the sum can't wrap: elide the
                    # 64-bit mask (the dominant per-line cost in hot traces).
                    ubuse(pc, rs1, rs2)
                    setreg(rd, f"{reg(rs1)} + {reg(rs2)}", ind,
                           record=record, ub=u1 + u2)
                else:
                    setreg(rd, f"({reg(rs1)} + {reg(rs2)}) & {M}", ind, record=record)
            elif mnemonic == "addi":
                known = None
                if rs1 == 0:
                    known = imm & MASK64
                elif pc not in banned and kreg(rs1):
                    known = (fold(rs1, pc) + imm) & MASK64
                u1 = ubget(rs1)
                if known is not None:
                    setreg(rd, f"{known}", ind, known=known, record=record)
                elif imm == 0:
                    # mv: register values are canonically masked already.
                    if rd != rs1:
                        if u1 is not None and pc not in banned:
                            ubuse(pc, rs1)
                            setreg(rd, reg(rs1), ind, record=record, ub=u1)
                        else:
                            setreg(rd, reg(rs1), ind, record=record)
                elif (
                    imm > 0 and u1 is not None
                    and u1 + imm <= MASK64 and pc not in banned
                ):
                    ubuse(pc, rs1)
                    setreg(rd, f"{reg(rs1)} + {imm}", ind,
                           record=record, ub=u1 + imm)
                else:
                    setreg(rd, f"({reg(rs1)} + {imm}) & {M}", ind, record=record)
            elif mnemonic == "sub":
                if (
                    pc not in banned
                    and (rs1 == 0 or kreg(rs1))
                    and (rs2 == 0 or kreg(rs2))
                ):
                    v1 = 0 if rs1 == 0 else fold(rs1, pc)
                    v2 = 0 if rs2 == 0 else fold(rs2, pc)
                    known = (v1 - v2) & MASK64
                    setreg(rd, f"{known}", ind, known=known, record=record)
                    return True
                setreg(rd, f"({reg(rs1)} - {reg(rs2)}) & {M}", ind, record=record)
            elif mnemonic == "and":
                if (
                    pc not in banned
                    and (rs1 == 0 or kreg(rs1))
                    and (rs2 == 0 or kreg(rs2))
                ):
                    v1 = 0 if rs1 == 0 else fold(rs1, pc)
                    v2 = 0 if rs2 == 0 else fold(rs2, pc)
                    known = v1 & v2
                    setreg(rd, f"{known}", ind, known=known, record=record)
                    return True
                # x & y is bounded by either operand's bound; taking the
                # smaller one (when known) costs no emitted code.
                u1 = ubget(rs1)
                u2 = ubget(rs2)
                ub = None
                if pc not in banned and (u1 is not None or u2 is not None):
                    if u1 is not None and (u2 is None or u1 <= u2):
                        ubuse(pc, rs1)
                        ub = u1
                    else:
                        ubuse(pc, rs2)
                        ub = u2
                setreg(rd, f"{reg(rs1)} & {reg(rs2)}", ind, record=record, ub=ub)
            elif mnemonic == "andi":
                # Free bound: the mask itself (no consultation needed).
                setreg(rd, f"{reg(rs1)} & {imm & MASK64}", ind,
                       record=record, ub=imm & MASK64)
            elif mnemonic == "or":
                if (
                    pc not in banned
                    and (rs1 == 0 or kreg(rs1))
                    and (rs2 == 0 or kreg(rs2))
                ):
                    v1 = 0 if rs1 == 0 else fold(rs1, pc)
                    v2 = 0 if rs2 == 0 else fold(rs2, pc)
                    known = v1 | v2
                    setreg(rd, f"{known}", ind, known=known, record=record)
                    return True
                u1 = ubget(rs1)
                u2 = ubget(rs2)
                ub = None
                if u1 is not None and u2 is not None and pc not in banned:
                    # x | y < 2**max(bits): no bit above either operand's
                    # highest possible bit can be set.
                    ubuse(pc, rs1, rs2)
                    ub = (1 << max(u1.bit_length(), u2.bit_length())) - 1
                setreg(rd, f"{reg(rs1)} | {reg(rs2)}", ind, record=record, ub=ub)
            elif mnemonic == "ori":
                if imm == 0:
                    if rd != rs1:
                        u1 = ubget(rs1)
                        if u1 is not None and pc not in banned:
                            ubuse(pc, rs1)
                            setreg(rd, reg(rs1), ind, record=record, ub=u1)
                        else:
                            setreg(rd, reg(rs1), ind, record=record)
                else:
                    u1 = ubget(rs1)
                    ub = None
                    if imm > 0 and u1 is not None and pc not in banned:
                        ubuse(pc, rs1)
                        ub = (1 << max(u1.bit_length(), imm.bit_length())) - 1
                    setreg(rd, f"{reg(rs1)} | {imm & MASK64}", ind,
                           record=record, ub=ub)
            elif mnemonic == "xor":
                if (
                    pc not in banned
                    and (rs1 == 0 or kreg(rs1))
                    and (rs2 == 0 or kreg(rs2))
                ):
                    v1 = 0 if rs1 == 0 else fold(rs1, pc)
                    v2 = 0 if rs2 == 0 else fold(rs2, pc)
                    known = v1 ^ v2
                    setreg(rd, f"{known}", ind, known=known, record=record)
                    return True
                u1 = ubget(rs1)
                u2 = ubget(rs2)
                ub = None
                if u1 is not None and u2 is not None and pc not in banned:
                    ubuse(pc, rs1, rs2)
                    ub = (1 << max(u1.bit_length(), u2.bit_length())) - 1
                setreg(rd, f"{reg(rs1)} ^ {reg(rs2)}", ind, record=record, ub=ub)
            elif mnemonic == "xori":
                if imm == 0:
                    if rd != rs1:
                        u1 = ubget(rs1)
                        if u1 is not None and pc not in banned:
                            ubuse(pc, rs1)
                            setreg(rd, reg(rs1), ind, record=record, ub=u1)
                        else:
                            setreg(rd, reg(rs1), ind, record=record)
                else:
                    u1 = ubget(rs1)
                    ub = None
                    if imm > 0 and u1 is not None and pc not in banned:
                        ubuse(pc, rs1)
                        ub = (1 << max(u1.bit_length(), imm.bit_length())) - 1
                    setreg(rd, f"{reg(rs1)} ^ {imm & MASK64}", ind,
                           record=record, ub=ub)
            elif mnemonic == "sll":
                setreg(rd, f"({reg(rs1)} << ({reg(rs2)} & 0x3F)) & {M}", ind, record=record)
            elif mnemonic == "slli":
                known = None
                u1 = ubget(rs1)
                if rs1 != 0 and pc not in banned and kreg(rs1):
                    known = (fold(rs1, pc) << imm) & MASK64
                    setreg(rd, f"{known}", ind, known=known, record=record)
                elif imm == 0:
                    if rd != rs1:
                        if u1 is not None and pc not in banned:
                            ubuse(pc, rs1)
                            setreg(rd, reg(rs1), ind, record=record, ub=u1)
                        else:
                            setreg(rd, reg(rs1), ind, record=record)
                elif (
                    u1 is not None and (u1 << imm) <= MASK64
                    and pc not in banned
                ):
                    ubuse(pc, rs1)
                    setreg(rd, f"{reg(rs1)} << {imm}", ind,
                           record=record, ub=u1 << imm)
                else:
                    setreg(rd, f"({reg(rs1)} << {imm}) & {M}", ind, record=record)
            elif mnemonic == "srl":
                # Right shifts never grow the value: bound propagates free
                # of emitted code (the result expression has no mask).
                u1 = ubget(rs1)
                ub = None
                if u1 is not None and pc not in banned:
                    ubuse(pc, rs1)
                    ub = u1
                setreg(rd, f"{reg(rs1)} >> ({reg(rs2)} & 0x3F)", ind,
                       record=record, ub=ub)
            elif mnemonic == "srli":
                if imm == 0:
                    if rd != rs1:
                        u1 = ubget(rs1)
                        if u1 is not None and pc not in banned:
                            ubuse(pc, rs1)
                            setreg(rd, reg(rs1), ind, record=record, ub=u1)
                        else:
                            setreg(rd, reg(rs1), ind, record=record)
                else:
                    # Free bound: a canonical register value is <= MASK64.
                    setreg(rd, f"{reg(rs1)} >> {imm}", ind,
                           record=record, ub=MASK64 >> imm)
            elif mnemonic == "sra":
                u1 = ubget(rs1)
                if (
                    u1 is not None and u1 < 0x8000000000000000
                    and pc not in banned
                ):
                    # Proven non-negative: arithmetic == logical shift, and
                    # neither the sign trick nor the result mask is needed.
                    ubuse(pc, rs1)
                    setreg(rd, f"{reg(rs1)} >> ({reg(rs2)} & 0x3F)", ind,
                           record=record, ub=u1)
                else:
                    setreg(rd, f"({sreg(rs1)} >> ({reg(rs2)} & 0x3F)) & {M}", ind, record=record)
            elif mnemonic == "srai":
                u1 = ubget(rs1)
                if (
                    u1 is not None and u1 < 0x8000000000000000
                    and pc not in banned
                ):
                    ubuse(pc, rs1)
                    setreg(rd, f"{reg(rs1)} >> {imm}", ind,
                           record=record, ub=u1 >> imm)
                else:
                    setreg(rd, f"({sreg(rs1)} >> {imm}) & {M}", ind, record=record)
            elif mnemonic == "slt":
                setreg(rd, f"1 if {sreg(rs1, pc)} < {sreg(rs2, pc)} else 0",
                       ind, record=record, ub=1)
            elif mnemonic == "slti":
                setreg(rd, f"1 if {sreg(rs1, pc)} < {imm} else 0",
                       ind, record=record, ub=1)
            elif mnemonic == "sltu":
                setreg(rd, f"1 if {reg(rs1)} < {reg(rs2)} else 0",
                       ind, record=record, ub=1)
            elif mnemonic == "sltiu":
                setreg(rd, f"1 if {reg(rs1)} < {imm & MASK64} else 0",
                       ind, record=record, ub=1)
            elif mnemonic == "addw":
                setreg(rd, w32(f"{reg(rs1)} + {reg(rs2)}"), ind, record=record)
            elif mnemonic == "addiw":
                known = None
                if rs1 == 0:
                    known = _signed32(imm) & MASK64
                elif rs1 in consts and pc not in banned:
                    known = _signed32(fold(rs1, pc) + imm) & MASK64
                u1 = ubget(rs1)
                if known is not None:
                    setreg(rd, f"{known}", ind, known=known, record=record)
                elif (
                    imm >= 0 and u1 is not None
                    and u1 + imm <= 0x7FFFFFFF and pc not in banned
                ):
                    # The 32-bit sum can't reach the sign bit: truncation
                    # and sign-extension are both the identity.
                    ubuse(pc, rs1)
                    if imm == 0:
                        if rd != rs1:
                            setreg(rd, reg(rs1), ind, record=record, ub=u1)
                    else:
                        setreg(rd, f"{reg(rs1)} + {imm}", ind,
                               record=record, ub=u1 + imm)
                else:
                    setreg(rd, w32(f"{reg(rs1)} + {imm}"), ind, record=record)
            elif mnemonic == "subw":
                setreg(rd, w32(f"{reg(rs1)} - {reg(rs2)}"), ind, record=record)
            elif mnemonic == "sllw":
                setreg(rd, w32(f"{reg(rs1)} << ({reg(rs2)} & 0x1F)"), ind, record=record)
            elif mnemonic == "slliw":
                setreg(rd, w32(f"{reg(rs1)} << {imm}"), ind, record=record)
            elif mnemonic == "srlw":
                setreg(rd, w32(f"({reg(rs1)} & 0xFFFFFFFF) >> ({reg(rs2)} & 0x1F)"), ind, record=record)
            elif mnemonic == "srliw":
                setreg(rd, w32(f"({reg(rs1)} & 0xFFFFFFFF) >> {imm}"), ind, record=record)
            elif mnemonic == "sraw":
                setreg(rd, f"(({_s32expr(reg(rs1))}) >> ({reg(rs2)} & 0x1F)) & {M}", ind, record=record)
            elif mnemonic == "sraiw":
                setreg(rd, f"(({_s32expr(reg(rs1))}) >> {imm}) & {M}", ind, record=record)
            elif mnemonic == "mul":
                if (
                    pc not in banned
                    and (rs1 == 0 or kreg(rs1))
                    and (rs2 == 0 or kreg(rs2))
                ):
                    v1 = 0 if rs1 == 0 else fold(rs1, pc)
                    v2 = 0 if rs2 == 0 else fold(rs2, pc)
                    known = (v1 * v2) & MASK64
                    setreg(rd, f"{known}", ind, known=known, record=record)
                    return True
                u1 = ubget(rs1)
                u2 = ubget(rs2)
                if (
                    u1 is not None and u2 is not None
                    and u1 * u2 <= MASK64 and pc not in banned
                ):
                    ubuse(pc, rs1, rs2)
                    setreg(rd, f"{reg(rs1)} * {reg(rs2)}", ind,
                           record=record, ub=u1 * u2)
                else:
                    setreg(rd, f"({reg(rs1)} * {reg(rs2)}) & {M}", ind, record=record)
            elif mnemonic == "mulh":
                setreg(rd, f"(({sreg(rs1)} * {sreg(rs2)}) >> 64) & {M}", ind, record=record)
            elif mnemonic == "mulhu":
                setreg(rd, f"({reg(rs1)} * {reg(rs2)}) >> 64", ind, record=record)
            elif mnemonic == "mulhsu":
                setreg(rd, f"(({sreg(rs1)} * {reg(rs2)}) >> 64) & {M}", ind, record=record)
            elif mnemonic == "mulw":
                setreg(rd, w32(f"{reg(rs1)} * {reg(rs2)}"), ind, record=record)
            elif mnemonic == "div":
                setreg(rd, f"d64({reg(rs1)}, {reg(rs2)})", ind, record=record)
            elif mnemonic == "divu":
                setreg(rd, f"{M} if {reg(rs2)} == 0 else {reg(rs1)} // {reg(rs2)}", ind, record=record)
            elif mnemonic == "rem":
                setreg(rd, f"r64({reg(rs1)}, {reg(rs2)})", ind, record=record)
            elif mnemonic == "remu":
                # x % y <= x (and the y == 0 arm returns x itself), so the
                # dividend's bound carries over free of emitted code.
                u1 = ubget(rs1)
                ub = None
                if u1 is not None and pc not in banned:
                    ubuse(pc, rs1)
                    ub = u1
                setreg(rd, f"{reg(rs1)} if {reg(rs2)} == 0 else {reg(rs1)} % {reg(rs2)}", ind, record=record, ub=ub)
            elif mnemonic == "divw":
                setreg(rd, f"d32({reg(rs1)}, {reg(rs2)})", ind, record=record)
            elif mnemonic == "divuw":
                setreg(rd, (
                    f"{M} if ({reg(rs2)} & 0xFFFFFFFF) == 0 else "
                    + w32(f"({reg(rs1)} & 0xFFFFFFFF) // ({reg(rs2)} & 0xFFFFFFFF)")
                ), ind, record=record)
            elif mnemonic == "remw":
                setreg(rd, f"r32({reg(rs1)}, {reg(rs2)})", ind, record=record)
            elif mnemonic == "remuw":
                setreg(rd, (
                    w32(f"{reg(rs1)} & 0xFFFFFFFF")
                    + f" if ({reg(rs2)} & 0xFFFFFFFF) == 0 else "
                    + w32(f"({reg(rs1)} & 0xFFFFFFFF) % ({reg(rs2)} & 0xFFFFFFFF)")
                ), ind, record=record)
            elif mnemonic == "lui":
                setreg(rd, f"{imm & MASK64}", ind, known=imm & MASK64, record=record)
            elif mnemonic == "auipc":
                value = (pc + imm) & MASK64
                setreg(rd, f"{value}", ind, known=value, record=record)
            elif mnemonic in _LOAD_SIZES:
                size = _LOAD_SIZES[mnemonic]
                # Constant-address fast lane: a base register pinned by
                # exact-value speculation (or x0) makes the address a
                # compile-time constant, so the page view is bound once in
                # the prologue and the whole guard diamond collapses to a
                # single C-level index.  Alignment and "no read hook here"
                # are checked at compile time; the hook check is kept sound
                # by the hook-generation entry guard.  The view aliases the
                # page bytearray, so stores through any path stay coherent.
                ka = None
                if pc not in banned and HOST_IS_LITTLE_ENDIAN and self._direct_memory:
                    if rs1 == 0:
                        ka = imm & MASK64
                    elif kreg(rs1):
                        ka = (consts[rs1] + imm) & MASK64
                if (
                    ka is not None
                    and ka & (size - 1) == 0
                    and ka not in self.memory._read_hooks
                ):
                    if rs1 != 0:
                        fold(rs1, pc)
                    need_hookgen[0] = True
                    if rd == 0:
                        # No hook at this address (guarded): the access has
                        # no observable effect, so emit nothing at all.
                        return True
                    lane = {8: "q", 4: "w", 2: "h", 1: "b"}[size]
                    key = (lane, ka >> 12)
                    name = kpages.get(key)
                    if name is None:
                        name = kpages[key] = f"v{lane}{ka >> 12:x}"
                    shift = {8: 3, 4: 2, 2: 1, 1: 0}[size]
                    fetch = f"{name}[{(ka & 4095) >> shift}]"
                    if mnemonic == "lw":
                        setreg(rd, f"(({fetch} ^ 0x80000000) - 0x80000000)"
                               f" & {M}", ind, record=record)
                    elif mnemonic == "lh":
                        setreg(rd, f"(({fetch} ^ 0x8000) - 0x8000) & {M}",
                               ind, record=record)
                    elif mnemonic == "lb":
                        setreg(rd, f"(({fetch} ^ 0x80) - 0x80) & {M}",
                               ind, record=record)
                    else:  # ld / lwu / lhu / lbu
                        setreg(rd, fetch, ind, record=record,
                               ub=(1 << (8 * size)) - 1 if size < 8 else None)
                    return True
                lane = None if rd == 0 or ka is not None else kbase(
                    rs1, imm, size, pc, store=False
                )
                if lane is not None:
                    pv, iv, kk, limit = lane
                    if limit is None:
                        fetch = f"{pv}[{iv}]"
                    else:
                        fetch = (
                            f"{pv}[{iv} + {kk}] if {iv} < {limit}"
                            f" else rd_(({reg(rs1)} + {imm}) & {M}, {size})"
                        )
                    if mnemonic == "lw":
                        setreg(rd, f"((({fetch}) ^ 0x80000000) - 0x80000000)"
                               f" & {M}", ind, record=record)
                    elif mnemonic == "lh":
                        setreg(rd, f"((({fetch}) ^ 0x8000) - 0x8000) & {M}",
                               ind, record=record)
                    elif mnemonic == "lb":
                        setreg(rd, f"((({fetch}) ^ 0x80) - 0x80) & {M}",
                               ind, record=record)
                    else:  # ld / lwu / lhu / lbu
                        setreg(rd, fetch, ind, record=record,
                               ub=(1 << (8 * size)) - 1 if size < 8 else None)
                    return True
                # Register values are canonically masked, so a zero-offset
                # address needs no add-and-mask (and no ``a =`` temp).
                simple = rs1 != 0 and imm == 0
                av = reg(rs1) if simple else "a"
                if simple:
                    addr = av
                else:
                    u1 = ubget(rs1)
                    if (
                        imm > 0 and u1 is not None
                        and u1 + imm <= MASK64 and pc not in banned
                    ):
                        ubuse(pc, rs1)
                        addr = f"{reg(rs1)} + {imm}"
                    else:
                        addr = f"({reg(rs1)} + {imm}) & {M}"
                if rd != 0 and HOST_IS_LITTLE_ENDIAN and self._direct_memory:
                    # Aligned loads skip the SparseMemory call: a cast page
                    # view ('Q'/'I'/'H', or the page bytearray for bytes)
                    # indexes the same bytes the scalar path would unpack.
                    # Read hooks force the slow path; a missing page reads
                    # as zero without allocating (an aligned access never
                    # crosses a page).  Sign-extending loads land in a temp
                    # and fix up below.
                    signed = mnemonic in ("lb", "lh", "lw")
                    target = "t" if signed else f"x{rd}"
                    if not signed:
                        touched.add(rd)
                        written.add(rd)
                        if rd not in first_event:
                            first_event[rd] = ("w" if record else "c", ev[0])
                        ev[0] += 1
                        last_write[rd] = posbox[0]
                        consts.pop(rd, None)
                        # Free bound: an unsigned sub-8 load fits its width.
                        if record and size < 8:
                            ubound[rd] = (1 << (8 * size)) - 1
                        else:
                            ubound.pop(rd, None)
                    if not simple:
                        body.append((ind, f"a = {addr}"))
                    if size == 8:
                        guard = f"{av} & 7 or rh"
                        fast = (
                            f"q[({av} & 4095) >> 3] if (q := qv({av} >> 12)"
                            f" or ql({av} >> 12)) is not None else 0"
                        )
                    elif size == 4:
                        guard = f"{av} & 3 or rh"
                        fast = (
                            f"w[({av} & 4095) >> 2] if (w := qw({av} >> 12)"
                            f" or qwl({av} >> 12)) is not None else 0"
                        )
                    elif size == 2:
                        guard = f"{av} & 1 or rh"
                        fast = (
                            f"h[({av} & 4095) >> 1] if (h := qh({av} >> 12)"
                            f" or qhl({av} >> 12)) is not None else 0"
                        )
                    else:
                        guard = "rh"
                        fast = (
                            f"p[{av} & 4095]"
                            f" if (p := qb({av} >> 12)) is not None else 0"
                        )
                    body.append((ind, f"if {guard}:"))
                    body.append((ind + 1, f"{target} = rd_({av}, {size})"))
                    body.append((ind, "else:"))
                    body.append((ind + 1, f"{target} = {fast}"))
                    if mnemonic == "lw":
                        setreg(rd, f"((t ^ 0x80000000) - 0x80000000) & {M}", ind, record=record)
                    elif mnemonic == "lh":
                        setreg(rd, f"((t ^ 0x8000) - 0x8000) & {M}", ind, record=record)
                    elif mnemonic == "lb":
                        setreg(rd, f"((t ^ 0x80) - 0x80) & {M}", ind, record=record)
                    return True
                load = f"rd_({addr}, {size})"
                if rd == 0:
                    # x0 loads still perform the access (MMIO side effects).
                    body.append((ind, load))
                elif mnemonic == "lw":
                    setreg(rd, f"(({load} ^ 0x80000000) - 0x80000000) & {M}", ind, record=record)
                elif mnemonic == "lh":
                    setreg(rd, f"(({load} ^ 0x8000) - 0x8000) & {M}", ind, record=record)
                elif mnemonic == "lb":
                    setreg(rd, f"(({load} ^ 0x80) - 0x80) & {M}", ind, record=record)
                else:  # ld / lwu / lhu / lbu
                    setreg(rd, load, ind, record=record,
                           ub=(1 << (8 * size)) - 1 if size < 8 else None)
            elif mnemonic in _STORE_SIZES:
                size = _STORE_SIZES[mnemonic]
                # Constant-address fast lane (mirror of the load lane): the
                # alignment and write-hook checks fold away at compile time,
                # leaving only the self-modifying-code overlap test — whose
                # first comparison short-circuits for any data-segment
                # address — in front of a single C-level view store.
                ka = None
                if pc not in banned and HOST_IS_LITTLE_ENDIAN and self._direct_memory:
                    if rs1 == 0:
                        ka = imm & MASK64
                    elif kreg(rs1):
                        ka = (consts[rs1] + imm) & MASK64
                if (
                    ka is not None
                    and ka & (size - 1) == 0
                    and ka not in self.memory._write_hooks
                ):
                    if rs1 != 0:
                        fold(rs1, pc)
                    need_hookgen[0] = True
                    lane = {8: "q", 4: "w", 2: "h", 1: "b"}[size]
                    key = (lane, ka >> 12)
                    name = kpages.get(key)
                    if name is None:
                        name = kpages[key] = f"v{lane}{ka >> 12:x}"
                    shift = {8: 3, 4: 2, 2: 1, 1: 0}[size]
                    if size == 8:
                        value = reg(rs2)
                    else:
                        value = f"{reg(rs2)} & {(1 << (8 * size)) - 1:#x}"
                    body.append((
                        ind, f"if {ka} < cb[1] and {ka + size} > cb[0]:"
                    ))
                    body.append((ind + 1, f"wr_({ka}, {size}, {reg(rs2)})"))
                    wb(ind + 1)
                    body.append((ind + 1, f"E._invalidate({ka}, {size})"))
                    body.append((ind + 1, f"raise _bx({pc + 4}, n + {pos})"))
                    body.append((ind, "else:"))
                    body.append((
                        ind + 1, f"{name}[{(ka & 4095) >> shift}] = {value}"
                    ))
                    return True
                lane = None if ka is not None else kbase(
                    rs1, imm, size, pc, store=True
                )
                if lane is not None:
                    pv, iv, kk, limit = lane
                    if size == 8:
                        value = reg(rs2)
                    else:
                        value = f"{reg(rs2)} & {(1 << (8 * size)) - 1:#x}"
                    sflag = f"sb{rs1}"
                    if limit is None:
                        body.append((ind, f"if {sflag}:"))
                        body.append((ind + 1, f"{pv}[{iv}] = {value}"))
                    else:
                        body.append((
                            ind, f"if {sflag} and {iv} < {limit}:"
                        ))
                        body.append((ind + 1, f"{pv}[{iv} + {kk}] = {value}"))
                    # Slow arm: page-crossing or possible code overlap.  No
                    # hook can match in the guarded window, so no E.stop
                    # check is needed; the overlap test mirrors the scalar
                    # store path and exits through the SMC protocol.
                    body.append((ind, "else:"))
                    if imm:
                        body.append((
                            ind + 1, f"a = ({reg(rs1)} + {imm}) & {M}"
                        ))
                        sav = "a"
                    else:
                        sav = reg(rs1)
                    body.append((ind + 1, f"wr_({sav}, {size}, {reg(rs2)})"))
                    body.append((
                        ind + 1,
                        f"if {sav} < cb[1] and {sav} + {size} > cb[0]:",
                    ))
                    wb(ind + 2)
                    body.append((ind + 2, f"E._invalidate({sav}, {size})"))
                    body.append((
                        ind + 2, f"raise _bx({pc + 4}, n + {pos})"
                    ))
                    return True
                simple = rs1 != 0 and imm == 0
                av = reg(rs1) if simple else "a"
                if not simple:
                    u1 = ubget(rs1)
                    if (
                        imm > 0 and u1 is not None
                        and u1 + imm <= MASK64 and pc not in banned
                    ):
                        ubuse(pc, rs1)
                        body.append((ind, f"a = {reg(rs1)} + {imm}"))
                    else:
                        body.append((ind, f"a = ({reg(rs1)} + {imm}) & {M}"))
                if size == 8 and HOST_IS_LITTLE_ENDIAN and self._direct_memory:
                    # Aligned 64-bit stores write through the cast-'Q' view.
                    # One fused guard covers every slow case — unaligned,
                    # write-hooked (matched by exact address, as in
                    # ``SparseMemory.write``), or overlapping compiled code —
                    # so the fast arm is a single view store with no checks
                    # after it.  The slow arm stores via the scalar path
                    # (which runs the hooks and so is the only one that can
                    # set ``E.stop``), then takes the self-modifying-code
                    # exit if the overlap test was what routed it here.
                    body.append((
                        ind,
                        f"if {av} & 7 or {av} in wh"
                        f" or ({av} < cb[1] and {av} + 8 > cb[0]):",
                    ))
                    body.append((ind + 1, f"wr_({av}, 8, {reg(rs2)})"))
                    body.append((ind + 1, f"if {av} < cb[1] and {av} + 8 > cb[0]:"))
                    wb(ind + 2)
                    body.append((ind + 2, f"E._invalidate({av}, 8)"))
                    body.append((ind + 2, f"raise _bx({pc + 4}, n + {pos})"))
                    body.append((ind + 1, "if E.stop:"))
                    wb(ind + 2)
                    body.append((ind + 2, f"raise _st({pc + 4}, n + {pos})"))
                    body.append((ind, "else:"))
                    body.append((
                        ind + 1,
                        f"(qv({av} >> 12) or qc({av} >> 12))"
                        f"[({av} & 4095) >> 3] = {reg(rs2)}",
                    ))
                    return True
                body.append((ind, f"wr_({av}, {size}, {reg(rs2)})"))
                # Same overlap test as the tier-1 store closures; both exits
                # write the dirty locals back first because the raise
                # abandons the compiled function.
                body.append((ind, f"if {av} < cb[1] and {av} + {size} > cb[0]:"))
                wb(ind + 1)
                body.append((ind + 1, f"E._invalidate({av}, {size})"))
                body.append((ind + 1, f"raise _bx({pc + 4}, n + {pos})"))
                body.append((ind, "if E.stop:"))
                wb(ind + 1)
                body.append((ind + 1, f"raise _st({pc + 4}, n + {pos})"))
            elif mnemonic == "fence":
                pass  # memory-ordering no-op on this single-hart model
            else:
                return False
            return True

        pc = head
        count = 0
        open_end = True
        next_check = self._T2_CHECK  # next mid-trace fuel-check position
        pos_by_pc = {}    # pc -> 1-based static position (top-level only)
        first_line = {}   # pc -> body index where its emission starts
        const_def = {}    # reg -> position of the write that made it constant
        folds = []        # (use_pos, reg, def_pos) for every consumed constant
        last_write = {}   # reg -> last position that wrote it
        loops = []        # open loops: (target_pc, while_line), innermost last
        closed = []       # finished loop spans: (while_line, break_line)
        fused_pos = set()  # positions folded into the previous line (no head)
        cur = 0           # current indent: one level per enclosing open loop

        def backedge(target, pos, cond=None):
            """Emit a native back-edge to ``target`` if one can be formed.

            ``pos`` is the 1-based position of the edge (the branching
            instruction, or the last retired position for a fall-into edge);
            ``cond`` guards the edge when the closing branch is conditional.
            The target's span is wrapped in ``while 1:``; a conditional edge
            immediately *closes* its loop with a ``break``, so the walk
            continues outside it and a later outer back-edge may legally
            wrap the whole nest.  (An open loop can never receive a second
            edge: its first one either closed it or ended the walk, so every
            call here opens a fresh loop.)  Returns False when no loop can
            be formed: the target is not a top-level trace position, the
            ``while`` would cross a closed loop's boundary or break the open
            loops' nesting, or a folded constant defined before the target
            would go stale when its register is rewritten inside the loop
            body (raises :class:`_Rewalk` instead on non-final attempts).
            """
            nonlocal cur
            if target not in pos_by_pc:
                return False
            j = pos_by_pc[target]
            if j in fused_pos:
                return False
            li = first_line[target]
            if loops and li <= loops[-1][1]:
                return False
            for start, end in closed:
                if start < li <= end:
                    return False
            stale = {
                use_pc
                for use_pos, r, def_pos, use_pc in folds
                if def_pos < j <= use_pos and last_write.get(r, -1) >= j
            }
            if stale:
                if not final:
                    raise _Rewalk(stale)
                return False
            indent = body[li][0] if li < len(body) else cur
            body.insert(li, (indent, "while 1:"))
            for i in range(li + 1, len(body)):
                entry = body[i]
                body[i] = (entry[0] + 1,) + entry[1:]
            for key, value in first_line.items():
                if value >= li:
                    first_line[key] = value + 1
            for i, (start, end) in enumerate(closed):
                if start >= li:
                    closed[i] = (start + 1, end + 1)
            cur += 1
            loops.append((target, li))
            ind = cur
            if cond is not None:
                body.append((cur, f"if {cond}:"))
                ind += 1
            body.append((ind, f"n += {pos - j + 1}"))
            body.append((ind, "if n >= fuel:"))
            wb(ind + 1)
            ret = f"n + {j - 1}" if j > 1 else "n"
            body.append((ind + 1, f"return {target}, {ret}"))
            body.append((ind, "continue"))
            if cond is not None:
                _, while_line = loops.pop()
                body.append((cur, "break"))
                cur -= 1
                closed.append((while_line, len(body) - 1))
            return True

        unrolling = False  # const-guided re-trace of an already-walked span
        while count < self._MAX_T2:
            if pc in visited:
                if not unrolling:
                    # Fell into the top of an already-walked span: close it
                    # as a native loop when possible, else exit to its head.
                    if backedge(pc, count):
                        open_end = False
                    break
            else:
                unrolling = False
            try:
                decoded = self.fetch_decode(pc)
            except (DecodingError, SimulationError):
                break
            mnemonic = decoded.mnemonic
            rd = decoded.rd
            rs1 = decoded.rs1
            imm = decoded.imm
            if count >= next_check:
                # Mid-trace fuel check: bounds the budget overshoot of long
                # straight-line runs (back-edges carry their own checks).
                next_check += self._T2_CHECK
                body.append((cur, f"if n + {count} >= fuel:"))
                wb(cur + 1)
                body.append((cur + 1, f"return {pc}, n + {count}"))
            first_line[pc] = len(body)
            pos_by_pc[pc] = count + 1
            posbox[0] = count + 1

            if mnemonic == "jalr":
                base = consts.get(rs1, None) if rs1 != 0 and pc not in banned else (
                    0 if rs1 == 0 else None
                )
                if base is not None:
                    # Known return/jump target: fuse through it and keep
                    # tracing (the ``ret`` of an inlined ``jal`` call).
                    target = (base + imm) & (MASK64 & ~1)
                    if rs1 != 0:
                        folds.append((count + 1, rs1, const_def[rs1], pc))
                    visited.add(pc)
                    covered.append(pc)
                    if rd:
                        setreg(rd, f"{pc + 4}", cur, known=pc + 4)
                    count += 1
                    if target in visited and not unrolling:
                        if backedge(target, count):
                            open_end = False
                            break
                        wb(cur)
                        body.append((cur, f"return {target}, n + {count}"))
                        open_end = False
                        break
                    pc = target
                    continue
                body.append((cur, f"t = ({reg(rs1)} + {imm}) & 0xFFFFFFFFFFFFFFFE"))
                visited.add(pc)
                covered.append(pc)
                if rd:
                    # The link value is statically known even though the
                    # target is not; recording it lets an inlined callee's
                    # ``ret`` fold back to this call site.
                    setreg(rd, f"{pc + 4}", cur, known=pc + 4)
                count += 1
                # Value speculation: predict the dynamic target from the
                # register file as it stands at promotion time (for the
                # common indirect-call idiom — a function pointer that is
                # loop-invariant at runtime — this is exact).  A runtime
                # guard keeps the compiled code correct on any target: a
                # mispredict simply exits the trace where it used to end
                # unconditionally.
                guess = None
                if rs1 != 0:
                    guess = (self.hart.regs[rs1] + imm) & (MASK64 & ~1)
                    if guess == 0 or (guess in visited and not unrolling):
                        guess = None
                    else:
                        try:
                            self.fetch_decode(guess)
                        except (DecodingError, SimulationError):
                            guess = None
                if guess is not None:
                    body.append((cur, f"if t != {guess}:"))
                    wb(cur + 1)
                    body.append((cur + 1, f"return t, n + {count}"))
                    pc = guess
                    continue
                wb(cur)
                body.append((cur, f"return t, n + {count}"))
                open_end = False
                break

            if (
                mnemonic == "csrrs"
                and rs1 == 0
                and self.counter_csrs is not None
                and decoded.csr in self.counter_csrs
            ):
                # Pure read of a retire-counter CSR (the ``rdcycle`` idiom):
                # the value tier-1 would produce is the retire count *before*
                # this instruction, which is exactly ``E.retired`` at call
                # entry plus ``n`` plus this instruction's 0-based position —
                # still exact on every loop iteration, since ``n`` accumulates
                # completed iterations.  No mask: the count stays far below
                # 2**63.
                visited.add(pc)
                covered.append(pc)
                if rd:
                    setreg(rd, f"E.retired + n + {count}", cur)
                count += 1
                pc += 4
                continue

            # Trace stoppers: end before this instruction and fall back to
            # the tier-1 closures at the returned PC.
            if mnemonic in _T2_STOPPERS or mnemonic == "rocc":
                break
            if mnemonic not in _T2_SUPPORTED:
                break

            visited.add(pc)
            covered.append(pc)

            if mnemonic == "jal":
                target = (pc + imm) & MASK64
                if rd:
                    setreg(rd, f"{pc + 4}", cur, known=pc + 4)
                count += 1
                if target in visited and not unrolling:
                    if backedge(target, count):
                        open_end = False
                        break
                    wb(cur)
                    body.append((cur, f"return {target}, n + {count}"))
                    open_end = False
                    break
                # Inline the jump: keep tracing at the target.
                pc = target
                continue

            if mnemonic in _T2_BRANCHES:
                rs2 = decoded.rs2
                taken = (pc + imm) & MASK64
                v1 = 0 if rs1 == 0 else consts.get(rs1, None)
                v2 = 0 if rs2 == 0 else consts.get(rs2, None)
                if v1 is not None and v2 is not None and pc not in banned:
                    # Both operands statically known: decide the branch at
                    # compile time and keep tracing along the taken side.
                    if rs1 != 0:
                        folds.append((count + 1, rs1, const_def[rs1], pc))
                    if rs2 != 0:
                        folds.append((count + 1, rs2, const_def[rs2], pc))
                    if mnemonic in ("blt", "bge"):
                        o1 = (v1 ^ (1 << 63)) - (1 << 63)
                        o2 = (v2 ^ (1 << 63)) - (1 << 63)
                    else:
                        o1 = v1
                        o2 = v2
                    if mnemonic == "beq":
                        t = v1 == v2
                    elif mnemonic == "bne":
                        t = v1 != v2
                    elif mnemonic in ("blt", "bltu"):
                        t = o1 < o2
                    else:  # bge / bgeu
                        t = o1 >= o2
                    count += 1
                    if not t:
                        pc += 4
                        continue
                    if taken in visited:
                        # Const-guided unrolling: the closing branch of a
                        # counted loop is decided at compile time, so the
                        # iterations can be peeled flat by re-tracing the
                        # body with the advanced constants — no loop test,
                        # no fuel check, no retire bookkeeping per
                        # iteration, and every derived address/const keeps
                        # folding.  Bounded by the body-size cap here and
                        # by ``_MAX_T2`` overall; loops too big (or whose
                        # trip count never resolves) wrap natively below.
                        if (
                            taken in pos_by_pc
                            and count - pos_by_pc[taken] + 1
                                <= self._T2_UNROLL_BODY
                            and count + (count - pos_by_pc[taken] + 1)
                                <= self._MAX_T2 - 64
                        ):
                            unrolling = True
                            pc = taken
                            continue
                        if backedge(taken, count):
                            open_end = False
                            break
                        wb(cur)
                        body.append((cur, f"return {taken}, n + {count}"))
                        open_end = False
                        break
                    pc = taken
                    continue
                if mnemonic == "beq":
                    cond = f"{reg(rs1)} == {reg(rs2)}"
                elif mnemonic == "bne":
                    cond = f"{reg(rs1)} != {reg(rs2)}"
                elif mnemonic == "blt":
                    cond = f"{sreg(rs1, pc)} < {sreg(rs2, pc)}"
                elif mnemonic == "bge":
                    cond = f"{sreg(rs1, pc)} >= {sreg(rs2, pc)}"
                elif mnemonic == "bltu":
                    cond = f"{reg(rs1)} < {reg(rs2)}"
                else:  # bgeu
                    cond = f"{reg(rs1)} >= {reg(rs2)}"
                if taken in visited and backedge(taken, count + 1, cond=cond):
                    count += 1
                    pc += 4
                    continue
                # Skip diamond: a short forward branch over straight-line
                # instructions stays inside the trace as an if/else; the
                # taken path compensates the retire count for the skipped
                # instructions.
                skip = (taken - (pc + 4)) >> 2 if taken > pc + 4 else 0
                if 1 <= skip <= _T2_MAX_SKIP and count + 1 + skip <= self._MAX_T2:
                    guarded = []
                    for i in range(skip):
                        gpc = pc + 4 + 4 * i
                        if gpc in visited and not unrolling:
                            guarded = None
                            break
                        try:
                            gdec = self.fetch_decode(gpc)
                        except (DecodingError, SimulationError):
                            guarded = None
                            break
                        if gdec.mnemonic not in _T2_GUARDABLE:
                            guarded = None
                            break
                        guarded.append((gpc, gdec))
                    if guarded:
                        count += 1
                        body.append((cur, f"if {cond}:"))
                        body.append((cur + 1, f"n -= {skip}"))
                        body.append((cur, "else:"))
                        for i, (gpc, gdec) in enumerate(guarded):
                            visited.add(gpc)
                            covered.append(gpc)
                            # Conditional writes invalidate any known
                            # constant but never establish one.
                            emit_plain(gdec, gpc, cur + 1, count + 1 + i, False)
                        count += skip
                        pc = taken
                        continue
                # Taken path exits the trace; fall-through continues it.
                body.append((cur, f"if {cond}:"))
                wb(cur + 1)
                body.append((cur + 1, f"return {taken}, n + {count + 1}"))
                count += 1
                pc += 4
                continue

            if not emit_plain(decoded, pc, cur, count + 1, True):
                # pragma: no cover - _T2_SUPPORTED keeps this unreachable
                visited.discard(pc)
                covered.pop()
                break
            count += 1
            pc += 4

        if count == 0:
            return None
        if open_end:
            wb(cur)
            body.append((cur, f"return {pc}, n + {count}"))

        # Environment injection via default arguments: every binding becomes
        # a fast local instead of a global lookup in the generated function.
        lines = [
            "def _t2(fuel, R=R, rd_=rd_, wr_=wr_, qv=qv, ql=ql, qc=qc,"
            " qw=qw, qwl=qwl, qh=qh, qhl=qhl, qb=qb, qwc=qwc, qhc=qhc,"
            " qbc=qbc, rh=rh, wh=wh, mem=mem, E=E, cb=cb,"
            " d64=d64, r64=r64, d32=d32, r32=r32, _bx=_bx, _st=_st, _dg=_dg):"
        ]
        loads = []
        for r in sorted(touched):
            event = first_event.get(r)
            if (
                event is not None
                and event[0] == "w"
                and (first_wb[0] is None or event[1] < first_wb[0])
            ):
                # First event is an unconditional write before any exit slot:
                # the local is always defined before use; skip its load.
                continue
            loads.append(r)
        full = tuple(sorted(written))
        # Wide traces bind the whole register file in one unpack (a single
        # C-level UNPACK_SEQUENCE) and write it back with one slice-assign;
        # both beat dozens of per-register subscript lines.  Writing back an
        # untouched register is the identity — its local still holds the
        # prologue value, and nothing else mutates R while the function runs.
        all_regs = ", ".join(f"x{r}" for r in range(32))
        wide = len(loads) >= 8 or len(full) >= 10
        if wide:
            lines.append(f"    {all_regs} = R")
        else:
            for r in loads:
                lines.append(f"    x{r} = R[{r}]")
        # Entry guard for every speculation the walk consulted — hook-set
        # generation, exactly-pinned registers, then range bounds — as one
        # chained test before any state changes, so a miss can deoptimize
        # with nothing to unwind.  Exact pins read ``R`` directly (their
        # uses were folded away, so no local need exist); range bounds read
        # the prologue-loaded locals.
        terms = []
        if need_hookgen[0]:
            terms.append(f"mem.hook_gen != {hook_gen0}")
        for r in sorted(spec_exact):
            terms.append(f"R[{r}] != {spec_exact[r]}")
        for r in sorted(spec_used - spec_exact.keys()):
            terms.append(f"x{r} > {self._T2_SPEC_BOUND}")
        # Pinned-base terms: alignment, plus a window test per MMIO hook so
        # no access through the base can land on a hooked address (which
        # lets every per-access hook check fold away).
        hooks = sorted(
            set(self.memory._read_hooks) | set(self.memory._write_hooks)
        )
        for r in sorted(kbases):
            info = kbases[r]
            if info["align"] > 1:
                terms.append(f"x{r} & {info['align'] - 1}")
            for h in hooks:
                terms.append(f"{h - info['span']} < x{r} <= {h}")
        if terms:
            lines.append(f"    if {' or '.join(terms)}:")
            lines.append("        raise _dg")
        # Pinned page views: bound once per call, after the guard (a deopt
        # skips the work).  The create-variants make a view even for a page
        # nothing has touched yet — allocation is semantically invisible
        # (fresh pages read as zero either way) and removes any None case.
        creators = {"q": "qc", "w": "qwc", "h": "qhc", "b": "qbc"}
        for (lane, page), name in sorted(kpages.items()):
            lines.append(f"    {name} = {creators[lane]}({page})")
        # Pinned-base bindings: page view and element index of the base,
        # and (for stores) one code-overlap boolean covering the window.
        for r in sorted(kbases):
            info = kbases[r]
            for lane in sorted(info["lanes"]):
                shift = _T2_LANE_SHIFTS[lane]
                lines.append(
                    f"    p{lane}{r} = {creators[lane]}(x{r} >> 12)"
                )
                idx = f"(x{r} & 4095) >> {shift}" if shift else f"x{r} & 4095"
                lines.append(f"    i{lane}{r} = {idx}")
            if info["sspan"]:
                lines.append(
                    f"    sb{r} = x{r} >= cb[1]"
                    f" or x{r} + {info['sspan']} <= cb[0]"
                )
        lines.append("    n = 0")
        for i, entry in enumerate(body):
            ind, text = entry[0], entry[1]
            if text == "§WB§":
                # Straight-line exits write back only the registers written
                # before the slot in trace order (the snapshot taken when it
                # was emitted).  A slot inside a loop can execute *after*
                # later writes in the body (second iteration onwards), so
                # in-loop slots fall back to the full set.
                regs = entry[2]
                if any(s < i <= e for s, e in closed) or any(
                    wl < i for _, wl in loops
                ):
                    regs = full
                if not regs:
                    continue
                if wide and len(regs) >= 10:
                    text = f"R[:] = ({all_regs})"
                else:
                    text = "; ".join(f"R[{r}] = x{r}" for r in regs)
            lines.append("    " * (1 + ind) + text)
        return (
            "\n".join(lines) + "\n",
            count,
            covered,
            spec_exact,
            frozenset(spec_used - spec_exact.keys()),
            {r: (info["align"], info["span"]) for r, info in kbases.items()},
        )


#: Access size -> (view-lane letter, element-index shift) for the tier-2
#: pinned-base and constant-address memory lanes.
_T2_LANES = {8: ("q", 3), 4: ("w", 2), 2: ("h", 1), 1: ("b", 0)}
_T2_LANE_SHIFTS = {"q": 3, "w": 2, "h": 1, "b": 0}

#: Register-writing instructions whose only effect is ``rd = f(operands)``;
#: with ``rd == x0`` they compile to a pure no-op.
_ALU_MNEMONICS = frozenset({
    "add", "addi", "sub", "and", "andi", "or", "ori", "xor", "xori",
    "sll", "slli", "srl", "srli", "sra", "srai",
    "slt", "slti", "sltu", "sltiu",
    "addw", "addiw", "subw", "sllw", "slliw", "srlw", "srliw", "sraw", "sraiw",
    "mul", "mulh", "mulhu", "mulhsu", "mulw",
    "div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw",
    "lui", "auipc",
})

#: Everything the tier-2 emitter can fold into straight-line source.  Any
#: other mnemonic ends the trace (defensive: the decoder and the emitter are
#: kept in sync, but an unknown instruction must fall back, not miscompile).
_T2_SUPPORTED = (
    _ALU_MNEMONICS
    | frozenset(_LOAD_SIZES)
    | frozenset(_STORE_SIZES)
    | _T2_BRANCHES
    | frozenset({"jal", "fence"})
)

#: Instructions that may execute conditionally inside a skip-diamond guard:
#: anything without control transfer or synchronized-state needs.
_T2_GUARDABLE = (
    _ALU_MNEMONICS
    | frozenset(_LOAD_SIZES)
    | frozenset(_STORE_SIZES)
    | frozenset({"fence"})
)
