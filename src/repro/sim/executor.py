"""Threaded-code execution engine for decoded RV64 instructions.

One :class:`Executor` instance drives one hart against one memory.  The same
executor is reused by every simulator in the repository:

* :class:`repro.sim.spike.SpikeSimulator` — functional, batched execution via
  :meth:`Executor.run`, no timing;
* :class:`repro.rocket.core.RocketEmulator` — wraps each :meth:`Executor.step`
  with the pipeline/cache timing model;
* :class:`repro.gem5.atomic_cpu.AtomicSimpleCPU` — batched when no memory
  penalty is configured, per-step otherwise.

Architecture (decode-once threaded code)
----------------------------------------

Instead of re-decoding and re-dispatching on a mnemonic string for every
retired instruction, the engine *compiles* each static instruction the first
time it is executed:

* :meth:`Executor._compile` decodes the word at ``pc`` once and builds a
  **specialized closure** with every operand pre-bound — register indices,
  sign-extended and pre-masked immediates, branch targets, ``pc + 4`` — so
  executing the instruction is a single closure call with no decode, no
  dispatch and no dead work.
* Closures are stored in a **PC-indexed dispatch table** (``_ops``), so the
  hot loop never even re-fetches the instruction word from memory.
* Every instruction gets *two* closures: a **fast op** used by
  :meth:`run` that returns only the next PC, and an **info op** used by
  :meth:`step` that additionally maintains an :class:`ExecInfo` record for
  the timing models.  ``ExecInfo`` materialization is therefore *opt-in*:
  the functional path never allocates or fills one.
* The per-PC ``ExecInfo`` object is created at compile time and **reused**
  across executions of that instruction; only the dynamic fields (memory
  address, branch outcome, RoCC response) are rewritten per step.  Timing
  models must consume the record before their next ``step()`` call (all
  in-tree models do).

Correctness safeguards:

* Stores into the compiled-code address range invalidate the affected table
  entries, so self-modifying code behaves exactly as under the old
  fetch-every-step interpreter; ``fence.i`` flushes the whole table.
* Rare instructions that need up-to-date counter state (CSR reads, ``ecall``,
  ``ebreak``) compile to a closure that raises the :data:`_SLOW` sentinel;
  :meth:`run` catches it, synchronizes ``retired``/``hart.pc`` and executes
  the instruction through the exact info-op path.
* The HTIF host interface requests a halt through :meth:`request_halt`
  (wired by the simulators); store closures observe the flag immediately so
  a batched run stops on the exact instruction that wrote ``tohost``.

See ``docs/simulator.md`` for an extension guide (superblock caching,
multi-hart) and the protocol the timing models rely on.
"""

from __future__ import annotations

from repro.errors import DecodingError, SimulationError, TrapError
from repro.isa import csr as csrdefs
from repro.isa.decoder import decode_cached

MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN64 = 1 << 63
_INT64_MIN = -(1 << 63)
_INT32_MIN = -(1 << 31)

#: Static timing classes, assigned to :attr:`ExecInfo.timing_class` at compile
#: time so the cycle-accurate models never need to classify mnemonics per step.
TC_OTHER = 0
TC_MEM = 1
TC_MUL = 2
TC_DIV = 3
TC_ROCC = 4
TC_JUMP = 5
TC_BRANCH = 6


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return (value ^ 0x80000000) - 0x80000000


class _SlowPath(Exception):
    """Internal: the fast table defers this PC to the info-op path."""


#: Preallocated sentinel raised by slow fast-ops (CSR/ecall/ebreak).
_SLOW = _SlowPath()


def _raise_slow():
    raise _SLOW


class _Stopped(Exception):
    """Internal: a store triggered an HTIF exit mid-batch."""

    def __init__(self, next_pc: int) -> None:
        self.next_pc = next_pc


class _BlockExit(Exception):
    """Internal: a store invalidated compiled code; abandon the running block."""

    def __init__(self, next_pc: int) -> None:
        self.next_pc = next_pc


#: Superblock op-kind classification (how :meth:`Executor._compile_block`
#: threads closures together).
_KIND_SEQ = 0    # falls through to pc + 4: may appear mid-block
_KIND_TERM = 1   # control transfer (or table flush): always ends a block
_KIND_SLOW = 2   # needs synchronized counters: always a single-op block


class ExecInfo:
    """What a single instruction did (consumed by the timing models).

    Instances are created once per static instruction and *reused*: a timing
    model must read the record before its next ``step()`` call.
    """

    __slots__ = (
        "decoded",
        "pc",
        "next_pc",
        "branch_taken",
        "mem_addr",
        "mem_size",
        "mem_is_store",
        "is_rocc",
        "rocc_busy_cycles",
        "rocc_has_response",
        "rocc_funct7",
        "timing_class",
    )

    def __init__(self, decoded, pc, next_pc):
        self.decoded = decoded
        self.pc = pc
        self.next_pc = next_pc
        self.branch_taken = False
        self.mem_addr = None
        self.mem_size = 0
        self.mem_is_store = False
        self.is_rocc = False
        self.rocc_busy_cycles = 0
        self.rocc_has_response = False
        self.rocc_funct7 = 0
        self.timing_class = TC_OTHER


# --------------------------------------------------------------------- helpers
def _div64(a: int, b: int) -> int:
    """RV64 ``div``: C-style truncation, -1 on /0, INT_MIN on overflow."""
    sa = (a ^ _SIGN64) - _SIGN64
    sb = (b ^ _SIGN64) - _SIGN64
    if sb == 0:
        return MASK64
    if sa == _INT64_MIN and sb == -1:
        return a
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & MASK64


def _rem64(a: int, b: int) -> int:
    sa = (a ^ _SIGN64) - _SIGN64
    sb = (b ^ _SIGN64) - _SIGN64
    if sb == 0:
        return sa & MASK64
    if sa == _INT64_MIN and sb == -1:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return (sa - sb * quotient) & MASK64


def _div32(a: int, b: int) -> int:
    sa = _signed32(a)
    sb = _signed32(b)
    if sb == 0:
        return MASK64
    if sa == _INT32_MIN and sb == -1:
        return _INT32_MIN & MASK64
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _signed32(quotient) & MASK64


def _rem32(a: int, b: int) -> int:
    sa = _signed32(a)
    sb = _signed32(b)
    if sb == 0:
        return _signed32(sa) & MASK64
    if sa == _INT32_MIN and sb == -1:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _signed32(sa - sb * quotient) & MASK64


_LOAD_SIZES = {"ld": 8, "lw": 4, "lwu": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}
_STORE_SIZES = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}
_MUL_MNEMONICS = frozenset({"mul", "mulh", "mulhu", "mulhsu", "mulw"})
_DIV_MNEMONICS = frozenset({"div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw"})


class Executor:
    """Threaded-code fetch/decode/execute engine with PC-indexed dispatch."""

    def __init__(self, hart, memory, csr_provider=None, rocc=None):
        self.hart = hart
        self.memory = memory
        self.csr_provider = csr_provider if csr_provider is not None else (lambda addr: 0)
        self.rocc = rocc
        self.exit_requested = False
        self.exit_code = 0
        #: Set when any exit condition fires (HTIF halt or exit ecall).
        self.stop = False
        #: Total instructions retired by this executor (run() and step()).
        self.retired = 0
        # PC-indexed dispatch tables.
        self._ops = {}
        self._info_ops = {}
        self._decoded_at = {}
        self._kinds = {}
        # PC-indexed (info_op, info) pairs: lets a timing model fetch the
        # static ExecInfo (for pre-issue hazard checks) and execute with a
        # single table lookup.
        self._timed = {}
        # PC-indexed superblocks: straight-line runs of fast ops threaded into
        # a list so the dispatch loop pays one table lookup per block.
        self._blocks = {}
        # [lo, hi) byte range covered by compiled instructions; shared with
        # store closures so writes into code invalidate stale table entries.
        self._code_bounds = [1 << 62, 0]

    # ------------------------------------------------------------------ control
    def request_halt(self) -> None:
        """Stop a batched :meth:`run` after the current instruction (HTIF)."""
        self.stop = True

    def flush(self) -> None:
        """Drop every compiled instruction (``fence.i``, external cache control)."""
        self._ops.clear()
        self._info_ops.clear()
        self._decoded_at.clear()
        self._kinds.clear()
        self._timed.clear()
        self._blocks.clear()

    def _invalidate(self, address: int, size: int) -> None:
        """A store hit the compiled range: drop any overlapping instructions."""
        ops = self._ops
        info_ops = self._info_ops
        decoded_at = self._decoded_at
        kinds = self._kinds
        timed = self._timed
        for pc in range(address - 3, address + size):
            ops.pop(pc, None)
            info_ops.pop(pc, None)
            decoded_at.pop(pc, None)
            kinds.pop(pc, None)
            timed.pop(pc, None)
        # Superblocks embed closure references, so any code write drops them
        # all (rare: only stores into the compiled range get here).
        self._blocks.clear()

    # ------------------------------------------------------------------ fetch
    def fetch_decode(self, pc: int):
        """Return the decoded instruction at ``pc`` (PC-indexed, decode-once)."""
        decoded = self._decoded_at.get(pc)
        if decoded is None:
            decoded = decode_cached(self.memory.read(pc, 4))
            self._decoded_at[pc] = decoded
        return decoded

    # -------------------------------------------------------------------- run
    def run(self, max_instructions: int) -> int:
        """Execute up to the ``max_instructions`` budget in a tight loop.

        Stops early when the program exits (HTIF halt or exit ``ecall``);
        may overshoot the budget by up to one superblock (callers use the
        budget as a runaway guard, not an exact stopping point).  Returns the
        number of instructions retired by this call; the running total is
        kept in :attr:`retired`.
        """
        if self.stop:
            return 0
        hart = self.hart
        blocks_get = self._blocks.get
        compile_block = self._compile_block
        pc = hart.pc
        retired = self.retired
        start = retired
        end = retired + max_instructions
        try:
            while retired < end:
                ops = blocks_get(pc)
                if ops is None:
                    ops = compile_block(pc)
                block_pc = pc
                try:
                    for op in ops:
                        pc = op()
                except _SlowPath:
                    # CSR / ecall / ebreak: needs exact architectural state.
                    # Sequential blocks make the partial count recoverable
                    # from how far pc advanced.
                    retired += (pc - block_pc) >> 2
                    self.retired = retired
                    hart.pc = pc
                    self.step()
                    retired = self.retired
                    pc = hart.pc
                    if self.stop:
                        break
                    continue
                except _BlockExit as exited:
                    pc = exited.next_pc
                    retired += (pc - block_pc) >> 2
                    continue
                except _Stopped as stopped:
                    pc = stopped.next_pc
                    retired += (pc - block_pc) >> 2
                    break
                except BaseException:
                    retired += (pc - block_pc) >> 2
                    raise
                retired += len(ops)
        finally:
            self.retired = retired
            hart.pc = pc
        return retired - start

    # ------------------------------------------------------------------- step
    def step(self) -> ExecInfo:
        """Execute one instruction and return what it did (timing-model path)."""
        pc = self.hart.pc
        op = self._info_ops.get(pc)
        if op is None:
            self._compile(pc)
            op = self._info_ops[pc]
        info = op()
        self.retired += 1
        return info

    # ------------------------------------------------------------------- CSRs
    def _read_csr(self, address: int) -> int:
        if address in csrdefs.IMPLEMENTED:
            return self.csr_provider(address)
        raise TrapError(f"access to unimplemented CSR {address:#x}")

    # --------------------------------------------------------------- compiler
    def _compile(self, pc: int):
        """Decode the instruction at ``pc`` into its two specialized closures."""
        decoded = self.fetch_decode(pc)
        info = ExecInfo(decoded, pc, pc + 4)
        fast, info_op, kind = self._build(pc, decoded, info)
        self._ops[pc] = fast
        self._info_ops[pc] = info_op
        self._kinds[pc] = kind
        # An op is "direct" when its fast closure already provides everything
        # a timing model needs (no dynamic ExecInfo fields): plain ALU /
        # mul / div ops, fences and unconditional jumps.  Loads/stores
        # (dynamic mem_addr), conditional branches (dynamic branch_taken),
        # RoCC (dynamic busy cycles) and the slow class must go through the
        # info op.
        timing_class = info.timing_class
        direct = (
            kind == _KIND_SEQ and timing_class in (TC_OTHER, TC_MUL, TC_DIV)
        ) or (kind == _KIND_TERM and timing_class in (TC_JUMP, TC_OTHER))
        self._timed[pc] = (fast if direct else info_op, info, direct)
        bounds = self._code_bounds
        if pc < bounds[0]:
            bounds[0] = pc
        if pc + 4 > bounds[1]:
            bounds[1] = pc + 4
        return fast

    #: Upper bound on superblock length; bounds both compile-ahead work and
    #: how far a batch may overshoot its instruction budget.
    _MAX_BLOCK = 512

    def _compile_block(self, pc: int):
        """Thread the straight-line run starting at ``pc`` into one op list."""
        ops = []
        kinds = self._kinds
        table = self._ops
        p = pc
        while len(ops) < self._MAX_BLOCK:
            op = table.get(p)
            if op is None:
                try:
                    op = self._compile(p)
                except (DecodingError, SimulationError) as error:
                    # Block building decodes ahead of execution; a bad word
                    # must only raise if control actually reaches it.
                    if not ops:
                        def op(error=error):
                            raise error
                        ops.append(op)
                    break
            kind = kinds[p]
            if kind == _KIND_SLOW:
                if not ops:
                    ops.append(op)
                break
            ops.append(op)
            if kind == _KIND_TERM:
                break
            p += 4
        self._blocks[pc] = ops
        return ops

    def _build(self, pc: int, decoded, info):  # noqa: C901 - one arm per instruction
        hart = self.hart
        regs = hart.regs
        memory = self.memory
        mnemonic = decoded.mnemonic
        rd = decoded.rd
        rs1 = decoded.rs1
        rs2 = decoded.rs2
        imm = decoded.imm
        next_pc = pc + 4

        def alu_info(fast_op, result_info=info):
            def op():
                fast_op()
                hart.pc = next_pc
                return result_info
            return op

        fast = None

        # --- integer register-register / register-immediate -----------------
        if rd == 0 and mnemonic in _ALU_MNEMONICS:
            # Writes to x0 are discarded; the whole instruction is a no-op.
            def fast():
                return next_pc
        elif mnemonic == "add":
            def fast():
                regs[rd] = (regs[rs1] + regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "addi":
            def fast():
                regs[rd] = (regs[rs1] + imm) & MASK64
                return next_pc
        elif mnemonic == "sub":
            def fast():
                regs[rd] = (regs[rs1] - regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "and":
            def fast():
                regs[rd] = regs[rs1] & regs[rs2]
                return next_pc
        elif mnemonic == "andi":
            masked = imm & MASK64
            def fast():
                regs[rd] = regs[rs1] & masked
                return next_pc
        elif mnemonic == "or":
            def fast():
                regs[rd] = regs[rs1] | regs[rs2]
                return next_pc
        elif mnemonic == "ori":
            masked = imm & MASK64
            def fast():
                regs[rd] = regs[rs1] | masked
                return next_pc
        elif mnemonic == "xor":
            def fast():
                regs[rd] = regs[rs1] ^ regs[rs2]
                return next_pc
        elif mnemonic == "xori":
            masked = imm & MASK64
            def fast():
                regs[rd] = regs[rs1] ^ masked
                return next_pc
        elif mnemonic == "sll":
            def fast():
                regs[rd] = (regs[rs1] << (regs[rs2] & 0x3F)) & MASK64
                return next_pc
        elif mnemonic == "slli":
            def fast():
                regs[rd] = (regs[rs1] << imm) & MASK64
                return next_pc
        elif mnemonic == "srl":
            def fast():
                regs[rd] = regs[rs1] >> (regs[rs2] & 0x3F)
                return next_pc
        elif mnemonic == "srli":
            def fast():
                regs[rd] = regs[rs1] >> imm
                return next_pc
        elif mnemonic == "sra":
            def fast():
                regs[rd] = (((regs[rs1] ^ _SIGN64) - _SIGN64) >> (regs[rs2] & 0x3F)) & MASK64
                return next_pc
        elif mnemonic == "srai":
            def fast():
                regs[rd] = (((regs[rs1] ^ _SIGN64) - _SIGN64) >> imm) & MASK64
                return next_pc
        elif mnemonic == "slt":
            def fast():
                regs[rd] = 1 if ((regs[rs1] ^ _SIGN64) - _SIGN64) < ((regs[rs2] ^ _SIGN64) - _SIGN64) else 0
                return next_pc
        elif mnemonic == "slti":
            def fast():
                regs[rd] = 1 if ((regs[rs1] ^ _SIGN64) - _SIGN64) < imm else 0
                return next_pc
        elif mnemonic == "sltu":
            def fast():
                regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
                return next_pc
        elif mnemonic == "sltiu":
            masked = imm & MASK64
            def fast():
                regs[rd] = 1 if regs[rs1] < masked else 0
                return next_pc
        # --- RV64 word ops ---------------------------------------------------
        elif mnemonic == "addw":
            def fast():
                regs[rd] = _signed32(regs[rs1] + regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "addiw":
            def fast():
                regs[rd] = _signed32(regs[rs1] + imm) & MASK64
                return next_pc
        elif mnemonic == "subw":
            def fast():
                regs[rd] = _signed32(regs[rs1] - regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "sllw":
            def fast():
                regs[rd] = _signed32(regs[rs1] << (regs[rs2] & 0x1F)) & MASK64
                return next_pc
        elif mnemonic == "slliw":
            def fast():
                regs[rd] = _signed32(regs[rs1] << imm) & MASK64
                return next_pc
        elif mnemonic == "srlw":
            def fast():
                regs[rd] = _signed32((regs[rs1] & 0xFFFFFFFF) >> (regs[rs2] & 0x1F)) & MASK64
                return next_pc
        elif mnemonic == "srliw":
            def fast():
                regs[rd] = _signed32((regs[rs1] & 0xFFFFFFFF) >> imm) & MASK64
                return next_pc
        elif mnemonic == "sraw":
            def fast():
                regs[rd] = (_signed32(regs[rs1]) >> (regs[rs2] & 0x1F)) & MASK64
                return next_pc
        elif mnemonic == "sraiw":
            def fast():
                regs[rd] = (_signed32(regs[rs1]) >> imm) & MASK64
                return next_pc
        # --- M extension ------------------------------------------------------
        elif mnemonic == "mul":
            def fast():
                regs[rd] = (regs[rs1] * regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "mulh":
            def fast():
                regs[rd] = ((((regs[rs1] ^ _SIGN64) - _SIGN64) * ((regs[rs2] ^ _SIGN64) - _SIGN64)) >> 64) & MASK64
                return next_pc
        elif mnemonic == "mulhu":
            def fast():
                regs[rd] = (regs[rs1] * regs[rs2]) >> 64
                return next_pc
        elif mnemonic == "mulhsu":
            def fast():
                regs[rd] = ((((regs[rs1] ^ _SIGN64) - _SIGN64) * regs[rs2]) >> 64) & MASK64
                return next_pc
        elif mnemonic == "mulw":
            def fast():
                regs[rd] = _signed32(regs[rs1] * regs[rs2]) & MASK64
                return next_pc
        elif mnemonic == "div":
            def fast():
                regs[rd] = _div64(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "divu":
            def fast():
                b = regs[rs2]
                regs[rd] = MASK64 if b == 0 else regs[rs1] // b
                return next_pc
        elif mnemonic == "rem":
            def fast():
                regs[rd] = _rem64(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "remu":
            def fast():
                b = regs[rs2]
                regs[rd] = regs[rs1] if b == 0 else regs[rs1] % b
                return next_pc
        elif mnemonic == "divw":
            def fast():
                regs[rd] = _div32(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "divuw":
            def fast():
                b32 = regs[rs2] & 0xFFFFFFFF
                regs[rd] = MASK64 if b32 == 0 else _signed32((regs[rs1] & 0xFFFFFFFF) // b32) & MASK64
                return next_pc
        elif mnemonic == "remw":
            def fast():
                regs[rd] = _rem32(regs[rs1], regs[rs2])
                return next_pc
        elif mnemonic == "remuw":
            def fast():
                a32 = regs[rs1] & 0xFFFFFFFF
                b32 = regs[rs2] & 0xFFFFFFFF
                regs[rd] = _signed32(a32) & MASK64 if b32 == 0 else _signed32(a32 % b32) & MASK64
                return next_pc
        # --- upper immediates -------------------------------------------------
        elif mnemonic == "lui":
            constant = imm & MASK64
            def fast():
                regs[rd] = constant
                return next_pc
        elif mnemonic == "auipc":
            constant = (pc + imm) & MASK64
            def fast():
                regs[rd] = constant
                return next_pc

        if fast is not None and mnemonic in _ALU_MNEMONICS:
            if mnemonic in _MUL_MNEMONICS:
                info.timing_class = TC_MUL
            elif mnemonic in _DIV_MNEMONICS:
                info.timing_class = TC_DIV
            return fast, alu_info(fast), _KIND_SEQ

        # --- loads ------------------------------------------------------------
        if mnemonic in _LOAD_SIZES:
            size = _LOAD_SIZES[mnemonic]
            read = memory.read
            info.mem_size = size
            info.timing_class = TC_MEM
            if mnemonic == "ld":
                if rd:
                    def fast():
                        regs[rd] = read((regs[rs1] + imm) & MASK64, 8)
                        return next_pc
                else:
                    def fast():
                        read((regs[rs1] + imm) & MASK64, 8)
                        return next_pc
                fix = None
            elif mnemonic == "lw":
                def fast():
                    value = read((regs[rs1] + imm) & MASK64, 4)
                    if rd:
                        regs[rd] = ((value ^ 0x80000000) - 0x80000000) & MASK64
                    return next_pc
                fix = lambda value: ((value ^ 0x80000000) - 0x80000000) & MASK64  # noqa: E731
            elif mnemonic == "lh":
                def fast():
                    value = read((regs[rs1] + imm) & MASK64, 2)
                    if rd:
                        regs[rd] = ((value ^ 0x8000) - 0x8000) & MASK64
                    return next_pc
                fix = lambda value: ((value ^ 0x8000) - 0x8000) & MASK64  # noqa: E731
            elif mnemonic == "lb":
                def fast():
                    value = read((regs[rs1] + imm) & MASK64, 1)
                    if rd:
                        regs[rd] = ((value ^ 0x80) - 0x80) & MASK64
                    return next_pc
                fix = lambda value: ((value ^ 0x80) - 0x80) & MASK64  # noqa: E731
            else:  # lwu / lhu / lbu
                if rd:
                    def fast():
                        regs[rd] = read((regs[rs1] + imm) & MASK64, size)
                        return next_pc
                else:
                    def fast():
                        read((regs[rs1] + imm) & MASK64, size)
                        return next_pc
                fix = None

            def info_op():
                address = (regs[rs1] + imm) & MASK64
                value = read(address, size)
                info.mem_addr = address
                if rd:
                    regs[rd] = fix(value) if fix is not None else value
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        # --- stores -----------------------------------------------------------
        if mnemonic in _STORE_SIZES:
            size = _STORE_SIZES[mnemonic]
            write = memory.write
            bounds = self._code_bounds
            executor = self
            info.mem_size = size
            info.mem_is_store = True
            info.timing_class = TC_MEM

            def fast():
                address = (regs[rs1] + imm) & MASK64
                write(address, size, regs[rs2])
                # Overlap test against [lo, hi): the store's byte range is
                # [address, address + size), so a store that merely straddles
                # the start of the compiled region must invalidate too.
                if address < bounds[1] and address + size > bounds[0]:
                    executor._invalidate(address, size)
                    raise _BlockExit(next_pc)
                if executor.stop:
                    raise _Stopped(next_pc)
                return next_pc

            def info_op():
                address = (regs[rs1] + imm) & MASK64
                write(address, size, regs[rs2])
                if address < bounds[1] and address + size > bounds[0]:
                    executor._invalidate(address, size)
                info.mem_addr = address
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        # --- control transfer -------------------------------------------------
        if mnemonic == "jal":
            target = (pc + imm) & MASK64
            info.next_pc = target
            info.branch_taken = True
            info.timing_class = TC_JUMP
            if rd:
                def fast():
                    regs[rd] = next_pc
                    return target
            else:
                def fast():
                    return target

            def info_op():
                if rd:
                    regs[rd] = next_pc
                hart.pc = target
                return info
            return fast, info_op, _KIND_TERM

        if mnemonic == "jalr":
            target_mask = MASK64 & ~1
            info.branch_taken = True
            info.timing_class = TC_JUMP
            if rd:
                def fast():
                    target = (regs[rs1] + imm) & target_mask
                    regs[rd] = next_pc
                    return target
            else:
                def fast():
                    return (regs[rs1] + imm) & target_mask

            def info_op():
                target = (regs[rs1] + imm) & target_mask
                if rd:
                    regs[rd] = next_pc
                info.next_pc = target
                hart.pc = target
                return info
            return fast, info_op, _KIND_TERM

        if mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken_pc = (pc + imm) & MASK64
            info.timing_class = TC_BRANCH
            if mnemonic == "beq":
                def fast():
                    return taken_pc if regs[rs1] == regs[rs2] else next_pc
                def cond():
                    return regs[rs1] == regs[rs2]
            elif mnemonic == "bne":
                def fast():
                    return taken_pc if regs[rs1] != regs[rs2] else next_pc
                def cond():
                    return regs[rs1] != regs[rs2]
            elif mnemonic == "blt":
                def fast():
                    return taken_pc if ((regs[rs1] ^ _SIGN64) - _SIGN64) < ((regs[rs2] ^ _SIGN64) - _SIGN64) else next_pc
                def cond():
                    return ((regs[rs1] ^ _SIGN64) - _SIGN64) < ((regs[rs2] ^ _SIGN64) - _SIGN64)
            elif mnemonic == "bge":
                def fast():
                    return taken_pc if ((regs[rs1] ^ _SIGN64) - _SIGN64) >= ((regs[rs2] ^ _SIGN64) - _SIGN64) else next_pc
                def cond():
                    return ((regs[rs1] ^ _SIGN64) - _SIGN64) >= ((regs[rs2] ^ _SIGN64) - _SIGN64)
            elif mnemonic == "bltu":
                def fast():
                    return taken_pc if regs[rs1] < regs[rs2] else next_pc
                def cond():
                    return regs[rs1] < regs[rs2]
            else:  # bgeu
                def fast():
                    return taken_pc if regs[rs1] >= regs[rs2] else next_pc
                def cond():
                    return regs[rs1] >= regs[rs2]

            def info_op():
                if cond():
                    info.branch_taken = True
                    info.next_pc = taken_pc
                    hart.pc = taken_pc
                else:
                    info.branch_taken = False
                    info.next_pc = next_pc
                    hart.pc = next_pc
                return info
            return fast, info_op, _KIND_TERM

        # --- system -----------------------------------------------------------
        if mnemonic in ("csrrs", "csrrw", "csrrc", "csrrsi", "csrrwi", "csrrci"):
            executor = self
            csr_address = decoded.csr

            def info_op():
                value = executor._read_csr(csr_address)
                if rd:
                    regs[rd] = value & MASK64
                hart.pc = next_pc
                return info
            return _raise_slow, info_op, _KIND_SLOW

        if mnemonic == "ecall":
            executor = self

            def info_op():
                # Bare-metal convention: a7 holds the syscall number; 93 is
                # exit with the code in a0.  Anything else is "unhandled".
                if regs[17] == 93:
                    executor.exit_requested = True
                    executor.exit_code = regs[10] & 0xFF
                    executor.stop = True
                else:
                    raise TrapError(f"unhandled ecall (a7={regs[17]}) at pc={pc:#x}")
                hart.pc = next_pc
                return info
            return _raise_slow, info_op, _KIND_SLOW

        if mnemonic == "ebreak":
            def info_op():
                raise TrapError(f"ebreak at pc={pc:#x}")
            return _raise_slow, info_op, _KIND_SLOW

        if mnemonic == "fence":
            def fast():
                return next_pc

            def info_op():
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        if mnemonic == "fence.i":
            executor = self

            def fast():
                executor.flush()
                return next_pc

            def info_op():
                executor.flush()
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_TERM

        # --- RoCC custom instructions ------------------------------------------
        if mnemonic == "rocc":
            rocc = self.rocc
            if rocc is None:
                def fast():
                    raise SimulationError(
                        f"RoCC instruction at pc={pc:#x} but no accelerator attached"
                    )
                return fast, fast, _KIND_SEQ
            execute = rocc.execute
            funct7 = decoded.funct7
            xd = bool(decoded.xd)
            xs1 = bool(decoded.xs1)
            xs2 = bool(decoded.xs2)
            info.is_rocc = True
            info.rocc_funct7 = funct7
            info.timing_class = TC_ROCC

            def fast():
                response = execute(
                    funct7=funct7, rd=rd, rs1=rs1, rs2=rs2,
                    rs1_value=regs[rs1], rs2_value=regs[rs2],
                    xd=xd, xs1=xs1, xs2=xs2, memory=memory,
                )
                if response.has_response and rd:
                    regs[rd] = response.value & MASK64
                return next_pc

            def info_op():
                response = execute(
                    funct7=funct7, rd=rd, rs1=rs1, rs2=rs2,
                    rs1_value=regs[rs1], rs2_value=regs[rs2],
                    xd=xd, xs1=xs1, xs2=xs2, memory=memory,
                )
                info.rocc_busy_cycles = response.busy_cycles
                info.rocc_has_response = response.has_response
                if response.has_response and rd:
                    regs[rd] = response.value & MASK64
                hart.pc = next_pc
                return info
            return fast, info_op, _KIND_SEQ

        raise SimulationError(  # pragma: no cover - decoder and builder in sync
            f"unimplemented instruction {mnemonic!r} at {pc:#x}"
        )


#: Register-writing instructions whose only effect is ``rd = f(operands)``;
#: with ``rd == x0`` they compile to a pure no-op.
_ALU_MNEMONICS = frozenset({
    "add", "addi", "sub", "and", "andi", "or", "ori", "xor", "xori",
    "sll", "slli", "srl", "srli", "sra", "srai",
    "slt", "slti", "sltu", "sltiu",
    "addw", "addiw", "subw", "sllw", "slliw", "srlw", "srliw", "sraw", "sraiw",
    "mul", "mulh", "mulhu", "mulhsu", "mulw",
    "div", "divu", "rem", "remu", "divw", "divuw", "remw", "remuw",
    "lui", "auipc",
})
