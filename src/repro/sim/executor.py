"""Functional execution of decoded RV64 instructions.

One :class:`Executor` instance drives one hart against one memory.  The same
executor is reused by every simulator in the repository:

* :class:`repro.sim.spike.SpikeSimulator` — functional, one instruction per
  step, no timing;
* :class:`repro.rocket.core.RocketEmulator` — wraps each step with the
  pipeline/cache timing model;
* :class:`repro.gem5.atomic_cpu.AtomicSimpleCPU` — wraps each step with the
  1-CPI atomic timing model.

The executor reports what happened in each step through :class:`ExecInfo`
(memory address touched, branch outcome, RoCC activity) so the timing layers
never need to re-decode or re-execute anything.
"""

from __future__ import annotations

from repro.errors import SimulationError, TrapError
from repro.isa import csr as csrdefs
from repro.isa.decoder import decode_instruction
from repro.isa.encoding import to_signed64, to_unsigned64

MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN64 = 1 << 63


def _signed(value: int) -> int:
    return (value ^ _SIGN64) - _SIGN64


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return (value ^ 0x80000000) - 0x80000000


class ExecInfo:
    """What a single instruction did (consumed by the timing models)."""

    __slots__ = (
        "decoded",
        "pc",
        "next_pc",
        "branch_taken",
        "mem_addr",
        "mem_size",
        "mem_is_store",
        "is_rocc",
        "rocc_busy_cycles",
        "rocc_has_response",
        "rocc_funct7",
    )

    def __init__(self, decoded, pc, next_pc):
        self.decoded = decoded
        self.pc = pc
        self.next_pc = next_pc
        self.branch_taken = False
        self.mem_addr = None
        self.mem_size = 0
        self.mem_is_store = False
        self.is_rocc = False
        self.rocc_busy_cycles = 0
        self.rocc_has_response = False
        self.rocc_funct7 = 0


class Executor:
    """Fetch/decode/execute loop body with a per-word decode cache."""

    def __init__(self, hart, memory, csr_provider=None, rocc=None):
        self.hart = hart
        self.memory = memory
        self.csr_provider = csr_provider if csr_provider is not None else (lambda addr: 0)
        self.rocc = rocc
        self.exit_requested = False
        self.exit_code = 0
        self._decode_cache = {}

    # ------------------------------------------------------------------ fetch
    def fetch_decode(self, pc: int):
        word = self.memory.read(pc, 4)
        decoded = self._decode_cache.get(word)
        if decoded is None:
            decoded = decode_instruction(word)
            self._decode_cache[word] = decoded
        return decoded

    # ------------------------------------------------------------------- step
    def step(self) -> ExecInfo:
        """Execute one instruction and return what it did."""
        hart = self.hart
        memory = self.memory
        regs = hart.regs
        pc = hart.pc
        decoded = self.fetch_decode(pc)
        mnemonic = decoded.mnemonic
        rd = decoded.rd
        rs1_value = regs[decoded.rs1]
        rs2_value = regs[decoded.rs2]
        imm = decoded.imm
        next_pc = pc + 4
        info = ExecInfo(decoded, pc, next_pc)

        # --- integer register-register -------------------------------------
        if mnemonic == "add":
            result = (rs1_value + rs2_value) & MASK64
        elif mnemonic == "addi":
            result = (rs1_value + imm) & MASK64
        elif mnemonic == "sub":
            result = (rs1_value - rs2_value) & MASK64
        elif mnemonic == "and":
            result = rs1_value & rs2_value
        elif mnemonic == "andi":
            result = rs1_value & (imm & MASK64)
        elif mnemonic == "or":
            result = rs1_value | rs2_value
        elif mnemonic == "ori":
            result = rs1_value | (imm & MASK64)
        elif mnemonic == "xor":
            result = rs1_value ^ rs2_value
        elif mnemonic == "xori":
            result = rs1_value ^ (imm & MASK64)
        elif mnemonic == "sll":
            result = (rs1_value << (rs2_value & 0x3F)) & MASK64
        elif mnemonic == "slli":
            result = (rs1_value << imm) & MASK64
        elif mnemonic == "srl":
            result = rs1_value >> (rs2_value & 0x3F)
        elif mnemonic == "srli":
            result = rs1_value >> imm
        elif mnemonic == "sra":
            result = (_signed(rs1_value) >> (rs2_value & 0x3F)) & MASK64
        elif mnemonic == "srai":
            result = (_signed(rs1_value) >> imm) & MASK64
        elif mnemonic == "slt":
            result = 1 if _signed(rs1_value) < _signed(rs2_value) else 0
        elif mnemonic == "slti":
            result = 1 if _signed(rs1_value) < imm else 0
        elif mnemonic == "sltu":
            result = 1 if rs1_value < rs2_value else 0
        elif mnemonic == "sltiu":
            result = 1 if rs1_value < (imm & MASK64) else 0
        # --- RV64 word ops ----------------------------------------------------
        elif mnemonic == "addw":
            result = _signed32(rs1_value + rs2_value) & MASK64
        elif mnemonic == "addiw":
            result = _signed32(rs1_value + imm) & MASK64
        elif mnemonic == "subw":
            result = _signed32(rs1_value - rs2_value) & MASK64
        elif mnemonic == "sllw":
            result = _signed32(rs1_value << (rs2_value & 0x1F)) & MASK64
        elif mnemonic == "slliw":
            result = _signed32(rs1_value << imm) & MASK64
        elif mnemonic == "srlw":
            result = _signed32((rs1_value & 0xFFFFFFFF) >> (rs2_value & 0x1F)) & MASK64
        elif mnemonic == "srliw":
            result = _signed32((rs1_value & 0xFFFFFFFF) >> imm) & MASK64
        elif mnemonic == "sraw":
            result = (_signed32(rs1_value) >> (rs2_value & 0x1F)) & MASK64
        elif mnemonic == "sraiw":
            result = (_signed32(rs1_value) >> imm) & MASK64
        # --- M extension ------------------------------------------------------
        elif mnemonic == "mul":
            result = (rs1_value * rs2_value) & MASK64
        elif mnemonic == "mulh":
            result = ((_signed(rs1_value) * _signed(rs2_value)) >> 64) & MASK64
        elif mnemonic == "mulhu":
            result = (rs1_value * rs2_value) >> 64
        elif mnemonic == "mulhsu":
            result = ((_signed(rs1_value) * rs2_value) >> 64) & MASK64
        elif mnemonic == "mulw":
            result = _signed32(rs1_value * rs2_value) & MASK64
        elif mnemonic == "div":
            result = self._div_signed(rs1_value, rs2_value, 64)
        elif mnemonic == "divu":
            result = MASK64 if rs2_value == 0 else (rs1_value // rs2_value) & MASK64
        elif mnemonic == "rem":
            result = self._rem_signed(rs1_value, rs2_value, 64)
        elif mnemonic == "remu":
            result = rs1_value if rs2_value == 0 else (rs1_value % rs2_value) & MASK64
        elif mnemonic == "divw":
            result = self._div_signed(rs1_value & 0xFFFFFFFF, rs2_value & 0xFFFFFFFF, 32)
        elif mnemonic == "divuw":
            a32 = rs1_value & 0xFFFFFFFF
            b32 = rs2_value & 0xFFFFFFFF
            result = MASK64 if b32 == 0 else _signed32(a32 // b32) & MASK64
        elif mnemonic == "remw":
            result = self._rem_signed(rs1_value & 0xFFFFFFFF, rs2_value & 0xFFFFFFFF, 32)
        elif mnemonic == "remuw":
            a32 = rs1_value & 0xFFFFFFFF
            b32 = rs2_value & 0xFFFFFFFF
            result = _signed32(a32) & MASK64 if b32 == 0 else _signed32(a32 % b32) & MASK64
        # --- upper immediates -------------------------------------------------
        elif mnemonic == "lui":
            result = imm & MASK64
        elif mnemonic == "auipc":
            result = (pc + imm) & MASK64
        # --- loads ------------------------------------------------------------
        elif mnemonic in ("ld", "lw", "lwu", "lh", "lhu", "lb", "lbu"):
            address = (rs1_value + imm) & MASK64
            size = {"ld": 8, "lw": 4, "lwu": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1}[mnemonic]
            raw = memory.read(address, size)
            if mnemonic == "lw":
                raw = _signed32(raw) & MASK64
            elif mnemonic == "lh":
                raw = ((raw ^ 0x8000) - 0x8000) & MASK64
            elif mnemonic == "lb":
                raw = ((raw ^ 0x80) - 0x80) & MASK64
            info.mem_addr = address
            info.mem_size = size
            if rd:
                regs[rd] = raw
            hart.pc = next_pc
            return info
        # --- stores -----------------------------------------------------------
        elif mnemonic in ("sd", "sw", "sh", "sb"):
            address = (rs1_value + imm) & MASK64
            size = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}[mnemonic]
            memory.write(address, size, rs2_value)
            info.mem_addr = address
            info.mem_size = size
            info.mem_is_store = True
            hart.pc = next_pc
            return info
        # --- control transfer -------------------------------------------------
        elif mnemonic == "jal":
            if rd:
                regs[rd] = next_pc
            info.next_pc = (pc + imm) & MASK64
            info.branch_taken = True
            hart.pc = info.next_pc
            return info
        elif mnemonic == "jalr":
            target = (rs1_value + imm) & MASK64 & ~1
            if rd:
                regs[rd] = next_pc
            info.next_pc = target
            info.branch_taken = True
            hart.pc = target
            return info
        elif mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = self._branch_taken(mnemonic, rs1_value, rs2_value)
            info.branch_taken = taken
            if taken:
                info.next_pc = (pc + imm) & MASK64
            hart.pc = info.next_pc
            return info
        # --- system -----------------------------------------------------------
        elif mnemonic in ("csrrs", "csrrw", "csrrc", "csrrsi", "csrrwi", "csrrci"):
            value = self._read_csr(decoded.csr)
            if rd:
                regs[rd] = value & MASK64
            hart.pc = next_pc
            return info
        elif mnemonic == "ecall":
            # Bare-metal convention: a7 holds the syscall number; 93 is exit
            # with the code in a0.  Anything else terminates as "unhandled".
            if regs[17] == 93:
                self.exit_requested = True
                self.exit_code = regs[10] & 0xFF
            else:
                raise TrapError(f"unhandled ecall (a7={regs[17]}) at pc={pc:#x}")
            hart.pc = next_pc
            return info
        elif mnemonic == "ebreak":
            raise TrapError(f"ebreak at pc={pc:#x}")
        elif mnemonic in ("fence", "fence.i"):
            hart.pc = next_pc
            return info
        # --- RoCC custom instructions ------------------------------------------
        elif mnemonic == "rocc":
            return self._execute_rocc(decoded, info, rs1_value, rs2_value)
        else:  # pragma: no cover - decoder and executor tables are in sync
            raise SimulationError(f"unimplemented instruction {mnemonic!r} at {pc:#x}")

        # Common tail for plain register-writing instructions.
        if rd:
            regs[rd] = result
        hart.pc = next_pc
        return info

    # ------------------------------------------------------------------- RoCC
    def _execute_rocc(self, decoded, info, rs1_value, rs2_value) -> ExecInfo:
        if self.rocc is None:
            raise SimulationError(
                f"RoCC instruction at pc={info.pc:#x} but no accelerator attached"
            )
        response = self.rocc.execute(
            funct7=decoded.funct7,
            rd=decoded.rd,
            rs1=decoded.rs1,
            rs2=decoded.rs2,
            rs1_value=rs1_value,
            rs2_value=rs2_value,
            xd=bool(decoded.xd),
            xs1=bool(decoded.xs1),
            xs2=bool(decoded.xs2),
            memory=self.memory,
        )
        info.is_rocc = True
        info.rocc_busy_cycles = response.busy_cycles
        info.rocc_has_response = response.has_response
        info.rocc_funct7 = decoded.funct7
        if response.has_response and decoded.rd:
            self.hart.regs[decoded.rd] = response.value & MASK64
        self.hart.pc = info.next_pc
        return info

    # ------------------------------------------------------------------- CSRs
    def _read_csr(self, address: int) -> int:
        if address in csrdefs.IMPLEMENTED:
            return self.csr_provider(address)
        raise TrapError(f"access to unimplemented CSR {address:#x}")

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _branch_taken(mnemonic: str, a: int, b: int) -> bool:
        if mnemonic == "beq":
            return a == b
        if mnemonic == "bne":
            return a != b
        if mnemonic == "blt":
            return _signed(a) < _signed(b)
        if mnemonic == "bge":
            return _signed(a) >= _signed(b)
        if mnemonic == "bltu":
            return a < b
        return a >= b  # bgeu

    @staticmethod
    def _div_signed(a: int, b: int, width: int) -> int:
        if width == 32:
            a_signed, b_signed = _signed32(a), _signed32(b)
            min_value = -(1 << 31)
        else:
            a_signed, b_signed = _signed(a), _signed(b)
            min_value = -(1 << 63)
        if b_signed == 0:
            return MASK64
        if a_signed == min_value and b_signed == -1:
            return to_unsigned64(to_signed64(a_signed & MASK64)) if width == 64 else (
                _signed32(min_value) & MASK64
            )
        quotient = int(a_signed / b_signed)  # C-style truncation toward zero
        if width == 32:
            return _signed32(quotient) & MASK64
        return quotient & MASK64

    @staticmethod
    def _rem_signed(a: int, b: int, width: int) -> int:
        if width == 32:
            a_signed, b_signed = _signed32(a), _signed32(b)
            min_value = -(1 << 31)
        else:
            a_signed, b_signed = _signed(a), _signed(b)
            min_value = -(1 << 63)
        if b_signed == 0:
            return (a_signed & MASK64) if width == 64 else _signed32(a_signed) & MASK64
        if a_signed == min_value and b_signed == -1:
            return 0
        remainder = a_signed - b_signed * int(a_signed / b_signed)
        if width == 32:
            return _signed32(remainder) & MASK64
        return remainder & MASK64
