"""SPIKE-like functional ISA simulator.

Used exactly as in the paper's flow (Fig. 2): the RISC-V binary is first run
here for *functional verification* — the results written to memory are checked
against the golden decimal library — before the cycle-accurate Rocket model is
used for performance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.isa import csr as csrdefs
from repro.sim.executor import Executor
from repro.sim.hart import DEFAULT_STACK_TOP, Hart
from repro.sim.htif import Htif
from repro.sim.memory import SparseMemory

#: Safety net against runaway programs (misassembled loops and the like).
DEFAULT_MAX_INSTRUCTIONS = 50_000_000


@dataclass
class SimulationResult:
    """Outcome of one functional simulation run."""

    exit_code: int
    instructions_retired: int
    console_output: str
    symbols: dict = field(default_factory=dict)
    #: the live memory, so callers can read back result buffers
    memory: SparseMemory = None
    hart: Hart = None

    def read_dword(self, symbol_or_address, index: int = 0) -> int:
        """Read a 64-bit result; ``symbol_or_address`` may be a symbol name."""
        address = self._resolve(symbol_or_address)
        return self.memory.read_dword(address + 8 * index)

    def read_dwords(self, symbol_or_address, count: int) -> list:
        address = self._resolve(symbol_or_address)
        return [self.memory.read_dword(address + 8 * i) for i in range(count)]

    def _resolve(self, symbol_or_address) -> int:
        if isinstance(symbol_or_address, str):
            try:
                return self.symbols[symbol_or_address]
            except KeyError:
                raise SimulationError(
                    f"unknown symbol {symbol_or_address!r}"
                ) from None
        return symbol_or_address


class SpikeSimulator:
    """Functional RV64 simulator with HTIF exit/console support."""

    def __init__(
        self,
        image,
        accelerator=None,
        stack_top: int = DEFAULT_STACK_TOP,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> None:
        self.image = image
        self.memory = SparseMemory()
        self.memory.load_image(image)
        self.htif = Htif()
        self.htif.attach(self.memory)
        self.hart = Hart(pc=image.entry, stack_pointer=stack_top)
        self.stack_top = stack_top
        self.max_instructions = max_instructions
        self.instructions_retired = 0
        self.accelerator = accelerator
        rocc_adapter = accelerator.rocc_adapter() if accelerator is not None else None
        self.executor = Executor(
            self.hart,
            self.memory,
            csr_provider=self._read_counter,
            rocc=rocc_adapter,
            # _read_counter returns the retire count for every one of these,
            # so tier-2 may inline rdcycle/rdinstret brackets (see Executor).
            counter_csrs=(
                csrdefs.CYCLE, csrdefs.MCYCLE, csrdefs.TIME,
                csrdefs.INSTRET, csrdefs.MINSTRET,
            ),
        )
        # Stop a batched Executor.run on the instruction that writes tohost.
        self.htif.on_exit = self.executor.request_halt

    # ---------------------------------------------------------------- counters
    def _read_counter(self, address: int) -> int:
        if address in (csrdefs.CYCLE, csrdefs.MCYCLE, csrdefs.TIME):
            # The functional model has no timing: one cycle per instruction.
            return self.executor.retired
        if address in (csrdefs.INSTRET, csrdefs.MINSTRET):
            return self.executor.retired
        return 0

    # ------------------------------------------------------------------- reset
    def reset(self) -> None:
        """Rewind architectural state for another run, keeping the engine warm.

        Everything the executor *learned* survives: decoded instructions,
        tier-1 superblocks, tier-2 compiled code, promotion heat and the
        speculation bans accumulated by deopts.  Everything architectural is
        rewound to construction state: registers (mutated in place — the
        compiled code binds the register list by object identity), pc, HTIF
        exit/console state, the executor's halt flags and retire counter,
        and the accelerator's architectural state.

        Memory contents are *not* touched; callers running new operand
        vectors must rewrite the operand region and zero the result buffers
        first (see :class:`repro.sim.batch.BatchRunner`, which owns that
        protocol).
        """
        hart = self.hart
        regs = hart.regs
        regs[:] = [0] * len(regs)
        regs[2] = self.stack_top
        hart.pc = self.image.entry
        self.htif.reset()
        executor = self.executor
        executor.stop = False
        executor.exit_requested = False
        executor.exit_code = 0
        executor.retired = 0
        self.instructions_retired = 0
        if self.accelerator is not None:
            self.accelerator.reset()

    # --------------------------------------------------------------------- run
    def run(self) -> SimulationResult:
        """Run until the program exits (HTIF or exit ecall)."""
        executor = self.executor
        htif = self.htif
        limit = self.max_instructions
        while not htif.exited and not executor.exit_requested:
            remaining = limit - executor.retired
            if remaining <= 0:
                raise SimulationError(
                    f"instruction limit exceeded ({limit}); "
                    f"pc={self.hart.pc:#x} — runaway program?"
                )
            executor.run(remaining)
        self.instructions_retired = executor.retired
        exit_code = htif.exit_code if htif.exited else executor.exit_code
        return SimulationResult(
            exit_code=exit_code,
            instructions_retired=self.instructions_retired,
            console_output=htif.console_output,
            symbols=dict(self.image.symbols),
            memory=self.memory,
            hart=self.hart,
        )


def run_image(image, accelerator=None, **kwargs) -> SimulationResult:
    """Convenience one-shot functional run of a linked image."""
    return SpikeSimulator(image, accelerator=accelerator, **kwargs).run()
