"""Functional simulation layer (the SPIKE ISA simulator's role in Fig. 2).

Contains the sparse memory model, the architectural hart state, the
threaded-code instruction executor shared with the timing models, the
HTIF-style host interface and the :class:`~repro.sim.spike.SpikeSimulator`
front end used for functional verification of RISC-V binaries before
cycle-accurate emulation.  See ``docs/simulator.md`` for the execution-engine
architecture (decode-once closures, opt-in ExecInfo, superblock dispatch).
"""

from repro.sim.memory import SparseMemory
from repro.sim.hart import Hart
from repro.sim.htif import Htif
from repro.sim.executor import (
    ExecInfo,
    Executor,
    TC_BRANCH,
    TC_DIV,
    TC_JUMP,
    TC_MEM,
    TC_MUL,
    TC_OTHER,
    TC_ROCC,
)
from repro.sim.spike import SimulationResult, SpikeSimulator
from repro.sim.batch import BatchRunner

__all__ = [
    "SparseMemory",
    "Hart",
    "Htif",
    "BatchRunner",
    "ExecInfo",
    "Executor",
    "SimulationResult",
    "SpikeSimulator",
    "TC_OTHER",
    "TC_MEM",
    "TC_MUL",
    "TC_DIV",
    "TC_ROCC",
    "TC_JUMP",
    "TC_BRANCH",
]
