"""Architectural state of a single RV64 hart (hardware thread)."""

from __future__ import annotations

from repro.errors import SimulationError

#: Default stack top.  The linker places code and data far below this.
DEFAULT_STACK_TOP = 0x3000_0000


class Hart:
    """Integer register file + program counter.

    Counters (cycle/instret) live in the simulator driving the hart, because
    their values differ between the functional and timing models.
    """

    __slots__ = ("regs", "pc")

    def __init__(self, pc: int = 0, stack_pointer: int = DEFAULT_STACK_TOP) -> None:
        self.regs = [0] * 32
        self.pc = pc
        self.regs[2] = stack_pointer  # sp

    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        """Write a register; x0 stays hard-wired to zero."""
        if index:
            self.regs[index] = value & 0xFFFFFFFFFFFFFFFF

    def dump(self) -> str:
        """Readable register dump for debugging failed kernels."""
        from repro.isa.registers import register_abi_name

        lines = [f"pc = {self.pc:#018x}"]
        for index in range(32):
            lines.append(
                f"x{index:<2d} ({register_abi_name(index):>4s}) = {self.regs[index]:#018x}"
            )
        return "\n".join(lines)

    def require_alignment(self, address: int, size: int) -> None:
        """Raise when a naturally aligned access is required but violated."""
        if address % size:
            raise SimulationError(
                f"misaligned {size}-byte access at {address:#x} (pc={self.pc:#x})"
            )
