"""Host-target interface (HTIF) in the style of Spike / the Rocket emulator.

The bare-metal test programs terminate and print by storing to a magic
``tohost`` address:

* an odd value terminates the simulation with exit code ``value >> 1``
  (so ``1`` means "exit 0", mirroring the real HTIF convention);
* an even value prints character ``value >> 8`` when the low byte is 0x02
  (a tiny console protocol sufficient for the test programs).
"""

from __future__ import annotations

from repro.asm.program import TOHOST_ADDRESS


class Htif:
    """Collects exit status and console output from the simulated program."""

    def __init__(self, tohost_address: int = TOHOST_ADDRESS) -> None:
        self.tohost_address = tohost_address
        self.exited = False
        self.exit_code = 0
        self.console = []
        #: Optional callback fired on exit; simulators running the executor in
        #: batched mode wire this to ``Executor.request_halt`` so the batch
        #: stops on the exact instruction that wrote ``tohost``.
        self.on_exit = None

    def attach(self, memory) -> None:
        """Register the ``tohost`` write hook on a :class:`SparseMemory`."""
        memory.add_write_hook(self.tohost_address, self._on_tohost_write)

    def reset(self) -> None:
        """Clear exit/console state for another run (hooks stay registered)."""
        self.exited = False
        self.exit_code = 0
        self.console.clear()

    def _on_tohost_write(self, value: int, size: int) -> None:
        if value & 1:
            self.exited = True
            self.exit_code = value >> 1
            if self.on_exit is not None:
                self.on_exit()
        elif value & 0xFF == 0x02:
            self.console.append(chr((value >> 8) & 0xFF))

    @property
    def console_output(self) -> str:
        return "".join(self.console)
