"""RoCC custom instruction encoding (paper Fig. 3 and Tables II/III).

A RoCC instruction is an R-type word on one of the ``custom-0`` ..
``custom-3`` opcodes.  The ``funct7`` field selects the accelerator function;
three flag bits ``xd``, ``xs1`` and ``xs2`` say whether the Rocket core's
integer registers are used for the destination / source operands (and hence
whether the core must synchronise with the accelerator):

======  ===========================================================
field   meaning
======  ===========================================================
funct7  accelerator function selector (Table II)
rs1/rs2 source register numbers (core registers when xs1/xs2 = 1,
        otherwise accelerator register-file addresses)
rd      destination register number (core register when xd = 1)
xd      1 -> the core waits for a response written to ``rd``
xs1     1 -> ``rs1`` value is transferred with the command
xs2     1 -> ``rs2`` value is transferred with the command
======  ===========================================================

Note on Table III of the paper: the printed opcode column reads ``0010111``
which collides with the standard ``AUIPC`` opcode; the actual Rocket RoCC
opcodes are ``custom-0`` = ``0001011`` (0x0B) .. ``custom-3`` = ``1111011``
(0x7B).  We use the architecturally correct custom opcodes and record the
discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.isa.encoding import bits
from repro.isa.instructions import CUSTOM_OPCODE_LIST

#: custom index -> major opcode
CUSTOM_OPCODES = {i: op for i, op in enumerate(CUSTOM_OPCODE_LIST)}
#: major opcode -> custom index
OPCODE_TO_CUSTOM = {op: i for i, op in CUSTOM_OPCODES.items()}


class DecimalFunct:
    """``funct7`` values of the decimal accelerator instructions (Table II)."""

    WR = 0b0000000        # write a value to an accelerator register
    RD = 0b0000001        # read a value from an accelerator register
    LD = 0b0000010        # load a value from memory into the accelerator
    ACCUM = 0b0000011     # accumulate a binary value into an accel register
    DEC_ADD = 0b0000100   # BCD addition of two operands
    CLR_ALL = 0b0000101   # clear the whole accelerator register set
    DEC_CNV = 0b0000110   # convert a binary number to BCD
    DEC_MUL = 0b0000111   # multiply two BCD numbers
    DEC_ACCUM = 0b0001000  # accumulate BCD values held in internal registers
    DEC_ADDSUB = 0b0001001  # BCD subtraction (nines-complement add, borrow out)
    DEC_FMA_ACC = 0b0001010  # add a shifted register into the wide accumulator
    DEC_ADDC = 0b0001011   # chunked BCD add, carry chained through status
    DEC_SUBB = 0b0001100   # chunked BCD subtract, borrow chained through status

    #: mnemonic -> funct7 (used by the assembler and the Table II/III bench)
    BY_NAME = {
        "WR": WR,
        "RD": RD,
        "LD": LD,
        "ACCUM": ACCUM,
        "DEC_ADD": DEC_ADD,
        "CLR_ALL": CLR_ALL,
        "DEC_CNV": DEC_CNV,
        "DEC_MUL": DEC_MUL,
        "DEC_ACCUM": DEC_ACCUM,
        "DEC_ADDSUB": DEC_ADDSUB,
        "DEC_FMA_ACC": DEC_FMA_ACC,
        "DEC_ADDC": DEC_ADDC,
        "DEC_SUBB": DEC_SUBB,
    }

    #: funct7 -> mnemonic
    BY_VALUE = {value: name for name, value in BY_NAME.items()}

    #: one-line descriptions, as printed in Table II of the paper (the two
    #: rows past DEC_ACCUM are this framework's operation-axis extensions).
    DESCRIPTIONS = {
        "WR": "Write a value to a register in Rocket core",
        "RD": "Read a value from a register in Rocket core",
        "LD": "Load a value from a memory",
        "ACCUM": "Accumulate a value into a register in Rocket core",
        "DEC_CNV": "Convert binary number to corresponding BCD",
        "DEC_MUL": "Multiply two BCD numbers",
        "DEC_ADD": "Add two BCD numbers",
        "DEC_ACCUM": "Accumulate BCD numbers stored in internal registers",
        "CLR_ALL": "Clear all internal accelerator registers",
        "DEC_ADDSUB": "Subtract two BCD numbers (borrow out via status)",
        "DEC_FMA_ACC": "Add a shifted BCD register into the accumulator",
        "DEC_ADDC": "Add two BCD words with carry chained through status",
        "DEC_SUBB": "Subtract two BCD words with borrow chained through status",
    }

    @classmethod
    def name_for(cls, funct7: int) -> str:
        """Stable symbolic name for any ``funct7`` value.

        Known Table II functions render by mnemonic; everything else gets
        the deterministic ``FUNCT_n`` spelling, so renderers and traces
        never assume the Table II set is closed.
        """
        return cls.BY_VALUE.get(funct7, f"FUNCT_{funct7}")


#: Datapath stage plan per decimal function — the logical stages a command
#: occupies when the accelerator is built as a staged pipeline (see
#: docs/pipeline.md).  Multiply-family commands walk the digit-serial
#: multiplier stages; add-family commands walk the adder stages; everything
#: else (register moves, loads, clears, conversion) is pure interface work.
#: The plan names the *logical* stages; the physical register stage count is
#: a :class:`repro.rocc.decimal_accel.DecimalAcceleratorConfig` knob and the
#: pipeline model maps busy cycles onto ``min(depth, busy)`` segments.
_MUL_STAGES = ("multiplicand-gen", "pp-accumulate", "round")
_ADD_STAGES = ("align", "effective-op", "round")
INTERFACE_STAGES = ("interface",)

PIPELINE_STAGES = {
    "DEC_MUL": _MUL_STAGES,
    "DEC_ACCUM": _MUL_STAGES,
    "DEC_ADDSUB": _ADD_STAGES,
    "DEC_FMA_ACC": _ADD_STAGES,
    "DEC_ADD": _ADD_STAGES,
    "DEC_ADDC": _ADD_STAGES,
    "DEC_SUBB": _ADD_STAGES,
}


def stage_plan(function) -> tuple:
    """Logical stage names for a function (mnemonic or ``funct7`` value)."""
    name = DecimalFunct.name_for(function) if isinstance(function, int) else str(function)
    return PIPELINE_STAGES.get(name, INTERFACE_STAGES)


@dataclass(frozen=True)
class RoccInstruction:
    """A fully specified RoCC instruction (pre-encoding form)."""

    funct7: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    xd: bool = False
    xs1: bool = False
    xs2: bool = False
    custom: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.funct7 <= 0x7F:
            raise EncodingError(f"funct7 out of range: {self.funct7}")
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if not 0 <= value <= 31:
                raise EncodingError(f"{name} out of range: {value}")
        if self.custom not in CUSTOM_OPCODES:
            raise EncodingError(f"custom opcode index out of range: {self.custom}")

    def encode(self) -> int:
        """Return the 32-bit machine word for this instruction."""
        opcode = CUSTOM_OPCODES[self.custom]
        return (
            (self.funct7 & 0x7F) << 25
            | (self.rs2 & 0x1F) << 20
            | (self.rs1 & 0x1F) << 15
            | (int(self.xd) & 1) << 14
            | (int(self.xs1) & 1) << 13
            | (int(self.xs2) & 1) << 12
            | (self.rd & 0x1F) << 7
            | opcode
        )

    @classmethod
    def decode(cls, word: int) -> "RoccInstruction":
        """Decode a 32-bit machine word on a custom opcode."""
        opcode = word & 0x7F
        if opcode not in OPCODE_TO_CUSTOM:
            raise EncodingError(f"not a custom opcode: 0x{opcode:02x}")
        return cls(
            funct7=bits(word, 31, 25),
            rs2=bits(word, 24, 20),
            rs1=bits(word, 19, 15),
            xd=bool(bits(word, 14, 14)),
            xs1=bool(bits(word, 13, 13)),
            xs2=bool(bits(word, 12, 12)),
            rd=bits(word, 11, 7),
            custom=OPCODE_TO_CUSTOM[opcode],
        )

    @property
    def function_name(self) -> str:
        """Symbolic name of ``funct7`` if it is a known decimal function."""
        return DecimalFunct.name_for(self.funct7)

    def hex_word(self) -> str:
        """Hex literal of the encoded word, in the paper's ``0x...`` style."""
        return f"0x{self.encode():08X}"


def decimal_instruction(
    name: str,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    xd: bool = False,
    xs1: bool = False,
    xs2: bool = False,
    custom: int = 0,
) -> RoccInstruction:
    """Build a :class:`RoccInstruction` from a Table II mnemonic."""
    key = name.upper()
    if key not in DecimalFunct.BY_NAME:
        import difflib

        close = difflib.get_close_matches(key, DecimalFunct.BY_NAME, n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise EncodingError(
            f"unknown decimal accelerator function: {name!r} "
            f"(known mnemonics: {', '.join(DecimalFunct.BY_NAME)}){hint}"
        )
    return RoccInstruction(
        funct7=DecimalFunct.BY_NAME[key],
        rd=rd,
        rs1=rs1,
        rs2=rs2,
        xd=xd,
        xs1=xs1,
        xs2=xs2,
        custom=custom,
    )
