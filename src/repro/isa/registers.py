"""Integer register file names and helpers.

RV64 has 32 integer registers ``x0`` .. ``x31``.  The standard ABI gives each
a symbolic name (``zero``, ``ra``, ``sp``, ``a0`` ...).  The assembler accepts
either spelling; the simulators only deal in numeric indices.
"""

from __future__ import annotations

from repro.errors import EncodingError

REGISTER_COUNT = 32

#: ABI register names indexed by register number.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_NUM = {name: idx for idx, name in enumerate(ABI_NAMES)}
_NAME_TO_NUM["fp"] = 8  # frame pointer alias for s0
for _i in range(REGISTER_COUNT):
    _NAME_TO_NUM[f"x{_i}"] = _i


def parse_register(name) -> int:
    """Return the register number for ``name``.

    ``name`` may be an integer (0-31), an ``x``-name (``x5``), an ABI name
    (``t0``) or the ``fp`` alias.  Raises :class:`EncodingError` for anything
    else.
    """
    if isinstance(name, int):
        if 0 <= name < REGISTER_COUNT:
            return name
        raise EncodingError(f"register number out of range: {name}")
    if not isinstance(name, str):
        raise EncodingError(f"cannot interpret register operand: {name!r}")
    key = name.strip().lower()
    if key in _NAME_TO_NUM:
        return _NAME_TO_NUM[key]
    raise EncodingError(f"unknown register name: {name!r}")


def register_abi_name(num: int) -> str:
    """Return the ABI name for register ``num`` (e.g. ``10`` -> ``"a0"``)."""
    if not 0 <= num < REGISTER_COUNT:
        raise EncodingError(f"register number out of range: {num}")
    return ABI_NAMES[num]
