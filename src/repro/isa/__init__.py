"""RISC-V instruction-set architecture layer.

This subpackage defines the subset of RV64 needed by the evaluation framework:

* the RV64I base integer ISA,
* the M extension (multiply/divide),
* the Zicsr extension (CSR access, used for ``RDCYCLE``/``RDINSTRET``),
* the four ``custom-0`` .. ``custom-3`` opcodes used by RoCC accelerators,
  with the paper's decimal instruction set (Table II) layered on top.

The layer is purely about *representation*: encoding mnemonics + operands into
32-bit machine words and decoding machine words back.  Semantics live in
:mod:`repro.sim` (functional) and :mod:`repro.rocket` (timing).
"""

from repro.isa.registers import (
    ABI_NAMES,
    REGISTER_COUNT,
    parse_register,
    register_abi_name,
)
from repro.isa.instructions import Decoded, InstrFormat
from repro.isa.encoder import encode_instruction
from repro.isa.decoder import decode_instruction
from repro.isa.rocc import (
    DecimalFunct,
    RoccInstruction,
    CUSTOM_OPCODES,
)
from repro.isa import csr

__all__ = [
    "ABI_NAMES",
    "REGISTER_COUNT",
    "parse_register",
    "register_abi_name",
    "Decoded",
    "InstrFormat",
    "encode_instruction",
    "decode_instruction",
    "DecimalFunct",
    "RoccInstruction",
    "CUSTOM_OPCODES",
    "csr",
]
