"""Mnemonic + operands -> 32-bit machine word.

The encoder is intentionally strict: out-of-range immediates raise
:class:`~repro.errors.EncodingError` instead of silently truncating, because
silently corrupted kernels would invalidate the cycle measurements.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa import encoding as enc
from repro.isa.instructions import (
    B_TYPE,
    CSR_OPS,
    I_TYPE,
    OPCODE_BRANCH,
    OPCODE_JAL,
    OPCODE_MISC_MEM,
    OPCODE_STORE,
    OPCODE_SYSTEM,
    R_TYPE,
    S_TYPE,
    SHIFT_IMM,
    U_TYPE,
)


def _check_reg(name: str, value: int) -> int:
    if not 0 <= value <= 31:
        raise EncodingError(f"{name} register out of range: {value}")
    return value


def encode_r(mnemonic: str, rd: int, rs1: int, rs2: int) -> int:
    opcode, funct3, funct7 = R_TYPE[mnemonic]
    return enc.pack_r(opcode, _check_reg("rd", rd), funct3,
                      _check_reg("rs1", rs1), _check_reg("rs2", rs2), funct7)


def encode_i(mnemonic: str, rd: int, rs1: int, imm: int) -> int:
    opcode, funct3 = I_TYPE[mnemonic]
    if not enc.fits_signed(imm, 12):
        raise EncodingError(f"{mnemonic}: immediate {imm} does not fit in 12 bits")
    return enc.pack_i(opcode, _check_reg("rd", rd), funct3, _check_reg("rs1", rs1), imm)


def encode_shift_imm(mnemonic: str, rd: int, rs1: int, shamt: int) -> int:
    opcode, funct3, funct_hi, shamt_bits = SHIFT_IMM[mnemonic]
    if not enc.fits_unsigned(shamt, shamt_bits):
        raise EncodingError(f"{mnemonic}: shift amount {shamt} out of range")
    if shamt_bits == 6:
        imm = (funct_hi << 6) | shamt
    else:
        imm = (funct_hi << 5) | shamt
    return enc.pack_i(opcode, _check_reg("rd", rd), funct3, _check_reg("rs1", rs1), imm)


def encode_s(mnemonic: str, rs2: int, rs1: int, imm: int) -> int:
    funct3 = S_TYPE[mnemonic]
    if not enc.fits_signed(imm, 12):
        raise EncodingError(f"{mnemonic}: immediate {imm} does not fit in 12 bits")
    return enc.pack_s(OPCODE_STORE, funct3, _check_reg("rs1", rs1),
                      _check_reg("rs2", rs2), imm)


def encode_b(mnemonic: str, rs1: int, rs2: int, offset: int) -> int:
    funct3 = B_TYPE[mnemonic]
    if offset % 2:
        raise EncodingError(f"{mnemonic}: branch offset {offset} is not even")
    if not enc.fits_signed(offset, 13):
        raise EncodingError(f"{mnemonic}: branch offset {offset} out of range")
    return enc.pack_b(OPCODE_BRANCH, funct3, _check_reg("rs1", rs1),
                      _check_reg("rs2", rs2), offset)


def encode_u(mnemonic: str, rd: int, imm20: int) -> int:
    opcode = U_TYPE[mnemonic]
    if not enc.fits_unsigned(imm20 & 0xFFFFF, 20):
        raise EncodingError(f"{mnemonic}: upper immediate {imm20} out of range")
    return enc.pack_u(opcode, _check_reg("rd", rd), (imm20 & 0xFFFFF) << 12)


def encode_jal(rd: int, offset: int) -> int:
    if offset % 2:
        raise EncodingError(f"jal: offset {offset} is not even")
    if not enc.fits_signed(offset, 21):
        raise EncodingError(f"jal: offset {offset} out of range")
    return enc.pack_j(OPCODE_JAL, _check_reg("rd", rd), offset)


def encode_csr(mnemonic: str, rd: int, csr_addr: int, src: int) -> int:
    funct3, uses_imm = CSR_OPS[mnemonic]
    if not enc.fits_unsigned(csr_addr, 12):
        raise EncodingError(f"{mnemonic}: CSR address {csr_addr} out of range")
    if uses_imm:
        if not enc.fits_unsigned(src, 5):
            raise EncodingError(f"{mnemonic}: zimm {src} out of range")
        rs1_field = src
    else:
        rs1_field = _check_reg("rs1", src)
    word = enc.pack_i(OPCODE_SYSTEM, _check_reg("rd", rd), funct3, rs1_field, 0)
    return word | (csr_addr << 20)


def encode_system(mnemonic: str) -> int:
    if mnemonic == "ecall":
        return enc.pack_i(OPCODE_SYSTEM, 0, 0, 0, 0)
    if mnemonic == "ebreak":
        return enc.pack_i(OPCODE_SYSTEM, 0, 0, 0, 1)
    raise EncodingError(f"unknown system instruction: {mnemonic}")


def encode_fence(mnemonic: str) -> int:
    if mnemonic == "fence":
        # pred/succ = iorw/iorw
        return enc.pack_i(OPCODE_MISC_MEM, 0, 0, 0, 0x0FF)
    if mnemonic == "fence.i":
        return enc.pack_i(OPCODE_MISC_MEM, 0, 1, 0, 0)
    raise EncodingError(f"unknown fence instruction: {mnemonic}")


def encode_instruction(mnemonic: str, *operands: int) -> int:
    """Encode any supported instruction from numeric operands.

    Operand order follows assembly syntax:

    * R-type: ``rd, rs1, rs2``
    * I-type arithmetic / loads / jalr / shifts: ``rd, rs1, imm``
    * stores: ``rs2, rs1, imm``
    * branches: ``rs1, rs2, offset``
    * ``lui``/``auipc``: ``rd, imm20``
    * ``jal``: ``rd, offset``
    * CSR: ``rd, csr, rs1_or_zimm``
    * ``ecall``/``ebreak``/``fence``/``fence.i``: no operands
    """
    name = mnemonic.lower()
    if name in R_TYPE:
        return encode_r(name, *operands)
    if name in SHIFT_IMM:
        return encode_shift_imm(name, *operands)
    if name in I_TYPE:
        return encode_i(name, *operands)
    if name in S_TYPE:
        return encode_s(name, *operands)
    if name in B_TYPE:
        return encode_b(name, *operands)
    if name in U_TYPE:
        return encode_u(name, *operands)
    if name == "jal":
        return encode_jal(*operands)
    if name in CSR_OPS:
        return encode_csr(name, *operands)
    if name in ("ecall", "ebreak"):
        return encode_system(name)
    if name in ("fence", "fence.i"):
        return encode_fence(name)
    raise EncodingError(f"unknown mnemonic: {mnemonic!r}")
