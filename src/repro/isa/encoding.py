"""Bit-level helpers shared by the encoder, decoder and simulators.

All values are handled as Python ints; 64-bit wrap-around is made explicit
with :data:`MASK64` so the simulator semantics match real RV64 hardware.
"""

from __future__ import annotations

MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def bits(value: int, hi: int, lo: int) -> int:
    """Extract bits ``hi..lo`` (inclusive, hi >= lo) of ``value``."""
    width = hi - lo + 1
    return (value >> lo) & ((1 << width) - 1)


def bit(value: int, pos: int) -> int:
    """Extract a single bit of ``value``."""
    return (value >> pos) & 1


def sign_extend(value: int, width: int) -> int:
    """Sign-extend the ``width``-bit ``value`` to a Python int."""
    value &= (1 << width) - 1
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def to_unsigned64(value: int) -> int:
    """Reinterpret a (possibly negative) Python int as an unsigned 64-bit value."""
    return value & MASK64


def to_signed64(value: int) -> int:
    """Reinterpret the low 64 bits of ``value`` as a signed integer."""
    return sign_extend(value, 64)


def to_unsigned32(value: int) -> int:
    """Reinterpret a (possibly negative) Python int as an unsigned 32-bit value."""
    return value & MASK32


def to_signed32(value: int) -> int:
    """Reinterpret the low 32 bits of ``value`` as a signed integer."""
    return sign_extend(value, 32)


def fits_signed(value: int, width: int) -> bool:
    """Return True if ``value`` fits in a signed ``width``-bit immediate."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    """Return True if ``value`` fits in an unsigned ``width``-bit field."""
    return 0 <= value <= (1 << width) - 1


# ---------------------------------------------------------------------------
# Instruction field packers (RISC-V base formats).
# ---------------------------------------------------------------------------

def pack_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int) -> int:
    """Pack an R-type instruction word."""
    return (
        (funct7 & 0x7F) << 25
        | (rs2 & 0x1F) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | (rd & 0x1F) << 7
        | (opcode & 0x7F)
    )


def pack_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    """Pack an I-type instruction word (12-bit signed immediate)."""
    return (
        (imm & 0xFFF) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | (rd & 0x1F) << 7
        | (opcode & 0x7F)
    )


def pack_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """Pack an S-type (store) instruction word."""
    imm &= 0xFFF
    return (
        ((imm >> 5) & 0x7F) << 25
        | (rs2 & 0x1F) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | (imm & 0x1F) << 7
        | (opcode & 0x7F)
    )


def pack_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """Pack a B-type (branch) instruction word.  ``imm`` is the byte offset."""
    imm &= 0x1FFF
    return (
        ((imm >> 12) & 0x1) << 31
        | ((imm >> 5) & 0x3F) << 25
        | (rs2 & 0x1F) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 0x1) << 7
        | (opcode & 0x7F)
    )


def pack_u(opcode: int, rd: int, imm: int) -> int:
    """Pack a U-type instruction word.  ``imm`` is the full 32-bit value whose
    low 12 bits are ignored (i.e. callers pass ``imm20 << 12``)."""
    return (imm & 0xFFFFF000) | (rd & 0x1F) << 7 | (opcode & 0x7F)


def pack_j(opcode: int, rd: int, imm: int) -> int:
    """Pack a J-type (jal) instruction word.  ``imm`` is the byte offset."""
    imm &= 0x1FFFFF
    return (
        ((imm >> 20) & 0x1) << 31
        | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 0x1) << 20
        | ((imm >> 12) & 0xFF) << 12
        | (rd & 0x1F) << 7
        | (opcode & 0x7F)
    )


# ---------------------------------------------------------------------------
# Immediate extractors (decode direction).
# ---------------------------------------------------------------------------

def imm_i(word: int) -> int:
    """Extract the sign-extended I-type immediate."""
    return sign_extend(bits(word, 31, 20), 12)


def imm_s(word: int) -> int:
    """Extract the sign-extended S-type immediate."""
    return sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def imm_b(word: int) -> int:
    """Extract the sign-extended B-type immediate (byte offset)."""
    value = (
        (bit(word, 31) << 12)
        | (bit(word, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(value, 13)


def imm_u(word: int) -> int:
    """Extract the U-type immediate (already shifted into bits 31..12)."""
    return sign_extend(word & 0xFFFFF000, 32)


def imm_j(word: int) -> int:
    """Extract the sign-extended J-type immediate (byte offset)."""
    value = (
        (bit(word, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bit(word, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(value, 21)
