"""32-bit machine word -> :class:`~repro.isa.instructions.Decoded`.

The decoder is used on the hot path of every simulator, so lookup tables are
built once at import time and the returned objects are plain ``__slots__``
containers.  :func:`decode_cached` additionally memoises decode results per
word value in a process-wide table — ``Decoded`` objects are immutable by
convention, and the evaluation framework runs the same images through several
simulators, so sharing the cache across executors pays the decode cost once
per distinct instruction word for the whole process.
"""

from __future__ import annotations

from repro.errors import DecodingError
from repro.isa import encoding as enc
from repro.isa.instructions import (
    B_TYPE,
    CSR_OPS,
    Decoded,
    I_TYPE,
    InstrFormat,
    OPCODE_AUIPC,
    OPCODE_BRANCH,
    OPCODE_JAL,
    OPCODE_JALR,
    OPCODE_LOAD,
    OPCODE_LUI,
    OPCODE_MISC_MEM,
    OPCODE_OP,
    OPCODE_OP_32,
    OPCODE_OP_IMM,
    OPCODE_OP_IMM_32,
    OPCODE_STORE,
    OPCODE_SYSTEM,
    R_TYPE,
    S_TYPE,
    SHIFT_IMM,
    U_TYPE,
)
from repro.isa.rocc import OPCODE_TO_CUSTOM

# Reverse lookup tables ------------------------------------------------------
_R_LOOKUP = {
    (opcode, funct3, funct7): name for name, (opcode, funct3, funct7) in R_TYPE.items()
}
_I_LOOKUP = {
    (opcode, funct3): name for name, (opcode, funct3) in I_TYPE.items()
}
_S_LOOKUP = {funct3: name for name, funct3 in S_TYPE.items()}
_B_LOOKUP = {funct3: name for name, funct3 in B_TYPE.items()}
_U_LOOKUP = {opcode: name for name, opcode in U_TYPE.items()}
_CSR_LOOKUP = {funct3: name for name, (funct3, _imm) in CSR_OPS.items()}

# Shift-immediate lookup: (opcode, funct3, funct_hi) -> (name, shamt_bits)
_SHIFT_LOOKUP = {}
for _name, (_opcode, _funct3, _funct_hi, _shamt_bits) in SHIFT_IMM.items():
    _SHIFT_LOOKUP[(_opcode, _funct3, _funct_hi)] = (_name, _shamt_bits)


def _decode_op(word: int, opcode: int) -> Decoded:
    funct3 = enc.bits(word, 14, 12)
    funct7 = enc.bits(word, 31, 25)
    key = (opcode, funct3, funct7)
    name = _R_LOOKUP.get(key)
    if name is None:
        raise DecodingError(f"unknown R-type instruction: 0x{word:08x}")
    return Decoded(
        raw=word,
        mnemonic=name,
        fmt=InstrFormat.R,
        rd=enc.bits(word, 11, 7),
        rs1=enc.bits(word, 19, 15),
        rs2=enc.bits(word, 24, 20),
        funct3=funct3,
        funct7=funct7,
    )


def _decode_op_imm(word: int, opcode: int) -> Decoded:
    funct3 = enc.bits(word, 14, 12)
    rd = enc.bits(word, 11, 7)
    rs1 = enc.bits(word, 19, 15)
    if funct3 in (0x1, 0x5):
        # Shift by immediate; distinguish logical/arithmetic via the top bits.
        if opcode == OPCODE_OP_IMM:
            funct_hi = enc.bits(word, 31, 26)
            shamt = enc.bits(word, 25, 20)
        else:
            funct_hi = enc.bits(word, 31, 25)
            shamt = enc.bits(word, 24, 20)
        entry = _SHIFT_LOOKUP.get((opcode, funct3, funct_hi))
        if entry is None:
            raise DecodingError(f"unknown shift instruction: 0x{word:08x}")
        name, _bits_ = entry
        fmt = InstrFormat.SHIFT64 if opcode == OPCODE_OP_IMM else InstrFormat.SHIFT32
        return Decoded(
            raw=word, mnemonic=name, fmt=fmt, rd=rd, rs1=rs1, imm=shamt, funct3=funct3
        )
    name = _I_LOOKUP.get((opcode, funct3))
    if name is None:
        raise DecodingError(f"unknown OP-IMM instruction: 0x{word:08x}")
    return Decoded(
        raw=word,
        mnemonic=name,
        fmt=InstrFormat.I,
        rd=rd,
        rs1=rs1,
        imm=enc.imm_i(word),
        funct3=funct3,
    )


def _decode_system(word: int) -> Decoded:
    funct3 = enc.bits(word, 14, 12)
    rd = enc.bits(word, 11, 7)
    rs1 = enc.bits(word, 19, 15)
    if funct3 == 0:
        imm = enc.bits(word, 31, 20)
        if imm == 0:
            return Decoded(raw=word, mnemonic="ecall", fmt=InstrFormat.SYSTEM)
        if imm == 1:
            return Decoded(raw=word, mnemonic="ebreak", fmt=InstrFormat.SYSTEM)
        raise DecodingError(f"unknown SYSTEM instruction: 0x{word:08x}")
    name = _CSR_LOOKUP.get(funct3)
    if name is None:
        raise DecodingError(f"unknown CSR instruction: 0x{word:08x}")
    fmt = InstrFormat.CSR_IMM if CSR_OPS[name][1] else InstrFormat.CSR
    return Decoded(
        raw=word,
        mnemonic=name,
        fmt=fmt,
        rd=rd,
        rs1=rs1,
        csr=enc.bits(word, 31, 20),
        funct3=funct3,
    )


def decode_instruction(word: int) -> Decoded:
    """Decode a 32-bit instruction word.

    Raises :class:`~repro.errors.DecodingError` for unrecognised encodings.
    """
    word &= 0xFFFFFFFF
    opcode = word & 0x7F

    if opcode in (OPCODE_OP, OPCODE_OP_32):
        return _decode_op(word, opcode)
    if opcode in (OPCODE_OP_IMM, OPCODE_OP_IMM_32):
        return _decode_op_imm(word, opcode)
    if opcode == OPCODE_LOAD or opcode == OPCODE_JALR:
        funct3 = enc.bits(word, 14, 12)
        name = _I_LOOKUP.get((opcode, funct3))
        if name is None:
            raise DecodingError(f"unknown load/jalr instruction: 0x{word:08x}")
        return Decoded(
            raw=word,
            mnemonic=name,
            fmt=InstrFormat.I,
            rd=enc.bits(word, 11, 7),
            rs1=enc.bits(word, 19, 15),
            imm=enc.imm_i(word),
            funct3=funct3,
        )
    if opcode == OPCODE_STORE:
        funct3 = enc.bits(word, 14, 12)
        name = _S_LOOKUP.get(funct3)
        if name is None:
            raise DecodingError(f"unknown store instruction: 0x{word:08x}")
        return Decoded(
            raw=word,
            mnemonic=name,
            fmt=InstrFormat.S,
            rs1=enc.bits(word, 19, 15),
            rs2=enc.bits(word, 24, 20),
            imm=enc.imm_s(word),
            funct3=funct3,
        )
    if opcode == OPCODE_BRANCH:
        funct3 = enc.bits(word, 14, 12)
        name = _B_LOOKUP.get(funct3)
        if name is None:
            raise DecodingError(f"unknown branch instruction: 0x{word:08x}")
        return Decoded(
            raw=word,
            mnemonic=name,
            fmt=InstrFormat.B,
            rs1=enc.bits(word, 19, 15),
            rs2=enc.bits(word, 24, 20),
            imm=enc.imm_b(word),
            funct3=funct3,
        )
    if opcode in (OPCODE_LUI, OPCODE_AUIPC):
        return Decoded(
            raw=word,
            mnemonic=_U_LOOKUP[opcode],
            fmt=InstrFormat.U,
            rd=enc.bits(word, 11, 7),
            imm=enc.imm_u(word),
        )
    if opcode == OPCODE_JAL:
        return Decoded(
            raw=word,
            mnemonic="jal",
            fmt=InstrFormat.J,
            rd=enc.bits(word, 11, 7),
            imm=enc.imm_j(word),
        )
    if opcode == OPCODE_SYSTEM:
        return _decode_system(word)
    if opcode == OPCODE_MISC_MEM:
        funct3 = enc.bits(word, 14, 12)
        name = "fence" if funct3 == 0 else "fence.i"
        return Decoded(raw=word, mnemonic=name, fmt=InstrFormat.FENCE)
    if opcode in OPCODE_TO_CUSTOM:
        return Decoded(
            raw=word,
            mnemonic="rocc",
            fmt=InstrFormat.ROCC,
            rd=enc.bits(word, 11, 7),
            rs1=enc.bits(word, 19, 15),
            rs2=enc.bits(word, 24, 20),
            funct7=enc.bits(word, 31, 25),
            xd=enc.bits(word, 14, 14),
            xs1=enc.bits(word, 13, 13),
            xs2=enc.bits(word, 12, 12),
            custom=OPCODE_TO_CUSTOM[opcode],
        )
    raise DecodingError(f"unknown opcode 0x{opcode:02x} in word 0x{word:08x}")


#: Process-wide word -> Decoded memo (32-bit keys; bounded by the number of
#: distinct instruction words ever executed).
_DECODE_CACHE: dict = {}


def decode_cached(word: int):
    """Memoised :func:`decode_instruction`.

    The returned :class:`~repro.isa.instructions.Decoded` is shared — callers
    must treat it as immutable.  Undecodable words are not cached (they raise
    every time, matching the uncached behaviour).
    """
    decoded = _DECODE_CACHE.get(word)
    if decoded is None:
        decoded = decode_instruction(word)
        _DECODE_CACHE[word] = decoded
    return decoded
